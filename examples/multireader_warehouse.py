"""Multi-reader deployment: interference management without protocol
changes.

Warehouses already host several readers (paper §3/§4.3). The relay (a)
locks onto the strongest reader via the Eq. 5 sweep, and (b) suppresses
the others with its baseband filters — their carriers land far outside
the filter passbands after downconversion. This example quantifies the
suppression for a three-reader floor and shows the locked reader
changing as the drone crosses the floor.

Run:  python examples/multireader_warehouse.py
"""

import numpy as np

from repro.channel.environment import Environment
from repro.dsp.filters import LowPassFilter
from repro.reader import ReaderSite, residual_interference_db, strongest_reader
from repro.reader.multireader import received_power_dbm
from repro.relay.freq_discovery import ism_channels
from repro.sim.results import format_table


def main() -> None:
    channels = ism_channels()
    sites = [
        ReaderSite(position=(0.0, 0.0), frequency_hz=float(channels[5]),
                   tx_power_dbm=30.0, name="dock"),
        ReaderSite(position=(28.0, 5.0), frequency_hz=float(channels[20]),
                   tx_power_dbm=30.0, name="aisle-east"),
        ReaderSite(position=(15.0, 35.0), frequency_hz=float(channels[40]),
                   tx_power_dbm=30.0, name="mezzanine"),
    ]
    env = Environment.two_floor_building()
    lpf = LowPassFilter(100e3, 4e6, order=6)

    rows = []
    for drone_xy in [(4.0, 3.0), (24.0, 8.0), (16.0, 30.0)]:
        locked = strongest_reader(sites, drone_xy, env)
        others = [s for s in sites if s is not locked]
        suppressions = []
        for other in others:
            db = residual_interference_db(locked, other, lpf)
            suppressions.append(
                f"{other.name}: "
                + (">120" if db == float("inf") else f"{db:.0f}")
                + " dB"
            )
        rows.append(
            [
                f"({drone_xy[0]:.0f}, {drone_xy[1]:.0f})",
                locked.name,
                f"{received_power_dbm(locked, drone_xy, env):.1f} dBm",
                "; ".join(suppressions),
            ]
        )
    print("the relay locks to the strongest reader and filters the rest:")
    print(format_table(
        ["drone position", "locked reader", "rx power", "others suppressed by"],
        rows,
    ))

    # Different positions should lock different readers on this floor.
    locked_names = {row[1] for row in rows}
    assert len(locked_names) >= 2, "expected the lock to follow the drone"
    print("\nno Gen2 protocol change needed: filtering does the management "
          "(paper §4.3); same-channel collisions defer to [25].")


if __name__ == "__main__":
    main()
