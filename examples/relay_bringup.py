"""Relay bring-up: the sample-level physical layer, end to end.

Walks through what the paper's hardware evaluation does on the bench:

1. build the mirrored relay and measure the four self-interference
   isolations with the §7.1 probe procedure;
2. program the VGAs against the measured isolation (§6.1 rules);
3. discover the reader's channel with the streaming sweep (Eq. 5);
4. run a full Gen2 exchange — Query, RN16, ACK, EPC — through the relay
   at waveform level and report the preserved channel phase.

Run:  python examples/relay_bringup.py
"""

import numpy as np

import repro.channel.pathloss as pathloss
from repro.dsp import Signal
from repro.dsp.units import db_to_linear
from repro.gen2.backscatter import TagParams
from repro.hardware import PassiveTag, ReaderFrontend, Synthesizer
from repro.reader import Reader
from repro.relay import (
    FrequencyDiscovery,
    MirroredRelay,
    measure_all_isolations,
    plan_gains,
)
from repro.relay.freq_discovery import ism_channels
from repro.relay.mirrored import RelayConfig
from repro.sim.results import format_table


def main() -> None:
    rng = np.random.default_rng(seed=3)

    # -- 1. isolation bench --------------------------------------------------
    relay = MirroredRelay(915.0e6, RelayConfig(), rng)
    report = measure_all_isolations(relay)
    print("self-interference isolation (paper Fig. 9 medians: 110/92/77/64):")
    print(format_table(
        ["path", "isolation (dB)"],
        [
            ["inter-downlink", f"{report.inter_downlink_db:.1f}"],
            ["inter-uplink", f"{report.inter_uplink_db:.1f}"],
            ["intra-downlink", f"{report.intra_downlink_db:.1f}"],
            ["intra-uplink", f"{report.intra_uplink_db:.1f}"],
        ],
    ))

    # -- 2. gain programming ---------------------------------------------------
    plan = plan_gains(report)
    print(f"\nVGA plan: downlink {plan.downlink_gain_db:.1f} dB, uplink "
          f"{plan.uplink_gain_db:.1f} dB "
          f"({plan.uplink_post_filter_gain_db:.1f} dB after the BPF)")

    # -- 3. frequency discovery ---------------------------------------------
    true_channel = float(ism_channels()[23])
    fs_wide = 64.0e6
    sweep = FrequencyDiscovery()
    t = np.arange(int(sweep.total_sweep_seconds * fs_wide)) / fs_wide
    wave = 0.01 * np.exp(2j * np.pi * (true_channel - 915.0e6) * t)
    incoming = Signal(wave, fs_wide, 915.0e6)
    locked = sweep.discover(incoming)
    print(f"\nfrequency discovery: locked {locked / 1e6:.3f} MHz "
          f"(reader is on {true_channel / 1e6:.3f} MHz) in "
          f"{sweep.total_sweep_seconds * 1e3:.0f} ms")
    assert locked == true_channel

    # -- 4. a full Gen2 read through the relay ---------------------------------
    frontend = ReaderFrontend(Synthesizer.random(915.0e6, rng),
                              tx_power_dbm=20.0, rng=rng)
    reader = Reader(frontend, tag_params=TagParams(blf=500e3, miller_m=4))
    tag = PassiveTag(epc=0xC0FFEE, position=(0.5, 0.0),
                     rng=np.random.default_rng(5))
    wire = np.sqrt(db_to_linear(-40.0))
    half = np.sqrt(db_to_linear(
        -pathloss.free_space_path_loss_db(0.5, relay.shifted_frequency_hz)
    ))
    downlink = lambda s: relay.forward_downlink(s.scaled(wire)).scaled(half)
    uplink = lambda s: relay.forward_uplink(s.scaled(half)).scaled(wire)
    read = reader.read_single_tag(tag, downlink=downlink, uplink=uplink)
    print(f"\nGen2 exchange through the relay: EPC {read.epc:#x}, "
          f"RN16 {read.rn16:#06x}")
    print(f"channel phase preserved through the relay: "
          f"{np.rad2deg(read.epc_channel.phase_rad):+.2f} deg")
    assert read.epc == 0xC0FFEE


if __name__ == "__main__":
    main()
