"""Beyond the paper's prototype: relay chains and RF self-localization.

Two of the paper's explicitly proposed extensions (§4.3, §5.1, §9),
implemented and demonstrated:

1. **Daisy-chained relays** — two drones in series carry the reader's
   signal ~80 m out, and phase-based localization still works because
   every hop is mirrored and the last drone's reference RFID
   disentangles all upstream half-links at once.
2. **Drone RF self-localization** — the reference RFID's channel is
   purely the reader-relay half-link, so SAR over the trajectory shape
   (from odometry) recovers where the flight actually happened, without
   OptiTrack.

Run:  python examples/swarm_and_selfloc.py
"""

import numpy as np

from repro.localization import (
    Grid2D,
    Localizer,
    MeasurementModel,
    self_localize_from_measurements,
)
from repro.relay import (
    ChainPlan,
    DaisyChainMeasurementModel,
    check_chain_stability,
    max_chain_range_m,
)

F = 915.0e6


def daisy_chain_demo(rng: np.random.Generator) -> None:
    plan = ChainPlan(reader_frequency_hz=F, shift_hz=1.0e6, n_relays=2)
    print("frequency plan: reader {:.0f} MHz -> hop1 {:.0f} MHz -> tags "
          "{:.0f} MHz".format(F / 1e6, plan.hop_frequency_hz(1) / 1e6,
                              plan.tag_frequency_hz / 1e6))
    print(f"max 2-relay reach at 82 dB isolation: "
          f"{max_chain_range_m(2, 82.0):.0f} m")
    check_chain_stability([40.0, 42.0], isolation_db=82.0)

    model = DaisyChainMeasurementModel((0.0, 0.0), plan)
    hop1 = np.array([40.0, 0.0])
    tag = np.array([82.0, 1.8])
    measurements = [
        model.measure([hop1, np.array([x, 0.0])], tag, rng, snr_db=25.0)
        for x in np.linspace(79.0, 82.0, 40)
    ]
    localizer = Localizer(frequency_hz=F)
    grid = Grid2D(77.0, 85.0, 0.2, 4.0, 0.1)
    result = localizer.locate(measurements, search_grid=grid)
    error_cm = result.error_to(tag) * 100.0
    print(f"tag at 82 m localized through TWO relays with "
          f"{error_cm:.1f} cm error\n")
    assert error_cm < 20.0


def self_localization_demo(rng: np.random.Generator) -> None:
    reader = (6.0, 5.0)
    true_origin = np.array([1.0, 1.5])
    relative = np.column_stack([np.linspace(0.0, 3.0, 40), np.zeros(40)])
    model = MeasurementModel(reader_position=reader, reader_frequency_hz=F)
    measurements = [
        model.measure(true_origin + q, (2.0, 3.0), rng, snr_db=20.0)
        for q in relative
    ]
    grid = Grid2D(-1.0, 3.0, 0.0, 4.0, 0.03)
    estimate, _ = self_localize_from_measurements(
        measurements, relative, reader, grid, F
    )
    error_cm = float(np.linalg.norm(estimate - true_origin)) * 100.0
    print(f"flight origin recovered from RF alone: true "
          f"({true_origin[0]:.2f}, {true_origin[1]:.2f}), estimated "
          f"({estimate[0]:.2f}, {estimate[1]:.2f}) — {error_cm:.1f} cm error")
    print("(no OptiTrack: only odometry shape + the reference RFID channel)")
    assert error_cm < 30.0


def main() -> None:
    rng = np.random.default_rng(seed=21)
    daisy_chain_demo(rng)
    self_localization_demo(rng)


if __name__ == "__main__":
    main()
