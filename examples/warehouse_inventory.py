"""Warehouse inventory: scan an aisle of tagged items with one flight.

The motivating workload of the paper's introduction: a warehouse aisle
flanked by steel shelves holds a dozen RFID-tagged items; a ceiling
reader cannot reach most of them, so a drone-mounted relay flies the
aisle, the Gen2 anti-collision MAC inventories every tag it powers, and
the through-relay SAR pipeline localizes each discovered tag to its
shelf position.

Run:  python examples/warehouse_inventory.py
"""

import numpy as np

from repro.channel.environment import Environment, STEEL
from repro.hardware import PassiveTag
from repro.localization import Grid2D
from repro.mobility import LineTrajectory
from repro.sim import Item, ItemDatabase, World, WorldConfig
from repro.sim.results import format_table

AISLE_LENGTH_M = 10.0
SHELF_Y_M = 2.2
ITEM_NAMES = (
    "drill-box", "cable-spool", "pump-kit", "valve-crate", "bearing-set",
    "motor-1kW", "sensor-tray", "pipe-bundle", "filter-pack", "gear-box",
    "panel-stack", "tool-chest",
)


def build_world(rng: np.random.Generator) -> World:
    env = Environment(max_reflections=1)
    env.add_wall((0.0, SHELF_Y_M + 0.6), (AISLE_LENGTH_M, SHELF_Y_M + 0.6),
                 STEEL, "shelf-back")
    # A dozen items on the shelf along the aisle.
    tags = [
        PassiveTag(
            epc=0xA000 + i,
            position=(0.6 + i * 0.8, SHELF_Y_M + rng.uniform(-0.3, 0.3)),
            rng=np.random.default_rng(100 + i),
        )
        for i in range(12)
    ]
    config = WorldConfig(sample_spacing_m=0.1, use_gen2_mac=True)
    return World(
        environment=env,
        reader_position=(-12.0, 0.0),
        tags=tags,
        rng=rng,
        config=config,
    )


def build_catalog(world: World) -> ItemDatabase:
    """The manufacturer database of paper §3: EPC -> item + shelf spot."""
    return ItemDatabase(
        [
            Item(
                epc=tag.epc_int,
                name=ITEM_NAMES[i],
                expected_position=tuple(tag.position),
            )
            for i, tag in enumerate(world.tags)
        ]
    )


def main() -> None:
    rng = np.random.default_rng(seed=11)
    world = build_world(rng)
    catalog = build_catalog(world)
    flight = LineTrajectory((0.0, 0.0), (AISLE_LENGTH_M, 0.0))

    print(f"scanning a {AISLE_LENGTH_M:.0f} m aisle with {len(world.tags)} "
          "tagged items...")
    observations = world.scan(flight)

    search = Grid2D(-1.0, AISLE_LENGTH_M + 1.0, 0.3, 4.5, 0.1)
    located, counts = {}, {}
    errors = {}
    for epc, obs in observations.items():
        counts[epc] = obs.n_reads
        if obs.n_reads < 5:
            continue
        result = world.localize(obs, search_grid=search)
        located[epc] = result.position
        errors[epc] = result.error_to(obs.true_position)

    report = catalog.reconcile(located, counts)
    rows = []
    for found in sorted(report.found, key=lambda f: f.item.epc):
        epc = found.item.epc
        rows.append(
            [
                found.item.name,
                f"{epc:#06x}",
                str(found.n_reads),
                f"({found.position[0]:.2f}, {found.position[1]:.2f})",
                f"{errors[epc] * 100:.0f} cm",
                "misplaced" if (found.displacement_m or 0) > 1.0 else "on shelf",
            ]
        )
    print(format_table(
        ["item", "EPC", "reads", "estimated position (m)", "error", "status"],
        rows,
    ))
    print(f"\nfound {len(report.found)}/{len(catalog)} cataloged items "
          f"({report.found_fraction:.0%}); missing: "
          f"{[m.name for m in report.missing] or 'none'}")
    print("the reader alone reaches none of these at 12 m (paper Fig. 11).")
    assert report.found_fraction >= 0.9


if __name__ == "__main__":
    main()
