"""Quickstart: localize one RFID through a drone-mounted relay.

A stationary reader sits 10 m away from the aisle; the drone flies a
3 m path; a passive tag sits ~2 m to the side of it. The reader
captures the tag's channel through the relay at every pose, the
relay-embedded reference RFID disentangles the two half-links (paper
Eq. 10), and the SAR matched filter (Eq. 12) recovers the tag position.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.localization import Grid2D, Localizer, MeasurementModel
from repro.mobility import Drone, LineTrajectory, OptiTrack

READER_FREQUENCY_HZ = 915.0e6


def main() -> None:
    rng = np.random.default_rng(seed=7)

    # The world: reader, flight path, and a tag we want to find.
    reader_position = (-10.0, 0.0)
    tag_position = np.array([1.8, 2.1])
    trajectory = LineTrajectory(start=(0.0, 0.0), end=(3.0, 0.0))

    # Fly the drone; OptiTrack observes the poses the localizer will use.
    drone = Drone(hover_jitter_std_m=0.01)
    flown = drone.fly(trajectory, sample_spacing_m=0.05, rng=rng)
    observed = OptiTrack().observe_trajectory(flown, rng)

    # Through-relay channel measurements at every pose (phasor level).
    model = MeasurementModel(
        reader_position=reader_position,
        reader_frequency_hz=READER_FREQUENCY_HZ,
    )
    measurements = []
    for true_pose, seen_pose in zip(flown, observed):
        m = model.measure(true_pose.position, tag_position, rng, snr_db=25.0)
        measurements.append(
            type(m)(
                position=seen_pose.position,
                h_target=m.h_target,
                h_reference=m.h_reference,
                snr_db=m.snr_db,
                time=m.time,
            )
        )

    # Localize. The drone scans one side of the aisle, so search there.
    localizer = Localizer(frequency_hz=READER_FREQUENCY_HZ)
    search = Grid2D(x_min=-1.0, x_max=4.0, y_min=0.2, y_max=4.5, resolution=0.1)
    result = localizer.locate(measurements, search_grid=search)

    error_cm = result.error_to(tag_position) * 100.0
    print(f"true tag position:      ({tag_position[0]:.3f}, {tag_position[1]:.3f}) m")
    print(f"estimated position:     ({result.position[0]:.3f}, {result.position[1]:.3f}) m")
    print(f"localization error:     {error_cm:.1f} cm")
    print(f"peak-to-path distance:  {result.peak_distance_to_trajectory_m:.2f} m")
    assert error_cm < 50.0, "quickstart should localize within half a meter"


if __name__ == "__main__":
    main()
