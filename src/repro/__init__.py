"""RFly reproduction: drone relays for battery-free (RFID) networks.

This package reproduces the system of *Drone Relays for Battery-Free
Networks* (Ma, Selby & Adib, SIGCOMM 2017): a phase-preserving,
bidirectionally full-duplex relay for passive UHF RFID, and a synthetic-
aperture localization algorithm that operates through the mobile relay.

Top-level layout
----------------
``repro.dsp``
    Sample-level DSP substrate (signals, mixers, filters, amplifiers).
``repro.gen2``
    EPC Gen2 protocol stack (PIE, FM0/Miller, CRC, commands, inventory).
``repro.channel``
    RF propagation: path loss, geometric multipath, environments.
``repro.hardware``
    Tag, reader front end, and synthesizer models.
``repro.relay``
    The paper's relay: mirrored architecture, self-interference,
    isolation, frequency discovery, and baseline relays.
``repro.reader``
    Reader application layer: inventory plus channel estimation.
``repro.mobility``
    Drone/robot trajectories and ground truth.
``repro.localization``
    Through-relay phase disentanglement and the SAR solver.
``repro.sim``
    End-to-end world simulation and canned scenarios.
``repro.experiments``
    Runners that regenerate every figure of the paper's evaluation.
"""

from __future__ import annotations

__version__ = "1.0.0"

__all__ = ["__version__"]
