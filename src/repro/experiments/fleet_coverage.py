"""`fleet_coverage`: read rate and accuracy vs fleet size, plus a
relay-selection policy shootout.

Two tables from one sweep. The first scales a single-aisle scenario to
``N`` relays with :func:`repro.fleet.plan.scale_fleet` (``N=1`` is the
pre-fleet relay bit for bit; larger fleets split the aisle into ``N``
contiguous segments flown simultaneously on alternating frequency
slots — reuse-2) and replays each workload through the
serving layer with a ``relay.handoff`` drop fault engaged — so the
table reports coverage (reads per tag), accuracy, handoff counts, the
updates lost in handoff windows, and the **silent** column: sessions
whose fix came out wrong *without* the service flagging data loss.
That column must read 0 everywhere — a handoff may cost accuracy, but
never silently.

The second table races the three relay-selection policies
(:mod:`repro.fleet.selection`) across the two library fleet worlds:
parallel co-channel aisles (interference-limited) and an opposed
crossover pass (handoff-limited).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro import faults
from repro.experiments.runner import ExperimentOutput, fmt
from repro.fleet.plan import scale_fleet
from repro.runtime import SweepTask
from repro.scenarios import registry as scenario_registry
from repro.scenarios.compiler import generate_workload
from repro.scenarios.spec import Scenario
from repro.serve.config import ServeConfig
from repro.serve.shard import ShardConfig, run_sharded_workload

DEFAULT_FLEET_SIZES: Tuple[int, ...] = (1, 2, 4, 8)

POLICIES: Tuple[str, ...] = (
    "nearest",
    "best_link_budget",
    "epsilon_greedy",
)

#: The two library fleet worlds the policy shootout races over.
POLICY_SCENARIOS: Tuple[str, ...] = (
    "warehouse_twin_aisle",
    "aisle_crossover_handoff",
)


@dataclass
class FleetCoverageResult:
    """Fleet-size rows then policy-shootout rows, in sweep order."""

    scale_rows: List[Dict[str, Any]]
    policy_rows: List[Dict[str, Any]]


def _with_policy(spec: Scenario, policy: str) -> Scenario:
    """The scenario with its fleet's selection policy swapped."""
    if spec.fleet is None or spec.fleet.selection == policy:
        return spec
    return Scenario.from_dict(
        {
            **spec.to_dict(),
            "fleet": {**spec.fleet.to_dict(), "selection": policy},
        }
    )


def _replay(
    spec: Scenario,
    n_tags: Optional[int],
    load: float,
    grid_resolution: float,
    pose_spacing_m: Optional[float],
    latency_slo_s: float,
    handoff_drop_rate: float,
    wrong_threshold_m: float,
    seed: int,
) -> Dict[str, Any]:
    """Generate one fleet workload and replay it under handoff faults."""
    workload = generate_workload(
        spec,
        n_tags=n_tags,
        seed=seed,
        load=load,
        grid_resolution=grid_resolution,
        pose_spacing_m=pose_spacing_m,
    )
    config = ServeConfig(
        frequency_hz=spec.radio.center_frequency_hz,
        latency_slo_s=latency_slo_s,
        capacity_mode="partitioned",
        session_ttl_s=1e9,
    )
    plan = faults.FaultPlan.single(
        "relay.handoff", "drop", rate=handoff_drop_rate
    )
    report = run_sharded_workload(
        workload, config, ShardConfig(n_shards=1, seed=seed),
        fault_plan=plan,
    )
    relays_seen = sorted(
        {event.measurement.relay for event in workload.events}
    )
    errors = np.asarray(sorted(report.errors_m.values()), dtype=float)
    sessions = sorted(workload.grids)
    silent = sum(
        1
        for session_id in sessions
        if report.errors_m.get(session_id, 0.0) > wrong_threshold_m
        and report.session_loss.get(session_id, 0) == 0
    )
    return {
        "relays_serving": len(relays_seen),
        "sessions": len(sessions),
        "offered": int(report.offered),
        "reads_per_tag": report.offered / max(1, len(sessions)),
        "applied": int(report.service.updates_applied),
        "mean_error_m": (
            float(errors.mean()) if errors.size else float("nan")
        ),
        "handoffs": int(report.service.handoffs),
        "mean_handoff_latency_s": report.service.mean_handoff_latency_s,
        "handoff_loss": int(report.service.updates_rejected),
        "silent_wrong": int(silent),
    }


def _scale_point(
    scenario_json: str,
    fleet_size: int,
    n_tags: int,
    load: float,
    grid_resolution: float,
    pose_spacing_m: Optional[float],
    latency_slo_s: float,
    handoff_drop_rate: float,
    wrong_threshold_m: float,
    seed: int,
) -> Dict[str, Any]:
    """One fleet-size cell: scale the base scenario to ``N`` relays."""
    spec = scale_fleet(Scenario.from_json(scenario_json), fleet_size)
    row = _replay(
        spec,
        n_tags,
        load,
        grid_resolution,
        pose_spacing_m,
        latency_slo_s,
        handoff_drop_rate,
        wrong_threshold_m,
        seed,
    )
    return {"kind": "scale", "fleet_size": int(fleet_size), **row}


def _policy_point(
    scenario_json: str,
    policy: str,
    load: float,
    grid_resolution: float,
    pose_spacing_m: Optional[float],
    latency_slo_s: float,
    handoff_drop_rate: float,
    wrong_threshold_m: float,
    seed: int,
) -> Dict[str, Any]:
    """One shootout cell: a library fleet world under one policy."""
    spec = _with_policy(Scenario.from_json(scenario_json), policy)
    row = _replay(
        spec,
        None,
        load,
        grid_resolution,
        pose_spacing_m,
        latency_slo_s,
        handoff_drop_rate,
        wrong_threshold_m,
        seed,
    )
    return {
        "kind": "policy",
        "world": spec.name,
        "policy": policy,
        **row,
    }


def build_tasks(
    fleet_sizes: Sequence[int] = DEFAULT_FLEET_SIZES,
    policies: Sequence[str] = POLICIES,
    policy_scenarios: Sequence[str] = POLICY_SCENARIOS,
    n_tags: int = 4,
    load: float = 8.0,
    grid_resolution: float = 0.10,
    pose_spacing_m: Optional[float] = None,
    latency_slo_s: float = 0.25,
    handoff_drop_rate: float = 0.3,
    wrong_threshold_m: float = 0.75,
    seed: int = 0,
    scenario: "str | Scenario" = "conveyor_flow_through",
) -> List[SweepTask]:
    """Fleet-size tasks first, then (world x policy) shootout tasks."""
    scenario_json = scenario_registry.resolve(scenario).to_json()
    shared = {
        "load": float(load),
        "grid_resolution": grid_resolution,
        "pose_spacing_m": pose_spacing_m,
        "latency_slo_s": latency_slo_s,
        "handoff_drop_rate": float(handoff_drop_rate),
        "wrong_threshold_m": float(wrong_threshold_m),
    }
    tasks = [
        SweepTask.make(
            _scale_point,
            params={
                "scenario_json": scenario_json,
                "fleet_size": int(fleet_size),
                "n_tags": n_tags,
                **shared,
            },
            seed=seed,
            label=f"fleet_coverage/N{fleet_size}",
        )
        for fleet_size in fleet_sizes
    ]
    for world in policy_scenarios:
        world_json = scenario_registry.resolve(world).to_json()
        tasks.extend(
            SweepTask.make(
                _policy_point,
                params={
                    "scenario_json": world_json,
                    "policy": policy,
                    **shared,
                },
                seed=seed,
                label=f"fleet_coverage/{world}/{policy}",
            )
            for policy in policies
        )
    return tasks


def reduce(
    payloads: Sequence[Dict[str, Any]], params: Mapping[str, Any]
) -> FleetCoverageResult:
    """Split the flat payload list back into the two tables."""
    rows = [dict(row) for row in payloads]
    return FleetCoverageResult(
        scale_rows=[row for row in rows if row["kind"] == "scale"],
        policy_rows=[row for row in rows if row["kind"] == "policy"],
    )


def format_result(result: FleetCoverageResult) -> List[ExperimentOutput]:
    """Render the fleet-size table and the policy shootout."""
    scale_rows = [
        [
            str(int(row["fleet_size"])),
            f"{int(row['relays_serving'])}/{int(row['fleet_size'])}",
            str(int(row["offered"])),
            f"{row['reads_per_tag']:.1f}",
            fmt(row["mean_error_m"]),
            str(int(row["handoffs"])),
            str(int(row["handoff_loss"])),
            str(int(row["silent_wrong"])),
        ]
        for row in result.scale_rows
    ]
    silent_total = sum(
        int(row["silent_wrong"])
        for row in result.scale_rows + result.policy_rows
    )
    scale_table = ExperimentOutput(
        name="fleet_coverage — read rate and accuracy vs fleet size",
        headers=[
            "N",
            "serving",
            "offered",
            "reads/tag",
            "err (m)",
            "handoffs",
            "ho loss",
            "silent",
        ],
        rows=scale_rows,
        paper_claims={"silently wrong fixes": "0 (all loss flagged)"},
        measured={"silently wrong fixes": str(silent_total)},
        notes=(
            "N=1 is the single-relay flight bit for bit; larger fleets "
            "split the aisle into N simultaneous half-overlapping "
            "segments on alternating frequency slots (reuse-2), "
            "scanning in ~1/N the wall time at the cost of per-tag "
            "aperture; boundary tags hand off between neighbors and "
            "their fixes combine both relays' segments noncoherently. A "
            "relay.handoff drop fault is engaged throughout, so `ho "
            "loss` counts updates lost in handoff windows — every such "
            "loss must surface in session_loss (the `silent` column "
            "stays 0) rather than silently skewing a fix."
        ),
    )
    policy_rows = [
        [
            str(row["world"]),
            str(row["policy"]),
            str(int(row["offered"])),
            fmt(row["mean_error_m"]),
            str(int(row["handoffs"])),
            f"{row['mean_handoff_latency_s'] * 1e3:.2f}",
            str(int(row["silent_wrong"])),
        ]
        for row in result.policy_rows
    ]
    policy_table = ExperimentOutput(
        name="fleet_coverage — relay-selection policy shootout",
        headers=[
            "world",
            "policy",
            "offered",
            "err (m)",
            "handoffs",
            "ho p50 (ms)",
            "silent",
        ],
        rows=policy_rows,
        paper_claims={},
        measured={},
        notes=(
            "warehouse_twin_aisle is interference-limited (both relays "
            "share one frequency slot); aisle_crossover_handoff is "
            "handoff-limited (opposed passes swap every tag's nearest "
            "relay mid-flight). epsilon_greedy draws exploration from "
            "a SeedSequence child of the task seed, so rows are "
            "deterministic."
        ),
    )
    return [scale_table, policy_table]


if __name__ == "__main__":  # pragma: no cover - manual regeneration
    from repro.experiments import registry

    for output in registry.run_experiment("fleet_coverage").outputs:
        print(output.report())
