"""Shared scaffolding for the per-figure experiment runners."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.sim.results import format_table


@dataclass
class ExperimentOutput:
    """One experiment's regenerated table plus paper-vs-measured notes."""

    name: str
    headers: List[str]
    rows: List[List[str]]
    paper_claims: Dict[str, str] = field(default_factory=dict)
    measured: Dict[str, str] = field(default_factory=dict)
    notes: str = ""

    def table(self) -> str:
        """The regenerated table in fixed-width form."""
        return format_table(self.headers, self.rows)

    def report(self) -> str:
        """Full report: table plus paper-vs-measured comparison."""
        lines = [f"== {self.name} ==", self.table()]
        if self.paper_claims:
            lines.append("")
            lines.append("paper vs measured:")
            for key, claim in self.paper_claims.items():
                measured = self.measured.get(key, "n/a")
                lines.append(f"  {key}: paper {claim} | measured {measured}")
        extra = {
            key: value
            for key, value in self.measured.items()
            if key not in self.paper_claims
        }
        if extra:
            lines.append("")
            lines.append("measured:")
            for key, value in extra.items():
                lines.append(f"  {key}: {value}")
        if self.notes:
            lines.append("")
            lines.append(self.notes)
        return "\n".join(lines)


def fmt(value: float, digits: int = 3) -> str:
    """Compact numeric cell formatting."""
    return f"{value:.{digits}g}"
