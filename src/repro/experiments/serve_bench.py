"""`serve`: throughput/latency of the online localization service.

Sweeps the arrival-rate compression factor (``load``) of the Gen2-MAC
traffic generator and replays each workload through a fresh
:class:`~repro.serve.service.LocalizationService`. Because the service
runs on a virtual clock, every cell of the table — throughput, p50/p99
latency, shed and degraded fractions, mean localization error — is a
pure function of the parameters, so the table is seed-deterministic
and golden-testable like every figure experiment.

The low-load rows show the service keeping up at full resolution; the
high-load rows show the degradation ladder engaging (degraded fraction
rising) while estimates stay usable because deferred full-resolution
work is caught up exactly at finalize.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Sequence, Tuple

import numpy as np

from repro.experiments.runner import ExperimentOutput, fmt
from repro.runtime import SweepTask
from repro.scenarios import registry as scenario_registry
from repro.scenarios.compiler import generate_workload
from repro.scenarios.spec import Scenario
from repro.serve.config import ServeConfig
from repro.serve.traffic import run_workload

DEFAULT_LOADS: Tuple[float, ...] = (1.0, 8.0, 64.0, 256.0)


@dataclass
class ServeBenchResult:
    """One summary row per swept load point, in sweep order."""

    rows: List[Dict[str, float]]


def _load_point(
    scenario_json: str,
    load: float,
    n_tags: int,
    grid_resolution: float,
    latency_slo_s: float,
    seed: int,
) -> Dict[str, float]:
    """Replay one generated workload; return the table row's scalars."""
    spec = Scenario.from_json(scenario_json)
    workload = generate_workload(
        spec,
        n_tags=n_tags,
        seed=seed,
        load=load,
        grid_resolution=grid_resolution,
    )
    config = ServeConfig(
        frequency_hz=spec.radio.center_frequency_hz,
        latency_slo_s=latency_slo_s,
    )
    report = run_workload(workload, config)
    errors = np.asarray(sorted(report.errors_m.values()), dtype=float)
    return {
        "load": float(load),
        "offered": float(report.offered),
        "throughput_per_s": report.throughput_per_s,
        "p50_latency_s": report.service.p50_latency_s,
        "p99_latency_s": report.service.p99_latency_s,
        "shed_fraction": report.shed_fraction,
        "degraded_fraction": report.degraded_fraction,
        "mean_error_m": float(errors.mean()) if errors.size else float("nan"),
    }


def build_tasks(
    loads: Sequence[float] = DEFAULT_LOADS,
    n_tags: int = 4,
    grid_resolution: float = 0.10,
    latency_slo_s: float = 0.25,
    seed: int = 0,
    scenario: "str | Scenario" = "conveyor_flow_through",
) -> List[SweepTask]:
    """One task per swept load point (the workload seed is shared)."""
    scenario_json = scenario_registry.resolve(scenario).to_json()
    return [
        SweepTask.make(
            _load_point,
            params={
                "scenario_json": scenario_json,
                "load": float(load),
                "n_tags": n_tags,
                "grid_resolution": grid_resolution,
                "latency_slo_s": latency_slo_s,
            },
            seed=seed,
            label=f"serve/load{load:g}",
        )
        for load in loads
    ]


def reduce(
    payloads: Sequence[Dict[str, float]], params: Mapping[str, Any]
) -> ServeBenchResult:
    """Per-load rows in task order -> the bench result."""
    return ServeBenchResult(rows=[dict(row) for row in payloads])


def format_result(result: ServeBenchResult) -> ExperimentOutput:
    """Render the throughput/latency table."""
    rows = [
        [
            f"{row['load']:.1f}",
            str(int(row["offered"])),
            f"{row['throughput_per_s']:.1f}",
            f"{row['p50_latency_s'] * 1e3:.2f}",
            f"{row['p99_latency_s'] * 1e3:.2f}",
            fmt(row["shed_fraction"]),
            fmt(row["degraded_fraction"]),
            fmt(row["mean_error_m"]),
        ]
        for row in result.rows
    ]
    kept_full = [r for r in result.rows if r["degraded_fraction"] == 0.0]
    measured = {
        "max throughput": (
            f"{max(r['throughput_per_s'] for r in result.rows):.1f} upd/s"
        ),
        "degraded at load": "{:.1f}".format(
            min(
                (
                    r["load"]
                    for r in result.rows
                    if r["degraded_fraction"] > 0.0
                ),
                default=float("nan"),
            )
        ),
    }
    return ExperimentOutput(
        name="serve — online localization throughput/latency",
        headers=[
            "load",
            "offered",
            "upd/s",
            "p50 (ms)",
            "p99 (ms)",
            "shed",
            "degraded",
            "err (m)",
        ],
        rows=rows,
        paper_claims={},
        measured=measured,
        notes=(
            f"{len(kept_full)}/{len(result.rows)} load points served "
            "entirely at full resolution; degraded work is caught up "
            "exactly at finalize (linear SAR accumulation)."
        ),
    )


if __name__ == "__main__":  # pragma: no cover - manual regeneration
    from repro.experiments import registry

    print(registry.run_experiment("serve_bench").outputs[0].report())
