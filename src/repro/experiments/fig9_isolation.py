"""Fig. 9: isolation CDFs of the four self-interference paths.

100 trials; each trial is a fresh relay build (component and placement
tolerances redrawn) probed with the §7.1 procedure at a random input
power, compared against the traditional analog relay baseline. The
paper's medians are 110 / 92 / 77 / 64 dB with >= 50 dB improvement
over the analog relay on every path.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.experiments.runner import ExperimentOutput, fmt
from repro.relay.analog_baseline import AnalogCoupling, AnalogRelay
from repro.relay.isolation import measure_all_isolations
from repro.relay.mirrored import MirroredRelay, RelayConfig
from repro.relay.self_interference import AntennaCoupling, LeakagePath
from repro.runtime import RuntimeConfig, SweepTask
from repro.scenarios import registry as scenario_registry
from repro.scenarios.spec import Scenario
from repro.sim.results import empirical_cdf, summarize

PAPER_MEDIANS_DB = {
    LeakagePath.INTER_DOWNLINK: 110.0,
    LeakagePath.INTER_UPLINK: 92.0,
    LeakagePath.INTRA_DOWNLINK: 77.0,
    LeakagePath.INTRA_UPLINK: 64.0,
}


@dataclass
class Fig9Result:
    """Isolation samples per path for RFly and the analog baseline."""

    rfly: Dict[LeakagePath, np.ndarray]
    analog: Dict[LeakagePath, np.ndarray]

    def cdf(
        self, path: LeakagePath, system: str = "rfly"
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Empirical CDF of the stored samples."""
        values = self.rfly[path] if system == "rfly" else self.analog[path]
        return empirical_cdf(values)


def _random_config(rng: np.random.Generator) -> RelayConfig:
    """Per-build component tolerances around the PCB's nominal values."""
    return RelayConfig(
        downlink_feedthrough_db=float(rng.normal(18.0, 2.5)),
        uplink_feedthrough_db=float(rng.normal(20.0, 2.5)),
        lpf_cutoff_hz=float(100e3 * rng.uniform(0.97, 1.03)),
        bpf_half_bandwidth_hz=float(150e3 * rng.uniform(0.97, 1.03)),
    )


def _trial(
    trial: int, band_low_hz: float, band_high_hz: float, seed: int
) -> "Dict[str, Dict[str, float]]":
    """One Fig. 9 trial: a fresh relay build probed on every path.

    The reader frequency draws uniformly over the scenario's regulated
    band. Returns plain string-keyed dicts so the payload
    pickles/caches compactly and independently of the enum class.
    """
    rng = np.random.default_rng(seed)
    relay = MirroredRelay(
        reader_frequency_hz=float(rng.uniform(band_low_hz, band_high_hz)),
        config=_random_config(rng),
        rng=rng,
        coupling=AntennaCoupling.random(rng),
    )
    input_power = float(rng.uniform(-50.0, -20.0))
    report = measure_all_isolations(relay, input_power_dbm=input_power)
    # Unity gain: the isolation figures are gain-independent, and a
    # deep-faded coupling draw would make any positive gain ring.
    baseline = AnalogRelay(
        gain_db=0.0, coupling=AnalogCoupling.random(rng), margin_db=0.0
    ).isolation_report()
    return {
        "rfly": {path.value: report.of(path) for path in LeakagePath},
        "analog": {path.value: baseline.of(path) for path in LeakagePath},
    }


def build_tasks(
    n_trials: int = 100,
    seed: int = 0,
    scenario: "str | Scenario" = "rf_bench",
) -> List[SweepTask]:
    """The Fig. 9 isolation campaign as per-trial tasks.

    Each trial redraws its build tolerances from an independent,
    trial-indexed seed, so the campaign parallelizes without any shared
    RNG stream; the probed band's edges come from the bench scenario's
    radio plan.
    """
    radio = scenario_registry.resolve(scenario).radio
    return [
        SweepTask.make(
            _trial,
            params={
                "trial": trial,
                "band_low_hz": float(radio.band_low_hz),
                "band_high_hz": float(radio.band_high_hz),
            },
            seed=seed * 100_003 + trial,
            label=f"fig9/trial{trial}",
        )
        for trial in range(n_trials)
    ]


def reduce(
    payloads: Sequence[Any], params: Mapping[str, Any]
) -> Fig9Result:
    """Collect per-trial path isolations into sample arrays."""
    rfly: "Dict[LeakagePath, List[float]]" = {path: [] for path in LeakagePath}
    analog: "Dict[LeakagePath, List[float]]" = {path: [] for path in LeakagePath}
    for payload in payloads:
        for path in LeakagePath:
            rfly[path].append(payload["rfly"][path.value])
            analog[path].append(payload["analog"][path.value])
    return Fig9Result(
        rfly={p: np.asarray(v) for p, v in rfly.items()},
        analog={p: np.asarray(v) for p, v in analog.items()},
    )


def run(
    n_trials: int = 100,
    seed: int = 0,
    runtime: Optional[RuntimeConfig] = None,
) -> Fig9Result:
    """Deprecated shim; use ``repro.experiments.registry`` instead."""
    warnings.warn(
        "fig9_isolation.run() is deprecated; use "
        "repro.experiments.registry.run_experiment('fig9_isolation', ...)",
        DeprecationWarning,
        stacklevel=2,
    )
    from repro.experiments import registry

    return registry.run_experiment(
        "fig9_isolation", runtime=runtime, n_trials=n_trials, seed=seed
    ).result


def format_result(result: Fig9Result) -> ExperimentOutput:
    """Render the Fig. 9 medians table and paper comparison."""
    headers = ["leakage path", "RFly median (dB)", "analog median (dB)",
               "improvement (dB)", "paper median (dB)"]
    rows: List[List[str]] = []
    measured = {}
    for path in LeakagePath:
        rfly_med = float(np.median(result.rfly[path]))
        analog_med = float(np.median(result.analog[path]))
        rows.append(
            [
                path.value,
                fmt(rfly_med, 4),
                fmt(analog_med, 3),
                fmt(rfly_med - analog_med, 3),
                fmt(PAPER_MEDIANS_DB[path], 3),
            ]
        )
        measured[path.value] = f"{rfly_med:.1f} dB"
    improvements = [
        float(np.median(result.rfly[p]) - np.median(result.analog[p]))
        for p in LeakagePath
    ]
    measured["min improvement"] = f"{min(improvements):.1f} dB"
    return ExperimentOutput(
        name="Fig. 9 — self-interference isolation",
        headers=headers,
        rows=rows,
        paper_claims={
            "inter_downlink": "110 dB",
            "inter_uplink": "92 dB",
            "intra_downlink": "77 dB",
            "intra_uplink": "64 dB",
            "min improvement": ">= 50 dB over the analog relay",
        },
        measured=measured,
    )


if __name__ == "__main__":  # pragma: no cover - manual regeneration
    print(format_result(run(n_trials=100, seed=0)).report())
