"""Experiment runners that regenerate every figure of the paper.

Each module exposes ``run(...)`` returning a structured result and a
``format_result(...)`` that renders the paper-comparable table. The
``benchmarks/`` tree drives these under pytest-benchmark; they can also
be run directly: ``python -m repro.experiments.fig12_localization``.
"""

from __future__ import annotations

from repro.experiments.runner import ExperimentOutput

__all__ = ["ExperimentOutput"]
