"""Fig. 6: the P(x, y) likelihood heatmaps.

(a) line-of-sight: a single sharp peak within centimeters of the tag
(the paper reports <7 cm for its example); (b) heavy multipath from
steel shelving: several strong "ghost" regions, all farther from the
trajectory than the true tag, resolved by the §5.2 nearest-peak rule.

The heatmaps render to ASCII for terminal inspection; the raw arrays
are in the result for plotting.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Any, List, Mapping, Optional, Sequence

import numpy as np

from repro.constants import UHF_CENTER_FREQUENCY
from repro.experiments.runner import ExperimentOutput, fmt
from repro.localization import (
    Localizer,
    disentangle_series,
    find_peaks,
    sar_heatmap,
    select_nearest_to_trajectory,
)
from repro.localization.grid import Heatmap
from repro.runtime import RuntimeConfig, SweepTask
from repro.scenarios import registry as scenario_registry
from repro.scenarios.spec import Scenario
from repro.scenarios.trials import heatmap_trial

_SHADES = " .:-=+*#%@"


@dataclass
class Fig6Result:
    """Both heatmaps plus estimates under both peak rules."""

    los_heatmap: Heatmap
    los_error_m: float
    multipath_heatmap: Heatmap
    multipath_error_nearest_m: float
    multipath_error_argmax_m: float
    ghost_peaks_farther: bool


def ascii_heatmap(heatmap: Heatmap, width: int = 64) -> str:
    """Render P(x, y) as ASCII shading (red -> '@', navy -> ' ')."""
    values = heatmap.values
    rows, cols = values.shape
    col_step = max(1, cols // width)
    row_step = max(1, rows // (width // 2))
    shrunk = values[::row_step, ::col_step]
    lo, hi = float(shrunk.min()), float(shrunk.max())
    span = hi - lo if hi > lo else 1.0
    lines = []
    for row in shrunk[::-1]:  # y increases upward
        indices = ((row - lo) / span * (len(_SHADES) - 1)).astype(int)
        lines.append("".join(_SHADES[i] for i in indices))
    return "\n".join(lines)


def _compute(
    scenario_json: str, multipath_scenario_json: str, seed: int
) -> Fig6Result:
    """Generate both Fig. 6 panels from their scenario specs."""
    f = UHF_CENTER_FREQUENCY
    los = heatmap_trial(Scenario.from_json(scenario_json), seed)
    positions, channels = disentangle_series(los.measurements)
    los_map = sar_heatmap(positions, channels, los.search_grid, f)
    localizer = Localizer(frequency_hz=f)
    los_result = localizer.locate(los.measurements, search_grid=los.search_grid)
    los_error = los_result.error_to(los.tag_position)

    multi = heatmap_trial(Scenario.from_json(multipath_scenario_json), seed)
    positions_m, channels_m = disentangle_series(multi.measurements)
    multi_map = sar_heatmap(positions_m, channels_m, multi.search_grid, f)
    nearest = localizer.locate(multi.measurements, search_grid=multi.search_grid)
    argmax_localizer = Localizer(frequency_hz=f, use_nearest_peak_rule=False)
    argmax = argmax_localizer.locate(
        multi.measurements, search_grid=multi.search_grid
    )
    # Verify the §5.2 insight on this heatmap: every other significant
    # peak lies farther from the trajectory than the selected one.
    peaks = find_peaks(multi_map, relative_threshold=0.7)
    chosen = select_nearest_to_trajectory(peaks, positions_m)
    others = [
        p for p in peaks if not np.allclose(p.position, chosen.position)
    ]
    from repro.localization.peaks import distance_to_polyline

    ghost_farther = all(
        distance_to_polyline(p.position, positions_m)
        >= chosen.distance_to_trajectory_m - 1e-9
        for p in others
    )
    return Fig6Result(
        los_heatmap=los_map,
        los_error_m=float(los_error),
        multipath_heatmap=multi_map,
        multipath_error_nearest_m=float(nearest.error_to(multi.tag_position)),
        multipath_error_argmax_m=float(argmax.error_to(multi.tag_position)),
        ghost_peaks_farther=bool(ghost_farther),
    )


def build_tasks(
    scenario: "str | Scenario" = "los_aisle",
    multipath_scenario: "str | Scenario" = "cold_storage_aisles",
    seed: int = 0,
) -> List[SweepTask]:
    """Both Fig. 6 panels as a single engine task.

    Each panel's world resolves from a named scenario spec; the specs
    ride inside the task params as canonical JSON so the cache key and
    the process pool both see the exact world definition.
    """
    return [
        SweepTask.make(
            _compute,
            params={
                "scenario_json": scenario_registry.resolve(
                    scenario
                ).to_json(),
                "multipath_scenario_json": scenario_registry.resolve(
                    multipath_scenario
                ).to_json(),
            },
            seed=seed,
            label="fig6/heatmaps",
        )
    ]


def reduce(
    payloads: Sequence[Fig6Result], params: Mapping[str, Any]
) -> Fig6Result:
    """Single-task sweep: the one payload is the result."""
    return payloads[0]


def run(seed: int = 0, runtime: Optional[RuntimeConfig] = None) -> Fig6Result:
    """Deprecated shim; use ``repro.experiments.registry`` instead."""
    warnings.warn(
        "fig6_heatmap.run() is deprecated; use "
        "repro.experiments.registry.run_experiment('fig6_heatmap', ...)",
        DeprecationWarning,
        stacklevel=2,
    )
    from repro.experiments import registry

    return registry.run_experiment(
        "fig6_heatmap", runtime=runtime, seed=seed
    ).result


def format_result(result: Fig6Result) -> ExperimentOutput:
    """Render the two-panel comparison."""
    rows = [
        ["(a) line-of-sight", fmt(result.los_error_m), "single sharp peak"],
        [
            "(b) multipath, nearest-peak rule",
            fmt(result.multipath_error_nearest_m),
            "ghosts rejected",
        ],
        [
            "(b) multipath, argmax (no rule)",
            fmt(result.multipath_error_argmax_m),
            "may lock a ghost",
        ],
    ]
    return ExperimentOutput(
        name="Fig. 6 — localization heatmaps",
        headers=["panel", "error (m)", "behaviour"],
        rows=rows,
        paper_claims={
            "LoS error": "< 0.07 m",
            "ghosts farther than tag": "always (the §5.2 insight)",
        },
        measured={
            "LoS error": f"{result.los_error_m:.3f} m",
            "ghosts farther than tag": str(result.ghost_peaks_farther),
        },
        notes=(
            "ASCII rendering of panel (b):\n"
            + ascii_heatmap(result.multipath_heatmap)
        ),
    )


if __name__ == "__main__":  # pragma: no cover - manual regeneration
    print(format_result(run()).report())
