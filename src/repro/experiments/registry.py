"""The experiment registry: one spec shape for all nine experiments.

Historically every figure module exposed its own ad-hoc
``run(...)`` signature. The registry replaces that with a single
:class:`ExperimentSpec` per experiment:

``build_tasks(**params)``
    Pure: parameters -> the sweep's :class:`~repro.runtime.SweepTask`
    list, preserving each figure's exact seed scheme.
``reduce(payloads, params)``
    Pure: payloads (in task order) + the same parameters -> the
    figure's structured result. Grouping is rebuilt deterministically
    from ``params`` (never from shared state), so a cached, parallel,
    or observed run reduces identically.
``render(result)``
    The result -> its :class:`~repro.experiments.runner.ExperimentOutput`
    tables.

:func:`run_experiment` threads any :mod:`repro.obs` observers straight
into :func:`~repro.runtime.run_sweep`, which is how
``python -m repro.experiments run <name> --trace --metrics`` attaches
tracing without the figure modules knowing about it.

The old module-level ``run()`` entry points remain as thin
deprecation shims delegating here.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from repro.errors import ConfigurationError
from repro.experiments import (
    ablations,
    fig4_spectrum,
    fig6_heatmap,
    fig9_isolation,
    fig10_phase,
    fig11_range,
    fig12_localization,
    fig13_aperture,
    fig14_distance,
    fleet_coverage,
    resilience,
    serve_bench,
    serve_scale,
    soak,
)
from repro.experiments.runner import ExperimentOutput
from repro.obs.observers import SweepObserver
from repro.runtime import RuntimeConfig, SweepResult, SweepTask, run_sweep


@dataclass(frozen=True)
class ExperimentSpec:
    """Everything needed to run, reduce, and render one experiment."""

    name: str
    alias: str
    description: str
    build_tasks: Callable[..., List[SweepTask]]
    reduce: Callable[[Sequence[Any], Mapping[str, Any]], Any]
    render: Callable[[Any], List[ExperimentOutput]]
    defaults: "Dict[str, Any]" = field(default_factory=dict)
    smoke_overrides: "Dict[str, Any]" = field(default_factory=dict)
    #: Named :mod:`repro.scenarios` spec the experiment's geometry and
    #: traffic resolve from; ``run_experiment`` threads it into the
    #: params as ``scenario`` (overridable via ``--scenario``).
    scenario: str = ""
    #: CLI-only side-effect hook, invoked by ``python -m
    #: repro.experiments`` after a successful run with ``(run,
    #: options)`` — never by :func:`run_experiment` itself, so golden
    #: and observer tests stay side-effect free. The soak experiment
    #: uses it to append to the committed trend file. Returns an
    #: optional message for the CLI to print.
    post_run: Optional[
        Callable[["ExperimentRun", Mapping[str, Any]], Optional[str]]
    ] = None

    @property
    def golden_filename(self) -> str:
        """The checked-in golden table file (under tests/experiments/golden)."""
        return f"{self.alias}.txt"


@dataclass
class ExperimentRun:
    """One registry-driven run: parameters, result, rendered outputs."""

    spec: ExperimentSpec
    params: Dict[str, Any]
    result: Any
    outputs: List[ExperimentOutput]
    sweep: SweepResult


REGISTRY: Tuple[ExperimentSpec, ...] = (
    ExperimentSpec(
        name="fig4_spectrum",
        alias="fig4",
        description="query/response guard band from synthesized Gen2 PSDs",
        build_tasks=fig4_spectrum.build_tasks,
        reduce=fig4_spectrum.reduce,
        render=lambda result: [fig4_spectrum.format_result(result)],
        defaults={"n_fft": 1 << 14, "seed": 0},
        scenario="rf_bench",
    ),
    ExperimentSpec(
        name="fig6_heatmap",
        alias="fig6",
        description="P(x, y) likelihood heatmaps, LoS and heavy multipath",
        build_tasks=fig6_heatmap.build_tasks,
        reduce=fig6_heatmap.reduce,
        render=lambda result: [fig6_heatmap.format_result(result)],
        defaults={"multipath_scenario": "cold_storage_aisles", "seed": 0},
        scenario="los_aisle",
    ),
    ExperimentSpec(
        name="fig9_isolation",
        alias="fig9",
        description="self-interference isolation CDFs vs the analog relay",
        build_tasks=fig9_isolation.build_tasks,
        reduce=fig9_isolation.reduce,
        render=lambda result: [fig9_isolation.format_result(result)],
        defaults={"n_trials": 100, "seed": 0},
        smoke_overrides={"n_trials": 10},
        scenario="rf_bench",
    ),
    ExperimentSpec(
        name="fig10_phase",
        alias="fig10",
        description="phase preservation of the mirrored architecture",
        build_tasks=fig10_phase.build_tasks,
        reduce=fig10_phase.reduce,
        render=lambda result: [fig10_phase.format_result(result)],
        defaults={"n_trials": 50, "seed": 0},
        smoke_overrides={"n_trials": 8},
        scenario="rf_bench",
    ),
    ExperimentSpec(
        name="fig11_range",
        alias="fig11",
        description="read rate vs distance: no relay, relay LoS, relay NLoS",
        build_tasks=fig11_range.build_tasks,
        reduce=fig11_range.reduce,
        render=lambda result: [fig11_range.format_result(result)],
        defaults={
            "distances_m": fig11_range.DEFAULT_DISTANCES,
            "trials_per_point": 300,
            "seed": 0,
            "config": None,
        },
        smoke_overrides={"trials_per_point": 40},
        scenario="outdoor_yard",
    ),
    ExperimentSpec(
        name="fig12_localization",
        alias="fig12",
        description="end-to-end localization error CDF across the building",
        build_tasks=fig12_localization.build_tasks,
        reduce=fig12_localization.reduce,
        render=lambda result: [fig12_localization.format_result(result)],
        defaults={"n_trials": 100, "seed": 0},
        smoke_overrides={"n_trials": 6},
        scenario="paper_warehouse_two_floor",
    ),
    ExperimentSpec(
        name="fig13_aperture",
        alias="fig13",
        description="localization accuracy vs flight-path aperture",
        build_tasks=fig13_aperture.build_tasks,
        reduce=fig13_aperture.reduce,
        render=lambda result: [fig13_aperture.format_result(result)],
        defaults={
            "apertures_m": fig13_aperture.DEFAULT_APERTURES,
            "trials_per_point": 20,
            "seed": 0,
        },
        smoke_overrides={"trials_per_point": 3},
        scenario="aisle_microbench",
    ),
    ExperimentSpec(
        name="fig14_distance",
        alias="fig14",
        description="localization accuracy vs projected reader distance",
        build_tasks=fig14_distance.build_tasks,
        reduce=fig14_distance.reduce,
        render=lambda result: [fig14_distance.format_result(result)],
        defaults={
            "distances_m": fig14_distance.DEFAULT_DISTANCES,
            "trials_per_point": 10,
            "seed": 0,
        },
        smoke_overrides={"trials_per_point": 2},
        scenario="aisle_microbench",
    ),
    ExperimentSpec(
        name="serve_bench",
        alias="serve",
        description="online serving throughput/latency vs offered load",
        build_tasks=serve_bench.build_tasks,
        reduce=serve_bench.reduce,
        render=lambda result: [serve_bench.format_result(result)],
        defaults={
            "loads": serve_bench.DEFAULT_LOADS,
            "n_tags": 4,
            "grid_resolution": 0.10,
            "latency_slo_s": 0.25,
            "seed": 0,
        },
        smoke_overrides={
            "loads": (1.0, 64.0),
            "n_tags": 3,
            "grid_resolution": 0.15,
        },
        scenario="conveyor_flow_through",
    ),
    ExperimentSpec(
        name="resilience",
        alias="resilience",
        description="fault injection: error/failure/recovery per fault class",
        build_tasks=resilience.build_tasks,
        reduce=resilience.reduce,
        render=lambda result: [resilience.format_result(result)],
        defaults={
            "classes": resilience.FAULT_CLASSES,
            "rates": resilience.DEFAULT_RATES,
            "n_tags": 4,
            "load": 8.0,
            "grid_resolution": 0.10,
            "latency_slo_s": 0.25,
            "wrong_threshold_m": 0.75,
            "seed": 0,
        },
        smoke_overrides={
            "rates": (0.3,),
            "n_tags": 3,
            "grid_resolution": 0.15,
        },
        scenario="conveyor_flow_through",
    ),
    ExperimentSpec(
        name="serve_scale",
        alias="serve_scale",
        description="shard count: invariant numbers, bounded failover churn",
        build_tasks=serve_scale.build_tasks,
        reduce=serve_scale.reduce,
        render=lambda result: [serve_scale.format_result(result)],
        defaults={
            "shards": serve_scale.DEFAULT_SHARDS,
            "n_tags": 4,
            "load": 64.0,
            "grid_resolution": 0.10,
            "latency_slo_s": 0.25,
            "seed": 0,
        },
        smoke_overrides={
            "shards": (1, 2, 4),
            "n_tags": 3,
            "grid_resolution": 0.15,
        },
        scenario="conveyor_flow_through",
    ),
    ExperimentSpec(
        name="fleet_coverage",
        alias="fleet_coverage",
        description="multi-relay fleets: coverage scaling, policy shootout",
        build_tasks=fleet_coverage.build_tasks,
        reduce=fleet_coverage.reduce,
        render=fleet_coverage.format_result,
        defaults={
            "fleet_sizes": fleet_coverage.DEFAULT_FLEET_SIZES,
            "policies": fleet_coverage.POLICIES,
            "policy_scenarios": fleet_coverage.POLICY_SCENARIOS,
            "n_tags": 4,
            "load": 8.0,
            "grid_resolution": 0.10,
            "pose_spacing_m": None,
            "latency_slo_s": 0.25,
            "handoff_drop_rate": 0.3,
            "wrong_threshold_m": 0.75,
            "seed": 0,
        },
        smoke_overrides={
            "fleet_sizes": (1, 2),
            "policies": ("nearest", "epsilon_greedy"),
            "n_tags": 3,
            "grid_resolution": 0.15,
        },
        scenario="conveyor_flow_through",
    ),
    ExperimentSpec(
        name="soak",
        alias="soak",
        description="long-horizon soak: trend file + regression gate",
        build_tasks=soak.build_tasks,
        reduce=soak.reduce,
        render=lambda result: [soak.format_result(result)],
        defaults={
            "hours": 2.0,
            "snapshot_every_s": 600.0,
            "shards": 2,
            "n_tags": None,
            "load": 8.0,
            "grid_resolution": 0.10,
            "latency_slo_s": 0.25,
            "fault_profile": "calm",
            "seed": 0,
        },
        smoke_overrides={
            "hours": 0.5,
            "grid_resolution": 0.15,
        },
        scenario="warehouse_twin_aisle",
        post_run=soak.post_run,
    ),
    ExperimentSpec(
        name="ablations",
        alias="ablations",
        description="design-choice ablations (DESIGN.md §5), one sweep",
        build_tasks=ablations.build_tasks,
        reduce=ablations.reduce,
        render=list,
        defaults={
            "heatmap_scenario": "cold_storage_aisles",
            "warehouse_scenario": "paper_warehouse_two_floor",
            "microbench_scenario": "aisle_microbench",
            "seed": 0,
        },
    ),
)

_BY_NAME: Dict[str, ExperimentSpec] = {}
for _spec in REGISTRY:
    _BY_NAME[_spec.name] = _spec
    _BY_NAME[_spec.alias] = _spec


def names() -> List[str]:
    """Canonical experiment names, in registry order."""
    return [spec.name for spec in REGISTRY]


def aliases() -> List[str]:
    """Short CLI aliases (the golden-file stems), in registry order."""
    return [spec.alias for spec in REGISTRY]


def get(name: str) -> ExperimentSpec:
    """Resolve a canonical name or alias to its spec."""
    spec = _BY_NAME.get(name)
    if spec is None:
        known = ", ".join(names())
        raise ConfigurationError(
            f"unknown experiment {name!r}; choices: {known}"
        )
    return spec


def run_experiment(
    name: "str | ExperimentSpec",
    runtime: Optional[RuntimeConfig] = None,
    smoke: bool = False,
    observers: Optional[Sequence[SweepObserver]] = None,
    **overrides: Any,
) -> ExperimentRun:
    """Run one experiment through the registry.

    ``params = defaults`` overlaid with the spec's smoke overrides
    (when ``smoke``) and then any explicit keyword overrides; the same
    mapping feeds both ``build_tasks`` and ``reduce``.
    """
    spec = get(name) if isinstance(name, str) else name
    params: Dict[str, Any] = dict(spec.defaults)
    if spec.scenario:
        params.setdefault("scenario", spec.scenario)
    if smoke:
        params.update(spec.smoke_overrides)
    params.update(overrides)
    tasks = spec.build_tasks(**params)
    sweep = run_sweep(tasks, runtime, name=spec.name, observers=observers)
    result = spec.reduce(sweep.results, params)
    return ExperimentRun(
        spec=spec,
        params=params,
        result=result,
        outputs=spec.render(result),
        sweep=sweep,
    )
