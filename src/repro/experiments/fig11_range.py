"""Fig. 11: read rate vs distance for the three curves.

Paper: without the relay the read rate hits zero by 10 m; with the
relay it stays at 100% past 50 m in line-of-sight and 75% at 55 m in
non-line-of-sight.
"""

from __future__ import annotations

import warnings
from dataclasses import asdict, dataclass
from typing import Any, Dict, List, Mapping, Optional, Sequence

import numpy as np

from repro.experiments.runner import ExperimentOutput, fmt
from repro.runtime import RuntimeConfig, SweepTask
from repro.scenarios import registry as scenario_registry
from repro.scenarios.spec import Scenario
from repro.sim.readrate import RangeConfig, RangeModel

DEFAULT_DISTANCES = (1, 2, 4, 6, 8, 10, 15, 20, 30, 40, 50, 55, 60)
MODES = ("no_relay", "relay_los", "relay_nlos")


@dataclass
class Fig11Result:
    """Read rate per mode per distance."""

    distances_m: np.ndarray
    rates: Dict[str, np.ndarray]  # mode -> rates in [0, 1]


def _point(
    distance_m: float, mode: str, trials: int, seed: int, **config_fields: float
) -> float:
    """One (distance, mode) point of Fig. 11 -> read rate in [0, 1].

    The :class:`RangeConfig` scalars arrive flattened in the task
    params, so the cache key covers the full link budget.
    """
    model = RangeModel(RangeConfig(**config_fields))
    rng = np.random.default_rng(seed)
    return model.read_rate(distance_m, mode, rng, trials)


def build_tasks(
    distances_m: Sequence[float] = DEFAULT_DISTANCES,
    trials_per_point: int = 300,
    seed: int = 0,
    config: Optional[RangeConfig] = None,
    scenario: "str | Scenario" = "outdoor_yard",
) -> List[SweepTask]:
    """The three curves of Fig. 11 as (distance, mode) point tasks.

    Each (distance, mode) point draws its fading from an independent,
    point-indexed seed instead of one shared sequential stream. The
    default link budget takes its carrier from the named scenario's
    radio plan; the :class:`RangeConfig` scalars flatten into the
    params so the cache key covers the full link budget.
    """
    if config is None:
        radio = scenario_registry.resolve(scenario).radio
        config = RangeConfig(frequency_hz=radio.center_frequency_hz)
    config_fields = {k: float(v) for k, v in asdict(config).items()}
    return [
        SweepTask.make(
            _point,
            params={
                "distance_m": float(d),
                "mode": mode,
                "trials": trials_per_point,
                **config_fields,
            },
            seed=seed * 11_113 + point,
            label=f"fig11/{mode}/d{d}",
        )
        for point, (d, mode) in enumerate(
            (d, mode) for d in distances_m for mode in MODES
        )
    ]


def reduce(
    payloads: Sequence[float], params: Mapping[str, Any]
) -> Fig11Result:
    """Regroup point payloads by mode (distance-major task order)."""
    distances_m = params["distances_m"]
    rates: Dict[str, List[float]] = {mode: [] for mode in MODES}
    points = ((d, mode) for d in distances_m for mode in MODES)
    for (_d, mode), rate in zip(points, payloads):
        rates[mode].append(float(rate))
    return Fig11Result(
        distances_m=np.asarray(distances_m, dtype=float),
        rates={m: np.asarray(v) for m, v in rates.items()},
    )


def run(
    distances_m: Sequence[float] = DEFAULT_DISTANCES,
    trials_per_point: int = 300,
    seed: int = 0,
    config: Optional[RangeConfig] = None,
    runtime: Optional[RuntimeConfig] = None,
) -> Fig11Result:
    """Deprecated shim; use ``repro.experiments.registry`` instead."""
    warnings.warn(
        "fig11_range.run() is deprecated; use "
        "repro.experiments.registry.run_experiment('fig11_range', ...)",
        DeprecationWarning,
        stacklevel=2,
    )
    from repro.experiments import registry

    return registry.run_experiment(
        "fig11_range",
        runtime=runtime,
        distances_m=distances_m,
        trials_per_point=trials_per_point,
        seed=seed,
        config=config,
    ).result


def format_result(result: Fig11Result) -> ExperimentOutput:
    """Render the read-rate table."""
    headers = ["distance (m)", "no relay (%)", "relay LoS (%)", "relay NLoS (%)"]
    rows: List[List[str]] = []
    for i, d in enumerate(result.distances_m):
        rows.append(
            [
                fmt(float(d)),
                fmt(100.0 * result.rates["no_relay"][i]),
                fmt(100.0 * result.rates["relay_los"][i]),
                fmt(100.0 * result.rates["relay_nlos"][i]),
            ]
        )

    def rate_at(mode: str, distance_m: float) -> float:
        """Read rate of one mode at the nearest swept distance."""
        idx = int(np.argmin(np.abs(result.distances_m - distance_m)))
        return float(100.0 * result.rates[mode][idx])

    return ExperimentOutput(
        name="Fig. 11 — read rate vs distance",
        headers=headers,
        rows=rows,
        paper_claims={
            "no relay @ 10 m": "~0 %",
            "relay LoS @ 50 m": "100 %",
            "relay NLoS @ 55 m": "75 %",
        },
        measured={
            "no relay @ 10 m": f"{rate_at('no_relay', 10.0):.0f} %",
            "relay LoS @ 50 m": f"{rate_at('relay_los', 50.0):.0f} %",
            "relay NLoS @ 55 m": f"{rate_at('relay_nlos', 55.0):.0f} %",
        },
    )


if __name__ == "__main__":  # pragma: no cover - manual regeneration
    print(format_result(run()).report())
