"""Ablations of RFly's design choices (DESIGN.md §5).

Each function isolates one design decision and quantifies what breaks
without it:

* :func:`eq4_range_table` — the isolation -> range law (Eq. 3-4).
* :func:`guard_band_ablation` — inter-link isolation collapses when the
  downlink LPF widens into the tag's sub-band.
* :func:`frequency_shift_ablation` — intra-link (out-of-band full
  duplex) requires the shift to clear the filter bandwidths.
* :func:`peak_rule_ablation` — nearest-peak vs argmax under multipath.
* :func:`disentangle_ablation` — localization without the reference-
  RFID division fails whenever the reader-relay leg has multipath.
* :func:`matched_filter_frequency_ablation` — using the reader's f
  instead of the exact f2 in Eq. 12 (the paper's (f-f2)/f < 0.01 claim).
"""

from __future__ import annotations

import warnings
from typing import Any, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.constants import UHF_CENTER_FREQUENCY
from repro.dsp.units import db_to_linear
from repro.errors import ConfigurationError
from repro.experiments.runner import ExperimentOutput, fmt
from repro.localization import Localizer, disentangle_series, multires_locate
from repro.localization.measurement import ThroughRelayMeasurement
from repro.relay.isolation import measure_isolation_db
from repro.relay.mirrored import MirroredRelay, RelayConfig
from repro.relay.self_interference import LeakagePath, max_stable_range_m
from repro.runtime import RuntimeConfig, SweepTask, run_sweep
from repro.scenarios import registry as scenario_registry
from repro.scenarios.spec import Scenario
from repro.scenarios.trials import (
    aperture_trial,
    heatmap_trial,
    warehouse_trial,
)

F = UHF_CENTER_FREQUENCY

#: Default named scenarios of the scenario-driven ablations.
HEATMAP_SCENARIO = "cold_storage_aisles"
WAREHOUSE_SCENARIO = "paper_warehouse_two_floor"
MICROBENCH_SCENARIO = "aisle_microbench"


def eq4_range_table() -> ExperimentOutput:
    """Isolation -> maximum stable range (paper Eq. 4 numbers)."""
    rows: List[List[str]] = []
    for isolation in (30.0, 40.0, 50.0, 60.0, 70.0, 80.0):
        rows.append(
            [fmt(isolation), fmt(max_stable_range_m(isolation, F), 4)]
        )
    return ExperimentOutput(
        name="Eq. 4 — isolation vs maximum range",
        headers=["isolation (dB)", "max range (m)"],
        rows=rows,
        paper_claims={
            "30 dB": "0.75 m",
            "80 dB": "238 m",
            "70 dB": "83 m (the §7.2 theoretical LoS range)",
        },
        measured={
            "30 dB": f"{max_stable_range_m(30.0, F):.2f} m",
            "80 dB": f"{max_stable_range_m(80.0, F):.0f} m",
            "70 dB": f"{max_stable_range_m(70.0, F):.0f} m",
        },
        notes=(
            "The paper's figures correspond to a slightly shorter "
            "wavelength (~0.30 m); at 915 MHz the same law gives the "
            "values above."
        ),
    )


def _guard_band_point(cutoff_khz: float, seed: int) -> float:
    """Inter-downlink isolation (dB) of a build with one LPF cutoff."""
    rng = np.random.default_rng(seed)
    relay = MirroredRelay(
        915e6, RelayConfig(lpf_cutoff_hz=cutoff_khz * 1e3), rng
    )
    return measure_isolation_db(relay, LeakagePath.INTER_DOWNLINK)


GUARD_BAND_CUTOFFS_KHZ = (100.0, 200.0, 300.0, 450.0)


def _guard_band_tasks(seed: int) -> List[SweepTask]:
    """The guard-band cutoff sweep as one task per cutoff."""
    return [
        SweepTask.make(
            _guard_band_point,
            params={"cutoff_khz": cutoff},
            seed=seed,
            label=f"ablation/guard_band/{cutoff:.0f}kHz",
        )
        for cutoff in GUARD_BAND_CUTOFFS_KHZ
    ]


def _reduce_guard_band(payloads: Sequence[float]) -> ExperimentOutput:
    """Per-cutoff isolations -> the guard-band table."""
    rows: List[List[str]] = [
        [fmt(cutoff), fmt(isolation, 4)]
        for cutoff, isolation in zip(GUARD_BAND_CUTOFFS_KHZ, payloads)
    ]
    first = float(rows[0][1])
    last = float(rows[-1][1])
    return ExperimentOutput(
        name="Ablation — guard-band filtering (LPF cutoff sweep)",
        headers=["LPF cutoff (kHz)", "inter-downlink isolation (dB)"],
        rows=rows,
        paper_claims={"100 kHz cutoff": "~110 dB inter-link isolation"},
        measured={
            "100 kHz cutoff": f"{first:.0f} dB",
            "collapse at 450 kHz": f"{last:.0f} dB",
        },
    )


def guard_band_ablation(
    seed: int = 0, runtime: Optional[RuntimeConfig] = None
) -> ExperimentOutput:
    """Inter-link isolation vs downlink LPF cutoff.

    Once the cutoff approaches the 500 kHz BLF the filter passes the
    relayed tag response and the guard-band defense of §4.2 is gone.
    """
    sweep = run_sweep(_guard_band_tasks(seed), runtime, name="ablation_guard_band")
    return _reduce_guard_band(sweep.results)


def frequency_shift_ablation() -> ExperimentOutput:
    """The frequency shift must clear the filter bandwidths (§6.1)."""
    rows: List[List[str]] = []
    for shift_khz in (400.0, 700.0, 1000.0, 2000.0):
        try:
            RelayConfig(frequency_shift_hz=shift_khz * 1e3)
            outcome = "stable configuration"
        except ConfigurationError:
            outcome = "REJECTED: signal would feed back within a path"
        rows.append([fmt(shift_khz), outcome])
    return ExperimentOutput(
        name="Ablation — frequency shift vs filter bandwidth",
        headers=["shift (kHz)", "outcome"],
        rows=rows,
        paper_claims={
            "shift > filter BW": "required so no signal feeds back (§6.1)",
            "1 MHz shift": "sufficient while keeping (f-f2)/f < 0.01 (§5.2)",
        },
        measured={
            "shift > filter BW": "enforced by RelayConfig",
            "1 MHz shift": "accepted",
        },
    )


def _peak_rule_trial(
    scenario_json: str, trial: int, seed: int
) -> "Tuple[float, float]":
    """(nearest-peak error, argmax error) on one multipath scenario."""
    scenario = heatmap_trial(Scenario.from_json(scenario_json), seed)
    with_rule = Localizer(frequency_hz=F, use_nearest_peak_rule=True)
    without = Localizer(frequency_hz=F, use_nearest_peak_rule=False)
    nearest = with_rule.locate(
        scenario.measurements, search_grid=scenario.search_grid
    ).error_to(scenario.tag_position)
    argmax = without.locate(
        scenario.measurements, search_grid=scenario.search_grid
    ).error_to(scenario.tag_position)
    return float(nearest), float(argmax)


PEAK_RULE_TRIALS = 10


def _peak_rule_tasks(
    n_trials: int,
    seed: int,
    scenario: "str | Scenario" = HEATMAP_SCENARIO,
) -> List[SweepTask]:
    """The peak-rule comparison as per-trial tasks."""
    scenario_json = scenario_registry.resolve(scenario).to_json()
    return [
        SweepTask.make(
            _peak_rule_trial,
            params={"scenario_json": scenario_json, "trial": trial},
            seed=seed * 100 + trial,
            label=f"ablation/peak_rule/t{trial}",
        )
        for trial in range(n_trials)
    ]


def _reduce_peak_rule(
    payloads: Sequence[Tuple[float, float]]
) -> ExperimentOutput:
    """Per-trial (nearest, argmax) errors -> the peak-rule table."""
    nearest_errors = [pair[0] for pair in payloads]
    argmax_errors = [pair[1] for pair in payloads]
    rows = [
        ["nearest-to-trajectory (§5.2)", fmt(float(np.median(nearest_errors)))],
        ["highest peak (ablated)", fmt(float(np.median(argmax_errors)))],
    ]
    return ExperimentOutput(
        name="Ablation — multipath peak selection",
        headers=["rule", "median error (m)"],
        rows=rows,
        paper_claims={"nearest <= argmax": "the rule rejects ghosts"},
        measured={
            "nearest <= argmax": str(
                float(np.median(nearest_errors))
                <= float(np.median(argmax_errors)) + 1e-9
            )
        },
    )


def peak_rule_ablation(
    n_trials: int = PEAK_RULE_TRIALS,
    seed: int = 0,
    runtime: Optional[RuntimeConfig] = None,
    scenario: "str | Scenario" = HEATMAP_SCENARIO,
) -> ExperimentOutput:
    """Nearest-peak rule vs plain argmax under heavy multipath."""
    sweep = run_sweep(
        _peak_rule_tasks(n_trials, seed, scenario),
        runtime,
        name="ablation_peak_rule",
    )
    return _reduce_peak_rule(sweep.results)


def _disentangle_trial(
    scenario_json: str, trial: int, seed: int
) -> "Tuple[float, float]":
    """(disentangled error, entangled error) on one Fig. 12 scenario."""
    localizer = Localizer(frequency_hz=F)
    scenario = warehouse_trial(Scenario.from_json(scenario_json), seed)
    disentangled = localizer.locate(
        scenario.measurements, search_grid=scenario.search_grid
    ).error_to(scenario.tag_position)
    # Ablated: pretend h_target is already the half-link (set the
    # reference to 1), skipping Eq. 10.
    raw = [
        ThroughRelayMeasurement(
            position=m.position,
            h_target=m.h_target,
            h_reference=1.0 + 0.0j,
            snr_db=m.snr_db,
            time=m.time,
        )
        for m in scenario.measurements
    ]
    entangled = localizer.locate(
        raw, search_grid=scenario.search_grid
    ).error_to(scenario.tag_position)
    return float(disentangled), float(entangled)


DISENTANGLE_TRIALS = 8


def _disentangle_tasks(
    n_trials: int,
    seed: int,
    scenario: "str | Scenario" = WAREHOUSE_SCENARIO,
) -> List[SweepTask]:
    """The disentanglement comparison as per-trial tasks."""
    scenario_json = scenario_registry.resolve(scenario).to_json()
    return [
        SweepTask.make(
            _disentangle_trial,
            params={"scenario_json": scenario_json, "trial": trial},
            seed=seed * 500 + trial,
            label=f"ablation/disentangle/t{trial}",
        )
        for trial in range(n_trials)
    ]


def _reduce_disentangle(
    payloads: Sequence[Tuple[float, float]]
) -> ExperimentOutput:
    """Per-trial (disentangled, entangled) errors -> the table."""
    disentangled_errors = [pair[0] for pair in payloads]
    entangled_errors = [pair[1] for pair in payloads]
    rows = [
        ["with Eq. 10 disentanglement", fmt(float(np.median(disentangled_errors)))],
        ["raw entangled channel", fmt(float(np.median(entangled_errors)))],
    ]
    return ExperimentOutput(
        name="Ablation — reference-RFID disentanglement",
        headers=["pipeline", "median error (m)"],
        rows=rows,
        paper_claims={"entangled channel": "cannot localize (>> disentangled)"},
        measured={
            "entangled channel": f"{np.median(entangled_errors):.2f} m vs "
            f"{np.median(disentangled_errors):.2f} m"
        },
    )


def disentangle_ablation(
    n_trials: int = DISENTANGLE_TRIALS,
    seed: int = 0,
    runtime: Optional[RuntimeConfig] = None,
    scenario: "str | Scenario" = WAREHOUSE_SCENARIO,
) -> ExperimentOutput:
    """Localizing with the raw (entangled) channel vs Eq. 10.

    Without the reference-RFID division, the reader-relay half-link's
    phase progression corrupts the array equations and the estimate
    collapses (paper §5.1: knowing the drone location is NOT enough
    because of residual multipath on that half-link).
    """
    sweep = run_sweep(
        _disentangle_tasks(n_trials, seed, scenario),
        runtime,
        name="ablation_disentangle",
    )
    return _reduce_disentangle(sweep.results)


def _matched_filter_trial(
    scenario_json: str, trial: int, seed: int
) -> "Tuple[float, float]":
    """(error at reader's f, error at exact f2) on one scenario."""
    scenario = warehouse_trial(Scenario.from_json(scenario_json), seed)
    f_error = Localizer(frequency_hz=F).locate(
        scenario.measurements, search_grid=scenario.search_grid
    ).error_to(scenario.tag_position)
    f2_error = Localizer(frequency_hz=F + 1.0e6).locate(
        scenario.measurements, search_grid=scenario.search_grid
    ).error_to(scenario.tag_position)
    return float(f_error), float(f2_error)


MATCHED_FILTER_TRIALS = 8


def _matched_filter_tasks(
    n_trials: int,
    seed: int,
    scenario: "str | Scenario" = WAREHOUSE_SCENARIO,
) -> List[SweepTask]:
    """The matched-filter frequency comparison as per-trial tasks."""
    scenario_json = scenario_registry.resolve(scenario).to_json()
    return [
        SweepTask.make(
            _matched_filter_trial,
            params={"scenario_json": scenario_json, "trial": trial},
            seed=seed * 700 + trial,
            label=f"ablation/matched_filter/t{trial}",
        )
        for trial in range(n_trials)
    ]


def _reduce_matched_filter(
    payloads: Sequence[Tuple[float, float]]
) -> ExperimentOutput:
    """Per-trial (f, f2) errors -> the matched-filter table."""
    f_errors = [pair[0] for pair in payloads]
    f2_errors = [pair[1] for pair in payloads]
    delta = abs(float(np.median(f_errors)) - float(np.median(f2_errors)))
    rows = [
        ["reader's f (paper's shortcut)", fmt(float(np.median(f_errors)))],
        ["exact f2", fmt(float(np.median(f2_errors)))],
    ]
    return ExperimentOutput(
        name="Ablation — matched-filter frequency (f vs f2)",
        headers=["frequency", "median error (m)"],
        rows=rows,
        paper_claims={"difference": "negligible while (f - f2)/f < 0.01"},
        measured={"difference": f"{delta * 100:.1f} cm"},
    )


def matched_filter_frequency_ablation(
    n_trials: int = MATCHED_FILTER_TRIALS,
    seed: int = 0,
    runtime: Optional[RuntimeConfig] = None,
    scenario: "str | Scenario" = WAREHOUSE_SCENARIO,
) -> ExperimentOutput:
    """Using the reader's f vs the exact f2 in Eq. 12 (§5.2)."""
    sweep = run_sweep(
        _matched_filter_tasks(n_trials, seed, scenario),
        runtime,
        name="ablation_matched_filter",
    )
    return _reduce_matched_filter(sweep.results)


def _grid_resolution_trial(
    scenario_json: str, resolution_m: float, trial: int, seed: int
) -> float:
    """Localization error (m) at one fine-grid resolution."""
    localizer = Localizer(frequency_hz=F, fine_resolution=resolution_m)
    scenario = aperture_trial(
        Scenario.from_json(scenario_json), 2.0, seed, snr_db=30.0
    )
    return float(
        localizer.locate(
            scenario.measurements, search_grid=scenario.search_grid
        ).error_to(scenario.tag_position)
    )


GRID_RESOLUTIONS_M = (0.10, 0.05, 0.02)
GRID_RESOLUTION_TRIALS = 6


def _grid_resolution_tasks(
    n_trials: int,
    seed: int,
    scenario: "str | Scenario" = MICROBENCH_SCENARIO,
) -> List[SweepTask]:
    """The grid-resolution sweep as (resolution, trial) tasks."""
    scenario_json = scenario_registry.resolve(scenario).to_json()
    return [
        SweepTask.make(
            _grid_resolution_trial,
            params={
                "scenario_json": scenario_json,
                "resolution_m": resolution,
                "trial": trial,
            },
            seed=seed * 300 + trial,
            label=f"ablation/grid_resolution/r{resolution}/t{trial}",
        )
        for resolution in GRID_RESOLUTIONS_M
        for trial in range(n_trials)
    ]


def _reduce_grid_resolution(
    payloads: Sequence[float], n_trials: int
) -> ExperimentOutput:
    """Per-trial errors (resolution-major) -> the resolution table."""
    rows: List[List[str]] = []
    for i, resolution in enumerate(GRID_RESOLUTIONS_M):
        errors = payloads[i * n_trials : (i + 1) * n_trials]
        rows.append([fmt(resolution), fmt(float(np.median(errors)))])
    coarse = float(rows[0][1])
    fine = float(rows[-1][1])
    return ExperimentOutput(
        name="Ablation — fine-grid resolution",
        headers=["fine resolution (m)", "median error (m)"],
        rows=rows,
        paper_claims={"finer grid": "error floor follows quantization"},
        measured={"finer grid": f"{coarse:.2f} m -> {fine:.2f} m median"},
    )


def grid_resolution_ablation(
    n_trials: int = GRID_RESOLUTION_TRIALS,
    seed: int = 0,
    runtime: Optional[RuntimeConfig] = None,
    scenario: "str | Scenario" = MICROBENCH_SCENARIO,
) -> ExperimentOutput:
    """Fine-grid resolution vs achievable accuracy.

    The SAR estimate cannot beat the search quantization: the error
    floor tracks the fine resolution until physics (noise, multipath)
    dominates. This bounds how much compute the multires search needs.
    """
    sweep = run_sweep(
        _grid_resolution_tasks(n_trials, seed, scenario),
        runtime,
        name="ablation_grid_resolution",
    )
    return _reduce_grid_resolution(sweep.results, n_trials)


def build_tasks(
    seed: int = 0,
    heatmap_scenario: "str | Scenario" = HEATMAP_SCENARIO,
    warehouse_scenario: "str | Scenario" = WAREHOUSE_SCENARIO,
    microbench_scenario: "str | Scenario" = MICROBENCH_SCENARIO,
) -> List[SweepTask]:
    """Every swept ablation as one combined task list, DESIGN.md order.

    The pure-math ablations (Eq. 4 table, frequency-shift config check)
    contribute no tasks; :func:`reduce` re-inserts their tables at the
    right positions. Task params and seeds match the standalone
    ablation functions exactly, so the cache is shared between the two
    entry points. The three worlds the swept ablations probe resolve
    from named scenario specs.
    """
    return [
        *_guard_band_tasks(seed),
        *_peak_rule_tasks(PEAK_RULE_TRIALS, seed, heatmap_scenario),
        *_disentangle_tasks(DISENTANGLE_TRIALS, seed, warehouse_scenario),
        *_matched_filter_tasks(
            MATCHED_FILTER_TRIALS, seed, warehouse_scenario
        ),
        *_grid_resolution_tasks(
            GRID_RESOLUTION_TRIALS, seed, microbench_scenario
        ),
    ]


def reduce(
    payloads: Sequence[Any], params: Mapping[str, Any]
) -> List[ExperimentOutput]:
    """Slice combined payloads back into the per-ablation tables."""
    segments = (
        len(GUARD_BAND_CUTOFFS_KHZ),
        PEAK_RULE_TRIALS,
        DISENTANGLE_TRIALS,
        MATCHED_FILTER_TRIALS,
        len(GRID_RESOLUTIONS_M) * GRID_RESOLUTION_TRIALS,
    )
    slices: List[Sequence[Any]] = []
    start = 0
    for length in segments:
        slices.append(payloads[start : start + length])
        start += length
    return [
        eq4_range_table(),
        _reduce_guard_band(slices[0]),
        frequency_shift_ablation(),
        _reduce_peak_rule(slices[1]),
        _reduce_disentangle(slices[2]),
        _reduce_matched_filter(slices[3]),
        _reduce_grid_resolution(slices[4], GRID_RESOLUTION_TRIALS),
    ]


def run_all(
    seed: int = 0, runtime: Optional[RuntimeConfig] = None
) -> List[ExperimentOutput]:
    """Deprecated shim; use ``repro.experiments.registry`` instead."""
    warnings.warn(
        "ablations.run_all() is deprecated; use "
        "repro.experiments.registry.run_experiment('ablations', ...)",
        DeprecationWarning,
        stacklevel=2,
    )
    from repro.experiments import registry

    return registry.run_experiment(
        "ablations", runtime=runtime, seed=seed
    ).result


if __name__ == "__main__":  # pragma: no cover - manual regeneration
    for output in run_all():
        print(output.report())
        print()
