"""`soak`: hours of virtual traffic, one trend entry, one table.

The registry face of :mod:`repro.soak`: ``build_tasks`` turns the soak
knobs into the driver's seeded epoch tasks, ``reduce`` folds the
snapshot payloads order-insensitively into a
:class:`~repro.soak.snapshot.SoakSummary`, and ``format_result``
renders one row per snapshot interval plus the whole-run numbers the
trend file commits. :func:`post_run` — invoked only by the CLI, never
by :func:`repro.experiments.registry.run_experiment`, so golden and
observer tests stay side-effect free — appends the run's entry to
``benchmarks/reports/SOAK_TREND.json``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Sequence, Union

import numpy as np

from repro.experiments.runner import ExperimentOutput
from repro.runtime import SweepTask
from repro.scenarios.spec import Scenario
from repro.soak import driver, trend
from repro.soak.snapshot import SoakSnapshot, SoakSummary, summarize_snapshots


@dataclass
class SoakResult:
    """Per-interval snapshots (epoch order) plus the run summary."""

    snapshots: List[SoakSnapshot]
    summary: SoakSummary


def build_tasks(
    hours: float = 2.0,
    snapshot_every_s: float = 600.0,
    shards: int = 2,
    n_tags: Optional[int] = None,
    load: float = 8.0,
    grid_resolution: float = 0.10,
    latency_slo_s: float = 0.25,
    fault_profile: str = "calm",
    seed: int = 0,
    scenario: Union[str, Scenario] = "warehouse_twin_aisle",
) -> List[SweepTask]:
    """One seeded epoch task per snapshot interval of the horizon."""
    config = driver.SoakConfig(
        scenario=scenario,
        hours=float(hours),
        snapshot_every_s=float(snapshot_every_s),
        shards=int(shards),
        n_tags=n_tags,
        load=float(load),
        grid_resolution=float(grid_resolution),
        latency_slo_s=float(latency_slo_s),
        fault_profile=fault_profile,
        seed=int(seed),
    )
    return driver.build_epoch_tasks(config)


def reduce(
    payloads: Sequence[Dict[str, Any]], params: Mapping[str, Any]
) -> SoakResult:
    """Snapshot payloads -> typed snapshots + order-insensitive summary."""
    snapshots = driver.snapshots_from_payloads(list(payloads))
    snapshots.sort(key=lambda snapshot: snapshot.epoch)
    return SoakResult(
        snapshots=snapshots, summary=summarize_snapshots(snapshots)
    )


def _epoch_p99_latency_ms(snapshot: SoakSnapshot) -> float:
    """One interval's own p99 latency (the table's drill-down column)."""
    if not snapshot.latency_samples_s:
        return 0.0
    samples = np.asarray(snapshot.latency_samples_s, dtype=float)
    return float(np.percentile(samples, 99.0)) * 1e3


def format_result(result: SoakResult) -> ExperimentOutput:
    """Render the per-interval table and the trend-committed numbers."""
    rows = []
    for snapshot in result.snapshots:
        errors = np.asarray(snapshot.error_samples_m, dtype=float)
        rows.append(
            [
                str(snapshot.epoch),
                f"{snapshot.start_s / 60.0:.0f}",
                str(snapshot.offered),
                str(snapshot.applied),
                f"{_epoch_p99_latency_ms(snapshot):.2f}",
                str(snapshot.degraded),
                str(snapshot.shed),
                str(snapshot.handoffs),
                str(snapshot.recoveries),
                str(snapshot.injected),
                f"{float(errors.mean()):.3f}" if errors.size else "-",
            ]
        )
    summary = result.summary
    measured = {
        "virtual hours": f"{summary.virtual_hours:.2f}",
        "throughput (applied/busy-s)": f"{summary.throughput_per_s:.1f}",
        "p99 latency (ms)": f"{summary.p99_latency_ms:.2f}",
        "mean error (m)": f"{summary.mean_error_m:.3f}",
        "degraded fraction": f"{summary.degraded_fraction:.3f}",
        "session failure fraction": f"{summary.failure_fraction:.3f}",
    }
    return ExperimentOutput(
        name="soak — long-horizon service trend under faults",
        headers=[
            "epoch",
            "t (min)",
            "offered",
            "applied",
            "p99 (ms)",
            "degr",
            "shed",
            "hand",
            "recov",
            "inj",
            "err (m)",
        ],
        rows=rows,
        paper_claims={},
        measured=measured,
        notes=(
            "Each row is one snapshot interval of virtual time: a fleet "
            "inventory pass replayed through the sharded service with "
            "the run's fault plan engaged. The whole-run numbers above "
            "are exactly what `repro.soak.trend` commits to "
            "SOAK_TREND.json and what `python -m repro.soak gate` "
            "ratchets against the previous PR."
        ),
    )


def post_run(run: Any, options: Mapping[str, Any]) -> Optional[str]:
    """Append this run's entry to the committed trend (CLI-only hook).

    Honors ``--no-trend`` and ``--trend-file``; idempotent because
    :func:`repro.soak.trend.append_entry` dedupes an identical tail
    entry, so CI re-runs of an unchanged tree never grow the file.
    """
    if options.get("no_trend"):
        return None
    trend_path = options.get("trend_file") or trend.TREND_FILENAME
    entry = trend.entry_from_summary(run.result.summary, run.params)
    doc, appended = trend.append_entry(trend_path, entry)
    count = len(doc["entries"])
    verdict = "appended entry" if appended else "tail entry unchanged"
    return f"[soak trend: {verdict}; {count} entries at {trend_path}]"


if __name__ == "__main__":  # pragma: no cover - manual regeneration
    from repro.experiments import registry

    print(registry.run_experiment("soak", smoke=True).outputs[0].report())
