"""Fig. 13: localization accuracy vs flight-path aperture.

20 trials per aperture on the ground robot at a fixed ~5 m reader
distance, SAR vs the RSSI baseline. Paper: SAR improves monotonically
from ~22 cm at 0.5 m aperture to <5 cm at 1 m (90th percentile <7 cm at
2.5 m); RSSI sits around a meter — ~20x worse.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from repro.constants import UHF_CENTER_FREQUENCY
from repro.experiments.runner import ExperimentOutput, fmt
from repro.localization import Localizer
from repro.sim.results import percentile
from repro.sim.scenarios import aperture_microbenchmark

DEFAULT_APERTURES = (0.5, 1.0, 1.5, 2.0, 2.5)


@dataclass
class Fig13Result:
    """SAR and RSSI errors per aperture (meters)."""

    apertures_m: np.ndarray
    sar_errors: Dict[float, np.ndarray]
    rssi_errors: Dict[float, np.ndarray]


def run(
    apertures_m: Sequence[float] = DEFAULT_APERTURES,
    trials_per_point: int = 20,
    seed: int = 0,
) -> Fig13Result:
    """Run the aperture microbenchmark sweep."""
    localizer = Localizer(frequency_hz=UHF_CENTER_FREQUENCY)
    sar: Dict[float, List[float]] = {a: [] for a in apertures_m}
    rssi: Dict[float, List[float]] = {a: [] for a in apertures_m}
    for aperture in apertures_m:
        for trial in range(trials_per_point):
            scenario = aperture_microbenchmark(aperture, seed * 1000 + trial)
            result = localizer.locate(
                scenario.measurements, search_grid=scenario.search_grid
            )
            sar[aperture].append(result.error_to(scenario.tag_position))
            estimate = localizer.locate_rssi(
                scenario.measurements,
                scenario.rssi_calibration_gain,
                search_grid=scenario.search_grid,
            )
            rssi[aperture].append(
                float(np.linalg.norm(estimate - scenario.tag_position))
            )
    return Fig13Result(
        apertures_m=np.asarray(apertures_m, dtype=float),
        sar_errors={a: np.asarray(v) for a, v in sar.items()},
        rssi_errors={a: np.asarray(v) for a, v in rssi.items()},
    )


def format_result(result: Fig13Result) -> ExperimentOutput:
    """Render the aperture sweep table."""
    headers = [
        "aperture (m)",
        "SAR median (m)", "SAR p10", "SAR p90",
        "RSSI median (m)", "RSSI p90",
    ]
    rows: List[List[str]] = []
    for a in result.apertures_m:
        sar = result.sar_errors[float(a)]
        rssi = result.rssi_errors[float(a)]
        rows.append(
            [
                fmt(float(a)),
                fmt(float(np.median(sar))),
                fmt(percentile(sar, 10.0)),
                fmt(percentile(sar, 90.0)),
                fmt(float(np.median(rssi))),
                fmt(percentile(rssi, 90.0)),
            ]
        )
    smallest = float(result.apertures_m.min())
    widest = float(result.apertures_m.max())
    ratio = float(
        np.median(result.rssi_errors[widest]) / np.median(result.sar_errors[widest])
    )
    return ExperimentOutput(
        name="Fig. 13 — accuracy vs aperture",
        headers=headers,
        rows=rows,
        paper_claims={
            "SAR @ 0.5 m aperture": "~0.22 m median",
            "SAR @ 1.0 m aperture": "< 0.05 m median",
            "SAR vs RSSI @ 2.5 m": "~20x better",
            "monotone improvement": "yes",
        },
        measured={
            "SAR @ 0.5 m aperture": f"{np.median(result.sar_errors[smallest]):.3f} m",
            "SAR @ 1.0 m aperture": f"{np.median(result.sar_errors[1.0]):.3f} m"
            if 1.0 in result.sar_errors
            else "n/a",
            "SAR vs RSSI @ 2.5 m": f"{ratio:.1f}x",
            "monotone improvement": str(
                bool(
                    np.all(
                        np.diff(
                            [
                                np.median(result.sar_errors[float(a)])
                                for a in result.apertures_m
                            ]
                        )
                        <= 0.05
                    )
                )
            ),
        },
    )


if __name__ == "__main__":  # pragma: no cover - manual regeneration
    print(format_result(run()).report())
