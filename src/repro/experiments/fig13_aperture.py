"""Fig. 13: localization accuracy vs flight-path aperture.

20 trials per aperture on the ground robot at a fixed ~5 m reader
distance, SAR vs the RSSI baseline. Paper: SAR improves monotonically
from ~22 cm at 0.5 m aperture to <5 cm at 1 m (90th percentile <7 cm at
2.5 m); RSSI sits around a meter — ~20x worse.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.constants import UHF_CENTER_FREQUENCY
from repro.experiments.runner import ExperimentOutput, fmt
from repro.localization import Localizer
from repro.runtime import RuntimeConfig, SweepTask
from repro.scenarios import registry as scenario_registry
from repro.scenarios.spec import Scenario
from repro.scenarios.trials import aperture_trial
from repro.sim.results import percentile

DEFAULT_APERTURES = (0.5, 1.0, 1.5, 2.0, 2.5)


@dataclass
class Fig13Result:
    """SAR and RSSI errors per aperture (meters)."""

    apertures_m: np.ndarray
    sar_errors: Dict[float, np.ndarray]
    rssi_errors: Dict[float, np.ndarray]


def _trial(
    scenario_json: str, aperture_m: float, trial: int, seed: int
) -> "Tuple[float, float]":
    """One (aperture, trial) point -> (SAR error, RSSI error) in meters.

    Both localizers run against the same scenario and share one
    pose->grid geometry via :meth:`Localizer.locate_with_baseline`.
    """
    localizer = Localizer(frequency_hz=UHF_CENTER_FREQUENCY)
    scenario = aperture_trial(
        Scenario.from_json(scenario_json), aperture_m, seed
    )
    sar_result, rssi_estimate = localizer.locate_with_baseline(
        scenario.measurements,
        scenario.rssi_calibration_gain_linear,
        search_grid=scenario.search_grid,
    )
    return (
        sar_result.error_to(scenario.tag_position),
        float(np.linalg.norm(rssi_estimate - scenario.tag_position)),
    )


def build_tasks(
    apertures_m: Sequence[float] = DEFAULT_APERTURES,
    trials_per_point: int = 20,
    seed: int = 0,
    scenario: "str | Scenario" = "aisle_microbench",
) -> List[SweepTask]:
    """The aperture microbenchmark as (aperture, trial) tasks."""
    scenario_json = scenario_registry.resolve(scenario).to_json()
    return [
        SweepTask.make(
            _trial,
            params={
                "scenario_json": scenario_json,
                "aperture_m": float(aperture),
                "trial": trial,
            },
            seed=seed * 1000 + trial,
            label=f"fig13/a{aperture}/t{trial}",
        )
        for aperture in apertures_m
        for trial in range(trials_per_point)
    ]


def reduce(
    payloads: Sequence[Tuple[float, float]], params: Mapping[str, Any]
) -> Fig13Result:
    """Regroup payloads by aperture (aperture-major task order)."""
    apertures_m = params["apertures_m"]
    trials_per_point = int(params["trials_per_point"])
    sar: Dict[float, List[float]] = {float(a): [] for a in apertures_m}
    rssi: Dict[float, List[float]] = {float(a): [] for a in apertures_m}
    points = (
        float(a) for a in apertures_m for _ in range(trials_per_point)
    )
    for aperture, (sar_error_m, rssi_error_m) in zip(points, payloads):
        sar[aperture].append(sar_error_m)
        rssi[aperture].append(rssi_error_m)
    return Fig13Result(
        apertures_m=np.asarray(apertures_m, dtype=float),
        sar_errors={a: np.asarray(v) for a, v in sar.items()},
        rssi_errors={a: np.asarray(v) for a, v in rssi.items()},
    )


def run(
    apertures_m: Sequence[float] = DEFAULT_APERTURES,
    trials_per_point: int = 20,
    seed: int = 0,
    runtime: Optional[RuntimeConfig] = None,
) -> Fig13Result:
    """Deprecated shim; use ``repro.experiments.registry`` instead."""
    warnings.warn(
        "fig13_aperture.run() is deprecated; use "
        "repro.experiments.registry.run_experiment('fig13_aperture', ...)",
        DeprecationWarning,
        stacklevel=2,
    )
    from repro.experiments import registry

    return registry.run_experiment(
        "fig13_aperture",
        runtime=runtime,
        apertures_m=apertures_m,
        trials_per_point=trials_per_point,
        seed=seed,
    ).result


def format_result(result: Fig13Result) -> ExperimentOutput:
    """Render the aperture sweep table."""
    headers = [
        "aperture (m)",
        "SAR median (m)", "SAR p10", "SAR p90",
        "RSSI median (m)", "RSSI p90",
    ]
    rows: List[List[str]] = []
    for a in result.apertures_m:
        sar = result.sar_errors[float(a)]
        rssi = result.rssi_errors[float(a)]
        rows.append(
            [
                fmt(float(a)),
                fmt(float(np.median(sar))),
                fmt(percentile(sar, 10.0)),
                fmt(percentile(sar, 90.0)),
                fmt(float(np.median(rssi))),
                fmt(percentile(rssi, 90.0)),
            ]
        )
    smallest = float(result.apertures_m.min())
    widest = float(result.apertures_m.max())
    ratio = float(
        np.median(result.rssi_errors[widest]) / np.median(result.sar_errors[widest])
    )
    return ExperimentOutput(
        name="Fig. 13 — accuracy vs aperture",
        headers=headers,
        rows=rows,
        paper_claims={
            "SAR @ 0.5 m aperture": "~0.22 m median",
            "SAR @ 1.0 m aperture": "< 0.05 m median",
            "SAR vs RSSI @ 2.5 m": "~20x better",
            "monotone improvement": "yes",
        },
        measured={
            "SAR @ 0.5 m aperture": f"{np.median(result.sar_errors[smallest]):.3f} m",
            "SAR @ 1.0 m aperture": f"{np.median(result.sar_errors[1.0]):.3f} m"
            if 1.0 in result.sar_errors
            else "n/a",
            "SAR vs RSSI @ 2.5 m": f"{ratio:.1f}x",
            "monotone improvement": str(
                bool(
                    np.all(
                        np.diff(
                            [
                                np.median(result.sar_errors[float(a)])
                                for a in result.apertures_m
                            ]
                        )
                        <= 0.05
                    )
                )
            ),
        },
    )


if __name__ == "__main__":  # pragma: no cover - manual regeneration
    print(format_result(run()).report())
