"""Fig. 12: CDF of end-to-end localization error.

100 randomized trials across a simulated 30 x 40 m two-floor building,
mixing line-of-sight and through-wall reader placements. The paper
reports a 19 cm median and a 53 cm 90th-percentile error.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Any, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.constants import UHF_CENTER_FREQUENCY
from repro.experiments.runner import ExperimentOutput, fmt
from repro.localization import Localizer
from repro.runtime import RuntimeConfig, SweepTask
from repro.scenarios import registry as scenario_registry
from repro.scenarios.spec import Scenario
from repro.scenarios.trials import warehouse_trial
from repro.sim.results import empirical_cdf, percentile, summarize


@dataclass
class Fig12Result:
    """Per-trial localization errors (meters)."""

    errors_m: np.ndarray

    def cdf(self) -> Tuple[np.ndarray, np.ndarray]:
        """Empirical CDF of the stored samples."""
        return empirical_cdf(self.errors_m)


def _trial(scenario_json: str, trial: int, seed: int) -> float:
    """One Fig. 12 trial: scenario build + locate -> error (m)."""
    localizer = Localizer(frequency_hz=UHF_CENTER_FREQUENCY)
    scenario = warehouse_trial(Scenario.from_json(scenario_json), seed)
    result = localizer.locate(
        scenario.measurements, search_grid=scenario.search_grid
    )
    return result.error_to(scenario.tag_position)


def build_tasks(
    n_trials: int = 100,
    seed: int = 0,
    scenario: "str | Scenario" = "paper_warehouse_two_floor",
) -> List[SweepTask]:
    """The Fig. 12 campaign as per-trial tasks.

    Each trial realizes the named warehouse scenario at its own seed;
    the spec rides in the task params as canonical JSON.
    """
    scenario_json = scenario_registry.resolve(scenario).to_json()
    return [
        SweepTask.make(
            _trial,
            params={"scenario_json": scenario_json, "trial": trial},
            seed=seed * 10_000 + trial,
            label=f"fig12/trial{trial}",
        )
        for trial in range(n_trials)
    ]


def reduce(
    payloads: Sequence[float], params: Mapping[str, Any]
) -> Fig12Result:
    """Per-trial errors in task order -> the error-sample result."""
    return Fig12Result(errors_m=np.asarray(payloads, dtype=float))


def run(
    n_trials: int = 100,
    seed: int = 0,
    runtime: Optional[RuntimeConfig] = None,
) -> Fig12Result:
    """Deprecated shim; use ``repro.experiments.registry`` instead."""
    warnings.warn(
        "fig12_localization.run() is deprecated; use "
        "repro.experiments.registry.run_experiment('fig12_localization', ...)",
        DeprecationWarning,
        stacklevel=2,
    )
    from repro.experiments import registry

    return registry.run_experiment(
        "fig12_localization", runtime=runtime, n_trials=n_trials, seed=seed
    ).result


def format_result(result: Fig12Result) -> ExperimentOutput:
    """Render the error-distribution table."""
    stats = summarize(result.errors_m)
    rows = [
        [
            "localization error (m)",
            str(stats.n),
            fmt(stats.median),
            fmt(stats.p10),
            fmt(stats.p90),
            fmt(stats.p99),
        ]
    ]
    return ExperimentOutput(
        name="Fig. 12 — localization error CDF",
        headers=["metric", "n", "median", "p10", "p90", "p99"],
        rows=rows,
        paper_claims={"median": "0.19 m", "p90": "0.53 m"},
        measured={
            "median": f"{stats.median:.3f} m",
            "p90": f"{stats.p90:.3f} m",
        },
    )


if __name__ == "__main__":  # pragma: no cover - manual regeneration
    print(format_result(run(n_trials=100, seed=0)).report())
