"""Fig. 12: CDF of end-to-end localization error.

100 randomized trials across a simulated 30 x 40 m two-floor building,
mixing line-of-sight and through-wall reader placements. The paper
reports a 19 cm median and a 53 cm 90th-percentile error.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.constants import UHF_CENTER_FREQUENCY
from repro.experiments.runner import ExperimentOutput, fmt
from repro.localization import Localizer
from repro.sim.results import empirical_cdf, percentile, summarize
from repro.sim.scenarios import fig12_trial


@dataclass
class Fig12Result:
    """Per-trial localization errors (meters)."""

    errors_m: np.ndarray

    def cdf(self) -> Tuple[np.ndarray, np.ndarray]:
        """Empirical CDF of the stored samples."""
        return empirical_cdf(self.errors_m)


def run(n_trials: int = 100, seed: int = 0) -> Fig12Result:
    """Run the Fig. 12 campaign."""
    localizer = Localizer(frequency_hz=UHF_CENTER_FREQUENCY)
    errors: List[float] = []
    for trial in range(n_trials):
        scenario = fig12_trial(seed * 10_000 + trial)
        result = localizer.locate(
            scenario.measurements, search_grid=scenario.search_grid
        )
        errors.append(result.error_to(scenario.tag_position))
    return Fig12Result(errors_m=np.asarray(errors))


def format_result(result: Fig12Result) -> ExperimentOutput:
    """Render the error-distribution table."""
    stats = summarize(result.errors_m)
    rows = [
        [
            "localization error (m)",
            str(stats.n),
            fmt(stats.median),
            fmt(stats.p10),
            fmt(stats.p90),
            fmt(stats.p99),
        ]
    ]
    return ExperimentOutput(
        name="Fig. 12 — localization error CDF",
        headers=["metric", "n", "median", "p10", "p90", "p99"],
        rows=rows,
        paper_claims={"median": "0.19 m", "p90": "0.53 m"},
        measured={
            "median": f"{stats.median:.3f} m",
            "p90": f"{stats.p90:.3f} m",
        },
    )


if __name__ == "__main__":  # pragma: no cover - manual regeneration
    print(format_result(run(n_trials=100, seed=0)).report())
