"""`resilience`: fault class x fault rate -> error / failures / recovery.

Each task engages one :class:`~repro.faults.FaultPlan` (derived purely
from the swept fault class and rate), generates the Gen2-MAC workload
*under* that plan — so channel blackouts, pose dropouts, and corrupted
frames shape the event stream itself — and replays it through a
:class:`~repro.serve.service.LocalizationService` with its recovery
policies armed (bounded-backoff ingest retry, reference reacquisition
window, checkpoint-restore after injected kills).

The table quantifies the paper's degrade-loudly-never-wrongly claim
(§5.1) under each fault class: sessions either localize accurately,
are explicitly *rejected/degraded* along the way, or fail with a typed
error — the ``wrong`` column counts sessions that "succeeded" with an
error beyond ``wrong_threshold_m`` and must stay zero. Because the
engine is seeded through the runtime's ``SeedSequence`` discipline and
the service runs on a virtual clock, every cell (including recovery
latencies) is a pure function of the parameters: golden-testable, and
bit-identical between serial and process-pool sweeps.
"""

from __future__ import annotations

import tempfile
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Sequence, Tuple

import numpy as np

from repro import faults
from repro.errors import ConfigurationError, RFlyError
from repro.experiments.runner import ExperimentOutput, fmt
from repro.mobility.groundtruth import OptiTrack
from repro.runtime import SweepTask
from repro.runtime.cache import ResultCache
from repro.scenarios import registry as scenario_registry
from repro.scenarios.compiler import generate_workload
from repro.scenarios.spec import Scenario
from repro.serve.config import ServeConfig
from repro.serve.service import LocalizationService
from repro.serve.shard import ShardConfig, run_sharded_workload
from repro.serve.traffic import TrafficWorkload

#: The swept fault classes, each mapping to one canned plan.
FAULT_CLASSES: Tuple[str, ...] = (
    "none",
    "blockage",
    "outage",
    "pose_loss",
    "bit_corruption",
    "ingest_faults",
    "service_kill",
    "shard_kill",
)

DEFAULT_RATES: Tuple[float, ...] = (0.05, 0.3)

#: Reference reacquisition window used by the swept service; short
#: enough that a sustained injected blackout escalates to a typed
#: ReferenceLostError instead of an endless rejected-update stream.
_REFERENCE_TIMEOUT_S = 0.1

#: Virtual stall charged per injected ingest stall, seconds.
_STALL_S = 0.02

#: Bits flipped per injected frame corruption.
_CORRUPT_BITS = 2.0

#: Fleet size of the `shard_kill` class: injected worker reboots land
#: on a consistent-hash sharded service of this many workers.
_SHARD_KILL_SHARDS = 4

#: Shape of the `outage` class: a contiguous blackout of the radio
#: link starting at this channel-query index, spanning ``rate`` times
#: this many queries (~2 queries per delivered event).
_OUTAGE_START_CALL = 150.0
_OUTAGE_SPAN_CALLS = 600.0


def plan_for(fault_class: str, rate: float) -> faults.FaultPlan:
    """The canned fault plan of one swept (class, rate) cell."""
    if fault_class == "none" or rate == 0.0:
        return faults.FaultPlan()
    if fault_class == "blockage":
        return faults.FaultPlan.single("channel.link", "drop", rate=rate)
    if fault_class == "outage":
        # One sustained blackout (drone behind a metal obstruction)
        # whose length scales with ``rate`` — long outages outlast the
        # reference-reacquisition window and must fail *typed*.
        window = faults.Trigger(
            kind="call_window",
            start=_OUTAGE_START_CALL,
            stop=_OUTAGE_START_CALL + rate * _OUTAGE_SPAN_CALLS,
        )
        return faults.FaultPlan.single("channel.link", "drop", trigger=window)
    if fault_class == "pose_loss":
        return faults.FaultPlan.single("mobility.pose", "pose_loss", rate=rate)
    if fault_class == "bit_corruption":
        return faults.FaultPlan.single(
            "gen2.frame", "corrupt_bits", rate=rate, magnitude=_CORRUPT_BITS
        )
    if fault_class == "ingest_faults":
        return faults.FaultPlan(
            (
                faults.FaultSpec(
                    "serve.ingest", "stall", rate=rate, magnitude=_STALL_S
                ),
                faults.FaultSpec("serve.ingest", "drop", rate=rate),
            )
        )
    if fault_class == "service_kill":
        return faults.FaultPlan.single("serve.session", "reboot", rate=rate)
    if fault_class == "shard_kill":
        return faults.FaultPlan.single("serve.shard", "reboot", rate=rate)
    known = ", ".join(FAULT_CLASSES)
    raise ConfigurationError(
        f"unknown fault class {fault_class!r}; choices: {known}"
    )


@dataclass
class ResilienceResult:
    """One summary row per swept (fault class, rate) cell."""

    rows: List[Dict[str, Any]]


def _replay_tolerant(
    workload: TrafficWorkload,
    config: ServeConfig,
    cache: ResultCache,
) -> Tuple[Dict[str, str], Dict[str, float], Dict[str, bool], Any]:
    """Replay a workload, containing typed failures per session.

    Returns ``(failures, errors_m, flagged, service_report)``:
    ``failures`` maps a session id to the *typed* error class that took
    it down, ``errors_m`` holds localization errors of the sessions
    that made it to finalize, and ``flagged`` marks which of those the
    service loudly declared degraded (nonzero
    :meth:`~repro.serve.service.LocalizationService.session_data_loss`)
    — only an *unflagged* bad fix counts as silently wrong.
    """
    service = LocalizationService(config, cache=cache)
    for session_id, grid in workload.grids.items():
        service.open_session(session_id, grid, now_s=0.0)
    failures: Dict[str, str] = {}
    for event in workload.events:
        if event.session_id in failures:
            continue
        try:
            service.submit(
                event.session_id, event.measurement, now_s=event.time_s
            )
            service.step()
        except RFlyError as error:
            failures[event.session_id] = type(error).__name__
    try:
        service.drain()
    except RFlyError:
        pass
    errors_m: Dict[str, float] = {}
    flagged: Dict[str, bool] = {}
    for session_id in sorted(workload.grids):
        if session_id in failures:
            continue
        try:
            result = service.finalize(session_id)
        except RFlyError as error:
            failures[session_id] = type(error).__name__
            continue
        errors_m[session_id] = float(
            np.linalg.norm(
                result.position - workload.tag_positions[session_id]
            )
        )
        flagged[session_id] = service.session_data_loss(session_id) > 0
    return failures, errors_m, flagged, service.report()


def _resilience_point(
    scenario_json: str,
    fault_class: str,
    rate: float,
    n_tags: int,
    load: float,
    grid_resolution: float,
    latency_slo_s: float,
    wrong_threshold_m: float,
    seed: int,
) -> Dict[str, Any]:
    """One swept cell: engage the plan, generate, replay, summarize."""
    spec = Scenario.from_json(scenario_json)
    frequency_hz = spec.radio.center_frequency_hz
    plan = plan_for(fault_class, rate)
    with tempfile.TemporaryDirectory(prefix="resilience-ckpt-") as tmp_dir:
        cache = ResultCache(tmp_dir)
        with faults.engaged(plan, seed=seed) as engine:
            workload = generate_workload(
                spec,
                n_tags=n_tags,
                seed=seed,
                load=load,
                grid_resolution=grid_resolution,
                tracker=OptiTrack(),
            )
            if fault_class == "shard_kill":
                # Worker reboots only exist on the sharded service:
                # replay through the consistent-hash fleet (which
                # engages per-shard engines spawned from this seed).
                sharded = run_sharded_workload(
                    workload,
                    ServeConfig(
                        frequency_hz=frequency_hz,
                        latency_slo_s=latency_slo_s,
                        reference_timeout_s=_REFERENCE_TIMEOUT_S,
                        capacity_mode="partitioned",
                    ),
                    ShardConfig(n_shards=_SHARD_KILL_SHARDS, seed=seed),
                    cache=cache,
                    fault_plan=plan,
                )
                errors_m = dict(sharded.errors_m)
                # A session the sharded replay could not finalize (no
                # checkpoint survived, too little data) is an explicit
                # failure, mirroring the tolerant replay's accounting.
                failures = {
                    session_id: "NoFix"
                    for session_id in sorted(workload.grids)
                    if session_id not in errors_m
                }
                flagged = {
                    session_id: sharded.session_loss.get(session_id, 0) > 0
                    for session_id in errors_m
                }
                report = sharded.service
            else:
                config = ServeConfig(
                    frequency_hz=frequency_hz,
                    latency_slo_s=latency_slo_s,
                    reference_timeout_s=_REFERENCE_TIMEOUT_S,
                )
                failures, errors_m, flagged, report = _replay_tolerant(
                    workload, config, cache
                )
        injected = len(engine.injections)
        if fault_class == "shard_kill":
            injected += sharded.injected
    errors = np.asarray(sorted(errors_m.values()), dtype=float)
    wrong = sum(
        1
        for session_id, error_m in errors_m.items()
        if error_m > wrong_threshold_m and not flagged[session_id]
    )
    return {
        "fault_class": fault_class,
        "rate": float(rate),
        "events": len(workload.events),
        "injected": injected,
        "rejected": report.updates_rejected,
        "sessions": len(workload.grids),
        "failed": len(failures),
        "flagged": sum(1 for is_flagged in flagged.values() if is_flagged),
        "failure_kinds": ",".join(sorted(set(failures.values()))),
        "recoveries": report.recoveries,
        "recovery_latency_s": report.mean_recovery_latency_s,
        "mean_error_m": float(errors.mean()) if errors.size else float("nan"),
        "max_error_m": float(errors.max()) if errors.size else float("nan"),
        "wrong": wrong,
    }


def build_tasks(
    classes: Sequence[str] = FAULT_CLASSES,
    rates: Sequence[float] = DEFAULT_RATES,
    n_tags: int = 4,
    load: float = 8.0,
    grid_resolution: float = 0.10,
    latency_slo_s: float = 0.25,
    wrong_threshold_m: float = 0.75,
    seed: int = 0,
    scenario: "str | Scenario" = "conveyor_flow_through",
) -> List[SweepTask]:
    """One task per (fault class, rate) cell; `none` runs once."""
    scenario_json = scenario_registry.resolve(scenario).to_json()
    tasks: List[SweepTask] = []
    for fault_class in classes:
        cell_rates = rates if fault_class != "none" else rates[:1]
        for rate in cell_rates:
            tasks.append(
                SweepTask.make(
                    _resilience_point,
                    params={
                        "scenario_json": scenario_json,
                        "fault_class": str(fault_class),
                        "rate": float(rate),
                        "n_tags": n_tags,
                        "load": float(load),
                        "grid_resolution": grid_resolution,
                        "latency_slo_s": latency_slo_s,
                        "wrong_threshold_m": wrong_threshold_m,
                    },
                    seed=seed,
                    label=f"resilience/{fault_class}@{rate:g}",
                )
            )
    return tasks


def reduce(
    payloads: Sequence[Dict[str, Any]], params: Mapping[str, Any]
) -> ResilienceResult:
    """Per-cell rows in task order -> the resilience result."""
    return ResilienceResult(rows=[dict(row) for row in payloads])


def format_result(result: ResilienceResult) -> ExperimentOutput:
    """Render the fault-class x rate resilience table."""
    rows = [
        [
            str(row["fault_class"]),
            f"{row['rate']:.2f}",
            str(int(row["events"])),
            str(int(row["injected"])),
            str(int(row["rejected"])),
            f"{int(row['failed'])}/{int(row['sessions'])}",
            str(int(row["flagged"])),
            str(int(row["recoveries"])),
            f"{row['recovery_latency_s'] * 1e3:.2f}",
            fmt(row["mean_error_m"]),
            str(int(row["wrong"])),
        ]
        for row in result.rows
    ]
    total_wrong = sum(int(row["wrong"]) for row in result.rows)
    total_failed = sum(int(row["failed"]) for row in result.rows)
    total_recoveries = sum(int(row["recoveries"]) for row in result.rows)
    measured = {
        "silently wrong fixes": str(total_wrong),
        "explicit failures": str(total_failed),
        "recoveries": str(total_recoveries),
    }
    return ExperimentOutput(
        name="resilience — fault injection vs the degradation ladder",
        headers=[
            "class",
            "rate",
            "events",
            "injected",
            "rejected",
            "failed",
            "flagged",
            "recov",
            "rec (ms)",
            "err (m)",
            "wrong",
        ],
        rows=rows,
        paper_claims={"silently wrong fixes": "0 (degrade loudly, §5.1)"},
        measured=measured,
        notes=(
            "Every fault either recovers (bounded retry, reference "
            "reacquisition, checkpoint-restore), is rejected loudly, or "
            "fails the session with a typed error; `flagged` fixes were "
            "declared degraded by the service (known data loss), and "
            "`wrong` counts *unflagged* fixes beyond the error "
            "threshold — it must be 0."
        ),
    )


if __name__ == "__main__":  # pragma: no cover - manual regeneration
    from repro.experiments import registry

    print(registry.run_experiment("resilience").outputs[0].report())
