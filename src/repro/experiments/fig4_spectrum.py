"""Fig. 4: the guard band between query and tag-response spectra.

The design of the relay's inter-link isolation rests on one spectral
fact: the reader's PIE query occupies ~125 kHz around the carrier while
the tag's backscatter response concentrates near the +/-500 kHz BLF,
leaving a guard band between them. This experiment synthesizes real
waveforms with the Gen2 codecs, computes their power spectral
densities, and verifies the separation quantitatively.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Any, List, Mapping, Optional, Sequence

import numpy as np

from repro.constants import GEN2_QUERY_BANDWIDTH
from repro.experiments.runner import ExperimentOutput, fmt
from repro.gen2.backscatter import MillerEncoder, TagParams
from repro.gen2.commands import Query
from repro.gen2.pie import PIEEncoder, ReaderParams
from repro.dsp.units import linear_to_db
from repro.runtime import RuntimeConfig, SweepTask
from repro.scenarios import registry as scenario_registry
from repro.scenarios.spec import Scenario

SAMPLE_RATE = 4.0e6


@dataclass
class Fig4Result:
    """PSDs of the query and the response, plus band-power metrics."""

    frequencies_hz: np.ndarray
    query_psd_db: np.ndarray
    response_psd_db: np.ndarray
    query_occupied_bandwidth_hz: float
    response_peak_offset_hz: float
    guard_band_hz: float


def _psd_db(samples: np.ndarray, n_fft: int = 1 << 14) -> np.ndarray:
    """Averaged-periodogram PSD in dB (arbitrary reference)."""
    samples = samples - np.mean(samples)
    segments = max(1, len(samples) // n_fft)
    acc = np.zeros(n_fft)
    for i in range(segments):
        chunk = samples[i * n_fft : (i + 1) * n_fft]
        if len(chunk) < n_fft:
            chunk = np.pad(chunk, (0, n_fft - len(chunk)))
        windowed = chunk * np.hanning(n_fft)
        acc += np.abs(np.fft.fftshift(np.fft.fft(windowed))) ** 2
    acc /= segments
    return linear_to_db(np.maximum(acc, 1e-30))


def _occupied_bandwidth(freqs, psd_db, threshold_db=15.0) -> float:
    """Mask-style bandwidth: span where the PSD stays within X dB of peak.

    This is how a spectrum-analyzer plot like the paper's Fig. 4 reads:
    the query's visible hump, ~20 dB down from its peak.
    """
    peak = float(np.max(psd_db))
    above = freqs[psd_db >= peak - threshold_db]
    return float(np.ptp(above))


def _band_edge_near_peak(freqs, psd_db, threshold_db=10.0) -> float:
    """Lower edge of the positive-frequency band within X dB of its peak."""
    positive = freqs > 100e3
    band_psd = psd_db[positive]
    band_freqs = freqs[positive]
    peak = float(np.max(band_psd))
    in_band = band_freqs[band_psd >= peak - threshold_db]
    return float(np.min(in_band))


def _compute(n_fft: int, seed: int) -> Fig4Result:
    """Synthesize both waveforms and measure the guard band."""
    rng = np.random.default_rng(seed)
    # Regulatory edge shaping, as real readers apply (and as Fig. 4's
    # measured query spectrum reflects).
    reader_params = ReaderParams(edge_smoothing_seconds=6.0e-6)
    pie = PIEEncoder(reader_params, SAMPLE_RATE)
    # A long command stream: many queries back to back.
    query_bits = Query().to_bits()
    query_wave = np.concatenate(
        [pie.encode(query_bits, preamble=True).samples for _ in range(20)]
    )

    tag_params = TagParams(blf=500e3, miller_m=4)
    miller = MillerEncoder(tag_params, SAMPLE_RATE)
    payload = tuple(rng.integers(0, 2, 128))
    response_wave = np.concatenate(
        [miller.encode(payload).samples * 2.0 - 1.0 for _ in range(4)]
    )

    freqs = np.fft.fftshift(np.fft.fftfreq(n_fft, d=1.0 / SAMPLE_RATE))
    query_psd = _psd_db(query_wave, n_fft)
    response_psd = _psd_db(response_wave, n_fft)

    query_bw = _occupied_bandwidth(freqs, query_psd)
    positive = freqs > 100e3
    response_peak = float(
        freqs[positive][np.argmax(response_psd[positive])]
    )
    response_lower_edge = _band_edge_near_peak(freqs, response_psd)
    guard = max(response_lower_edge - query_bw / 2.0, 0.0)
    return Fig4Result(
        frequencies_hz=freqs,
        query_psd_db=query_psd,
        response_psd_db=response_psd,
        query_occupied_bandwidth_hz=query_bw,
        response_peak_offset_hz=response_peak,
        guard_band_hz=guard,
    )


def build_tasks(
    n_fft: int = 1 << 14,
    seed: int = 0,
    scenario: "str | Scenario" = "rf_bench",
) -> List[SweepTask]:
    """The guard-band measurement as a single engine task.

    The waveforms are baseband (nothing spatial), so the bench
    scenario only anchors the experiment to the registry: resolving it
    validates the name and keeps the CLI's ``--scenario`` plumbing
    uniform across experiments.
    """
    scenario_registry.resolve(scenario)
    return [
        SweepTask.make(
            _compute, params={"n_fft": n_fft}, seed=seed, label="fig4/spectrum"
        )
    ]


def reduce(
    payloads: Sequence[Fig4Result], params: Mapping[str, Any]
) -> Fig4Result:
    """Single-task sweep: the one payload is the result."""
    return payloads[0]


def run(
    seed: int = 0,
    n_fft: int = 1 << 14,
    runtime: Optional[RuntimeConfig] = None,
) -> Fig4Result:
    """Deprecated shim; use ``repro.experiments.registry`` instead."""
    warnings.warn(
        "fig4_spectrum.run() is deprecated; use "
        "repro.experiments.registry.run_experiment('fig4_spectrum', ...)",
        DeprecationWarning,
        stacklevel=2,
    )
    from repro.experiments import registry

    return registry.run_experiment(
        "fig4_spectrum", runtime=runtime, seed=seed, n_fft=n_fft
    ).result


def format_result(result: Fig4Result) -> ExperimentOutput:
    """Render the guard-band table."""
    rows = [
        ["query occupied bandwidth", fmt(result.query_occupied_bandwidth_hz / 1e3),
         "kHz"],
        ["response spectral peak", fmt(result.response_peak_offset_hz / 1e3),
         "kHz from carrier"],
        ["guard band", fmt(result.guard_band_hz / 1e3), "kHz"],
    ]
    return ExperimentOutput(
        name="Fig. 4 — query/response guard band",
        headers=["quantity", "value", "unit"],
        rows=rows,
        paper_claims={
            "query spectrum": "constrained within ~125 kHz",
            "response BLF": "up to 640 kHz; 500 kHz used",
            "guard band": "a separable gap exists",
        },
        measured={
            "query spectrum": f"{result.query_occupied_bandwidth_hz / 1e3:.0f} kHz",
            "response BLF": f"peak at {result.response_peak_offset_hz / 1e3:.0f} kHz",
            "guard band": f"{result.guard_band_hz / 1e3:.0f} kHz",
        },
    )


if __name__ == "__main__":  # pragma: no cover - manual regeneration
    print(format_result(run()).report())
