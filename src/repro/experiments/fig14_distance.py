"""Fig. 14: localization accuracy vs projected reader distance.

50 trials with a fixed 1 m aperture; the reader's transmit power maps
to a projected distance through the free-space model, and the estimate
SNR falls accordingly. Paper: SAR stays below an 18 cm median out to
40 m (p90 < 24 cm); beyond 50 m the SNR drops under 3 dB and the 90th
percentile error grows to 82 cm.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.constants import UHF_CENTER_FREQUENCY
from repro.experiments.runner import ExperimentOutput, fmt
from repro.localization import Localizer
from repro.runtime import RuntimeConfig, SweepTask
from repro.scenarios import registry as scenario_registry
from repro.scenarios.spec import Scenario
from repro.scenarios.trials import distance_trial
from repro.sim.results import percentile

DEFAULT_DISTANCES = (5.0, 10.0, 15.0, 20.0, 25.0, 30.0, 35.0, 40.0, 45.0, 50.0, 55.0)


@dataclass
class Fig14Result:
    """SAR and RSSI errors per projected distance (meters)."""

    distances_m: np.ndarray
    sar_errors: Dict[float, np.ndarray]
    rssi_errors: Dict[float, np.ndarray]


def _trial(
    scenario_json: str, distance_m: float, trial: int, seed: int
) -> "Tuple[float, float]":
    """One (distance, trial) point -> (SAR error, RSSI error) in meters."""
    localizer = Localizer(frequency_hz=UHF_CENTER_FREQUENCY)
    scenario = distance_trial(
        Scenario.from_json(scenario_json), distance_m, seed
    )
    sar_result, rssi_estimate = localizer.locate_with_baseline(
        scenario.measurements,
        scenario.rssi_calibration_gain_linear,
        search_grid=scenario.search_grid,
    )
    return (
        sar_result.error_to(scenario.tag_position),
        float(np.linalg.norm(rssi_estimate - scenario.tag_position)),
    )


def build_tasks(
    distances_m: Sequence[float] = DEFAULT_DISTANCES,
    trials_per_point: int = 10,
    seed: int = 0,
    scenario: "str | Scenario" = "aisle_microbench",
) -> List[SweepTask]:
    """The projected-distance microbenchmark as (distance, trial) tasks."""
    scenario_json = scenario_registry.resolve(scenario).to_json()
    return [
        SweepTask.make(
            _trial,
            params={
                "scenario_json": scenario_json,
                "distance_m": float(distance),
                "trial": trial,
            },
            seed=seed * 1000 + trial,
            label=f"fig14/d{distance}/t{trial}",
        )
        for distance in distances_m
        for trial in range(trials_per_point)
    ]


def reduce(
    payloads: Sequence[Tuple[float, float]], params: Mapping[str, Any]
) -> Fig14Result:
    """Regroup payloads by distance (distance-major task order)."""
    distances_m = params["distances_m"]
    trials_per_point = int(params["trials_per_point"])
    sar: Dict[float, List[float]] = {float(d): [] for d in distances_m}
    rssi: Dict[float, List[float]] = {float(d): [] for d in distances_m}
    points = (
        float(d) for d in distances_m for _ in range(trials_per_point)
    )
    for distance, (sar_error_m, rssi_error_m) in zip(points, payloads):
        sar[distance].append(sar_error_m)
        rssi[distance].append(rssi_error_m)
    return Fig14Result(
        distances_m=np.asarray(distances_m, dtype=float),
        sar_errors={d: np.asarray(v) for d, v in sar.items()},
        rssi_errors={d: np.asarray(v) for d, v in rssi.items()},
    )


def run(
    distances_m: Sequence[float] = DEFAULT_DISTANCES,
    trials_per_point: int = 10,
    seed: int = 0,
    runtime: Optional[RuntimeConfig] = None,
) -> Fig14Result:
    """Deprecated shim; use ``repro.experiments.registry`` instead."""
    warnings.warn(
        "fig14_distance.run() is deprecated; use "
        "repro.experiments.registry.run_experiment('fig14_distance', ...)",
        DeprecationWarning,
        stacklevel=2,
    )
    from repro.experiments import registry

    return registry.run_experiment(
        "fig14_distance",
        runtime=runtime,
        distances_m=distances_m,
        trials_per_point=trials_per_point,
        seed=seed,
    ).result


def format_result(result: Fig14Result) -> ExperimentOutput:
    """Render the distance sweep table."""
    headers = [
        "projected distance (m)",
        "SAR median (m)", "SAR p10", "SAR p90",
        "RSSI median (m)",
    ]
    rows: List[List[str]] = []
    for d in result.distances_m:
        sar = result.sar_errors[float(d)]
        rssi = result.rssi_errors[float(d)]
        rows.append(
            [
                fmt(float(d)),
                fmt(float(np.median(sar))),
                fmt(percentile(sar, 10.0)),
                fmt(percentile(sar, 90.0)),
                fmt(float(np.median(rssi))),
            ]
        )

    def nearest(d: float) -> float:
        """The swept distance closest to a requested one."""
        return float(result.distances_m[np.argmin(np.abs(result.distances_m - d))])

    at40 = result.sar_errors[nearest(40.0)]
    at55 = result.sar_errors[nearest(55.0)]
    return ExperimentOutput(
        name="Fig. 14 — accuracy vs projected distance",
        headers=headers,
        rows=rows,
        paper_claims={
            "SAR median @ 40 m": "< 0.18 m",
            "SAR p90 beyond 50 m": "grows to ~0.82 m",
            "errors grow with distance": "yes (SNR falls)",
        },
        measured={
            "SAR median @ 40 m": f"{np.median(at40):.3f} m",
            "SAR p90 beyond 50 m": f"{percentile(at55, 90.0):.3f} m",
            "errors grow with distance": str(
                bool(np.median(at55) > np.median(result.sar_errors[nearest(5.0)]))
            ),
        },
    )


if __name__ == "__main__":  # pragma: no cover - manual regeneration
    print(format_result(run()).report())
