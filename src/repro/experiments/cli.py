"""Command-line front end for the experiment sweep engine.

Usage::

    python -m repro.experiments                     # everything, serial
    python -m repro.experiments fig12 fig13         # a subset
    python -m repro.experiments --list              # available names
    python -m repro.experiments --parallel --cache-dir .repro-cache
    python -m repro.experiments --smoke --manifest-dir reports/manifests

``--parallel`` fans tasks out over a process pool; results are
bit-identical to ``--serial`` because every task's seed is fixed before
dispatch. ``--cache-dir`` turns on the content-addressed result cache
(second runs are nearly free); ``--no-cache`` bypasses it without
deleting anything. ``--manifest-dir`` writes one JSON run manifest per
sweep with per-task wall time, cache hits, and result hashes.
"""

from __future__ import annotations

import argparse
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.experiments import (
    ablations,
    fig4_spectrum,
    fig6_heatmap,
    fig9_isolation,
    fig10_phase,
    fig11_range,
    fig12_localization,
    fig13_aperture,
    fig14_distance,
)
from repro.experiments.runner import ExperimentOutput
from repro.runtime import RuntimeConfig


@dataclass(frozen=True)
class ExperimentSpec:
    """One runnable experiment: its module entry points and smoke knobs."""

    run: Callable[..., Any]
    format_result: Callable[[Any], ExperimentOutput]
    smoke_kwargs: Dict[str, Any] = field(default_factory=dict)


EXPERIMENTS: Dict[str, ExperimentSpec] = {
    "fig4": ExperimentSpec(fig4_spectrum.run, fig4_spectrum.format_result),
    "fig6": ExperimentSpec(fig6_heatmap.run, fig6_heatmap.format_result),
    "fig9": ExperimentSpec(
        fig9_isolation.run, fig9_isolation.format_result, {"n_trials": 10}
    ),
    "fig10": ExperimentSpec(
        fig10_phase.run, fig10_phase.format_result, {"n_trials": 8}
    ),
    "fig11": ExperimentSpec(
        fig11_range.run, fig11_range.format_result, {"trials_per_point": 40}
    ),
    "fig12": ExperimentSpec(
        fig12_localization.run,
        fig12_localization.format_result,
        {"n_trials": 6},
    ),
    "fig13": ExperimentSpec(
        fig13_aperture.run, fig13_aperture.format_result, {"trials_per_point": 3}
    ),
    "fig14": ExperimentSpec(
        fig14_distance.run, fig14_distance.format_result, {"trials_per_point": 2}
    ),
}

ALL_NAMES = (*EXPERIMENTS, "ablations")


def build_parser() -> argparse.ArgumentParser:
    """The argument parser (shared with ``python -m repro``)."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the RFly paper's evaluation figures.",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        help="experiment names (default: all figures + ablations)",
    )
    parser.add_argument(
        "--list", action="store_true", help="list available experiments"
    )
    backend = parser.add_mutually_exclusive_group()
    backend.add_argument(
        "--parallel",
        action="store_true",
        help="fan tasks out over a process pool (bit-identical to serial)",
    )
    backend.add_argument(
        "--serial",
        action="store_true",
        help="run tasks in-process in task order (the default)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="worker count for --parallel (default: CPU count)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="content-addressed result cache directory (e.g. .repro-cache)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="bypass the cache entirely (neither read nor written)",
    )
    parser.add_argument(
        "--manifest-dir",
        default=None,
        metavar="DIR",
        help="write one JSON run manifest per sweep into this directory",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="reduced trial counts (fast CI pass; tables still deterministic)",
    )
    parser.add_argument(
        "--trace-memory",
        action="store_true",
        help="record per-task peak traced allocations in the manifest",
    )
    return parser


def runtime_from_args(args: argparse.Namespace) -> RuntimeConfig:
    """Translate CLI flags into a :class:`RuntimeConfig`."""
    return RuntimeConfig(
        backend="process" if args.parallel else "serial",
        max_workers=args.jobs,
        cache_dir=args.cache_dir,
        use_cache=not args.no_cache,
        manifest_dir=args.manifest_dir,
        trace_memory=args.trace_memory,
    )


def run_experiment(
    name: str,
    runtime: RuntimeConfig,
    smoke: bool = False,
) -> List[ExperimentOutput]:
    """Run one named experiment and return its rendered outputs."""
    if name == "ablations":
        return ablations.run_all(runtime=runtime)
    spec = EXPERIMENTS[name]
    kwargs = dict(spec.smoke_kwargs) if smoke else {}
    result = spec.run(runtime=runtime, **kwargs)
    return [spec.format_result(result)]


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list:
        for name in ALL_NAMES:
            print(name)
        return 0

    runtime = runtime_from_args(args)
    chosen = args.experiments or list(ALL_NAMES)
    for name in chosen:
        if name not in ALL_NAMES:
            parser.error(
                f"unknown experiment {name!r}; choices: {', '.join(ALL_NAMES)}"
            )
        start = time.perf_counter()
        for output in run_experiment(name, runtime, smoke=args.smoke):
            print(output.report())
            print()
        print(f"[{name} regenerated in {time.perf_counter() - start:.1f} s]")
        print()
    return 0
