"""Command-line front end for the experiment sweep engine.

Usage::

    python -m repro.experiments list                # available names
    python -m repro.experiments run fig12 --trace   # one figure, traced
    python -m repro.experiments                     # everything, serial
    python -m repro.experiments fig12 fig13         # legacy bare names
    python -m repro.experiments --parallel --cache-dir .repro-cache
    python -m repro.experiments --smoke --manifest-dir reports/manifests

``--parallel`` fans tasks out over a process pool; results are
bit-identical to ``--serial`` because every task's seed is fixed before
dispatch. ``--cache-dir`` turns on the content-addressed result cache
(second runs are nearly free); ``--no-cache`` bypasses it without
deleting anything. ``--manifest-dir`` writes one JSON run manifest per
sweep with per-task wall time, cache hits, and result hashes.

Observability (``repro.obs``) flags:

``--trace``
    Record nested span trees (engine + per-task) and print the engine
    span tree after each experiment; with ``--obs-dir DIR`` also write
    ``<sweep>.trace.jsonl``.
``--metrics``
    Collect the metrics registry (cache hits/misses, tasks dispatched,
    grid points evaluated, ...) and print it; with ``--obs-dir DIR``
    also write ``<sweep>.metrics.json``.
``--profile`` / ``--trace-malloc``
    Per-task cProfile aggregation / peak traced allocations.
"""

from __future__ import annotations

import argparse
import json
from typing import Any, Dict, List, Optional, Sequence

from repro.errors import ConfigurationError
from repro.experiments import registry
from repro.experiments.registry import ExperimentSpec
from repro.experiments.runner import ExperimentOutput
from repro.obs import (
    CProfileObserver,
    MetricsObserver,
    SweepObserver,
    TraceMallocObserver,
    TraceObserver,
    wall_clock_s,
)
from repro.runtime import RuntimeConfig

#: CLI alias -> registry spec, in registry order. Kept for backward
#: compatibility with callers that imported the old per-figure table.
EXPERIMENTS: Dict[str, ExperimentSpec] = {
    spec.alias: spec for spec in registry.REGISTRY if spec.alias != spec.name
}

ALL_NAMES = tuple(spec.alias for spec in registry.REGISTRY)


def build_parser() -> argparse.ArgumentParser:
    """The argument parser (shared with ``python -m repro``)."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the RFly paper's evaluation figures.",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        help=(
            "'list', 'run NAME [NAME ...]', or bare experiment names "
            "(default: all figures + ablations)"
        ),
    )
    parser.add_argument(
        "--list", action="store_true", help="list available experiments"
    )
    backend = parser.add_mutually_exclusive_group()
    backend.add_argument(
        "--parallel",
        action="store_true",
        help="fan tasks out over a process pool (bit-identical to serial)",
    )
    backend.add_argument(
        "--serial",
        action="store_true",
        help="run tasks in-process in task order (the default)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="worker count for --parallel (default: CPU count)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="content-addressed result cache directory (e.g. .repro-cache)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="bypass the cache entirely (neither read nor written)",
    )
    parser.add_argument(
        "--manifest-dir",
        default=None,
        metavar="DIR",
        help="write one JSON run manifest per sweep into this directory",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="reduced trial counts (fast CI pass; tables still deterministic)",
    )
    parser.add_argument(
        "--scenario",
        default=None,
        metavar="NAME",
        help=(
            "resolve geometry/traffic from this scenario (a registry "
            "name or a .toml/.json path) instead of the spec's default"
        ),
    )
    parser.add_argument(
        "--set",
        action="append",
        default=[],
        dest="scenario_sets",
        metavar="KEY=VALUE",
        help=(
            "dotted-path override applied to the resolved scenario "
            "(repeatable), e.g. --set traffic.load=8.0; values parse "
            "as JSON with a plain-string fallback"
        ),
    )
    parser.add_argument(
        "--hours",
        type=float,
        default=None,
        metavar="H",
        help="soak: virtual horizon in hours (experiments with an "
        "'hours' knob only)",
    )
    parser.add_argument(
        "--snapshot-every",
        type=float,
        default=None,
        dest="snapshot_every_s",
        metavar="SECONDS",
        help="soak: virtual seconds between metric snapshots",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=None,
        metavar="M",
        help="shard count (experiments with a scalar 'shards' knob only)",
    )
    parser.add_argument(
        "--trend-file",
        default=None,
        metavar="PATH",
        help="soak: trend file to append to (default: "
        "benchmarks/reports/SOAK_TREND.json)",
    )
    parser.add_argument(
        "--no-trend",
        action="store_true",
        help="soak: skip appending this run to the trend file",
    )
    parser.add_argument(
        "--trace",
        action="store_true",
        help="record span trees and print the engine span tree per sweep",
    )
    parser.add_argument(
        "--metrics",
        action="store_true",
        help="collect and print the metrics registry per sweep",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="aggregate per-task cProfile rows and print the top functions",
    )
    parser.add_argument(
        "--trace-malloc",
        action="store_true",
        help="record per-task peak traced allocations in the manifest",
    )
    parser.add_argument(
        "--trace-memory",
        action="store_true",
        dest="trace_malloc",
        help="deprecated alias for --trace-malloc",
    )
    parser.add_argument(
        "--obs-dir",
        default=None,
        metavar="DIR",
        help="write trace JSONL / metrics JSON files into this directory",
    )
    return parser


def runtime_from_args(args: argparse.Namespace) -> RuntimeConfig:
    """Translate CLI flags into a :class:`RuntimeConfig`."""
    return RuntimeConfig(
        backend="process" if args.parallel else "serial",
        max_workers=args.jobs,
        cache_dir=args.cache_dir,
        use_cache=not args.no_cache,
        manifest_dir=args.manifest_dir,
    )


def observers_from_args(args: argparse.Namespace) -> List[SweepObserver]:
    """Fresh observer instances for one experiment's sweeps."""
    observers: List[SweepObserver] = []
    if args.trace:
        observers.append(TraceObserver(out_dir=args.obs_dir))
    if args.metrics:
        observers.append(MetricsObserver(out_dir=args.obs_dir))
    if args.profile:
        observers.append(CProfileObserver())
    if args.trace_malloc:
        observers.append(TraceMallocObserver())
    return observers


def run_experiment(
    name: str,
    runtime: RuntimeConfig,
    smoke: bool = False,
    observers: Optional[Sequence[SweepObserver]] = None,
    **overrides: Any,
) -> List[ExperimentOutput]:
    """Run one named experiment and return its rendered outputs.

    Side-effect free — ``post_run`` hooks (e.g. the soak trend append)
    only fire from :func:`main`, so the golden and observer suites can
    call this freely.
    """
    return registry.run_experiment(
        name, runtime=runtime, smoke=smoke, observers=observers, **overrides
    ).outputs


def knob_overrides(
    parser: argparse.ArgumentParser,
    spec: ExperimentSpec,
    args: argparse.Namespace,
) -> Dict[str, Any]:
    """Scalar knob flags -> parameter overrides, validated per spec.

    A knob applies only when the spec's defaults carry the same key as
    a scalar (``--shards 4`` must not silently replace ``serve_scale``'s
    swept tuple); anything else is a usage error, not a typo-eating
    no-op.
    """
    knobs = {
        "hours": ("--hours", args.hours),
        "snapshot_every_s": ("--snapshot-every", args.snapshot_every_s),
        "shards": ("--shards", args.shards),
    }
    overrides: Dict[str, Any] = {}
    for key, (flag, value) in knobs.items():
        if value is None:
            continue
        default = spec.defaults.get(key)
        if key not in spec.defaults:
            parser.error(
                f"{flag} does not apply to experiment {spec.alias!r}"
            )
        if isinstance(default, (tuple, list)):
            parser.error(
                f"{flag} expects a scalar knob, but {spec.alias!r} "
                f"sweeps {key!r}; use the module API instead"
            )
        overrides[key] = value
    return overrides


def parse_set_overrides(items: Sequence[str]) -> Dict[str, Any]:
    """``KEY=VALUE`` tokens -> dotted-path override mapping.

    Values are parsed as JSON (``8.0`` -> float, ``true`` -> bool,
    ``[1,2]`` -> list) with a plain-string fallback, so unquoted names
    like ``--set traffic.mix=dense`` keep working.
    """
    overrides: Dict[str, Any] = {}
    for item in items:
        key, sep, raw = item.partition("=")
        if not sep or not key:
            raise ConfigurationError(
                f"--set expects KEY=VALUE, got {item!r}"
            )
        try:
            value: Any = json.loads(raw)
        except json.JSONDecodeError:
            value = raw
        overrides[key] = value
    return overrides


def scenario_override(
    spec: ExperimentSpec,
    scenario: Optional[str],
    set_items: Sequence[str],
) -> Optional[Any]:
    """The ``scenario=`` override implied by ``--scenario``/``--set``.

    Returns ``None`` when neither flag was given (spec default wins).
    With only ``--scenario`` the name/path passes through untouched —
    ``build_tasks`` resolves it. With ``--set`` the base scenario (the
    flag's, else the spec's) is resolved here and the dotted overrides
    are applied, yielding an anonymous :class:`Scenario`; precedence is
    therefore defaults < smoke < ``--scenario`` < ``--set``.
    """
    if scenario is None and not set_items:
        return None
    if not spec.scenario:
        raise ConfigurationError(
            f"experiment {spec.alias!r} does not resolve a single "
            "scenario; --scenario/--set do not apply"
        )
    base = scenario if scenario is not None else spec.scenario
    if not set_items:
        return base
    from repro.scenarios import registry as scenario_registry

    return scenario_registry.resolve(base).with_overrides(
        parse_set_overrides(set_items)
    )


def _observer_reports(observers: Sequence[SweepObserver]) -> List[str]:
    """Headed report blocks of the observers that produce one."""
    reports = []
    for observer in observers:
        if isinstance(observer, TraceObserver):
            reports.append(f"span tree:\n{observer.report()}")
        elif isinstance(observer, MetricsObserver):
            reports.append(f"metrics:\n{observer.report()}")
        elif isinstance(observer, CProfileObserver):
            reports.append(f"profile (top functions):\n{observer.report()}")
    return reports


def _resolve_names(
    parser: argparse.ArgumentParser, tokens: List[str]
) -> "tuple[List[str], bool]":
    """Interpret positional tokens -> (experiment names, list_requested).

    Supports the subcommand forms ``list`` and ``run NAME [NAME ...]``
    alongside the legacy bare-name form.
    """
    if tokens and tokens[0] == "list":
        if len(tokens) > 1:
            parser.error("'list' takes no further arguments")
        return [], True
    if tokens and tokens[0] == "run":
        tokens = tokens[1:]
    chosen = tokens or list(ALL_NAMES)
    for name in chosen:
        try:
            registry.get(name)
        except ConfigurationError as error:
            parser.error(str(error))
    return chosen, False


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)

    chosen, list_requested = _resolve_names(parser, args.experiments)
    if args.list or list_requested:
        for spec in registry.REGISTRY:
            print(f"{spec.alias:<10} {spec.description}")
        return 0

    runtime = runtime_from_args(args)
    for name in chosen:
        start_s = wall_clock_s()
        observers = observers_from_args(args)
        spec = registry.get(name)
        overrides: Dict[str, Any] = knob_overrides(parser, spec, args)
        try:
            scenario = scenario_override(
                spec, args.scenario, args.scenario_sets
            )
        except ConfigurationError as error:
            parser.error(str(error))
        if scenario is not None:
            overrides["scenario"] = scenario
        run = registry.run_experiment(
            spec, runtime=runtime, smoke=args.smoke,
            observers=observers, **overrides,
        )
        for output in run.outputs:
            print(output.report())
            print()
        for report in _observer_reports(observers):
            print(report)
            print()
        if spec.post_run is not None:
            message = spec.post_run(
                run,
                {
                    "trend_file": args.trend_file,
                    "no_trend": args.no_trend,
                },
            )
            if message:
                print(message)
                print()
        print(f"[{name} regenerated in {wall_clock_s() - start_s:.1f} s]")
        print()
    return 0
