"""Fig. 10: phase accuracy with and without the mirrored architecture.

The paper's procedure (§7.1b): the relay is wired between a USRP reader
and a tag 0.5 m away; 50 trials each start a query at a random initial
phase; the reader estimates the tag's channel and the offset is the
phase difference between estimates across trials. Mirrored median error
is 0.34 degrees (99th percentile 1.2); without mirroring the phase is
uniform-random.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Any, List, Mapping, Optional, Sequence

import numpy as np

import repro.channel.pathloss as pathloss
from repro.dsp.units import db_to_linear
from repro.experiments.runner import ExperimentOutput, fmt
from repro.gen2.backscatter import TagParams
from repro.hardware import ReaderFrontend, Synthesizer
from repro.reader import Reader
from repro.relay import MirroredRelay, NoMirrorRelay
from repro.relay.mirrored import RelayConfig
from repro.runtime import RuntimeConfig, SweepTask
from repro.scenarios import registry as scenario_registry
from repro.scenarios.spec import Scenario
from repro.scenarios.trials import bench_tag
from repro.sim.results import percentile

#: Wired attenuation between reader and relay; calibrated so the
#: receiver-noise-limited phase error matches the paper's sub-degree
#: regime.
WIRE_ATTENUATION_DB = 51.0
TAG_DISTANCE_M = 0.5
REPLY_BITS = (1, 0, 1, 1, 0, 0, 1, 0) * 2


@dataclass
class Fig10Result:
    """Per-trial phase-error samples (degrees)."""

    mirrored_errors_deg: np.ndarray
    no_mirror_errors_deg: np.ndarray


def _media(relay, half_link_amp: float, wire_amp: float):
    downlink = lambda s: relay.forward_downlink(s.scaled(wire_amp)).scaled(
        half_link_amp
    )
    uplink = lambda s: relay.forward_uplink(s.scaled(half_link_amp)).scaled(
        wire_amp
    )
    return downlink, uplink


def _angular_errors_deg(phases: np.ndarray) -> np.ndarray:
    """Deviations from the circular mean, in degrees."""
    mean_vector = np.mean(np.exp(1j * phases))
    reference = np.angle(mean_vector)
    deviations = np.angle(np.exp(1j * (phases - reference)))
    return np.rad2deg(np.abs(deviations))


def _link_amplitudes(
    tag_distance_m: float = TAG_DISTANCE_M,
) -> "tuple[float, float]":
    """(half-link amplitude, wire amplitude) of the bench setup."""
    wire_amp = float(np.sqrt(db_to_linear(-WIRE_ATTENUATION_DB)))
    half_amp = float(
        np.sqrt(
            db_to_linear(-pathloss.free_space_path_loss_db(tag_distance_m, 916e6))
        )
    )
    return half_amp, wire_amp


def _campaign_reader_ppm(campaign_seed: int) -> float:
    """The one crystal shared by every trial of a campaign (§7.1b)."""
    return float(np.random.default_rng(campaign_seed).uniform(-1.0, 1.0))


def _phase_trial(
    trial: int,
    campaign_seed: int,
    mirrored: bool,
    center_frequency_hz: float,
    tag_distance_m: float,
    seed: int,
) -> float:
    """One Fig. 10 trial -> the reader's estimated reply phase (rad).

    The campaign seed pins what is physically shared across trials (the
    reader crystal's ppm error; the one mirrored-relay build); the
    per-trial seed drives what varies per query (initial phase, noise,
    and — for the no-mirror baseline — the relay oscillator draw). The
    carrier and the tag's bench position come from the scenario.
    """
    rng = np.random.default_rng(seed)
    half_amp, wire_amp = _link_amplitudes(tag_distance_m)
    tag = bench_tag(tag_distance_m, rng)
    if mirrored:
        relay = MirroredRelay(
            center_frequency_hz,
            RelayConfig(),
            np.random.default_rng(campaign_seed + 1),
        )
    else:
        relay = NoMirrorRelay(
            center_frequency_hz,
            RelayConfig(),
            np.random.default_rng(campaign_seed + 100 + trial),
        )
    downlink, uplink = _media(relay, half_amp, wire_amp)
    frontend = ReaderFrontend(
        Synthesizer(
            center_frequency_hz,
            ppm_error=_campaign_reader_ppm(campaign_seed),
            phase_offset_rad=float(rng.uniform(0.0, 2.0 * np.pi)),
        ),
        tx_power_dbm=20.0,
        rng=rng,
    )
    reader = Reader(frontend, tag_params=TagParams(blf=500e3, miller_m=4))
    estimate = reader.measure_reply_phase(
        tag, REPLY_BITS, downlink=downlink, uplink=uplink
    )
    return float(estimate.phase_rad)


def build_tasks(
    n_trials: int = 50,
    seed: int = 0,
    scenario: "str | Scenario" = "rf_bench",
) -> List[SweepTask]:
    """The Fig. 10 phase-accuracy campaign as per-trial tasks.

    The shared physical state (one crystal, one mirrored build) derives
    from the campaign seed inside every task, so trials are independent
    and the sweep parallelizes; per-trial randomness is trial-indexed.
    The mirrored block comes first, then the no-mirror baseline. The
    carrier and the wired tag's position resolve from the bench
    scenario.
    """
    spec = scenario_registry.resolve(scenario)
    tag_distance_m = float(np.hypot(*spec.tags.positions_m[0]))
    return [
        SweepTask.make(
            _phase_trial,
            params={
                "trial": trial,
                "campaign_seed": seed,
                "mirrored": mirrored,
                "center_frequency_hz": float(
                    spec.radio.center_frequency_hz
                ),
                "tag_distance_m": tag_distance_m,
            },
            seed=seed * 10_007 + 2 * trial + (0 if mirrored else 1),
            label=f"fig10/{'mirrored' if mirrored else 'no_mirror'}/t{trial}",
        )
        for mirrored in (True, False)
        for trial in range(n_trials)
    ]


def reduce(
    payloads: Sequence[float], params: Mapping[str, Any]
) -> Fig10Result:
    """Split the payloads back into the two blocks and take deviations."""
    n_trials = int(params["n_trials"])
    mirrored_phases = np.asarray(payloads[:n_trials], dtype=float)
    no_mirror_phases = np.asarray(payloads[n_trials:], dtype=float)
    return Fig10Result(
        mirrored_errors_deg=_angular_errors_deg(mirrored_phases),
        no_mirror_errors_deg=_angular_errors_deg(no_mirror_phases),
    )


def run(
    n_trials: int = 50,
    seed: int = 0,
    runtime: Optional[RuntimeConfig] = None,
) -> Fig10Result:
    """Deprecated shim; use ``repro.experiments.registry`` instead."""
    warnings.warn(
        "fig10_phase.run() is deprecated; use "
        "repro.experiments.registry.run_experiment('fig10_phase', ...)",
        DeprecationWarning,
        stacklevel=2,
    )
    from repro.experiments import registry

    return registry.run_experiment(
        "fig10_phase", runtime=runtime, n_trials=n_trials, seed=seed
    ).result


def format_result(result: Fig10Result) -> ExperimentOutput:
    """Render the Fig. 10 comparison table."""
    rows = []
    for label, errors in (
        ("RFly (mirrored)", result.mirrored_errors_deg),
        ("no-mirror baseline", result.no_mirror_errors_deg),
    ):
        rows.append(
            [
                label,
                fmt(float(np.median(errors))),
                fmt(percentile(errors, 99.0)),
                fmt(float(np.max(errors))),
            ]
        )
    median_mirrored = float(np.median(result.mirrored_errors_deg))
    median_baseline = float(np.median(result.no_mirror_errors_deg))
    return ExperimentOutput(
        name="Fig. 10 — phase preservation",
        headers=["architecture", "median err (deg)", "p99 (deg)", "max (deg)"],
        rows=rows,
        paper_claims={
            "mirrored median": "0.34 deg",
            "mirrored p99": "1.2 deg",
            "no-mirror": "uniform random phase",
        },
        measured={
            "mirrored median": f"{median_mirrored:.3f} deg",
            "mirrored p99": f"{percentile(result.mirrored_errors_deg, 99.0):.3f} deg",
            "no-mirror": f"median deviation {median_baseline:.1f} deg",
        },
    )


if __name__ == "__main__":  # pragma: no cover - manual regeneration
    print(format_result(run(n_trials=50, seed=0)).report())
