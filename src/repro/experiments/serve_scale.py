"""`serve_scale`: shard count -> identical numbers, bounded churn.

Sweeps the shard count ``M`` of the consistent-hash serving fleet
(:mod:`repro.serve.shard`) over one fixed high-load workload. The
point of the table is deliberately *not* a throughput curve: under
partitioned capacity isolation the sharded service is bit-identical to
the unsharded one, so every service-level column (applied, p99,
degraded fraction, mean error) must be **exactly equal** across rows —
the ``invariant`` column checks it cell by cell. What sharding buys is
wall-clock parallelism (measured by ``benchmarks/test_serve_scale.py``
against real time) and bounded failover churn: the ``remigrated``
column reports the keyspace fraction a single shard loss would move,
which consistent hashing keeps near ``1/M``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Sequence, Tuple

import numpy as np

from repro.experiments.runner import ExperimentOutput, fmt
from repro.runtime import SweepTask
from repro.scenarios import registry as scenario_registry
from repro.scenarios.compiler import generate_workload
from repro.scenarios.spec import Scenario
from repro.serve.config import ServeConfig
from repro.serve.shard import ShardConfig, ShardRing, run_sharded_workload

DEFAULT_SHARDS: Tuple[int, ...] = (1, 2, 4, 8)

#: Synthetic keyspace size used to estimate single-shard-loss churn.
_CHURN_KEYS = 2000


@dataclass
class ServeScaleResult:
    """One summary row per swept shard count, in sweep order."""

    rows: List[Dict[str, Any]]


def remigrated_fraction(n_shards: int, keys: int = _CHURN_KEYS) -> float:
    """Keyspace fraction one shard loss moves at fleet size ``M``."""
    if n_shards < 2:
        return 1.0
    ring = ShardRing(n_shards)
    shrunk = ring.without(ring.shard_ids[0])
    universe = [f"key-{index:05d}" for index in range(keys)]
    moved = sum(1 for key in universe if ring.route(key) != shrunk.route(key))
    return moved / keys


def _scale_point(
    scenario_json: str,
    shards: int,
    n_tags: int,
    load: float,
    grid_resolution: float,
    latency_slo_s: float,
    seed: int,
) -> Dict[str, Any]:
    """Replay the shared workload through an ``M``-shard fleet."""
    spec = Scenario.from_json(scenario_json)
    workload = generate_workload(
        spec,
        n_tags=n_tags,
        seed=seed,
        load=load,
        grid_resolution=grid_resolution,
    )
    config = ServeConfig(
        frequency_hz=spec.radio.center_frequency_hz,
        latency_slo_s=latency_slo_s,
        capacity_mode="partitioned",
        session_ttl_s=1e9,
    )
    # Serial shard backend: sweep tasks may already be running inside a
    # process pool, and nothing virtual depends on the backend anyway.
    report = run_sharded_workload(
        workload, config, ShardConfig(n_shards=shards)
    )
    errors = np.asarray(sorted(report.errors_m.values()), dtype=float)
    populated = len(set(report.assignment.values()))
    return {
        "shards": int(shards),
        "populated": int(populated),
        "sessions": len(workload.grids),
        "offered": int(report.offered),
        "applied": int(report.service.updates_applied),
        "p99_latency_s": report.service.p99_latency_s,
        "degraded_fraction": report.degraded_fraction,
        "mean_error_m": float(errors.mean()) if errors.size else float("nan"),
        "remigrated": remigrated_fraction(shards),
    }


def build_tasks(
    shards: Sequence[int] = DEFAULT_SHARDS,
    n_tags: int = 4,
    load: float = 64.0,
    grid_resolution: float = 0.10,
    latency_slo_s: float = 0.25,
    seed: int = 0,
    scenario: "str | Scenario" = "conveyor_flow_through",
) -> List[SweepTask]:
    """One task per swept fleet size (the workload is shared)."""
    scenario_json = scenario_registry.resolve(scenario).to_json()
    return [
        SweepTask.make(
            _scale_point,
            params={
                "scenario_json": scenario_json,
                "shards": int(n_shards),
                "n_tags": n_tags,
                "load": float(load),
                "grid_resolution": grid_resolution,
                "latency_slo_s": latency_slo_s,
            },
            seed=seed,
            label=f"serve_scale/M{n_shards}",
        )
        for n_shards in shards
    ]


def reduce(
    payloads: Sequence[Dict[str, Any]], params: Mapping[str, Any]
) -> ServeScaleResult:
    """Per-M rows in task order, with the invariance check filled in."""
    rows = [dict(row) for row in payloads]
    if rows:
        reference = rows[0]
        watched = (
            "applied",
            "p99_latency_s",
            "degraded_fraction",
            "mean_error_m",
        )
        for row in rows:
            row["invariant"] = all(
                row[key] == reference[key]
                or (
                    isinstance(row[key], float)
                    and np.isnan(row[key])
                    and np.isnan(reference[key])
                )
                for key in watched
            )
    return ServeScaleResult(rows=rows)


def format_result(result: ServeScaleResult) -> ExperimentOutput:
    """Render the shard-count scaling table."""
    rows = [
        [
            str(int(row["shards"])),
            f"{int(row['populated'])}/{int(row['shards'])}",
            str(int(row["sessions"])),
            str(int(row["offered"])),
            str(int(row["applied"])),
            f"{row['p99_latency_s'] * 1e3:.2f}",
            fmt(row["degraded_fraction"]),
            fmt(row["mean_error_m"]),
            f"{row['remigrated']:.3f}",
            "yes" if row["invariant"] else "NO",
        ]
        for row in result.rows
    ]
    all_invariant = all(row["invariant"] for row in result.rows)
    max_churn = max(
        (row["remigrated"] for row in result.rows[1:]), default=1.0
    )
    measured = {
        "bit-identical across M": "yes" if all_invariant else "NO",
        "worst single-loss churn": f"{max_churn:.3f}",
    }
    return ExperimentOutput(
        name="serve_scale — consistent-hash sharding of the service",
        headers=[
            "M",
            "used",
            "sessions",
            "offered",
            "applied",
            "p99 (ms)",
            "degraded",
            "err (m)",
            "remigr",
            "invariant",
        ],
        rows=rows,
        paper_claims={
            "bit-identical across M": "yes (partitioned isolation)"
        },
        measured=measured,
        notes=(
            "Every service-level column must be exactly equal across "
            "fleet sizes (the hypothesis suite pins it bit for bit); "
            "`remigr` is the keyspace fraction one shard loss would "
            "move, which consistent hashing bounds near 1/M. Wall-clock "
            "scaling is measured separately by "
            "benchmarks/test_serve_scale.py."
        ),
    )


if __name__ == "__main__":  # pragma: no cover - manual regeneration
    from repro.experiments import registry

    print(registry.run_experiment("serve_scale").outputs[0].report())
