"""The soak regression ratchet: diff a run against the committed trend.

:func:`run_gate` compares the newest trend entry (or an explicit
current entry) against the most recent *earlier* entry with the same
parameter key and fails on any watched metric that regressed by
strictly more than its tolerance fraction. Direction matters —
throughput regresses downward, latency and error regress upward — and
the failure message names the metric and the percentage, so a CI log
reads "p99_latency_ms regressed 30.0% (tolerance 10.0%)" rather than
a bare exit code.

Edge semantics, pinned by tests:

* **Bootstrap**: no earlier entry shares the key (first soak of a new
  configuration, or a brand-new trend file) — the gate passes and says
  so. A ratchet with no baseline has nothing to ratchet.
* **Boundary**: a regression of *exactly* the tolerance passes; only
  strictly-greater regressions fail. The threshold is a contract, not
  a fuzzy zone.
* **Improvement**: a metric moving the good direction can never fail,
  however large the move.
* **Corruption**: an unreadable trend file is a
  :class:`~repro.errors.TrendError` naming the broken entry's index —
  exit code 2, distinct from a genuine regression's 1.

``python -m repro.soak gate`` is the CI entry point.
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.errors import GateError, TrendError
from repro.soak import trend as trend_mod

#: Default allowed regression, as a fraction of the baseline value.
DEFAULT_TOLERANCE_FRACTION = 0.10

#: Watched metric -> direction. ``"higher"`` means larger is better
#: (regression = drop); ``"lower"`` means smaller is better
#: (regression = rise).
WATCHED_METRICS: Dict[str, str] = {
    "throughput_per_s": "higher",
    "p99_latency_ms": "lower",
    "mean_error_m": "lower",
}


@dataclass(frozen=True)
class GateCheck:
    """One watched metric's verdict."""

    metric: str
    direction: str
    baseline: float
    current: float
    #: Signed fractional change in the *bad* direction; negative means
    #: the metric improved.
    regression_fraction: float
    tolerance_fraction: float
    passed: bool

    @property
    def message(self) -> str:
        """Human-readable verdict line."""
        pct = self.regression_fraction * 100.0
        tol = self.tolerance_fraction * 100.0
        if self.regression_fraction > 0:
            verb = "regressed" if not self.passed else "drifted"
            return (
                f"{self.metric} {verb} {pct:.1f}% "
                f"(tolerance {tol:.1f}%): "
                f"{self.baseline:.6g} -> {self.current:.6g}"
            )
        if self.regression_fraction == 0:
            return f"{self.metric} unchanged at {self.current:.6g}"
        return (
            f"{self.metric} improved {-pct:.1f}%: "
            f"{self.baseline:.6g} -> {self.current:.6g}"
        )


@dataclass(frozen=True)
class GateReport:
    """The whole gate run: verdict, checks, and why."""

    passed: bool
    bootstrap: bool
    key: Dict[str, Any]
    checks: Tuple[GateCheck, ...]
    reason: str

    @property
    def failures(self) -> Tuple[GateCheck, ...]:
        """Checks that failed."""
        return tuple(check for check in self.checks if not check.passed)

    def render(self) -> str:
        """Multi-line report for CI logs."""
        lines = [self.reason]
        lines.extend(f"  {check.message}" for check in self.checks)
        return "\n".join(lines)


def _regression_fraction(
    direction: str, baseline: float, current: float
) -> float:
    """Fractional change in the bad direction (negative = improved)."""
    scale = max(abs(baseline), 1e-12)
    delta = (current - baseline) / scale
    return -delta if direction == "higher" else delta


def compare_entries(
    baseline: Mapping[str, Any],
    current: Mapping[str, Any],
    tolerances: Optional[Mapping[str, float]] = None,
) -> Tuple[GateCheck, ...]:
    """Check every watched metric of ``current`` against ``baseline``."""
    tolerances = dict(tolerances or {})
    checks: List[GateCheck] = []
    for metric, direction in sorted(WATCHED_METRICS.items()):
        if metric not in baseline["metrics"]:
            raise GateError(
                f"baseline entry has no watched metric {metric!r}"
            )
        if metric not in current["metrics"]:
            raise GateError(
                f"current entry has no watched metric {metric!r}"
            )
        base = float(baseline["metrics"][metric])
        curr = float(current["metrics"][metric])
        tolerance = float(
            tolerances.get(metric, DEFAULT_TOLERANCE_FRACTION)
        )
        if tolerance < 0:
            raise GateError(
                f"tolerance for {metric!r} must be non-negative"
            )
        regression = _regression_fraction(direction, base, curr)
        checks.append(
            GateCheck(
                metric=metric,
                direction=direction,
                baseline=base,
                current=curr,
                regression_fraction=regression,
                tolerance_fraction=tolerance,
                # Exactly-at-threshold passes: strict inequality.
                passed=regression <= tolerance,
            )
        )
    return tuple(checks)


def run_gate(
    trend_path: "str | Path",
    current: Optional[Mapping[str, Any]] = None,
    tolerances: Optional[Mapping[str, float]] = None,
) -> GateReport:
    """Gate ``current`` (default: the trend's newest entry) on the trend.

    The baseline is the most recent entry *before* the current one
    whose parameter ``key`` matches exactly — smoke and full-horizon
    lineages never cross-compare. No such entry means bootstrap: the
    gate passes with an explicit reason instead of failing a run that
    has nothing to be compared against.
    """
    doc = trend_mod.load_trend(trend_path)
    entries: List[Dict[str, Any]] = doc["entries"]
    if current is None:
        if not entries:
            return GateReport(
                passed=True,
                bootstrap=True,
                key={},
                checks=(),
                reason=(
                    f"PASS (bootstrap): trend file {trend_path} has no "
                    "entries yet; nothing to gate against"
                ),
            )
        current = entries[-1]
        before_index: Optional[int] = len(entries) - 1
    else:
        trend_mod.validate_entry(current, index=-1)
        before_index = None
    key = dict(current["key"])
    baseline = trend_mod.matching_baseline(doc, key, before_index)
    if baseline is None:
        return GateReport(
            passed=True,
            bootstrap=True,
            key=key,
            checks=(),
            reason=(
                "PASS (bootstrap): no earlier trend entry matches this "
                f"run's key {json.dumps(key, sort_keys=True)}"
            ),
        )
    checks = compare_entries(baseline, current, tolerances)
    failures = [check for check in checks if not check.passed]
    if failures:
        worst = max(failures, key=lambda c: c.regression_fraction)
        reason = f"FAIL: {worst.message}"
    else:
        reason = (
            f"PASS: {len(checks)} watched metric(s) within tolerance "
            "of the committed baseline"
        )
    return GateReport(
        passed=not failures,
        bootstrap=False,
        key=key,
        checks=checks,
        reason=reason,
    )


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI for ``python -m repro.soak gate``.

    Exit codes: 0 pass (including bootstrap), 1 regression, 2 unusable
    inputs (corrupt trend, bad tolerance, missing current file).
    """
    parser = argparse.ArgumentParser(
        prog="python -m repro.soak gate",
        description=(
            "Diff a soak run against the committed trend and fail on "
            "regressions beyond tolerance."
        ),
    )
    parser.add_argument(
        "--trend",
        default=trend_mod.TREND_FILENAME,
        help="path to the committed SOAK_TREND.json",
    )
    parser.add_argument(
        "--current",
        default=None,
        help=(
            "path to a JSON file holding one trend entry to gate "
            "(default: the trend's newest entry)"
        ),
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=DEFAULT_TOLERANCE_FRACTION,
        help="allowed regression fraction for every watched metric",
    )
    args = parser.parse_args(argv)
    current: Optional[Dict[str, Any]] = None
    try:
        if args.current is not None:
            current_path = Path(args.current)
            if not current_path.exists():
                raise GateError(
                    f"current entry file not found: {current_path}"
                )
            current = json.loads(current_path.read_text(encoding="utf-8"))
        tolerances = {
            metric: args.tolerance for metric in WATCHED_METRICS
        }
        report = run_gate(args.trend, current, tolerances)
    except (TrendError, GateError, json.JSONDecodeError) as error:
        print(f"ERROR: {error}", file=sys.stderr)
        return 2
    print(report.render())
    return 0 if report.passed else 1
