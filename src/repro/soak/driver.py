"""The virtual-clock soak driver: hours of traffic as seeded epoch tasks.

A soak run models the paper's warehouse deployment story — continuous
inventory over hours of flight — as a sequence of **epochs**, one per
snapshot interval: every ``snapshot_every_s`` of virtual time the
drone fleet flies one inventory pass of the scenario and the resulting
Gen2 read stream replays through the *sharded* serving layer with the
run's fault plan engaged (faults shape the stream itself, exactly as
in the ``resilience`` experiment). Each epoch reduces to one
:class:`~repro.soak.snapshot.SoakSnapshot`.

Epochs ride the :mod:`repro.runtime` sweep engine as ordinary
:class:`~repro.runtime.SweepTask` s: epoch seeds are spawned up front
from the run seed via the engine's ``SeedSequence`` discipline, so a
soak is a pure function of its :class:`SoakConfig` and the serial and
process-pool backends produce bit-identical snapshot streams
(hypothesis-pinned). Everything downstream — the trend file, the gate
— therefore diffs behavior, never scheduling noise.
"""

from __future__ import annotations

import math
import tempfile
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Tuple, Union

import numpy as np

from repro import faults
from repro.errors import ConfigurationError
from repro.mobility.groundtruth import OptiTrack
from repro.obs import tracing
from repro.runtime import SweepTask
from repro.runtime.cache import ResultCache
from repro.runtime.seeding import spawn_task_seeds
from repro.scenarios import registry as scenario_registry
from repro.scenarios.spec import Scenario
from repro.serve.config import ServeConfig
from repro.serve.shard import ShardConfig, run_sharded_workload
from repro.soak.snapshot import SoakSnapshot

#: Named fault plans engaged for the whole soak horizon. Rates are
#: per-eligible-call Bernoulli probabilities (see ``repro.faults``),
#: chosen to model a realistic warehouse shift rather than a stress
#: test: occasional link blockage, sporadic pose dropouts, rare frame
#: corruption, and (beyond ``none``) a bounded number of worker
#: reboots exercising checkpoint failover.
FAULT_PROFILES: Dict[str, faults.FaultPlan] = {
    "none": faults.FaultPlan(),
    "calm": faults.FaultPlan(
        (
            faults.FaultSpec("channel.link", "drop", rate=0.02),
            faults.FaultSpec("mobility.pose", "pose_loss", rate=0.01),
            faults.FaultSpec(
                "gen2.frame", "corrupt_bits", rate=0.005, magnitude=2.0
            ),
            faults.FaultSpec(
                "serve.shard", "reboot", rate=0.002, max_injections=1
            ),
        )
    ),
    "stormy": faults.FaultPlan(
        (
            faults.FaultSpec("channel.link", "drop", rate=0.08),
            faults.FaultSpec("mobility.pose", "pose_loss", rate=0.04),
            faults.FaultSpec(
                "gen2.frame", "corrupt_bits", rate=0.02, magnitude=2.0
            ),
            faults.FaultSpec(
                "serve.shard", "reboot", rate=0.01, max_injections=2
            ),
            faults.FaultSpec(
                "serve.ingest", "stall", rate=0.02, magnitude=0.02
            ),
        )
    ),
}


def fault_plan_for(profile: str) -> faults.FaultPlan:
    """The fault plan of one named soak profile."""
    plan = FAULT_PROFILES.get(profile)
    if plan is None:
        known = ", ".join(sorted(FAULT_PROFILES))
        raise ConfigurationError(
            f"unknown soak fault profile {profile!r}; choices: {known}"
        )
    return plan


@dataclass(frozen=True)
class SoakConfig:
    """Everything one soak run depends on (and nothing else)."""

    scenario: Union[str, Scenario] = "warehouse_twin_aisle"
    #: Virtual soak horizon. ``n_epochs`` intervals of
    #: ``snapshot_every_s`` cover it (the last one may overhang).
    hours: float = 2.0
    snapshot_every_s: float = 600.0
    shards: int = 2
    n_tags: "int | None" = None
    load: float = 8.0
    grid_resolution: float = 0.10
    latency_slo_s: float = 0.25
    fault_profile: str = "calm"
    seed: int = 0

    def __post_init__(self) -> None:
        if self.hours <= 0:
            raise ConfigurationError("soak horizon must be positive")
        if self.snapshot_every_s <= 0:
            raise ConfigurationError("snapshot interval must be positive")
        if self.shards < 1:
            raise ConfigurationError("soak needs at least one shard")
        if self.load <= 0:
            raise ConfigurationError("load factor must be positive")
        fault_plan_for(self.fault_profile)  # validates the name

    @property
    def n_epochs(self) -> int:
        """Snapshot intervals covering the horizon (at least one)."""
        return max(1, math.ceil(self.hours * 3600.0 / self.snapshot_every_s))


def soak_epoch(
    scenario_json: str,
    epoch: int,
    interval_s: float,
    shards: int,
    n_tags: "int | None",
    load: float,
    grid_resolution: float,
    latency_slo_s: float,
    fault_plan_json: str,
    seed: int,
) -> Dict[str, Any]:
    """One snapshot interval: fly a pass, serve it, snapshot the service.

    The fault plan is engaged *around workload generation* — injected
    link blockage, pose loss, and frame corruption shape the event
    stream — and handed to the sharded replay, which spawns per-shard
    engines from this epoch's seed (worker reboots land
    deterministically). Checkpoints live in a per-epoch temporary
    cache so injected kills exercise the restore path.

    Returns the snapshot as a plain dict (the sweep task payload).
    """
    spec = Scenario.from_json(scenario_json)
    plan = faults.FaultPlan.from_json(fault_plan_json)
    config = ServeConfig(
        frequency_hz=spec.radio.center_frequency_hz,
        latency_slo_s=latency_slo_s,
        capacity_mode="partitioned",
        session_ttl_s=1e9,
    )
    with tracing.span("soak.epoch", epoch=epoch, shards=shards):
        with tempfile.TemporaryDirectory(prefix="soak-ckpt-") as tmp_dir:
            with faults.engaged(plan, seed=seed) as engine:
                # Imported lazily like the other serve callers: the
                # compiler's workload dataclasses live in serve.traffic.
                from repro.scenarios.compiler import generate_workload

                workload = generate_workload(
                    spec,
                    n_tags=n_tags,
                    seed=seed,
                    load=load,
                    grid_resolution=grid_resolution,
                    tracker=OptiTrack(),
                )
                report = run_sharded_workload(
                    workload,
                    config,
                    ShardConfig(n_shards=shards, seed=seed),
                    cache=ResultCache(tmp_dir),
                    fault_plan=plan,
                )
            injected = len(engine.injections) + report.injected
    service = report.service
    return SoakSnapshot(
        epoch=int(epoch),
        start_s=float(epoch) * float(interval_s),
        interval_s=float(interval_s),
        sessions=len(workload.grids),
        fixes=len(report.errors_m),
        offered=report.offered,
        applied=service.updates_applied,
        degraded=service.updates_degraded,
        shed=service.updates_shed,
        rejected=service.updates_rejected,
        lost=service.updates_lost,
        handoffs=service.handoffs,
        recoveries=service.recoveries,
        injected=injected,
        busy_s=service.busy_s,
        latency_samples_s=report.latency_samples_s,
        error_samples_m=tuple(
            sorted(float(e) for e in report.errors_m.values())
        ),
    ).to_dict()


def build_epoch_tasks(config: SoakConfig) -> List[SweepTask]:
    """One seeded sweep task per snapshot interval.

    Epoch seeds are spawned from ``config.seed`` before dispatch (the
    engine's ``SeedSequence`` discipline), so epoch ``i``'s stream
    depends only on ``(seed, i)`` — not on the backend, worker count,
    or which other epochs ran.
    """
    spec = scenario_registry.resolve(config.scenario)
    scenario_json = spec.to_json()
    plan_json = fault_plan_for(config.fault_profile).to_json()
    epoch_seeds = spawn_task_seeds(config.seed, config.n_epochs)
    return [
        SweepTask.make(
            soak_epoch,
            params={
                "scenario_json": scenario_json,
                "epoch": int(epoch),
                "interval_s": float(config.snapshot_every_s),
                "shards": int(config.shards),
                "n_tags": config.n_tags,
                "load": float(config.load),
                "grid_resolution": float(config.grid_resolution),
                "latency_slo_s": float(config.latency_slo_s),
                "fault_plan_json": plan_json,
            },
            seed=epoch_seeds[epoch],
            label=f"soak/e{epoch:03d}",
        )
        for epoch in range(config.n_epochs)
    ]


def snapshots_from_payloads(
    payloads: "Mapping[int, Any] | List[Any] | Tuple[Any, ...]",
) -> List[SoakSnapshot]:
    """Task payload dicts (in any order) -> typed snapshots."""
    if isinstance(payloads, Mapping):
        items: List[Any] = [payloads[key] for key in sorted(payloads)]
    else:
        items = list(payloads)
    return [SoakSnapshot.from_dict(item) for item in items]


def epoch_axis_s(config: SoakConfig) -> "np.ndarray":
    """Virtual start times of each snapshot interval."""
    return np.arange(config.n_epochs, dtype=float) * config.snapshot_every_s
