"""Long-horizon soak runs over the serving stack, with a regression gate.

The repo's benchmarks emit point-in-time ``BENCH_*.json`` reports;
this package is what tracks the serving stack *across* PRs. A soak run
replays hours of virtual-clock Gen2 traffic through the sharded serve
layer over a registry scenario (fleet worlds included) with a fault
plan engaged at realistic rates, snapshotting service metrics every
``snapshot_every_s`` of virtual time:

* :mod:`repro.soak.snapshot` — the per-interval :class:`SoakSnapshot`
  and its order-insensitive reduction to a :class:`SoakSummary`.
* :mod:`repro.soak.driver` — :class:`SoakConfig` and the epoch tasks
  that ride the :mod:`repro.runtime` sweep engine (one seeded,
  picklable task per snapshot interval; serial == process bit-exact).
* :mod:`repro.soak.trend` — the compact canonical trend file
  (``benchmarks/reports/SOAK_TREND.json``) appended once per PR.
* :mod:`repro.soak.gate` — the CI ratchet: diff the current summary
  against the committed trend and fail on >X% regressions in
  throughput / p99 / error, with explicit bootstrap behavior when no
  comparable baseline exists.

``python -m repro.experiments run soak`` drives a run end to end;
``python -m repro.soak gate`` executes the ratchet.
"""

from __future__ import annotations

from repro.soak.driver import (
    FAULT_PROFILES,
    SoakConfig,
    build_epoch_tasks,
    fault_plan_for,
)
from repro.soak.gate import (
    DEFAULT_TOLERANCE_FRACTION,
    WATCHED_METRICS,
    GateCheck,
    GateReport,
    run_gate,
)
from repro.soak.snapshot import (
    SoakSnapshot,
    SoakSummary,
    summarize_snapshots,
)
from repro.soak.trend import (
    TREND_FILENAME,
    append_entry,
    entry_from_summary,
    load_trend,
    new_trend,
)

__all__ = [
    "FAULT_PROFILES",
    "SoakConfig",
    "build_epoch_tasks",
    "fault_plan_for",
    "DEFAULT_TOLERANCE_FRACTION",
    "WATCHED_METRICS",
    "GateCheck",
    "GateReport",
    "run_gate",
    "SoakSnapshot",
    "SoakSummary",
    "summarize_snapshots",
    "TREND_FILENAME",
    "append_entry",
    "entry_from_summary",
    "load_trend",
    "new_trend",
]
