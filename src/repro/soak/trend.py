"""The committed soak trend file: compact, canonical, append-per-PR.

``benchmarks/reports/SOAK_TREND.json`` is the bench trajectory the
repo was missing: one :func:`entry_from_summary` record per landed PR,
appended by ``python -m repro.experiments run soak`` and diffed by the
gate. The file is a ``kind="soak_trend"`` report under the shared
:mod:`repro.obs.reports` schema, serialized canonically (key-sorted,
NaN-free, newline-terminated) and written atomically — the trend is
the regression baseline, so a half-written file must be impossible.

Entries carry no timestamps or host facts: an entry is a pure function
of the soak parameters (its ``key``) and the virtual-clock results
(its ``counts``/``metrics``), so re-running the same soak appends
nothing (:func:`append_entry` is idempotent on identical tails) and a
diff in the trend file is always a behavior change.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Tuple, Union

from repro.errors import TrendError
from repro.obs.reports import (
    REPORT_SCHEMA_VERSION,
    canonical_json,
    validate_report,
    write_json_atomic,
)
from repro.soak.snapshot import SoakSummary

#: Canonical location of the committed trend, relative to the repo root.
TREND_FILENAME = "benchmarks/reports/SOAK_TREND.json"

#: The soak parameters that must match for two entries to be
#: comparable; the gate only diffs entries with equal keys.
KEY_FIELDS: Tuple[str, ...] = (
    "scenario",
    "hours",
    "snapshot_every_s",
    "shards",
    "n_tags",
    "load",
    "grid_resolution",
    "fault_profile",
    "seed",
)


def new_trend() -> Dict[str, Any]:
    """An empty trend document."""
    return {
        "schema_version": REPORT_SCHEMA_VERSION,
        "name": "soak_trend",
        "kind": "soak_trend",
        "entries": [],
    }


def entry_key(params: Mapping[str, Any]) -> Dict[str, Any]:
    """The comparability key of a soak run's parameters.

    ``scenario`` may arrive as a registry name or a resolved
    :class:`~repro.scenarios.spec.Scenario`; anonymous specs key by
    their own name field so overridden worlds never silently compare
    against the library world they started from.
    """
    key: Dict[str, Any] = {}
    for field in KEY_FIELDS:
        value = params.get(field)
        if field == "scenario" and value is not None:
            value = getattr(value, "name", value)
        key[field] = value
    return key


def entry_from_summary(
    summary: SoakSummary, params: Mapping[str, Any]
) -> Dict[str, Any]:
    """One trend entry: the run's key, counts, and gated metrics.

    Counts are ints (schema-exempt); every float metric carries its
    unit suffix, which :func:`repro.obs.reports.validate_metrics`
    enforces on the committed file in tier-1.
    """
    return {
        "schema_version": REPORT_SCHEMA_VERSION,
        "key": entry_key(params),
        "counts": {
            "epochs": summary.epochs,
            "sessions": summary.sessions,
            "fixes": summary.fixes,
            "offered": summary.offered,
            "applied": summary.applied,
            "degraded": summary.degraded,
            "shed": summary.shed,
            "rejected": summary.rejected,
            "lost": summary.lost,
            "handoffs": summary.handoffs,
            "recoveries": summary.recoveries,
            "injected": summary.injected,
        },
        "metrics": {
            "virtual_hours": float(summary.virtual_hours),
            "busy_s": float(summary.busy_s),
            "throughput_per_s": float(summary.throughput_per_s),
            "p50_latency_ms": float(summary.p50_latency_ms),
            "p99_latency_ms": float(summary.p99_latency_ms),
            "mean_error_m": float(summary.mean_error_m),
            "max_error_m": float(summary.max_error_m),
            "degraded_fraction": float(summary.degraded_fraction),
            "shed_fraction": float(summary.shed_fraction),
            "failure_fraction": float(summary.failure_fraction),
        },
    }


def validate_entry(entry: Any, index: int) -> None:
    """One entry's structural check, errors naming the entry index."""
    if not isinstance(entry, Mapping):
        raise TrendError(
            f"trend entry {index} is not an object "
            f"(got {type(entry).__name__})"
        )
    for field in ("key", "counts", "metrics"):
        if not isinstance(entry.get(field), Mapping):
            raise TrendError(
                f"trend entry {index} is missing its {field!r} object"
            )
    for name, value in entry["metrics"].items():
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            raise TrendError(
                f"trend entry {index} metric {name!r} is not a number "
                f"(got {type(value).__name__})"
            )


def load_trend(path: Union[str, Path]) -> Dict[str, Any]:
    """Read + validate the trend file; a missing file is an empty trend.

    Corruption is reported precisely: unparseable JSON carries the
    decoder's position, a malformed entry carries its index — the gate
    surfaces these verbatim so a truncated commit is findable at a
    glance.
    """
    path = Path(path)
    if not path.exists():
        return new_trend()
    try:
        doc = json.loads(path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as error:
        raise TrendError(
            f"trend file {path} is not valid JSON: {error}"
        ) from error
    try:
        validate_report(doc, name="soak_trend")
    except TrendError:
        raise
    except Exception as error:  # ReportError and friends
        raise TrendError(f"trend file {path}: {error}") from error
    for index, entry in enumerate(doc["entries"]):
        validate_entry(entry, index)
    return doc


def append_entry(
    path: Union[str, Path], entry: Mapping[str, Any]
) -> Tuple[Dict[str, Any], bool]:
    """Append one entry to the trend at ``path``, atomically.

    Idempotent on identical tails: re-running the same soak against
    the same code appends nothing, so CI reruns never grow the file.
    Returns ``(trend_document, appended)``.
    """
    validate_entry(entry, index=-1)
    doc = load_trend(path)
    entries: List[Dict[str, Any]] = doc["entries"]
    normalized = json.loads(canonical_json(dict(entry)))
    if entries and entries[-1] == normalized:
        return doc, False
    entries.append(normalized)
    write_json_atomic(path, doc)
    return doc, True


def matching_baseline(
    doc: Mapping[str, Any],
    key: Mapping[str, Any],
    before_index: Optional[int] = None,
) -> Optional[Dict[str, Any]]:
    """The most recent entry with ``key``, optionally before an index."""
    entries = doc.get("entries", [])
    stop = len(entries) if before_index is None else before_index
    for entry in reversed(entries[:stop]):
        if entry.get("key") == dict(key):
            return entry
    return None
