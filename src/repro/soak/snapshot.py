"""Per-interval soak snapshots and their order-insensitive reduction.

A :class:`SoakSnapshot` is one snapshot interval's worth of service
metrics — counters plus the *raw sorted* latency and error samples, so
whole-run percentiles are computed from the pooled population instead
of averaging per-interval percentiles (the same sample-pooling rule
:func:`repro.serve.shard.merge_service_reports` applies across
shards).

:func:`summarize_snapshots` folds any permutation of the same
snapshots to the same :class:`SoakSummary`: counters add, samples pool
and re-sort, and epoch coverage is rebuilt from the snapshots' own
indices. The hypothesis suite pins the permutation invariance — it is
what makes the summary independent of sweep backend and task
scheduling.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Mapping, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class SoakSnapshot:
    """Service metrics for one snapshot interval of a soak run."""

    #: Zero-based snapshot interval index.
    epoch: int
    #: Virtual start of the interval within the soak horizon.
    start_s: float
    #: Virtual length of the interval.
    interval_s: float
    #: Sessions opened / sessions that produced a final fix.
    sessions: int
    fixes: int
    #: Update-stream accounting (offered = generated events).
    offered: int
    applied: int
    degraded: int
    shed: int
    rejected: int
    lost: int
    #: Fleet/fault accounting.
    handoffs: int
    recoveries: int
    injected: int
    #: Virtual busy time of the service during the interval.
    busy_s: float
    #: Raw per-update latency samples, sorted ascending.
    latency_samples_s: Tuple[float, ...]
    #: Raw per-session localization errors, sorted ascending.
    error_samples_m: Tuple[float, ...]

    def __post_init__(self) -> None:
        for field_name in ("latency_samples_s", "error_samples_m"):
            samples = tuple(
                float(sample) for sample in getattr(self, field_name)
            )
            if any(
                samples[i] > samples[i + 1]
                for i in range(len(samples) - 1)
            ):
                samples = tuple(sorted(samples))
            object.__setattr__(self, field_name, samples)

    def to_dict(self) -> Dict[str, Any]:
        """JSON/pickle-friendly payload (the sweep task's return value)."""
        return {
            "epoch": self.epoch,
            "start_s": self.start_s,
            "interval_s": self.interval_s,
            "sessions": self.sessions,
            "fixes": self.fixes,
            "offered": self.offered,
            "applied": self.applied,
            "degraded": self.degraded,
            "shed": self.shed,
            "rejected": self.rejected,
            "lost": self.lost,
            "handoffs": self.handoffs,
            "recoveries": self.recoveries,
            "injected": self.injected,
            "busy_s": self.busy_s,
            "latency_samples_s": list(self.latency_samples_s),
            "error_samples_m": list(self.error_samples_m),
        }

    @staticmethod
    def from_dict(data: Mapping[str, Any]) -> "SoakSnapshot":
        """Inverse of :meth:`to_dict` (lossless)."""
        try:
            return SoakSnapshot(
                epoch=int(data["epoch"]),
                start_s=float(data["start_s"]),
                interval_s=float(data["interval_s"]),
                sessions=int(data["sessions"]),
                fixes=int(data["fixes"]),
                offered=int(data["offered"]),
                applied=int(data["applied"]),
                degraded=int(data["degraded"]),
                shed=int(data["shed"]),
                rejected=int(data["rejected"]),
                lost=int(data["lost"]),
                handoffs=int(data["handoffs"]),
                recoveries=int(data["recoveries"]),
                injected=int(data["injected"]),
                busy_s=float(data["busy_s"]),
                latency_samples_s=tuple(
                    float(v) for v in data["latency_samples_s"]
                ),
                error_samples_m=tuple(
                    float(v) for v in data["error_samples_m"]
                ),
            )
        except KeyError as error:
            raise ConfigurationError(
                f"soak snapshot payload is missing field {error}"
            ) from error


@dataclass(frozen=True)
class SoakSummary:
    """One soak run reduced to the trend file's compact metric set."""

    epochs: int
    virtual_hours: float
    sessions: int
    fixes: int
    offered: int
    applied: int
    degraded: int
    shed: int
    rejected: int
    lost: int
    handoffs: int
    recoveries: int
    injected: int
    busy_s: float
    throughput_per_s: float
    p50_latency_ms: float
    p99_latency_ms: float
    mean_error_m: float
    max_error_m: float
    degraded_fraction: float
    shed_fraction: float
    failure_fraction: float


def _percentile_ms(samples: "np.ndarray", q: float) -> float:
    """Percentile of pooled latency samples, in milliseconds."""
    if samples.size == 0:
        return 0.0
    return float(np.percentile(samples, q)) * 1e3


def summarize_snapshots(
    snapshots: Sequence[SoakSnapshot],
) -> SoakSummary:
    """Fold snapshots into the run summary, order-insensitively.

    Counters add; percentiles and error statistics come from the
    pooled, re-sorted sample populations, so any permutation of the
    same snapshots reduces to a bitwise-identical summary (hypothesis-
    pinned). Duplicate epoch indices are rejected loudly — they would
    silently double-count an interval.
    """
    if not snapshots:
        raise ConfigurationError("cannot summarize zero soak snapshots")
    epochs = sorted(snapshot.epoch for snapshot in snapshots)
    if len(set(epochs)) != len(epochs):
        raise ConfigurationError(
            f"duplicate snapshot epochs in soak reduction: {epochs}"
        )
    latencies = np.sort(
        np.asarray(
            [
                sample
                for snapshot in snapshots
                for sample in snapshot.latency_samples_s
            ],
            dtype=float,
        )
    )
    errors = np.sort(
        np.asarray(
            [
                sample
                for snapshot in snapshots
                for sample in snapshot.error_samples_m
            ],
            dtype=float,
        )
    )
    sessions = sum(snapshot.sessions for snapshot in snapshots)
    fixes = sum(snapshot.fixes for snapshot in snapshots)
    offered = sum(snapshot.offered for snapshot in snapshots)
    applied = sum(snapshot.applied for snapshot in snapshots)
    degraded = sum(snapshot.degraded for snapshot in snapshots)
    shed = sum(snapshot.shed for snapshot in snapshots)
    # Sorting canonicalizes float summation order: busy times add the
    # same whichever way the snapshots arrive.
    busy_s = float(
        np.sum(np.sort(np.asarray([s.busy_s for s in snapshots])))
    )
    virtual_s = float(
        np.sum(np.sort(np.asarray([s.interval_s for s in snapshots])))
    )
    return SoakSummary(
        epochs=len(snapshots),
        virtual_hours=virtual_s / 3600.0,
        sessions=sessions,
        fixes=fixes,
        offered=offered,
        applied=applied,
        degraded=degraded,
        shed=shed,
        rejected=sum(snapshot.rejected for snapshot in snapshots),
        lost=sum(snapshot.lost for snapshot in snapshots),
        handoffs=sum(snapshot.handoffs for snapshot in snapshots),
        recoveries=sum(snapshot.recoveries for snapshot in snapshots),
        injected=sum(snapshot.injected for snapshot in snapshots),
        busy_s=busy_s,
        throughput_per_s=applied / max(busy_s, 1e-12),
        p50_latency_ms=_percentile_ms(latencies, 50.0),
        p99_latency_ms=_percentile_ms(latencies, 99.0),
        mean_error_m=float(errors.mean()) if errors.size else 0.0,
        max_error_m=float(errors.max()) if errors.size else 0.0,
        degraded_fraction=degraded / max(1, applied),
        shed_fraction=shed / max(1, offered),
        failure_fraction=(sessions - fixes) / max(1, sessions),
    )
