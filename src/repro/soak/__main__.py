"""``python -m repro.soak`` — subcommand dispatch (currently: gate)."""

from __future__ import annotations

import sys
from typing import Optional, Sequence

from repro.soak import gate


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Dispatch ``gate`` (the only subcommand so far)."""
    argv = list(sys.argv[1:] if argv is None else argv)
    if not argv or argv[0] in ("-h", "--help"):
        print(
            "usage: python -m repro.soak gate [--trend PATH] "
            "[--current PATH] [--tolerance FRACTION]",
            file=sys.stderr,
        )
        return 0 if argv else 2
    command, rest = argv[0], argv[1:]
    if command == "gate":
        return gate.main(rest)
    print(f"unknown command {command!r}; try 'gate'", file=sys.stderr)
    return 2


if __name__ == "__main__":
    raise SystemExit(main())
