"""The drone platform (Parrot Bebop 2 of paper §6.2).

The drone matters to the system in three ways: its payload ceiling is
what forces the relay (35 g) instead of a full reader (>500 g, §3); its
battery powers the relay through a DC-DC converter (<3% of capacity);
and its hover jitter perturbs the SAR antenna positions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.constants import (
    DRONE_BATTERY_MAX_CURRENT_A,
    DRONE_BATTERY_VOLTAGE_V,
    DRONE_MAX_PAYLOAD_GRAMS,
    DRONE_SPEED_MPS,
    RELAY_POWER_CONSUMPTION_W,
    RELAY_WEIGHT_GRAMS,
)
from repro.errors import MobilityError, PayloadError
from repro.mobility.trajectory import Trajectory, TrajectorySample


@dataclass
class Drone:
    """An indoor drone carrying a payload along a flight plan.

    Parameters
    ----------
    payload_grams:
        Attached payload weight; must not exceed the platform limit.
    payload_power_w:
        Power the payload draws from the drone battery.
    hover_jitter_std_m:
        Standard deviation of position error around the planned path
        (indoor drones hold position to a few centimeters).
    """

    payload_grams: float = RELAY_WEIGHT_GRAMS
    payload_power_w: float = RELAY_POWER_CONSUMPTION_W
    max_payload_grams: float = DRONE_MAX_PAYLOAD_GRAMS
    battery_voltage_v: float = DRONE_BATTERY_VOLTAGE_V
    battery_max_current_a: float = DRONE_BATTERY_MAX_CURRENT_A
    speed_mps: float = DRONE_SPEED_MPS
    hover_jitter_std_m: float = 0.02

    def __post_init__(self) -> None:
        if self.payload_grams < 0 or self.payload_power_w < 0:
            raise PayloadError("payload weight and power must be >= 0")
        if self.payload_grams > self.max_payload_grams:
            raise PayloadError(
                f"payload {self.payload_grams} g exceeds the "
                f"{self.max_payload_grams} g ceiling — this is why RFly "
                "mounts a relay, not a reader (paper §3)"
            )
        if self.hover_jitter_std_m < 0:
            raise MobilityError("hover jitter must be >= 0")
        if self.payload_current_a > self.battery_max_current_a:
            raise PayloadError("payload current exceeds the battery rating")

    @property
    def payload_current_a(self) -> float:
        """Current the payload draws from the battery."""
        return self.payload_power_w / self.battery_voltage_v

    @property
    def payload_battery_fraction(self) -> float:
        """Fraction of the battery's max current the payload consumes.

        The paper's relay draws 0.49 A of the battery's 21.6 A (<3%).
        """
        return self.payload_current_a / self.battery_max_current_a

    def fly(
        self,
        trajectory: Trajectory,
        sample_spacing_m: float,
        rng: Optional[np.random.Generator] = None,
    ) -> List[TrajectorySample]:
        """Traverse a path, sampling poses with hover jitter.

        Returns the *true* (jittered) poses; pair with
        :class:`~repro.mobility.groundtruth.OptiTrack` to obtain the
        observed poses the localizer consumes.
        """
        samples = trajectory.sample_every(sample_spacing_m)
        if self.hover_jitter_std_m == 0.0 or rng is None:
            return samples
        jittered = []
        for s in samples:
            noise = rng.normal(0.0, self.hover_jitter_std_m, size=2)
            jittered.append(TrajectorySample(s.position + noise, s.time))
        return jittered
