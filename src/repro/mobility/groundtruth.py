"""OptiTrack-like ground-truth observer (paper §6.3).

An array of ceiling-mounted infrared cameras tracks markers on the
drone and the tags with sub-centimeter accuracy, inside a bounded field
of view. The observer serves two roles, as in the paper: it scores
localization error, and it supplies the drone trajectory to the SAR
solver (the paper's §9 notes RF-based self-localization as future work).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro import faults
from repro.constants import OPTITRACK_ACCURACY_M
from repro.errors import MobilityError
from repro.mobility.trajectory import TrajectorySample


@dataclass
class OptiTrack:
    """An optical tracking volume with Gaussian observation noise."""

    coverage_min: Tuple[float, float] = (-1000.0, -1000.0)
    coverage_max: Tuple[float, float] = (1000.0, 1000.0)
    accuracy_std_m: float = OPTITRACK_ACCURACY_M

    def __post_init__(self) -> None:
        lo = np.asarray(self.coverage_min, dtype=float)
        hi = np.asarray(self.coverage_max, dtype=float)
        if np.any(lo >= hi):
            raise MobilityError("coverage box must have positive extent")
        if self.accuracy_std_m < 0:
            raise MobilityError("accuracy std must be >= 0")

    def in_view(self, position) -> bool:
        """Is a marker inside the cameras' field of view?"""
        p = np.asarray(position, dtype=float)
        lo = np.asarray(self.coverage_min)
        hi = np.asarray(self.coverage_max)
        return bool(np.all(p >= lo) and np.all(p <= hi))

    def observe(
        self, position, rng: Optional[np.random.Generator] = None
    ) -> np.ndarray:
        """One noisy position observation.

        Raises
        ------
        MobilityError
            When the marker is outside the field of view — the paper's
            §9 limitation: the drone must stay visible to the cameras.
        """
        p = np.asarray(position, dtype=float)
        if not self.in_view(p):
            raise MobilityError(
                f"marker at {p.tolist()} is outside the OptiTrack volume"
            )
        if self.accuracy_std_m == 0.0 or rng is None:
            return p.copy()
        return p + rng.normal(0.0, self.accuracy_std_m, size=p.shape)

    def observe_trajectory(
        self,
        samples: Sequence[TrajectorySample],
        rng: Optional[np.random.Generator] = None,
    ) -> List[TrajectorySample]:
        """Observe every pose of a flight (the SAR position input).

        Injected ``mobility.pose`` faults act here: ``pose_loss`` drops
        an observation entirely (marker occluded for a frame) and
        ``jitter`` perturbs it — both indexed by pose so triggers can
        target a window of the flight.
        """
        observed: List[TrajectorySample] = []
        for index, sample in enumerate(samples):
            if faults.pose_lost("mobility.pose", index=index):
                continue
            position = self.observe(sample.position, rng)
            position = faults.jitter_position(
                "mobility.pose", position, index=index
            )
            observed.append(TrajectorySample(position, sample.time))
        return observed
