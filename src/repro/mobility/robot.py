"""The ground robot of the microbenchmarks (iRobot Create 2, §7.3).

The aperture and range microbenchmarks mount the relay on a ground
robot instead of the drone to control for trajectory and SNR: it drives
slower and holds its path far more precisely.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.constants import ROBOT_SPEED_MPS
from repro.errors import MobilityError
from repro.mobility.trajectory import Trajectory, TrajectorySample


@dataclass
class GroundRobot:
    """A wheeled robot carrying the relay along a floor path."""

    speed_mps: float = ROBOT_SPEED_MPS
    track_jitter_std_m: float = 0.005

    def __post_init__(self) -> None:
        if self.speed_mps <= 0:
            raise MobilityError("robot speed must be positive")
        if self.track_jitter_std_m < 0:
            raise MobilityError("track jitter must be >= 0")

    def drive(
        self,
        trajectory: Trajectory,
        sample_spacing_m: float,
        rng: Optional[np.random.Generator] = None,
    ) -> List[TrajectorySample]:
        """Traverse a path, sampling poses with (small) track jitter."""
        samples = trajectory.sample_every(sample_spacing_m)
        if self.track_jitter_std_m == 0.0 or rng is None:
            return samples
        return [
            TrajectorySample(
                s.position + rng.normal(0.0, self.track_jitter_std_m, size=2),
                s.time,
            )
            for s in samples
        ]
