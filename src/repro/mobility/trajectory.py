"""Flight/drive trajectories and their sampling.

A trajectory is a continuous path; the relay captures tag responses at
discrete points along it (one per inventory exchange), and those points
form the synthetic antenna array of paper §5. Aperture — the path length
spanned by the used samples — is the knob Fig. 13 sweeps.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.errors import MobilityError


@dataclass(frozen=True)
class TrajectorySample:
    """One sampled pose: position (2-D) and timestamp."""

    position: np.ndarray
    time: float


class Trajectory:
    """Base class: a piecewise-linear path traversed at constant speed."""

    def __init__(self, waypoints: Sequence, speed_mps: float) -> None:
        points = [np.asarray(p, dtype=float) for p in waypoints]
        if len(points) < 2:
            raise MobilityError("a trajectory needs at least two waypoints")
        if any(p.shape != (2,) for p in points):
            raise MobilityError("waypoints must be 2-D points")
        if speed_mps <= 0:
            raise MobilityError(f"speed must be positive, got {speed_mps}")
        self.waypoints = points
        self.speed_mps = float(speed_mps)
        segment_lengths = [
            float(np.linalg.norm(b - a)) for a, b in zip(points, points[1:])
        ]
        if any(l == 0.0 for l in segment_lengths):
            raise MobilityError("degenerate (zero-length) trajectory segment")
        self._cumulative = np.concatenate([[0.0], np.cumsum(segment_lengths)])

    @property
    def length(self) -> float:
        """Total path length in meters."""
        return float(self._cumulative[-1])

    @property
    def duration(self) -> float:
        """Traversal time in seconds."""
        return self.length / self.speed_mps

    def position_at(self, distance_m: float) -> np.ndarray:
        """Position after traveling ``distance_m`` meters along the path."""
        if not 0.0 <= distance_m <= self.length + 1e-9:
            raise MobilityError(
                f"distance {distance_m} outside the path length {self.length}"
            )
        distance_m = min(distance_m, self.length)
        index = int(np.searchsorted(self._cumulative, distance_m, side="right") - 1)
        index = min(index, len(self.waypoints) - 2)
        segment_start = self._cumulative[index]
        a, b = self.waypoints[index], self.waypoints[index + 1]
        seg_len = self._cumulative[index + 1] - segment_start
        frac = (distance_m - segment_start) / seg_len
        return a + frac * (b - a)

    def sample(self, n_samples: int) -> List[TrajectorySample]:
        """``n_samples`` poses evenly spaced along the path."""
        if n_samples < 2:
            raise MobilityError("need at least two samples for an aperture")
        distances = np.linspace(0.0, self.length, n_samples)
        return [
            TrajectorySample(self.position_at(d), d / self.speed_mps)
            for d in distances
        ]

    def sample_every(self, spacing_m: float) -> List[TrajectorySample]:
        """Poses every ``spacing_m`` meters (inclusive of both ends)."""
        if spacing_m <= 0:
            raise MobilityError("sample spacing must be positive")
        n = max(2, int(np.floor(self.length / spacing_m)) + 1)
        return self.sample(n)

    def aperture_segment(self, length_m: float, center_fraction: float = 0.5) -> "Trajectory":
        """A sub-trajectory of the given aperture length (Fig. 13 knob)."""
        if not 0.0 < length_m <= self.length + 1e-9:
            raise MobilityError(
                f"aperture {length_m} m exceeds path length {self.length} m"
            )
        center = self.length * center_fraction
        start = float(np.clip(center - length_m / 2.0, 0.0, self.length - length_m))
        # Densely resample the sub-path to preserve its shape.
        distances = np.linspace(start, start + length_m, 32)
        points = [self.position_at(d) for d in distances]
        return Trajectory(points, self.speed_mps)


class LineTrajectory(Trajectory):
    """A straight flight path — the paper's standard SAR geometry."""

    def __init__(self, start, end, speed_mps: float = 0.5) -> None:
        super().__init__([start, end], speed_mps)


class WaypointTrajectory(Trajectory):
    """A free-form waypoint path (predetermined flight plan, §3)."""

    def __init__(self, waypoints: Sequence, speed_mps: float = 0.5) -> None:
        super().__init__(waypoints, speed_mps)


class LawnmowerTrajectory(Trajectory):
    """Back-and-forth lanes covering a rectangle — warehouse scanning."""

    def __init__(
        self,
        origin,
        width_m: float,
        depth_m: float,
        lane_spacing_m: float = 2.0,
        speed_mps: float = 0.5,
    ) -> None:
        if width_m <= 0 or depth_m <= 0:
            raise MobilityError("coverage area dimensions must be positive")
        if lane_spacing_m <= 0:
            raise MobilityError("lane spacing must be positive")
        origin = np.asarray(origin, dtype=float)
        n_lanes = max(2, int(np.ceil(depth_m / lane_spacing_m)) + 1)
        ys = np.linspace(0.0, depth_m, n_lanes)
        waypoints = []
        for i, y in enumerate(ys):
            xs = (0.0, width_m) if i % 2 == 0 else (width_m, 0.0)
            waypoints.append(origin + np.array([xs[0], y]))
            waypoints.append(origin + np.array([xs[1], y]))
        super().__init__(waypoints, speed_mps)
        self.n_lanes = n_lanes
