"""Drone/robot mobility substrate.

Trajectories supply the sampled antenna positions SAR needs; the
vehicle models add the realism that matters to localization accuracy —
payload limits, battery draw, and position jitter — and the ground-truth
observer reproduces the OptiTrack scoring of the paper's evaluation.
"""

from __future__ import annotations

from repro.mobility.trajectory import (
    LawnmowerTrajectory,
    LineTrajectory,
    Trajectory,
    TrajectorySample,
    WaypointTrajectory,
)
from repro.mobility.drone import Drone
from repro.mobility.robot import GroundRobot
from repro.mobility.groundtruth import OptiTrack

__all__ = [
    "Trajectory",
    "TrajectorySample",
    "LineTrajectory",
    "LawnmowerTrajectory",
    "WaypointTrajectory",
    "Drone",
    "GroundRobot",
    "OptiTrack",
]
