"""Phase disentanglement via the relay-embedded reference RFID (Eq. 10).

The reader's channel for an environment tag entangles two half-links;
dividing by the reference RFID's channel — which consists *entirely* of
the reader-relay half-link times a constant — leaves the relay-tag
half-link alone:

    h_tilde = h_target / h_reference = B_rt(f2) * G / C

The residual constant ``G / C`` does not vary as the drone flies, so it
drops out of the antenna-array equations (paper §5.1, footnote 6).
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.errors import InsufficientMeasurementsError, LocalizationError
from repro.localization.measurement import ThroughRelayMeasurement

_MIN_REFERENCE_MAGNITUDE = 1e-30


def disentangle(h_target: complex, h_reference: complex) -> complex:
    """Isolate the relay-tag half-link of one measurement (Eq. 10)."""
    if abs(h_reference) < _MIN_REFERENCE_MAGNITUDE:
        raise LocalizationError(
            "reference channel is zero: the relay-embedded RFID was not "
            "decoded (the drone is out of the reader's radio range)"
        )
    return complex(h_target / h_reference)


def disentangle_series(
    measurements: Sequence[ThroughRelayMeasurement],
) -> Tuple[np.ndarray, np.ndarray]:
    """Disentangle a whole flight's measurements.

    Returns
    -------
    (positions, channels)
        ``positions`` is (K, 2); ``channels`` is the complex (K,) array
        of isolated relay-tag half-link channels, ready for the SAR
        matched filter.

    Raises
    ------
    InsufficientMeasurementsError
        With fewer than two poses there is no aperture to synthesize.
    """
    if len(measurements) < 2:
        raise InsufficientMeasurementsError(
            f"need at least 2 measurements, got {len(measurements)}"
        )
    positions = np.stack([m.position for m in measurements])
    channels = np.array(
        [disentangle(m.h_target, m.h_reference) for m in measurements]
    )
    return positions, channels
