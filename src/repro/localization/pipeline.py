"""The end-to-end Localizer facade.

Ties the pipeline together: measurements -> disentanglement -> coarse-
to-fine SAR with the multipath peak rule -> position estimate. This is
the object the examples and the Fig. 12-14 benchmarks drive.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.constants import SAR_DEFAULT_GRID_RESOLUTION_M
from repro.errors import LocalizationError
from repro.localization.disentangle import disentangle_series
from repro.localization.grid import Grid2D, Heatmap
from repro.localization.measurement import ThroughRelayMeasurement
from repro.localization.multires import MultiresResult, multires_locate
from repro.localization.rssi import rssi_locate
from repro.localization.sar import SarGeometry, grid_geometry
from repro.obs import tracing


@dataclass(frozen=True)
class LocalizationResult:
    """A tag location estimate plus the evidence behind it."""

    position: np.ndarray
    coarse_heatmap: Heatmap
    fine_heatmap: Heatmap
    peak_distance_to_trajectory_m: float

    def error_to(self, true_position) -> float:
        """Euclidean error against a ground-truth location."""
        return float(
            np.linalg.norm(self.position - np.asarray(true_position, dtype=float))
        )


class Localizer:
    """Through-relay SAR localization with RFly's defaults.

    Parameters
    ----------
    frequency_hz:
        Frequency used in the matched filter. The paper notes using the
        reader's f is fine since (f - f2)/f < 0.01 (§5.2); pass the
        exact f2 for the purist variant.
    coarse_resolution, fine_resolution:
        Multi-resolution stage resolutions.
    search_margin_m:
        How far beyond the flight path the tag may lie. The relay-tag
        link is power-limited to a few meters, which conveniently
        bounds the search.
    use_nearest_peak_rule:
        §5.2's multipath rule (True) vs plain argmax (False).
    """

    def __init__(
        self,
        frequency_hz: float,
        coarse_resolution: float = 0.10,
        fine_resolution: float = SAR_DEFAULT_GRID_RESOLUTION_M,
        search_margin_m: float = 6.0,
        relative_threshold: float = 0.7,
        use_nearest_peak_rule: bool = True,
    ) -> None:
        if frequency_hz <= 0:
            raise LocalizationError("frequency must be positive")
        if coarse_resolution <= 0 or fine_resolution <= 0:
            raise LocalizationError("resolutions must be positive")
        self.frequency_hz = float(frequency_hz)
        self.coarse_resolution = float(coarse_resolution)
        self.fine_resolution = float(fine_resolution)
        self.search_margin_m = float(search_margin_m)
        self.relative_threshold = float(relative_threshold)
        self.use_nearest_peak_rule = bool(use_nearest_peak_rule)

    def locate(
        self,
        measurements: Sequence[ThroughRelayMeasurement],
        search_grid: Optional[Grid2D] = None,
    ) -> LocalizationResult:
        """Estimate one tag's 2-D position from a flight's measurements."""
        result, _ = self._locate_multires(measurements, search_grid)
        return result

    def _locate_multires(
        self,
        measurements: Sequence[ThroughRelayMeasurement],
        search_grid: Optional[Grid2D],
        coarse_geometry: Optional[SarGeometry] = None,
    ) -> "Tuple[LocalizationResult, Grid2D]":
        with tracing.span("localize.locate", poses=len(measurements)):
            with tracing.span("localize.disentangle"):
                positions, channels = disentangle_series(measurements)
            grid = search_grid or Grid2D.around_trajectory(
                positions,
                margin=self.search_margin_m,
                resolution=self.coarse_resolution,
            )
            result: MultiresResult = multires_locate(
                positions,
                channels,
                grid,
                self.frequency_hz,
                fine_resolution=self.fine_resolution,
                relative_threshold=self.relative_threshold,
                use_nearest_peak_rule=self.use_nearest_peak_rule,
                coarse_geometry=coarse_geometry,
            )
        return (
            LocalizationResult(
                position=result.position,
                coarse_heatmap=result.coarse_heatmap,
                fine_heatmap=result.fine_heatmap,
                peak_distance_to_trajectory_m=(
                    result.selected_peak.distance_to_trajectory_m
                ),
            ),
            grid,
        )

    def locate_with_baseline(
        self,
        measurements: Sequence[ThroughRelayMeasurement],
        calibration_gain: float,
        search_grid: Optional[Grid2D] = None,
    ) -> "Tuple[LocalizationResult, np.ndarray]":
        """SAR estimate plus the RSSI baseline, sharing one geometry.

        The Fig. 13/14 sweeps score both localizers on every trial;
        disentangling once and reusing the pose->grid distance tensor
        between the SAR coarse stage and the RSSI multilateration
        roughly halves the per-trial geometry work.
        """
        positions, channels = disentangle_series(measurements)
        grid = search_grid or Grid2D.around_trajectory(
            positions, margin=self.search_margin_m, resolution=self.coarse_resolution
        )
        geometry = grid_geometry(positions, grid)
        sar_result, _ = self._locate_multires(
            measurements, grid, coarse_geometry=geometry
        )
        rssi_estimate, _ = rssi_locate(
            positions,
            channels,
            grid,
            self.frequency_hz,
            calibration_gain,
            geometry=geometry,
        )
        return sar_result, rssi_estimate

    def locate_rssi(
        self,
        measurements: Sequence[ThroughRelayMeasurement],
        calibration_gain: float,
        search_grid: Optional[Grid2D] = None,
    ) -> np.ndarray:
        """The RSSI baseline on the same measurements (§7.3)."""
        positions, channels = disentangle_series(measurements)
        grid = search_grid or Grid2D.around_trajectory(
            positions, margin=self.search_margin_m, resolution=self.coarse_resolution
        )
        best, _ = rssi_locate(
            positions, channels, grid, self.frequency_hz, calibration_gain
        )
        return best
