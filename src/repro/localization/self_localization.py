"""Drone self-localization from the reference RFID's channel (§5.1, §9).

The relay-embedded reference RFID's channel consists *entirely* of the
reader-relay half-link, so the same SAR equations that find tags can
find the drone: given the trajectory's *shape* (from odometry — shape
is what IMU/odometry provide well; the absolute offset is what drifts)
and the known position of the infrastructure reader, a matched filter
over candidate trajectory translations recovers where the flight
actually happened. The paper leaves this as future work ("Future
research could leverage RF for drone self-localization and apply the
SAR equations on the channel of [the] reader-relay half-link").

The math reduces to the existing tag solver by a change of variables:

    |reader - (t + q_k)| = |t - (reader - q_k)|

so the candidate translation ``t`` plays the tag's role against the
virtual array ``reader - q_k``.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from repro.errors import InsufficientMeasurementsError, LocalizationError
from repro.localization.grid import Grid2D, Heatmap
from repro.localization.measurement import ThroughRelayMeasurement
from repro.localization.sar import sar_heatmap


def reference_channels(
    measurements: Sequence[ThroughRelayMeasurement],
) -> np.ndarray:
    """The reference RFID's channel series from a flight's measurements."""
    if len(measurements) < 2:
        raise InsufficientMeasurementsError(
            "self-localization needs at least two reference measurements"
        )
    return np.array([m.h_reference for m in measurements])


def self_localize(
    reference_series: np.ndarray,
    relative_positions: np.ndarray,
    reader_position,
    search_grid: Grid2D,
    frequency_hz: float,
) -> Tuple[np.ndarray, Heatmap]:
    """Recover the trajectory's absolute translation.

    Parameters
    ----------
    reference_series:
        Complex reference-RFID channels (the reader-relay round-trip
        half-link times a constant), one per pose.
    relative_positions:
        Trajectory shape from odometry, (K, 2), in the drone's own
        frame: ``relative_positions[0]`` is typically the origin.
    reader_position:
        The known infrastructure reader location.
    search_grid:
        Candidate translations of the trajectory origin.
    frequency_hz:
        The reader's carrier (the half-link frequency f).

    Returns
    -------
    (translation, heatmap)
        The estimated absolute position of the trajectory origin and
        the matched-filter map over candidates.
    """
    reference_series = np.asarray(reference_series, dtype=complex)
    relative_positions = np.asarray(relative_positions, dtype=float)
    if relative_positions.ndim != 2 or relative_positions.shape[1] != 2:
        raise LocalizationError(
            f"relative positions must be (K, 2), got {relative_positions.shape}"
        )
    if len(reference_series) != len(relative_positions):
        raise LocalizationError(
            f"{len(reference_series)} channels for "
            f"{len(relative_positions)} poses"
        )
    reader = np.asarray(reader_position, dtype=float)
    # Change of variables: the virtual array the translation "sees".
    virtual_array = reader[None, :] - relative_positions
    heatmap = sar_heatmap(
        virtual_array, reference_series, search_grid, frequency_hz
    )
    return heatmap.argmax_position(), heatmap


def self_localize_from_measurements(
    measurements: Sequence[ThroughRelayMeasurement],
    relative_positions: np.ndarray,
    reader_position,
    search_grid: Grid2D,
    frequency_hz: float,
) -> Tuple[np.ndarray, Heatmap]:
    """Convenience wrapper taking raw through-relay measurements."""
    return self_localize(
        reference_channels(measurements),
        relative_positions,
        reader_position,
        search_grid,
        frequency_hz,
    )
