"""The SAR matched filter with non-linear projections (paper Eq. 11-12).

Every candidate location (x, y) predicts a set of round-trip distances
to the drone poses; the matched filter coherently sums the isolated
half-link channels against those predictions:

    P(x, y) = | sum_k  h_k * exp(+j 2 pi f 2 sqrt((x-x_k)^2+(y-y_k)^2)/c) |

Because the projection is non-linear in (x, y), a 1-D trajectory yields
a 2-D fix (and a 2-D trajectory a 3-D one). The paper notes the reader
may use its own f instead of the relay's f2 since the relay keeps
(f - f2)/f < 0.01; both options are supported and the ablation bench
quantifies the difference.

Batched-pose fast path: the pose->candidate distance tensor depends
only on geometry, not on frequency or channels, so
:class:`SarGeometry` precomputes it once per (trajectory, grid) pair
and reuses it across matched-filter frequencies and across the RSSI
baseline (which scores the same distances). Evaluation is chunked over
candidate nodes to bound peak memory; chunking never changes the
result (each node's coherent sum is independent), and the chunk size is
an explicit, testable parameter.
"""

from __future__ import annotations

from typing import Iterator, Optional, Tuple

import numpy as np

from repro.constants import SPEED_OF_LIGHT
from repro.errors import InsufficientMeasurementsError, LocalizationError
from repro.localization.grid import Grid2D, Heatmap
from repro.obs import metrics, tracing

#: Default number of candidate nodes evaluated per chunk. Public and
#: overridable per call: the chunked and unchunked evaluations agree
#: exactly, so this is purely a memory/throughput knob.
DEFAULT_CHUNK_NODES = 200_000

#: Peak elements of the (poses x nodes) working tensor per chunk; the
#: effective chunk width shrinks for long trajectories so temporary
#: arrays stay ~tens of MB.
_MAX_CHUNK_ELEMENTS = 4_000_000

#: Largest (poses x nodes) tensor kept resident for reuse; bigger
#: geometries recompute their chunks on each pass instead of caching
#: ~hundreds of MB of distances.
_MAX_STORE_ELEMENTS = 25_000_000


def _validate(
    positions: np.ndarray, channels: np.ndarray, frequency_hz: float
) -> Tuple[np.ndarray, np.ndarray]:
    positions = np.asarray(positions, dtype=float)
    channels = np.asarray(channels, dtype=complex)
    if positions.ndim != 2 or positions.shape[1] not in (2, 3):
        raise LocalizationError(
            f"positions must be (K, 2) or (K, 3), got {positions.shape}"
        )
    if channels.shape != (positions.shape[0],):
        raise LocalizationError(
            f"got {len(channels)} channels for {len(positions)} positions"
        )
    if len(channels) < 2:
        raise InsufficientMeasurementsError(
            "the synthetic aperture needs at least two poses"
        )
    if frequency_hz <= 0:
        raise LocalizationError("frequency must be positive")
    if not np.all(np.isfinite(positions)) or not np.all(np.isfinite(channels)):
        raise LocalizationError(
            "positions/channels contain NaN or Inf; drop bad measurements "
            "before solving"
        )
    # A collapsed aperture yields a ring ambiguity, not a fix: refuse it
    # rather than return an arbitrary point on the ring.
    wavelength = SPEED_OF_LIGHT / frequency_hz
    extent = float(np.max(np.ptp(positions, axis=0)))
    if extent < wavelength / 4.0:
        raise InsufficientMeasurementsError(
            f"aperture extent {extent:.3f} m is below a quarter wavelength "
            f"({wavelength / 4.0:.3f} m): the poses do not form an array"
        )
    return positions, channels


class SarGeometry:
    """Pose->candidate distances for one (trajectory, candidate set) pair.

    The distance tensor is the only geometry the matched filter needs;
    computing it dominates a profile evaluation and is identical for
    every frequency, channel draw, and for the RSSI baseline. Build it
    once per trajectory and reuse it.

    Parameters
    ----------
    positions:
        Drone poses, shape (K, 2) or (K, 3).
    points:
        Candidate locations, shape (N, d) with d matching positions.
    chunk_nodes:
        Candidate nodes per evaluation chunk. The effective width also
        honors an internal element budget so the (K, chunk) temporaries
        stay small for long trajectories.
    store_distances:
        Keep the distance chunks resident for reuse (the fast path).
        ``None`` stores automatically while K*N stays under an internal
        budget; one-shot evaluations over huge volumes recompute chunks
        on the fly instead.
    """

    def __init__(
        self,
        positions: np.ndarray,
        points: np.ndarray,
        chunk_nodes: int = DEFAULT_CHUNK_NODES,
        store_distances: Optional[bool] = None,
    ) -> None:
        positions = np.asarray(positions, dtype=float)
        points = np.asarray(points, dtype=float)
        if positions.ndim != 2 or positions.shape[1] not in (2, 3):
            raise LocalizationError(
                f"positions must be (K, 2) or (K, 3), got {positions.shape}"
            )
        if points.ndim != 2 or points.shape[1] != positions.shape[1]:
            raise LocalizationError(
                f"points must be (N, {positions.shape[1]}), got {points.shape}"
            )
        if chunk_nodes < 1:
            raise LocalizationError(
                f"chunk_nodes must be >= 1, got {chunk_nodes}"
            )
        self.positions = positions
        self.points = points
        self.chunk_nodes = int(
            min(chunk_nodes, max(1, _MAX_CHUNK_ELEMENTS // max(1, len(positions))))
        )
        if store_distances is None:
            store_distances = (
                len(positions) * len(points) <= _MAX_STORE_ELEMENTS
            )
        self.stores_distances = bool(store_distances)
        if self.stores_distances:
            with tracing.span(
                "sar.geometry", poses=len(positions), points=len(points)
            ):
                self._chunks: "Optional[list[np.ndarray]]" = [
                    chunk for _, chunk in self._compute_chunks()
                ]
        else:
            self._chunks = None

    def _compute_chunks(self) -> Iterator[Tuple[slice, np.ndarray]]:
        """Distance chunks, freshly computed."""
        for start in range(0, len(self.points), self.chunk_nodes):
            stop = min(start + self.chunk_nodes, len(self.points))
            yield slice(start, stop), np.linalg.norm(
                self.points[start:stop][None, :, :]
                - self.positions[:, None, :],
                axis=2,
            )

    @property
    def n_poses(self) -> int:
        """Trajectory length K."""
        return len(self.positions)

    @property
    def n_points(self) -> int:
        """Candidate count N."""
        return len(self.points)

    def iter_chunks(self) -> Iterator[Tuple[slice, np.ndarray]]:
        """``(node_slice, distances)`` pairs; distances is (K, chunk)."""
        if self._chunks is None:
            yield from self._compute_chunks()
            return
        start = 0
        for chunk in self._chunks:
            width = chunk.shape[1]
            yield slice(start, start + width), chunk
            start += width

    def profile(
        self,
        channels: np.ndarray,
        frequency_hz: float,
        normalize: bool = True,
    ) -> np.ndarray:
        """The matched-filter profile P at every candidate point.

        ``normalize=True`` whitens each measurement to unit magnitude so
        that near poses (with much stronger channels) do not dominate
        the projection — the standard SAR back-projection weighting.
        """
        _validate(self.positions, channels, frequency_hz)
        with tracing.span(
            "sar.project", poses=self.n_poses, points=self.n_points
        ):
            metrics.count("localization.sar.grid_points", self.n_points)
            weights = np.asarray(channels, dtype=complex).copy()
            if normalize:
                magnitudes = np.abs(weights)
                nonzero = magnitudes > 0
                weights[nonzero] = weights[nonzero] / magnitudes[nonzero]
            k_factor = 2.0 * np.pi * frequency_hz * 2.0 / SPEED_OF_LIGHT
            values = np.empty(self.n_points)
            for node_slice, distances_m in self.iter_chunks():
                phases = np.exp(1j * (k_factor * distances_m))
                phases *= weights[:, None]
                values[node_slice] = np.abs(phases.sum(axis=0))
            return values / len(weights)

    def rssi_mismatch(self, distances_m: np.ndarray) -> np.ndarray:
        """Mean squared distance mismatch per candidate (RSSI baseline).

        ``distances_m`` holds one RSSI-inverted relay-tag distance per
        pose; the score is the mean over poses of the squared error
        against this geometry's predicted distances.
        """
        distances_m = np.asarray(distances_m, dtype=float)
        if distances_m.shape != (self.n_poses,):
            raise LocalizationError(
                f"expected {self.n_poses} distances, got {distances_m.shape}"
            )
        with tracing.span(
            "sar.rssi_mismatch", poses=self.n_poses, points=self.n_points
        ):
            metrics.count("localization.rssi.grid_points", self.n_points)
            mismatch = np.empty(self.n_points)
            for node_slice, predicted_m in self.iter_chunks():
                mismatch[node_slice] = np.mean(
                    (predicted_m - distances_m[:, None]) ** 2, axis=0
                )
            return mismatch


def grid_geometry(
    positions: np.ndarray,
    grid: Grid2D,
    chunk_nodes: int = DEFAULT_CHUNK_NODES,
) -> SarGeometry:
    """Geometry between a trajectory and every node of a search grid."""
    gx, gy = grid.meshgrid()
    nodes = np.column_stack([gx.ravel(), gy.ravel()])
    return SarGeometry(positions, nodes, chunk_nodes=chunk_nodes)


def sar_profile(
    positions: np.ndarray,
    channels: np.ndarray,
    points: np.ndarray,
    frequency_hz: float,
    normalize: bool = True,
    chunk_nodes: int = DEFAULT_CHUNK_NODES,
) -> np.ndarray:
    """P evaluated at arbitrary candidate points of shape (N, 2) or (N, 3).

    The formulation is dimension-agnostic: 2-D localization from a 1-D
    trajectory is the paper's main mode, and a 2-D (planar) trajectory
    yields a 3-D fix the same way (§5.2). Positions and points must
    share their dimensionality.

    One-shot wrapper over :class:`SarGeometry`; evaluating several
    frequencies (or the RSSI baseline) against the same trajectory and
    candidates should build the geometry once instead.
    """
    positions, channels = _validate(positions, channels, frequency_hz)
    geometry = SarGeometry(
        positions, points, chunk_nodes=chunk_nodes, store_distances=False
    )
    return geometry.profile(channels, frequency_hz, normalize)


def sar_heatmap(
    positions: np.ndarray,
    channels: np.ndarray,
    grid: Grid2D,
    frequency_hz: float,
    normalize: bool = True,
    chunk_nodes: int = DEFAULT_CHUNK_NODES,
    geometry: Optional[SarGeometry] = None,
) -> Heatmap:
    """P(x, y) over a whole grid (the images of paper Fig. 6).

    Pass a precomputed ``geometry`` (from :func:`grid_geometry` on the
    same trajectory and grid) to skip recomputing distances — the fast
    path the Fig. 12/13 sweeps use across frequencies and baselines.
    """
    if geometry is None:
        geometry = grid_geometry(positions, grid, chunk_nodes=chunk_nodes)
    elif geometry.n_points != grid.n_points:
        raise LocalizationError(
            f"geometry covers {geometry.n_points} points but the grid has "
            f"{grid.n_points}; build it from this grid"
        )
    values = geometry.profile(channels, frequency_hz, normalize)
    return Heatmap(grid=grid, values=values.reshape(grid.shape))
