"""The SAR matched filter with non-linear projections (paper Eq. 11-12).

Every candidate location (x, y) predicts a set of round-trip distances
to the drone poses; the matched filter coherently sums the isolated
half-link channels against those predictions:

    P(x, y) = | sum_k  h_k * exp(+j 2 pi f 2 sqrt((x-x_k)^2+(y-y_k)^2)/c) |

Because the projection is non-linear in (x, y), a 1-D trajectory yields
a 2-D fix (and a 2-D trajectory a 3-D one). The paper notes the reader
may use its own f instead of the relay's f2 since the relay keeps
(f - f2)/f < 0.01; both options are supported and the ablation bench
quantifies the difference.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.constants import SPEED_OF_LIGHT
from repro.errors import InsufficientMeasurementsError, LocalizationError
from repro.localization.grid import Grid2D, Heatmap

_CHUNK_NODES = 200_000


def _validate(positions: np.ndarray, channels: np.ndarray, frequency_hz: float):
    positions = np.asarray(positions, dtype=float)
    channels = np.asarray(channels, dtype=complex)
    if positions.ndim != 2 or positions.shape[1] not in (2, 3):
        raise LocalizationError(
            f"positions must be (K, 2) or (K, 3), got {positions.shape}"
        )
    if channels.shape != (positions.shape[0],):
        raise LocalizationError(
            f"got {len(channels)} channels for {len(positions)} positions"
        )
    if len(channels) < 2:
        raise InsufficientMeasurementsError(
            "the synthetic aperture needs at least two poses"
        )
    if frequency_hz <= 0:
        raise LocalizationError("frequency must be positive")
    if not np.all(np.isfinite(positions)) or not np.all(np.isfinite(channels)):
        raise LocalizationError(
            "positions/channels contain NaN or Inf; drop bad measurements "
            "before solving"
        )
    # A collapsed aperture yields a ring ambiguity, not a fix: refuse it
    # rather than return an arbitrary point on the ring.
    wavelength = SPEED_OF_LIGHT / frequency_hz
    extent = float(np.max(np.ptp(positions, axis=0)))
    if extent < wavelength / 4.0:
        raise InsufficientMeasurementsError(
            f"aperture extent {extent:.3f} m is below a quarter wavelength "
            f"({wavelength / 4.0:.3f} m): the poses do not form an array"
        )
    return positions, channels


def sar_profile(
    positions: np.ndarray,
    channels: np.ndarray,
    points: np.ndarray,
    frequency_hz: float,
    normalize: bool = True,
) -> np.ndarray:
    """P evaluated at arbitrary candidate points of shape (N, 2) or (N, 3).

    The formulation is dimension-agnostic: 2-D localization from a 1-D
    trajectory is the paper's main mode, and a 2-D (planar) trajectory
    yields a 3-D fix the same way (§5.2). Positions and points must
    share their dimensionality.

    ``normalize=True`` whitens each measurement to unit magnitude so
    that near poses (with much stronger channels) do not dominate the
    projection — the standard SAR back-projection weighting.
    """
    positions, channels = _validate(positions, channels, frequency_hz)
    points = np.asarray(points, dtype=float)
    if points.ndim != 2 or points.shape[1] != positions.shape[1]:
        raise LocalizationError(
            f"points must be (N, {positions.shape[1]}), got {points.shape}"
        )
    weights = channels.copy()
    if normalize:
        magnitudes = np.abs(weights)
        nonzero = magnitudes > 0
        weights[nonzero] = weights[nonzero] / magnitudes[nonzero]
    total = np.zeros(len(points), dtype=complex)
    k_factor = 2.0 * np.pi * frequency_hz * 2.0 / SPEED_OF_LIGHT
    for pose, w in zip(positions, weights):
        distances = np.linalg.norm(points - pose, axis=1)
        total += w * np.exp(1j * k_factor * distances)
    return np.abs(total) / len(channels)


def sar_heatmap(
    positions: np.ndarray,
    channels: np.ndarray,
    grid: Grid2D,
    frequency_hz: float,
    normalize: bool = True,
) -> Heatmap:
    """P(x, y) over a whole grid (the images of paper Fig. 6)."""
    xs, ys = grid.xs, grid.ys
    gx, gy = np.meshgrid(xs, ys)
    nodes = np.column_stack([gx.ravel(), gy.ravel()])
    values = np.empty(len(nodes))
    for start in range(0, len(nodes), _CHUNK_NODES):
        chunk = nodes[start : start + _CHUNK_NODES]
        values[start : start + len(chunk)] = sar_profile(
            positions, channels, chunk, frequency_hz, normalize
        )
    return Heatmap(grid=grid, values=values.reshape(len(ys), len(xs)))
