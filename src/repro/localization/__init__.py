"""Through-relay localization (paper §5) — the second core contribution.

The pipeline:

1. :mod:`~repro.localization.measurement` — the through-relay phase
   measurement model: the reader's channel for a tag is the product of
   the reader-relay and relay-tag round-trip half-links (Eq. 7-9).
2. :mod:`~repro.localization.disentangle` — dividing by the channel of
   the relay-embedded reference RFID isolates the relay-tag half-link
   (Eq. 10).
3. :mod:`~repro.localization.sar` — the non-linear-projection matched
   filter P(x, y) over the drone trajectory (Eq. 11-12).
4. :mod:`~repro.localization.peaks` — multipath-robust peak selection:
   the peak *nearest the trajectory*, not the highest (§5.2).
5. :mod:`~repro.localization.multires` — coarse-to-fine search.
6. :mod:`~repro.localization.rssi` — the RSSI baseline of §7.3.
7. :mod:`~repro.localization.pipeline` — the Localizer facade.
"""

from __future__ import annotations

from repro.localization.measurement import (
    MeasurementModel,
    ThroughRelayMeasurement,
)
from repro.localization.disentangle import disentangle, disentangle_series
from repro.localization.grid import Grid2D, Heatmap
from repro.localization.sar import (
    DEFAULT_CHUNK_NODES,
    SarGeometry,
    grid_geometry,
    sar_heatmap,
    sar_profile,
)
from repro.localization.peaks import Peak, find_peaks, select_nearest_to_trajectory
from repro.localization.multires import multires_locate
from repro.localization.rssi import rssi_distances, rssi_locate
from repro.localization.pipeline import Localizer, LocalizationResult
from repro.localization.incremental import IncrementalSar
from repro.localization.grid3d import Grid3D, Volume, locate_3d, sar_volume
from repro.localization.self_localization import (
    self_localize,
    self_localize_from_measurements,
)

__all__ = [
    "MeasurementModel",
    "ThroughRelayMeasurement",
    "disentangle",
    "disentangle_series",
    "Grid2D",
    "Heatmap",
    "DEFAULT_CHUNK_NODES",
    "SarGeometry",
    "grid_geometry",
    "sar_heatmap",
    "sar_profile",
    "Peak",
    "find_peaks",
    "select_nearest_to_trajectory",
    "multires_locate",
    "rssi_distances",
    "rssi_locate",
    "Localizer",
    "LocalizationResult",
    "IncrementalSar",
    "Grid3D",
    "Volume",
    "sar_volume",
    "locate_3d",
    "self_localize",
    "self_localize_from_measurements",
]
