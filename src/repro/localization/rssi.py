"""The RSSI-based localization baseline (paper §7.3a).

The baseline receives the same disentangled channels as SAR but uses
only their *magnitudes*: the free-space propagation model inverts each
|h| into a relay-tag distance, and the tag position is the point whose
distances to the drone poses best match. The paper reports ~1 m median
error at a 2.5 m aperture — roughly 20x worse than the phase-based SAR.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.constants import SPEED_OF_LIGHT
from repro.errors import InsufficientMeasurementsError, LocalizationError
from repro.localization.grid import Grid2D, Heatmap
from repro.localization.sar import SarGeometry, grid_geometry


def rssi_distances(
    channels: np.ndarray,
    frequency_hz: float,
    calibration_gain: float = 1.0,
) -> np.ndarray:
    """Per-pose relay-tag distances from channel magnitudes.

    The disentangled channel is the *round-trip* half-link, so
    ``|h| = calibration * (lambda / 4 pi d)^2`` and

        d = (lambda / 4 pi) * sqrt(calibration / |h|)

    ``calibration_gain`` is the constant |G / C| left over by the
    disentanglement; the baseline receives it from a one-time
    calibration, exactly like providing "the channels of both the
    relay-embedded RFID and the target" in §7.3.
    """
    channels = np.asarray(channels, dtype=complex)
    if frequency_hz <= 0:
        raise LocalizationError("frequency must be positive")
    if calibration_gain <= 0:
        raise LocalizationError("calibration gain must be positive")
    magnitudes = np.abs(channels)
    if np.any(magnitudes <= 0):
        raise LocalizationError("cannot invert a zero-magnitude channel")
    wavelength = SPEED_OF_LIGHT / frequency_hz
    return (wavelength / (4.0 * np.pi)) * np.sqrt(calibration_gain / magnitudes)


def rssi_locate(
    positions: np.ndarray,
    channels: np.ndarray,
    search_grid: Grid2D,
    frequency_hz: float,
    calibration_gain: float = 1.0,
    geometry: Optional[SarGeometry] = None,
) -> Tuple[np.ndarray, Heatmap]:
    """Multilaterate the tag from RSSI-derived distances.

    Scores every grid node by the negative mean squared distance
    mismatch and returns the best node plus the score map (for
    side-by-side display against the SAR heatmap). The baseline scores
    the same pose->grid distances the SAR coarse stage evaluates, so a
    precomputed ``geometry`` (built from this trajectory and grid) is
    reused directly.
    """
    positions = np.asarray(positions, dtype=float)
    if positions.ndim != 2 or positions.shape[1] != 2:
        raise LocalizationError(f"positions must be (K, 2), got {positions.shape}")
    if len(positions) < 3:
        raise InsufficientMeasurementsError(
            "RSSI multilateration needs at least three poses"
        )
    distances = rssi_distances(channels, frequency_hz, calibration_gain)
    if geometry is None:
        geometry = grid_geometry(positions, search_grid)
    elif geometry.n_points != search_grid.n_points:
        raise LocalizationError(
            f"geometry covers {geometry.n_points} points but the grid has "
            f"{search_grid.n_points}; build it from this grid"
        )
    score = -geometry.rssi_mismatch(distances)
    heatmap = Heatmap(grid=search_grid, values=score.reshape(search_grid.shape))
    best = geometry.points[int(np.argmax(score))]
    return best.copy(), heatmap
