"""Coarse-to-fine SAR search (the multi-resolution optimization the
paper's footnote 7 references).

A full fine-resolution sweep of a 30 x 40 m floor is wasteful: the
coarse stage finds the candidate region(s) at decimeter resolution, the
peak rule of §5.2 picks the candidate, and a centimeter-resolution stage
refines only around it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.errors import LocalizationError
from repro.localization.grid import Grid2D, Heatmap
from repro.obs import tracing
from repro.localization.peaks import (
    Peak,
    find_peaks,
    select_nearest_to_trajectory,
)
from repro.localization.sar import SarGeometry, sar_heatmap


@dataclass(frozen=True)
class MultiresResult:
    """Output of the coarse-to-fine search."""

    position: np.ndarray
    coarse_heatmap: Heatmap
    fine_heatmap: Heatmap
    selected_peak: Peak


def multires_locate(
    positions: np.ndarray,
    channels: np.ndarray,
    search_grid: Grid2D,
    frequency_hz: float,
    fine_resolution: float = 0.02,
    fine_span: float = 1.0,
    relative_threshold: float = 0.7,
    use_nearest_peak_rule: bool = True,
    coarse_geometry: Optional[SarGeometry] = None,
) -> MultiresResult:
    """Locate a tag with a coarse sweep plus a fine refinement.

    Parameters
    ----------
    positions, channels:
        The disentangled measurement series (from
        :func:`repro.localization.disentangle.disentangle_series`).
    search_grid:
        Coarse grid covering the candidate area.
    fine_resolution, fine_span:
        Inner-stage resolution and window around the selected peak.
    use_nearest_peak_rule:
        True applies §5.2's nearest-to-trajectory selection; False takes
        the global maximum (the ablation of the multipath rule).
    coarse_geometry:
        Precomputed pose->grid distances for the coarse stage (from
        :func:`repro.localization.sar.grid_geometry` on the same
        trajectory and grid), reusable across matched-filter
        frequencies and the RSSI baseline.
    """
    if fine_resolution <= 0 or fine_span <= 0:
        raise LocalizationError("fine stage parameters must be positive")
    if fine_resolution > search_grid.resolution:
        raise LocalizationError(
            "fine resolution must refine the coarse grid "
            f"({fine_resolution} > {search_grid.resolution})"
        )
    with tracing.span("localize.coarse", points=search_grid.n_points):
        coarse = sar_heatmap(
            positions, channels, search_grid, frequency_hz, geometry=coarse_geometry
        )
    with tracing.span("localize.peaks"):
        peaks = find_peaks(coarse, relative_threshold=relative_threshold)
        if use_nearest_peak_rule:
            chosen = select_nearest_to_trajectory(peaks, positions)
        else:
            chosen = peaks[0]  # strongest
    with tracing.span("localize.fine"):
        fine_grid = search_grid.refined_around(
            chosen.position, span=fine_span, resolution=fine_resolution
        )
        fine = sar_heatmap(positions, channels, fine_grid, frequency_hz)
        estimate = fine.argmax_position()
    return MultiresResult(
        position=estimate,
        coarse_heatmap=coarse,
        fine_heatmap=fine,
        selected_peak=chosen,
    )
