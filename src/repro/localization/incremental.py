"""Incremental (streaming) SAR accumulation for online serving.

The matched filter of Eq. 11-12 is *linear in the poses before the
magnitude*: the coherent sum

    S(x, y) = sum_k w_k * exp(+j 2 pi f 2 d_k(x, y) / c)

is a plain sum over poses, so a service that receives measurements one
pose at a time can keep the running complex sum per grid node and fold
each new pose in for O(grid) work — instead of re-projecting the whole
trajectory (O(poses x grid)) on every update. The heatmap at any moment
is ``|S| / K``, exactly what :meth:`repro.localization.sar.SarGeometry.
profile` computes for the poses seen so far.

:meth:`IncrementalSar.finalize` then replays the coarse-to-fine search
of :func:`repro.localization.multires.multires_locate` on the full
retained history, so a streamed session ends with the *same* estimate
the offline batch :class:`~repro.localization.pipeline.Localizer` would
produce (the equivalence suite asserts agreement to 1e-9 on the golden
scenes; the accumulation itself is order-insensitive up to float
round-off).
"""

from __future__ import annotations

from typing import Any, Dict, List, Sequence, Tuple

import numpy as np

from repro.constants import SAR_DEFAULT_GRID_RESOLUTION_M, SPEED_OF_LIGHT
from repro.errors import InsufficientMeasurementsError, LocalizationError
from repro.localization.grid import Grid2D, Heatmap
from repro.localization.measurement import ThroughRelayMeasurement
from repro.localization.disentangle import disentangle
from repro.localization.peaks import find_peaks, select_nearest_to_trajectory
from repro.localization.pipeline import LocalizationResult
from repro.localization.sar import (
    DEFAULT_CHUNK_NODES,
    SarGeometry,
    _validate,
    sar_heatmap,
)
from repro.obs import metrics


def canonical_batch(
    positions: np.ndarray,
    channels: np.ndarray,
    check_finite: bool = True,
) -> Tuple[np.ndarray, np.ndarray]:
    """Validate and promote one ``(positions, channels)`` pose block.

    Single poses promote to ``(1, 2)`` / ``(1,)``; anything non-finite
    or shape-mismatched raises :class:`LocalizationError`. Both the
    scalar ingest path (:meth:`IncrementalSar.update`) and the batched
    cross-session kernel (:func:`repro.localization.batched.fold_blocks`)
    run blocks through here, so their admission rules cannot drift.
    ``check_finite=False`` defers the NaN/Inf scan to the caller — the
    batched kernel runs it once over the whole stacked round instead of
    per tiny block (hot-path cost, identical admission outcome).
    """
    positions = np.asarray(positions, dtype=float)
    channels = np.asarray(channels, dtype=complex)
    if positions.ndim == 1:
        positions = positions[None, :]
    if channels.ndim == 0:
        channels = channels[None]
    if positions.ndim != 2 or positions.shape[1] != 2:
        raise LocalizationError(
            f"positions must be (B, 2), got {positions.shape}"
        )
    if channels.shape != (positions.shape[0],):
        raise LocalizationError(
            f"got {len(channels)} channels for {len(positions)} positions"
        )
    if (
        check_finite
        and len(positions)
        and (
            not np.all(np.isfinite(positions))
            or not np.all(np.isfinite(channels))
        )
    ):
        raise LocalizationError(
            "positions/channels contain NaN or Inf; drop bad "
            "measurements before accumulating"
        )
    return positions, channels


def unit_weights(channels: np.ndarray) -> np.ndarray:
    """Channels whitened to unit magnitude (exact zeros pass through).

    The standard SAR back-projection weighting of
    :meth:`~repro.localization.sar.SarGeometry.profile`: near poses with
    much stronger channels must not dominate the coherent sum.
    """
    weights = np.asarray(channels, dtype=complex).copy()
    magnitudes = np.abs(weights)
    nonzero = magnitudes > 0
    weights[nonzero] = weights[nonzero] / magnitudes[nonzero]
    return weights


class IncrementalSar:
    """A running complex-sum heatmap over one search grid.

    Parameters
    ----------
    frequency_hz:
        Matched-filter frequency (the reader's f, as in the pipeline).
    grid:
        Coarse search grid; each update projects onto every node once.
    chunk_nodes:
        Node-chunking knob shared with :class:`SarGeometry` — purely a
        memory bound, never a result change.
    fine_resolution, fine_span:
        Parameters of the :func:`multires_locate`-equivalent fine stage
        run by :meth:`finalize`.
    relative_threshold, use_nearest_peak_rule:
        Peak-selection parameters, matching the batch pipeline.
    """

    def __init__(
        self,
        frequency_hz: float,
        grid: Grid2D,
        chunk_nodes: int = DEFAULT_CHUNK_NODES,
        fine_resolution: float = SAR_DEFAULT_GRID_RESOLUTION_M,
        fine_span: float = 1.0,
        relative_threshold: float = 0.7,
        use_nearest_peak_rule: bool = True,
    ) -> None:
        if frequency_hz <= 0:
            raise LocalizationError("frequency must be positive")
        if fine_resolution <= 0 or fine_span <= 0:
            raise LocalizationError("fine stage parameters must be positive")
        if fine_resolution > grid.resolution:
            raise LocalizationError(
                "fine resolution must refine the coarse grid "
                f"({fine_resolution} > {grid.resolution})"
            )
        self.frequency_hz = float(frequency_hz)
        self.grid = grid
        self.chunk_nodes = int(chunk_nodes)
        self.fine_resolution = float(fine_resolution)
        self.fine_span = float(fine_span)
        self.relative_threshold = float(relative_threshold)
        self.use_nearest_peak_rule = bool(use_nearest_peak_rule)
        gx, gy = grid.meshgrid()
        self._nodes = np.column_stack([gx.ravel(), gy.ravel()])
        self._accumulator = np.zeros(grid.n_points, dtype=complex)
        self._positions: List[np.ndarray] = []
        self._channels: List[np.ndarray] = []
        self._n_poses = 0
        # Grid and frequency are immutable after construction, so the
        # grouping key is computed once (it is read per block on the
        # batched ingest hot path).
        self._signature = (
            self.frequency_hz,
            grid.x_min,
            grid.x_max,
            grid.y_min,
            grid.y_max,
            grid.resolution,
        )

    # -- streaming ingest --------------------------------------------------------

    @property
    def n_poses(self) -> int:
        """Poses folded in so far."""
        return self._n_poses

    @property
    def n_nodes(self) -> int:
        """Grid nodes each pose projects onto (the per-update cost)."""
        return len(self._nodes)

    @property
    def k_factor(self) -> float:
        """Round-trip phase constant ``4*pi*f/c`` of Eq. 11-12."""
        return 2.0 * np.pi * self.frequency_hz * 2.0 / SPEED_OF_LIGHT

    def grid_nodes(self) -> np.ndarray:
        """The ``(N, 2)`` node coordinates (shared array; do not mutate)."""
        return self._nodes

    def batch_signature(self) -> Tuple[float, float, float, float, float, float]:
        """Grouping key for cross-accumulator batched folds.

        Accumulators with equal signatures share their node geometry
        and phase constant exactly, so one stacked distance/phase
        computation serves all of them (see
        :func:`repro.localization.batched.fold_blocks`).
        """
        return self._signature

    def fold_partial(self, node_slice: slice, partial: np.ndarray) -> None:
        """Add an externally computed per-node partial sum.

        The batched kernel hands each accumulator the coherent sum of
        its own pose segment, one node chunk at a time; history and
        pose-count bookkeeping happen separately in
        :meth:`record_block` once every chunk has landed.
        """
        self._accumulator[node_slice] += partial

    def record_block(
        self, positions: np.ndarray, channels: np.ndarray
    ) -> int:
        """Append one fully folded block to the retained history.

        Returns the grid nodes projected (the virtual work metric),
        matching what :meth:`update` reports for the same block. Inputs
        must already be canonical (see :func:`canonical_batch`). The
        batched kernel (:func:`repro.localization.batched.fold_blocks`)
        performs the same bookkeeping inline — ten thousand co-resident
        sessions mean ten thousand calls per round, so its per-block
        cost is held to plain attribute work — and emits one aggregate
        ``incremental_updates`` count per fold; the counter total is
        identical either way.
        """
        self._positions.append(positions)
        self._channels.append(channels)
        self._n_poses += len(positions)
        metrics.count("localization.sar.incremental_updates", len(positions))
        return len(positions) * self.n_nodes

    def update(self, positions: np.ndarray, channels: np.ndarray) -> int:
        """Fold a batch of poses in; returns nodes projected (work done).

        ``positions`` is (B, 2) and ``channels`` complex (B,) with
        B >= 1 — the disentangled relay-tag half-link channels. The
        whitening matches :meth:`SarGeometry.profile` exactly, so the
        accumulated heatmap equals the batch profile of the
        concatenated history (up to float round-off from the
        accumulation order).
        """
        positions, channels = canonical_batch(positions, channels)
        if len(positions) == 0:
            return 0
        weights = unit_weights(channels)
        k_factor = self.k_factor
        geometry = SarGeometry(
            positions,
            self._nodes,
            chunk_nodes=self.chunk_nodes,
            store_distances=False,
        )
        for node_slice, distances_m in geometry.iter_chunks():
            phases = np.exp(1j * (k_factor * distances_m))
            phases *= weights[:, None]
            self._accumulator[node_slice] += phases.sum(axis=0)
        return self.record_block(positions, channels)

    def update_measurement(self, measurement: ThroughRelayMeasurement) -> int:
        """Fold one raw through-relay measurement in (Eq. 10 + update)."""
        channel = disentangle(measurement.h_target, measurement.h_reference)
        return self.update(
            np.asarray(measurement.position, dtype=float)[None, :],
            np.array([channel], dtype=complex),
        )

    def history(self) -> Tuple[np.ndarray, np.ndarray]:
        """The retained ``(positions (K, 2), channels (K,))`` series."""
        if not self._positions:
            return np.empty((0, 2)), np.empty((0,), dtype=complex)
        return (
            np.concatenate(self._positions, axis=0),
            np.concatenate(self._channels, axis=0),
        )

    # -- readout -----------------------------------------------------------------

    def coarse_heatmap(self) -> Heatmap:
        """``|S| / K`` over the grid — the live matched-filter map."""
        if self._n_poses == 0:
            raise InsufficientMeasurementsError(
                "no poses accumulated yet; the heatmap is undefined"
            )
        values = np.abs(self._accumulator) / self._n_poses
        return Heatmap(grid=self.grid, values=values.reshape(self.grid.shape))

    def estimate(self) -> np.ndarray:
        """Cheap running estimate: the coarse-map argmax (no fine stage)."""
        return self.coarse_heatmap().argmax_position()

    def finalize(self) -> LocalizationResult:
        """The batch-equivalent coarse-to-fine estimate over the history.

        Validates the accumulated aperture exactly as the batch solver
        does, selects the peak with the same §5.2 rule, and runs the
        identical fine stage (``sar_heatmap`` over a refined grid), so
        the returned position matches
        ``Localizer.locate(history, search_grid=grid)`` run offline.
        """
        positions, channels = self.history()
        _validate(positions, channels, self.frequency_hz)
        coarse = self.coarse_heatmap()
        peaks = find_peaks(
            coarse, relative_threshold=self.relative_threshold
        )
        if self.use_nearest_peak_rule:
            chosen = select_nearest_to_trajectory(peaks, positions)
        else:
            chosen = peaks[0]
        fine_grid = self.grid.refined_around(
            chosen.position,
            span=self.fine_span,
            resolution=self.fine_resolution,
        )
        fine = sar_heatmap(
            positions, channels, fine_grid, self.frequency_hz
        )
        return LocalizationResult(
            position=fine.argmax_position(),
            coarse_heatmap=coarse,
            fine_heatmap=fine,
            peak_distance_to_trajectory_m=chosen.distance_to_trajectory_m,
        )

    # -- checkpoint / restore ----------------------------------------------------

    def to_payload(self) -> Dict[str, Any]:
        """A picklable snapshot (grid, parameters, sum, history)."""
        positions, channels = self.history()
        return {
            "frequency_hz": self.frequency_hz,
            "grid": (
                self.grid.x_min,
                self.grid.x_max,
                self.grid.y_min,
                self.grid.y_max,
                self.grid.resolution,
            ),
            "chunk_nodes": self.chunk_nodes,
            "fine_resolution": self.fine_resolution,
            "fine_span": self.fine_span,
            "relative_threshold": self.relative_threshold,
            "use_nearest_peak_rule": self.use_nearest_peak_rule,
            "accumulator": self._accumulator.copy(),
            "positions": positions,
            "channels": channels,
        }

    @classmethod
    def from_payload(cls, payload: Dict[str, Any]) -> "IncrementalSar":
        """Rebuild an accumulator from :meth:`to_payload` output."""
        instance = cls(
            frequency_hz=payload["frequency_hz"],
            grid=Grid2D(*payload["grid"]),
            chunk_nodes=payload["chunk_nodes"],
            fine_resolution=payload["fine_resolution"],
            fine_span=payload["fine_span"],
            relative_threshold=payload["relative_threshold"],
            use_nearest_peak_rule=payload["use_nearest_peak_rule"],
        )
        accumulator = np.asarray(payload["accumulator"], dtype=complex)
        if accumulator.shape != instance._accumulator.shape:
            raise LocalizationError(
                "checkpoint accumulator does not match the grid shape"
            )
        positions = np.asarray(payload["positions"], dtype=float)
        channels = np.asarray(payload["channels"], dtype=complex)
        instance._accumulator = accumulator
        if len(positions):
            instance._positions = [positions]
            instance._channels = [channels]
        instance._n_poses = len(positions)
        return instance


# -- multi-segment (fleet handoff) combination -----------------------------------


def _check_segments(
    segments: Sequence[IncrementalSar],
) -> List[IncrementalSar]:
    populated = [s for s in segments if s.n_poses > 0]
    if not populated:
        raise InsufficientMeasurementsError(
            "no poses accumulated in any segment"
        )
    first = populated[0]
    for other in populated[1:]:
        if other.batch_signature() != first.batch_signature():
            raise LocalizationError(
                "segments must share grid and frequency to combine"
            )
    return populated


def combined_coarse(segments: Sequence[IncrementalSar]) -> Heatmap:
    """Noncoherent combination of per-segment coarse maps.

    A tag served by several relays accumulates one coherent sum *per
    relay* (each relay's constant hardware factor ``G_r`` carries an
    unknown phase, so summing complex accumulators across relays would
    mis-add phases that never belonged together — see
    :mod:`repro.localization.disentangle`). Within a segment the sum
    stays fully coherent; across segments only the magnitudes add:

        P(x, y) = sum_r |S_r(x, y)| / sum_r K_r

    which reduces *exactly* to :meth:`IncrementalSar.coarse_heatmap`
    for a single segment.
    """
    populated = _check_segments(segments)
    total = sum(s.n_poses for s in populated)
    values = np.abs(populated[0]._accumulator)
    for other in populated[1:]:
        values += np.abs(other._accumulator)
    grid = populated[0].grid
    return Heatmap(grid=grid, values=(values / total).reshape(grid.shape))


def finalize_segments(
    segments: Sequence[IncrementalSar],
) -> LocalizationResult:
    """Batch-equivalent coarse-to-fine estimate over relay segments.

    Single-segment inputs take :meth:`IncrementalSar.finalize`'s exact
    path (byte-identical results for sessions that never handed off).
    Multi-segment inputs combine noncoherently: the coarse peak comes
    from :func:`combined_coarse`, the aperture/peak rules see the
    concatenated pose history, and the fine stage sums per-segment
    ``sar_heatmap`` magnitudes over one shared refined grid.
    """
    populated = _check_segments(segments)
    if len(populated) == 1:
        return populated[0].finalize()
    first = populated[0]
    all_positions = np.concatenate(
        [s.history()[0] for s in populated], axis=0
    )
    all_channels = np.concatenate([s.history()[1] for s in populated])
    _validate(all_positions, all_channels, first.frequency_hz)
    coarse = combined_coarse(populated)
    peaks = find_peaks(
        coarse, relative_threshold=first.relative_threshold
    )
    if first.use_nearest_peak_rule:
        chosen = select_nearest_to_trajectory(peaks, all_positions)
    else:
        chosen = peaks[0]
    fine_grid = first.grid.refined_around(
        chosen.position,
        span=first.fine_span,
        resolution=first.fine_resolution,
    )
    total = sum(s.n_poses for s in populated)
    fine_values = np.zeros(fine_grid.shape)
    for segment in populated:
        positions, channels = segment.history()
        segment_fine = sar_heatmap(
            positions, channels, fine_grid, segment.frequency_hz
        )
        # ``sar_heatmap`` normalizes by the segment's own pose count;
        # scale back to |S_r| so segments weight by evidence, then
        # renormalize by the total.
        fine_values += segment_fine.values * segment.n_poses
    fine = Heatmap(grid=fine_grid, values=fine_values / total)
    return LocalizationResult(
        position=fine.argmax_position(),
        coarse_heatmap=coarse,
        fine_heatmap=fine,
        peak_distance_to_trajectory_m=chosen.distance_to_trajectory_m,
    )
