"""Peak extraction and multipath-robust selection (paper §5.2).

Under multipath the heatmap grows several "ghost" peaks (Fig. 6b).
The paper's insight: reflections always travel a longer path than the
direct link, so ghosts always appear *farther from the trajectory* than
the true tag. RFly therefore selects, among the significant peaks, the
one nearest the flight path rather than the absolute maximum.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.errors import LocalizationError
from repro.localization.grid import Heatmap


@dataclass(frozen=True)
class Peak:
    """A local maximum of the heatmap."""

    position: np.ndarray
    value: float
    distance_to_trajectory_m: float = float("nan")


def _local_maxima_mask(values: np.ndarray) -> np.ndarray:
    """Nodes >= all 8 neighbours (plateau-tolerant)."""
    padded = np.pad(values, 1, mode="constant", constant_values=-np.inf)
    center = padded[1:-1, 1:-1]
    mask = np.ones_like(values, dtype=bool)
    for dr in (-1, 0, 1):
        for dc in (-1, 0, 1):
            if dr == 0 and dc == 0:
                continue
            neighbour = padded[1 + dr : padded.shape[0] - 1 + dr,
                               1 + dc : padded.shape[1] - 1 + dc]
            mask &= center >= neighbour
    return mask


def find_peaks(
    heatmap: Heatmap, relative_threshold: float = 0.5, max_peaks: int = 16
) -> List[Peak]:
    """Significant local maxima, strongest first.

    ``relative_threshold`` is the fraction of the global maximum a local
    maximum must reach to count as a candidate tag location.
    """
    if not 0.0 < relative_threshold <= 1.0:
        raise LocalizationError("relative threshold must be in (0, 1]")
    values = heatmap.values
    peak_floor = heatmap.peak_value * relative_threshold
    mask = _local_maxima_mask(values) & (values >= peak_floor)
    rows, cols = np.nonzero(mask)
    order = np.argsort(values[rows, cols])[::-1][:max_peaks]
    peaks = []
    for idx in order:
        r, c = rows[idx], cols[idx]
        peaks.append(
            Peak(
                position=np.array([heatmap.grid.xs[c], heatmap.grid.ys[r]]),
                value=float(values[r, c]),
            )
        )
    if not peaks:
        raise LocalizationError("heatmap has no significant peaks")
    return peaks


def distance_to_polyline(point, polyline: np.ndarray) -> float:
    """Shortest distance from a point to a piecewise-linear path."""
    p = np.asarray(point, dtype=float)
    polyline = np.asarray(polyline, dtype=float)
    if polyline.ndim != 2 or polyline.shape[1] != 2 or len(polyline) < 1:
        raise LocalizationError("polyline must be (K, 2) with K >= 1")
    if len(polyline) == 1:
        return float(np.linalg.norm(p - polyline[0]))
    best = np.inf
    for a, b in zip(polyline[:-1], polyline[1:]):
        ab = b - a
        denom = float(np.dot(ab, ab))
        if denom == 0.0:
            candidate = float(np.linalg.norm(p - a))
        else:
            t = float(np.clip(np.dot(p - a, ab) / denom, 0.0, 1.0))
            candidate = float(np.linalg.norm(p - (a + t * ab)))
        best = min(best, candidate)
    return best


def select_nearest_to_trajectory(
    peaks: List[Peak], trajectory_positions: np.ndarray
) -> Peak:
    """The paper's multipath rule: nearest significant peak wins."""
    if not peaks:
        raise LocalizationError("no peaks to select from")
    annotated = [
        Peak(
            position=p.position,
            value=p.value,
            distance_to_trajectory_m=distance_to_polyline(
                p.position, trajectory_positions
            ),
        )
        for p in peaks
    ]
    return min(annotated, key=lambda p: p.distance_to_trajectory_m)
