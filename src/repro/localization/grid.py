"""Search grids and heatmaps for the SAR matched filter."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

import numpy as np

from repro.errors import LocalizationError


@dataclass(frozen=True)
class Grid2D:
    """A rectangular search grid.

    The matched filter of Eq. 12 is evaluated at every node; resolution
    bounds the quantization floor of the localization error.
    """

    x_min: float
    x_max: float
    y_min: float
    y_max: float
    resolution: float

    def __post_init__(self) -> None:
        if self.x_min >= self.x_max or self.y_min >= self.y_max:
            raise LocalizationError("grid extents must be positive")
        if self.resolution <= 0:
            raise LocalizationError("grid resolution must be positive")
        if self.n_points > 5_000_000:
            raise LocalizationError(
                f"grid of {self.n_points} points is too large; raise the "
                "resolution or use the multi-resolution search"
            )

    @property
    def xs(self) -> np.ndarray:
        """Node coordinates along the x axis."""
        return np.arange(self.x_min, self.x_max + self.resolution / 2, self.resolution)

    @property
    def ys(self) -> np.ndarray:
        """Node coordinates along the y axis."""
        return np.arange(self.y_min, self.y_max + self.resolution / 2, self.resolution)

    @property
    def shape(self) -> Tuple[int, int]:
        """(rows, cols) = (len(ys), len(xs))."""
        return len(self.ys), len(self.xs)

    @property
    def n_points(self) -> int:
        """Total number of grid nodes (consistent with :meth:`meshgrid`)."""
        rows, cols = self.shape
        return rows * cols

    def meshgrid(self) -> Tuple[np.ndarray, np.ndarray]:
        """(X, Y) arrays of node coordinates, each of :attr:`shape`."""
        return np.meshgrid(self.xs, self.ys)

    def refined_around(self, center, span: float, resolution: float) -> "Grid2D":
        """A finer grid centered on a point (the multires inner stage)."""
        cx, cy = float(center[0]), float(center[1])
        return Grid2D(
            x_min=cx - span / 2,
            x_max=cx + span / 2,
            y_min=cy - span / 2,
            y_max=cy + span / 2,
            resolution=resolution,
        )

    @staticmethod
    def around_trajectory(
        positions: np.ndarray, margin: float, resolution: float
    ) -> "Grid2D":
        """A grid covering the flight path plus a margin on every side."""
        if margin <= 0:
            raise LocalizationError("margin must be positive")
        positions = np.asarray(positions, dtype=float)
        return Grid2D(
            x_min=float(positions[:, 0].min() - margin),
            x_max=float(positions[:, 0].max() + margin),
            y_min=float(positions[:, 1].min() - margin),
            y_max=float(positions[:, 1].max() + margin),
            resolution=resolution,
        )


@dataclass(frozen=True)
class Heatmap:
    """P(x, y) evaluated over a grid (the images of paper Fig. 6)."""

    grid: Grid2D
    values: np.ndarray

    def __post_init__(self) -> None:
        expected = self.grid.shape
        if self.values.shape != expected:
            raise LocalizationError(
                f"heatmap shape {self.values.shape} != grid shape {expected}"
            )

    @property
    def peak_value(self) -> float:
        """The maximum of the matched-filter map."""
        return float(np.max(self.values))

    def argmax_position(self) -> np.ndarray:
        """Coordinates of the highest node (Eq. 11 without §5.2's rule)."""
        row, col = np.unravel_index(int(np.argmax(self.values)), self.values.shape)
        return np.array([self.grid.xs[col], self.grid.ys[row]])

    def value_at(self, position) -> float:
        """Nearest-node heatmap value at arbitrary coordinates."""
        x, y = float(position[0]), float(position[1])
        col = int(np.clip(round((x - self.grid.x_min) / self.grid.resolution),
                          0, len(self.grid.xs) - 1))
        row = int(np.clip(round((y - self.grid.y_min) / self.grid.resolution),
                          0, len(self.grid.ys) - 1))
        return float(self.values[row, col])
