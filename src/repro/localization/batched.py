"""Cross-session batched SAR ingest: one stacked fold per round.

The serving hot path used to fold every session's micro-batch through
its own chunked :class:`~repro.localization.sar.SarGeometry` pass — one
``(B, N)`` distance tensor, one ``exp``, one accumulate *per session
per round*. At fleet scale (thousands of co-scheduled sessions sharing
one search grid) the per-call overhead dominates the arithmetic.

Because the Eq. 11-12 coherent sum is linear and per-pose terms never
interact across sessions, a whole round can instead stack every planned
block's poses into one ``(P, 2)`` array, compute the node-chunked
distance/phase matrix once, and hand each accumulator exactly the
per-node sum of its own contiguous pose segment
(``np.add.reduceat`` over the stacked weighted-phase matrix).

Two exactness properties matter and are pinned by the test suite:

* **Batched ~ scalar**: a segment's reduction is the same coherent sum
  :meth:`IncrementalSar.update` computes, associated differently —
  agreement to 1e-12 under arbitrary micro-batch splits.
* **Stacking-invariance (exact)**: a segment's reduction reads only its
  own rows, and node chunk boundaries only split *where* partial sums
  land, never what is added per node — so an accumulator's bits do not
  depend on which other sessions were co-batched. That is what makes a
  sharded service (fewer co-resident sessions per round) bit-identical
  to the unsharded one (see :mod:`repro.serve.shard`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.errors import LocalizationError
from repro.localization.incremental import (
    IncrementalSar,
    canonical_batch,
    unit_weights,
)
from repro.localization.sar import _MAX_CHUNK_ELEMENTS
from repro.obs import metrics


@dataclass(frozen=True, eq=False)
class PoseBlock:
    """One accumulator-bound pose block staged for a batched fold.

    ``positions`` is ``(B, 2)`` and ``channels`` complex ``(B,)`` —
    the same shapes :meth:`IncrementalSar.update` takes; the fold is
    the moral equivalent of ``target.update(positions, channels)``.
    """

    target: IncrementalSar
    positions: np.ndarray
    channels: np.ndarray


def fold_blocks(blocks: Sequence[PoseBlock]) -> int:
    """Fold staged blocks into their accumulators, one pass per group.

    Blocks are grouped by their target's
    :meth:`~IncrementalSar.batch_signature` (identical grid + phase
    constant); each group runs as a single stacked kernel. Within a
    group, blocks fold in input order — a session that staged a FULL
    batch and then a catch-up block sees the same accumulator ordering
    the scalar path produces. Returns total grid nodes projected,
    matching the sum of per-block ``update`` returns.
    """
    groups: Dict[
        Tuple[float, ...], List[Tuple[PoseBlock, np.ndarray, np.ndarray]]
    ] = {}
    staged = 0
    for block in blocks:
        # Finiteness is checked once per stacked group (hot path);
        # shape admission stays per block for exact error attribution.
        positions, channels = canonical_batch(
            block.positions, block.channels, check_finite=False
        )
        if len(positions):
            staged += 1
            groups.setdefault(block.target.batch_signature(), []).append(
                (block, positions, channels)
            )
    if not staged:
        return 0
    projected = 0
    for group in groups.values():
        projected += _fold_group(group)
    metrics.count("localization.sar.batched_folds")
    return projected


def _fold_group(
    group: Sequence[Tuple[PoseBlock, np.ndarray, np.ndarray]]
) -> int:
    """One stacked segment-reduced fold over same-signature blocks.

    The stacked round is processed in fixed-size *slabs* of pose rows
    through preallocated scratch buffers: allocator and first-touch
    costs are paid once per group instead of once per node chunk, and
    a slab's working set stays cache-sized. Slab boundaries always
    coincide with block boundaries, so each block's segment reduction
    sees exactly the rows it would in one giant pass — identical bits,
    bounded memory.
    """
    reference = group[0][0].target
    nodes = reference.grid_nodes()
    positions = np.concatenate([entry[1] for entry in group], axis=0)
    channels = np.concatenate([entry[2] for entry in group])
    if not (
        np.all(np.isfinite(positions)) and np.all(np.isfinite(channels))
    ):
        raise LocalizationError(
            "staged pose blocks contain NaN or Inf; drop bad "
            "measurements before accumulating"
        )
    weights = unit_weights(channels)
    pos_x = np.ascontiguousarray(positions[:, 0])
    pos_y = np.ascontiguousarray(positions[:, 1])
    nodes_x = np.ascontiguousarray(nodes[:, 0])
    nodes_y = np.ascontiguousarray(nodes[:, 1])
    slabs = _slab_spans([len(entry[1]) for entry in group])
    slab_rows = max(rows_hi - rows_lo for _, _, rows_lo, rows_hi in slabs)
    k_factor = reference.k_factor
    n_nodes = len(nodes)
    chunk = max(
        1,
        min(
            reference.chunk_nodes,
            _MAX_CHUNK_ELEMENTS // max(1, slab_rows),
        ),
    )
    chunk = min(chunk, n_nodes)
    scratch = np.empty((slab_rows, chunk), dtype=float)
    dy = np.empty((slab_rows, chunk), dtype=float)
    phases = np.empty((slab_rows, chunk), dtype=complex)
    for start in range(0, n_nodes, chunk):
        stop = min(start + chunk, n_nodes)
        node_slice = slice(start, stop)
        width = stop - start
        chunk_x = nodes_x[node_slice]
        chunk_y = nodes_y[node_slice]
        for block_lo, block_hi, rows_lo, rows_hi in slabs:
            rows = rows_hi - rows_lo
            dist = scratch[:rows, :width]
            dy_v = dy[:rows, :width]
            # d^2 = dx^2 + dy^2 built in place via outer differences:
            # same bits as the (R, N, 2)-broadcast norm without its
            # 3-D intermediate.
            np.subtract(pos_x[rows_lo:rows_hi, None], chunk_x, out=dist)
            np.subtract(pos_y[rows_lo:rows_hi, None], chunk_y, out=dy_v)
            dist *= dist
            dy_v *= dy_v
            dist += dy_v
            np.sqrt(dist, out=dist)
            dist *= k_factor
            # exp(j x) assembled as cos/sin written straight into the
            # complex buffer's real/imag views (cexp with a zero real
            # part reduces to exactly this, minus one temporary).
            phase_v = phases[:rows, :width]
            np.cos(dist, out=phase_v.real)
            np.sin(dist, out=phase_v.imag)
            phase_v *= weights[rows_lo:rows_hi, None]
            if block_hi - block_lo == rows:
                # All-singleton slab (the steady serving state: one
                # pose per session per round): each segment is its own
                # row, exactly what reduceat returns for length-1
                # segments, so the reduction is skipped outright.
                partials = phase_v
            else:
                counts = [
                    len(group[index][1])
                    for index in range(block_lo, block_hi)
                ]
                starts = np.concatenate(
                    [[0], np.cumsum(counts[:-1])]
                ).astype(np.intp)
                partials = np.add.reduceat(phase_v, starts, axis=0)
            # Inlined IncrementalSar.fold_partial: at fleet scale this
            # loop runs once per co-resident session per round, so the
            # accumulate is a plain indexed add with no method dispatch.
            for offset in range(block_hi - block_lo):
                target = group[block_lo + offset][0].target
                target._accumulator[node_slice] += partials[offset]
    # Inlined IncrementalSar.record_block (same reasoning), with one
    # aggregate incremental_updates count per fold — the counter total
    # is identical to the scalar path's per-block emissions.
    total_poses = 0
    for block, block_positions, block_channels in group:
        target = block.target
        target._positions.append(block_positions)
        target._channels.append(block_channels)
        count = len(block_positions)
        target._n_poses += count
        total_poses += count
    metrics.count("localization.sar.incremental_updates", total_poses)
    return total_poses * n_nodes


#: Pose rows per scratch slab: large enough to amortize per-slab ufunc
#: dispatch, small enough that the complex phase buffer stays ~L2/L3
#: sized for typical serving grids.
_SLAB_ROWS = 4096


def _slab_spans(
    counts: Sequence[int], slab_rows: int = _SLAB_ROWS
) -> List[Tuple[int, int, int, int]]:
    """Partition blocks into row slabs aligned to block boundaries.

    Returns ``(block_lo, block_hi, rows_lo, rows_hi)`` spans covering
    all blocks in order. A block larger than ``slab_rows`` gets a slab
    of its own — blocks are never split, so segment reductions are
    slab-local.
    """
    spans: List[Tuple[int, int, int, int]] = []
    block_lo = 0
    rows_lo = 0
    rows = 0
    for index, count in enumerate(counts):
        if rows and rows + count > slab_rows:
            spans.append((block_lo, index, rows_lo, rows_lo + rows))
            block_lo = index
            rows_lo += rows
            rows = 0
        rows += count
    if rows or not spans:
        spans.append((block_lo, len(counts), rows_lo, rows_lo + rows))
    return spans
