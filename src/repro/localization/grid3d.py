"""3-D search grids and volumes for the SAR extension of paper §5.2.

"While the above localization method was described in 2D for
simplicity, it can be extended to 3D if the robot's trajectory is
two-dimensional." A planar (e.g. lawnmower) flight gives the matched
filter enough geometric diversity to resolve all three coordinates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.errors import LocalizationError


@dataclass(frozen=True)
class Grid3D:
    """A rectangular 3-D search volume."""

    x_min: float
    x_max: float
    y_min: float
    y_max: float
    z_min: float
    z_max: float
    resolution: float

    def __post_init__(self) -> None:
        if (
            self.x_min >= self.x_max
            or self.y_min >= self.y_max
            or self.z_min >= self.z_max
        ):
            raise LocalizationError("grid extents must be positive")
        if self.resolution <= 0:
            raise LocalizationError("grid resolution must be positive")
        if self.n_points > 8_000_000:
            raise LocalizationError(
                f"volume of {self.n_points} nodes is too large; coarsen the "
                "resolution or shrink the volume"
            )

    def _axis(self, lo: float, hi: float) -> np.ndarray:
        return np.arange(lo, hi + self.resolution / 2, self.resolution)

    @property
    def xs(self) -> np.ndarray:
        """Node coordinates along the x axis."""
        return self._axis(self.x_min, self.x_max)

    @property
    def ys(self) -> np.ndarray:
        """Node coordinates along the y axis."""
        return self._axis(self.y_min, self.y_max)

    @property
    def zs(self) -> np.ndarray:
        """Node coordinates along the z axis."""
        return self._axis(self.z_min, self.z_max)

    @property
    def shape(self) -> Tuple[int, int, int]:
        """Array shape of the node lattice."""
        return len(self.zs), len(self.ys), len(self.xs)

    @property
    def n_points(self) -> int:
        """Total number of grid nodes."""
        count = lambda lo, hi: int(np.floor((hi - lo) / self.resolution)) + 1
        return (
            count(self.x_min, self.x_max)
            * count(self.y_min, self.y_max)
            * count(self.z_min, self.z_max)
        )

    def nodes(self) -> np.ndarray:
        """All node coordinates, shape (n, 3), z-major like :attr:`shape`."""
        gz, gy, gx = np.meshgrid(self.zs, self.ys, self.xs, indexing="ij")
        return np.column_stack([gx.ravel(), gy.ravel(), gz.ravel()])

    def refined_around(self, center, span: float, resolution: float) -> "Grid3D":
        """A finer volume centered on a point."""
        cx, cy, cz = (float(center[i]) for i in range(3))
        half = span / 2.0
        return Grid3D(
            cx - half, cx + half, cy - half, cy + half, cz - half, cz + half,
            resolution,
        )


@dataclass(frozen=True)
class Volume:
    """P(x, y, z) over a 3-D grid."""

    grid: Grid3D
    values: np.ndarray

    def __post_init__(self) -> None:
        if self.values.shape != self.grid.shape:
            raise LocalizationError(
                f"volume shape {self.values.shape} != grid shape "
                f"{self.grid.shape}"
            )

    @property
    def peak_value(self) -> float:
        """The maximum of the matched-filter map."""
        return float(np.max(self.values))

    def argmax_position(self) -> np.ndarray:
        """Coordinates of the strongest node."""
        iz, iy, ix = np.unravel_index(
            int(np.argmax(self.values)), self.values.shape
        )
        return np.array(
            [self.grid.xs[ix], self.grid.ys[iy], self.grid.zs[iz]]
        )


def sar_volume(
    positions: np.ndarray,
    channels: np.ndarray,
    grid: Grid3D,
    frequency_hz: float,
    normalize: bool = True,
) -> Volume:
    """The matched filter over a 3-D volume (positions must be (K, 3))."""
    from repro.localization.sar import sar_profile

    nodes = grid.nodes()
    values = sar_profile(positions, channels, nodes, frequency_hz, normalize)
    return Volume(grid=grid, values=values.reshape(grid.shape))


def locate_3d(
    positions: np.ndarray,
    channels: np.ndarray,
    grid: Grid3D,
    frequency_hz: float,
    fine_resolution: float = 0.03,
    fine_span: float = 0.6,
) -> np.ndarray:
    """Coarse-to-fine 3-D localization from a planar trajectory."""
    if fine_resolution <= 0 or fine_span <= 0:
        raise LocalizationError("fine stage parameters must be positive")
    coarse = sar_volume(positions, channels, grid, frequency_hz)
    candidate = coarse.argmax_position()
    fine_grid = grid.refined_around(candidate, fine_span, fine_resolution)
    fine = sar_volume(positions, channels, fine_grid, frequency_hz)
    return fine.argmax_position()
