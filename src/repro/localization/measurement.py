"""The through-relay phase measurement model (paper Eq. 7-9).

At each drone pose, the reader's channel estimate for a tag factors as

    h = A_rt(f) * B_rt(f2) * G

where ``A_rt`` is the reader->relay *round-trip* half-link at the
reader's frequency f, ``B_rt`` the relay->tag round-trip half-link at
the shifted frequency f2, and ``G`` a constant relay hardware factor
(gain and filter phase — constant because the mirrored architecture
cancels everything time-varying; see §4.3 and Fig. 10).

Each half-link is the superposition of its multipath rays; by channel
reciprocity the round trip is the square of the one-way sum, which
expands into exactly the double sum over path pairs of Eq. 8. The
relay-embedded reference RFID measures ``A_rt * C`` with constant C, so
a division isolates ``B_rt`` (Eq. 10) — see
:mod:`repro.localization.disentangle`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.channel.environment import Environment
from repro.constants import RELAY_FREQUENCY_SHIFT_HZ, UHF_CENTER_FREQUENCY
from repro.dsp.units import db_to_linear
from repro.errors import ConfigurationError
from repro.mobility.trajectory import TrajectorySample


@dataclass(frozen=True)
class ThroughRelayMeasurement:
    """One reader observation at one drone pose.

    ``h_target`` and ``h_reference`` are the reader's channel estimates
    for the environment tag and the relay-embedded reference RFID;
    ``position`` is the drone pose the SAR solver will use (in practice
    the OptiTrack observation of it). ``relay`` names which fleet relay
    carried the observation (``""`` on the single-relay paths, where
    there is nothing to distinguish).
    """

    position: np.ndarray
    h_target: complex
    h_reference: complex
    snr_db: float
    time: float = 0.0
    relay: str = ""


class MeasurementModel:
    """Synthesizes through-relay measurements along a trajectory.

    Parameters
    ----------
    environment:
        Propagation environment (walls produce the multipath of Fig. 5).
    reader_position:
        The stationary reader's location.
    reader_frequency_hz:
        The reader's carrier f.
    frequency_shift_hz:
        The relay's shift; f2 = f + shift. The paper keeps
        (f - f2)/f < 0.01 so the reader may use f in Eq. 12 (§5.2).
    reference_gain:
        The constant C of the reference RFID's channel.
    relay_gain_db:
        Constant relay hardware gain folded into every target channel.
    """

    def __init__(
        self,
        environment: Optional[Environment] = None,
        reader_position=(0.0, 0.0),
        reader_frequency_hz: float = UHF_CENTER_FREQUENCY,
        frequency_shift_hz: float = RELAY_FREQUENCY_SHIFT_HZ,
        reference_gain: complex = 0.05 * np.exp(1j * 0.7),
        relay_gain_db: float = 45.0,
    ) -> None:
        if reader_frequency_hz <= 0:
            raise ConfigurationError("reader frequency must be positive")
        if reference_gain == 0:
            raise ConfigurationError("reference gain must be nonzero")
        self.environment = environment or Environment.free_space()
        self.reader_position = np.asarray(reader_position, dtype=float)
        self.f = float(reader_frequency_hz)
        self.f2 = float(reader_frequency_hz + frequency_shift_hz)
        self.reference_gain = complex(reference_gain)
        self.relay_gain = float(np.sqrt(db_to_linear(relay_gain_db)))

    # -- half-links ------------------------------------------------------------

    def reader_relay_round_trip(self, drone_position) -> complex:
        """A_rt: reader->relay one-way channel squared (reciprocity)."""
        one_way = self.environment.channel(
            self.reader_position, drone_position, self.f
        )
        return complex(one_way * one_way)

    def relay_tag_round_trip(self, drone_position, tag_position) -> complex:
        """B_rt: relay->tag one-way channel squared at f2."""
        one_way = self.environment.channel(drone_position, tag_position, self.f2)
        return complex(one_way * one_way)

    # -- measurements -----------------------------------------------------------

    #: The reference RFID sits centimeters from the relay's antennas, so
    #: its reply is received this much cleaner than an environment tag's.
    REFERENCE_SNR_ADVANTAGE_DB = 10.0

    def measure(
        self,
        drone_position,
        tag_position,
        rng: Optional[np.random.Generator] = None,
        snr_db: float = 30.0,
        time: float = 0.0,
    ) -> ThroughRelayMeasurement:
        """One through-relay observation at one drone pose.

        Noise is applied to both channel estimates as circular complex
        Gaussian scaled to the requested estimate SNR (the reference
        RFID's estimate is cleaner by its proximity advantage).
        """
        a_rt = self.reader_relay_round_trip(drone_position)
        b_rt = self.relay_tag_round_trip(drone_position, tag_position)
        h_target = a_rt * b_rt * self.relay_gain
        h_reference = a_rt * self.reference_gain
        if rng is not None and np.isfinite(snr_db):
            scale = np.sqrt(db_to_linear(-snr_db) / 2.0)
            h_target += (
                abs(h_target)
                * scale
                * (rng.standard_normal() + 1j * rng.standard_normal())
            )
            ref_scale = np.sqrt(
                db_to_linear(-(snr_db + self.REFERENCE_SNR_ADVANTAGE_DB)) / 2.0
            )
            h_reference += (
                abs(h_reference)
                * ref_scale
                * (rng.standard_normal() + 1j * rng.standard_normal())
            )
        return ThroughRelayMeasurement(
            position=np.asarray(drone_position, dtype=float),
            h_target=complex(h_target),
            h_reference=complex(h_reference),
            snr_db=float(snr_db),
            time=float(time),
        )

    def measure_along(
        self,
        samples: Sequence[TrajectorySample],
        tag_position,
        rng: Optional[np.random.Generator] = None,
        snr_db: float = 30.0,
    ) -> List[ThroughRelayMeasurement]:
        """Observations at every pose of a flight."""
        return [
            self.measure(s.position, tag_position, rng, snr_db, s.time)
            for s in samples
        ]
