"""Physical constants and UHF RFID band/protocol parameters.

All frequencies are in Hz, distances in meters, powers in dBm unless a
name says otherwise. The Gen2 timing values follow the EPCglobal Class-1
Generation-2 air-interface protocol, v2.0.1, and the band plan follows
the FCC 902--928 MHz ISM rules that the paper's experiments use.
"""

from __future__ import annotations

# --------------------------------------------------------------------------
# Physics
# --------------------------------------------------------------------------

SPEED_OF_LIGHT = 299_792_458.0
"""Speed of light in vacuum, m/s."""

BOLTZMANN_DBM_PER_HZ = -173.8
"""Thermal noise density kT at 290 K, in dBm/Hz."""

# --------------------------------------------------------------------------
# UHF ISM band plan (FCC part 15, as used by the paper)
# --------------------------------------------------------------------------

UHF_BAND_START = 902.0e6
"""Lower edge of the US UHF RFID ISM band."""

UHF_BAND_STOP = 928.0e6
"""Upper edge of the US UHF RFID ISM band."""

UHF_CHANNEL_SPACING = 500.0e3
"""FCC channel spacing; readers hop across 50 channels."""

UHF_NUM_CHANNELS = 50
"""Number of hopping channels in the US band plan."""

UHF_CENTER_FREQUENCY = 915.0e6
"""Band center, used as the default reader carrier."""

UHF_WAVELENGTH = SPEED_OF_LIGHT / UHF_CENTER_FREQUENCY
"""Wavelength at band center (~32.8 cm)."""

FCC_HOP_DWELL_SECONDS = 0.4
"""Maximum dwell time on a hopping channel (FCC 15.247 allows 0.4 s)."""

# --------------------------------------------------------------------------
# EPC Gen2 physical layer
# --------------------------------------------------------------------------

GEN2_TARI_MIN = 6.25e-6
"""Minimum reader data-0 symbol length (Tari)."""

GEN2_TARI_MAX = 25.0e-6
"""Maximum reader data-0 symbol length (Tari)."""

GEN2_TARI_DEFAULT = 12.5e-6
"""A common Tari choice; gives a ~125 kHz-wide reader query spectrum."""

GEN2_BLF_MIN = 40.0e3
"""Minimum backscatter link frequency the protocol allows."""

GEN2_BLF_MAX = 640.0e3
"""Maximum backscatter link frequency the protocol allows."""

GEN2_BLF_DEFAULT = 500.0e3
"""BLF used throughout the paper (uplink band-pass filter is centered here)."""

GEN2_QUERY_BANDWIDTH = 125.0e3
"""Approximate occupied bandwidth of the reader-to-tag query (paper Fig. 4)."""

GEN2_RN16_BITS = 16
"""Length of the RN16 handle a tag backscatters first."""

GEN2_EPC_BITS = 96
"""Standard EPC length (96-bit) used by Alien Squiggle tags."""

GEN2_PC_BITS = 16
"""Protocol-control word length preceding the EPC."""

GEN2_CRC16_BITS = 16
"""CRC-16 appended to PC+EPC replies."""

GEN2_MAX_Q = 15
"""Maximum Gen2 slot-count exponent Q."""

# --------------------------------------------------------------------------
# Tag hardware (Alien Squiggle ALN-9640-class passive tags)
# --------------------------------------------------------------------------

TAG_SENSITIVITY_DBM = -15.0
"""Minimum received power for a passive tag to power up (paper §2)."""

TAG_MODULATION_LOSS_DB = 6.0
"""Backscatter conversion loss: reflected power is below incident power."""

TAG_ANTENNA_GAIN_DBI = 2.0
"""Typical dipole-like tag antenna gain."""

TAG_MIN_MODULATION_DEPTH = 0.10
"""Minimum downlink modulation depth a tag needs to decode commands."""

# --------------------------------------------------------------------------
# Reader hardware (USRP N210-based reader of the paper)
# --------------------------------------------------------------------------

READER_TX_POWER_DBM = 30.0
"""Reader transmit power (1 W, the FCC conducted limit)."""

READER_ANTENNA_GAIN_DBI = 6.0
"""Reader antenna gain (patch antenna; FCC EIRP limit is 36 dBm)."""

READER_NOISE_FIGURE_DB = 6.0
"""Receiver noise figure of the USRP-class front end."""

READER_DECODE_SNR_DB = 3.0
"""Minimum post-processing SNR to decode a tag reply (paper §7.3b)."""

# --------------------------------------------------------------------------
# Relay hardware (the paper's PCB prototype, §6.1/§6.2)
# --------------------------------------------------------------------------

RELAY_PA_P1DB_DBM = 29.0
"""Downlink power amplifier 1-dB compression point."""

RELAY_LPF_CUTOFF_HZ = 100.0e3
"""Downlink low-pass filter cut-off (passes the reader query only)."""

RELAY_BPF_CENTER_HZ = 500.0e3
"""Uplink band-pass filter center (passes the tag response only)."""

RELAY_BPF_HALF_BANDWIDTH_HZ = 150.0e3
"""Uplink band-pass half-bandwidth around the BLF."""

RELAY_FREQUENCY_SHIFT_HZ = 1.0e6
"""Downlink/uplink frequency shift |f2 - f1| (paper §5.2: as little as 1 MHz)."""

RELAY_ANTENNA_SEPARATION_M = 0.10
"""Spacing between the relay's antennas on the PCB (10 cm, §7.1)."""

RELAY_WEIGHT_GRAMS = 35.0
"""Total relay weight; must stay under the drone payload."""

RELAY_POWER_CONSUMPTION_W = 5.8
"""Relay power draw from the drone battery (§6.2)."""

RELAY_SUPPLY_VOLTAGE_V = 5.5
"""Relay DC supply voltage (behind the DC-DC converter)."""

RELAY_FREQ_SWEEP_CHUNK_SECONDS = 1.0e-3
"""Frequency discovery operates on contiguous 1-ms chunks (paper §4.2)."""

RELAY_FREQ_SWEEP_TOTAL_SECONDS = 20.0e-3
"""Total frequency-discovery sweep time (paper §4.2)."""

# --------------------------------------------------------------------------
# Drone (Parrot Bebop 2, §6.2) and ground robot (iRobot Create 2, §7.3)
# --------------------------------------------------------------------------

DRONE_MAX_PAYLOAD_GRAMS = 200.0
"""Bebop 2 maximum payload."""

DRONE_BATTERY_VOLTAGE_V = 12.0
"""Bebop 2 battery output voltage."""

DRONE_BATTERY_MAX_CURRENT_A = 21.6
"""Bebop 2 battery maximum discharge current."""

DRONE_DIMENSIONS_M = (0.32, 0.38)
"""Bebop 2 footprint."""

ROBOT_SPEED_MPS = 0.3
"""iRobot Create 2 cruise speed used for the microbenchmarks."""

DRONE_SPEED_MPS = 0.5
"""Indoor drone cruise speed along the flight path."""

# --------------------------------------------------------------------------
# Localization defaults
# --------------------------------------------------------------------------

SAR_DEFAULT_GRID_RESOLUTION_M = 0.02
"""Fine search-grid spacing for the SAR matched filter."""

SAR_DEFAULT_APERTURE_M = 3.0
"""Default synthetic-aperture length (paper: practical range 3-5 m)."""

OPTITRACK_ACCURACY_M = 0.005
"""Sub-centimeter ground-truth accuracy of the OptiTrack system (§6.3)."""

# --------------------------------------------------------------------------
# Determinism
# --------------------------------------------------------------------------

DEFAULT_HARDWARE_SEED = 20170821
"""Fixed seed for hardware realizations when no RNG is injected.

Library code never creates an unseeded ``np.random.Generator``
(reprolint rule R301): components that accept an optional ``rng`` fall
back to ``np.random.default_rng(DEFAULT_HARDWARE_SEED)`` so synthesizer
CFO/phase draws — and therefore every figure reproduction — regenerate
bit-identically. Pass an explicit generator to get fresh realizations.
"""
