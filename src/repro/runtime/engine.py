"""The sweep engine: cache-aware, backend-agnostic task execution.

``run_sweep`` is the one entry point every experiment runner goes
through. The flow per sweep:

1. fill in missing task seeds from ``root_seed`` (SeedSequence spawn);
2. resolve each task's content-addressed cache key and serve hits;
3. dispatch the misses to the configured backend (serial or process
   pool) — payloads are bit-identical either way;
4. persist new payloads and write the run manifest.

Observability attaches through ``observers=[...]`` — any objects
implementing the :class:`~repro.obs.observers.SweepObserver` protocol.
The union of their :class:`~repro.obs.observers.WorkerProbe` flags
ships with every dispatched task, so workers arm exactly the
collectors the attached observers need; telemetry returns inside each
:class:`~repro.runtime.backends.TaskOutcome` and is handed to
observers **in task order**, keeping serial and parallel runs
identical on everything except timing.
"""

from __future__ import annotations

import time
import warnings
from dataclasses import dataclass
from typing import Any, List, Optional, Sequence

import repro
from repro.obs import metrics, tracing
from repro.obs.observers import (
    MetricsObserver,
    SweepObserver,
    TraceMallocObserver,
    combined_probe,
)
from repro.obs.tracing import Tracer
from repro.runtime.backends import TaskOutcome, TaskSpec, run_backend
from repro.runtime.cache import ResultCache, cache_key
from repro.runtime.config import RuntimeConfig
from repro.runtime.manifest import (
    RunManifest,
    TaskRecord,
    params_repr,
    payload_hash,
)
from repro.runtime.seeding import seed_tasks
from repro.runtime.task import SweepTask


@dataclass
class SweepResult:
    """Payloads (in task order) plus the run's manifest."""

    results: List[Any]
    manifest: RunManifest

    def __iter__(self) -> "Any":
        return iter(self.results)

    def __len__(self) -> int:
        return len(self.results)


def _resolve_observers(
    config: RuntimeConfig,
    observers: Optional[Sequence[SweepObserver]],
) -> List[SweepObserver]:
    """The effective observer list, honoring the ``trace_memory`` shim."""
    observer_list = list(observers) if observers is not None else []
    if config.trace_memory:
        warnings.warn(
            "RuntimeConfig(trace_memory=True) is deprecated; pass "
            "observers=[repro.obs.TraceMallocObserver()] to run_sweep "
            "instead",
            DeprecationWarning,
            stacklevel=3,
        )
        observer_list.append(TraceMallocObserver())
    return observer_list


def run_sweep(
    tasks: Sequence[SweepTask],
    config: Optional[RuntimeConfig] = None,
    name: str = "sweep",
    root_seed: Optional[int] = None,
    observers: Optional[Sequence[SweepObserver]] = None,
) -> SweepResult:
    """Execute a task list under one runtime configuration.

    Parameters
    ----------
    tasks:
        The sweep's pure, seeded tasks (see :class:`SweepTask.make`).
    config:
        Backend/cache/manifest knobs; default is serial, no cache.
    name:
        Sweep name — the manifest filename under ``config.manifest_dir``.
    root_seed:
        When given, tasks with ``seed=None`` receive deterministic
        seeds spawned from this root (by task index).
    observers:
        :class:`~repro.obs.observers.SweepObserver` instances — trace,
        metrics, tracemalloc, or cProfile collectors (or your own).
        Observers never change payloads, cache keys, or the manifest
        fingerprint; tables regenerate byte-identically with or
        without them.
    """
    config = config or RuntimeConfig()
    observer_list = _resolve_observers(config, observers)
    probe = combined_probe(observer_list)
    tracer = Tracer() if probe.trace else None
    registry = None
    for observer in observer_list:
        if isinstance(observer, MetricsObserver):
            registry = observer.registry
            break

    tasks = seed_tasks(tasks, root_seed)
    started_s = time.perf_counter()
    for observer in observer_list:
        observer.on_sweep_start(name, tasks, config)

    cache: Optional[ResultCache] = None
    if config.cache_dir is not None and config.use_cache:
        cache = ResultCache(config.cache_dir)

    keys = [cache_key(task) for task in tasks]
    outcomes: List[Optional[TaskOutcome]] = [None] * len(tasks)
    hits = [False] * len(tasks)
    records: List[TaskRecord] = []

    with tracing.activated(tracer), metrics.activated(registry):
        with tracing.span("sweep.run", sweep=name, n_tasks=len(tasks)):
            misses: List[TaskSpec] = []
            with tracing.span("sweep.resolve_cache"):
                for index, (task, key) in enumerate(zip(tasks, keys)):
                    if cache is not None:
                        load_start_s = time.perf_counter()
                        hit, payload = cache.load(key)
                        if hit:
                            outcomes[index] = TaskOutcome(
                                index=index,
                                payload=payload,
                                wall_time_s=time.perf_counter()
                                - load_start_s,
                            )
                            hits[index] = True
                            metrics.count("runtime.cache.hits")
                            continue
                        metrics.count("runtime.cache.misses")
                    misses.append((index, task, probe))
            metrics.count("runtime.sweeps")
            metrics.count("runtime.tasks.dispatched", len(misses))

            with tracing.span("sweep.dispatch", n_tasks=len(misses)):
                executed = run_backend(config, misses)

            with tracing.span("sweep.persist"):
                for outcome in executed:
                    outcomes[outcome.index] = outcome
                    if cache is not None:
                        cache.store(keys[outcome.index], outcome.payload)
                        metrics.count("runtime.cache.stores")

            with tracing.span("sweep.finalize"):
                for index, (task, key) in enumerate(zip(tasks, keys)):
                    outcome = outcomes[index]
                    assert outcome is not None  # every index: hit or miss
                    telemetry = outcome.telemetry
                    records.append(
                        TaskRecord(
                            index=index,
                            label=task.label,
                            fn=task.fn_id,
                            params=params_repr(task.params),
                            seed=task.seed,
                            cache_key=key,
                            cache_hit=hits[index],
                            wall_time_s=outcome.wall_time_s,
                            result_hash=payload_hash(outcome.payload),
                            peak_memory_bytes=outcome.peak_memory_bytes,
                            spans=None
                            if telemetry is None
                            else telemetry.spans,
                        )
                    )

    manifest = RunManifest(
        sweep=name,
        backend=config.backend,
        n_workers=config.resolved_workers,
        repro_version=repro.__version__,
        cache_dir=None if config.cache_dir is None else str(config.cache_dir),
        cache_enabled=cache is not None,
        total_wall_time_s=time.perf_counter() - started_s,
        spans=tracer.root_dicts() if tracer is not None else [],
        tasks=records,
    )
    for index in range(len(records)):
        for observer in observer_list:
            observer.on_task(records[index], outcomes[index])
    for observer in observer_list:
        observer.on_sweep_end(manifest)
    if config.manifest_dir is not None:
        manifest.save(config.manifest_dir / f"{name}.json")
    return SweepResult(
        results=[o.payload for o in outcomes if o is not None],
        manifest=manifest,
    )
