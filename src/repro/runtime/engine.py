"""The sweep engine: cache-aware, backend-agnostic task execution.

``run_sweep`` is the one entry point every experiment runner goes
through. The flow per sweep:

1. fill in missing task seeds from ``root_seed`` (SeedSequence spawn);
2. resolve each task's content-addressed cache key and serve hits;
3. dispatch the misses to the configured backend (serial or process
   pool) — payloads are bit-identical either way;
4. persist new payloads and write the run manifest.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, List, Optional, Sequence

import repro
from repro.runtime.backends import TaskOutcome, run_backend
from repro.runtime.cache import ResultCache, cache_key
from repro.runtime.config import RuntimeConfig
from repro.runtime.manifest import (
    RunManifest,
    TaskRecord,
    params_repr,
    payload_hash,
)
from repro.runtime.seeding import seed_tasks
from repro.runtime.task import SweepTask


@dataclass
class SweepResult:
    """Payloads (in task order) plus the run's manifest."""

    results: List[Any]
    manifest: RunManifest

    def __iter__(self) -> "Any":
        return iter(self.results)

    def __len__(self) -> int:
        return len(self.results)


def run_sweep(
    tasks: Sequence[SweepTask],
    config: Optional[RuntimeConfig] = None,
    name: str = "sweep",
    root_seed: Optional[int] = None,
) -> SweepResult:
    """Execute a task list under one runtime configuration.

    Parameters
    ----------
    tasks:
        The sweep's pure, seeded tasks (see :class:`SweepTask.make`).
    config:
        Backend/cache/manifest knobs; default is serial, no cache.
    name:
        Sweep name — the manifest filename under ``config.manifest_dir``.
    root_seed:
        When given, tasks with ``seed=None`` receive deterministic
        seeds spawned from this root (by task index).
    """
    config = config or RuntimeConfig()
    tasks = seed_tasks(tasks, root_seed)
    started = time.perf_counter()

    cache: Optional[ResultCache] = None
    if config.cache_dir is not None and config.use_cache:
        cache = ResultCache(config.cache_dir)

    keys = [cache_key(task) for task in tasks]
    outcomes: List[Optional[TaskOutcome]] = [None] * len(tasks)
    hits = [False] * len(tasks)

    misses: List["tuple[int, SweepTask, bool]"] = []
    for index, (task, key) in enumerate(zip(tasks, keys)):
        if cache is not None:
            load_start = time.perf_counter()
            hit, payload = cache.load(key)
            if hit:
                outcomes[index] = TaskOutcome(
                    index=index,
                    payload=payload,
                    wall_time_s=time.perf_counter() - load_start,
                )
                hits[index] = True
                continue
        misses.append((index, task, config.trace_memory))

    for outcome in run_backend(config, misses):
        outcomes[outcome.index] = outcome
        if cache is not None:
            cache.store(keys[outcome.index], outcome.payload)

    records = []
    for index, (task, key) in enumerate(zip(tasks, keys)):
        outcome = outcomes[index]
        assert outcome is not None  # every index is a hit or a miss
        records.append(
            TaskRecord(
                index=index,
                label=task.label,
                fn=task.fn_id,
                params=params_repr(task.params),
                seed=task.seed,
                cache_key=key,
                cache_hit=hits[index],
                wall_time_s=outcome.wall_time_s,
                result_hash=payload_hash(outcome.payload),
                peak_memory_bytes=outcome.peak_memory_bytes,
            )
        )

    manifest = RunManifest(
        sweep=name,
        backend=config.backend,
        n_workers=config.resolved_workers,
        repro_version=repro.__version__,
        cache_dir=None if config.cache_dir is None else str(config.cache_dir),
        cache_enabled=cache is not None,
        total_wall_time_s=time.perf_counter() - started,
        tasks=records,
    )
    if config.manifest_dir is not None:
        manifest.save(config.manifest_dir / f"{name}.json")
    return SweepResult(results=[o.payload for o in outcomes if o is not None], manifest=manifest)
