"""The task model: one pure, seeded experiment point.

A :class:`SweepTask` names a module-level function, a canonicalized
parameter mapping, and an optional integer seed. Purity is the engine's
load-bearing assumption: given the same ``(fn, params, seed)`` the task
must return the same payload on any backend, which is what makes both
process-pool fan-out and the content-addressed result cache sound.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Mapping, Optional, Tuple

from repro.errors import ConfigurationError

#: Parameter value types the engine accepts. The restriction is what
#: guarantees tasks pickle cleanly to worker processes and canonicalize
#: into stable cache keys.
_SCALAR_TYPES = (bool, int, float, str, bytes, type(None))


def canonical_params(params: Mapping[str, Any]) -> Tuple[Tuple[str, Any], ...]:
    """Sorted, immutable, validated form of a task's parameter mapping.

    Nested lists/tuples become tuples; nested dicts become sorted item
    tuples; scalars pass through. Anything else (arrays, objects, rngs)
    is rejected: task inputs must stay small and hashable — large or
    stateful inputs belong inside the task function, derived from the
    seed.
    """
    return tuple(
        (str(key), _canonical_value(value, str(key)))
        for key, value in sorted(params.items())
    )


def _canonical_value(value: Any, key: str) -> Any:
    if isinstance(value, _SCALAR_TYPES):
        return value
    if isinstance(value, (list, tuple)):
        return tuple(_canonical_value(v, key) for v in value)
    if isinstance(value, Mapping):
        return tuple(
            (str(k), _canonical_value(v, key)) for k, v in sorted(value.items())
        )
    raise ConfigurationError(
        f"task parameter {key!r} has unsupported type {type(value).__name__}; "
        "pass scalars, strings, or nested lists/dicts of them"
    )


def fn_identity(fn: Callable[..., Any]) -> str:
    """``module:qualname`` of a task function (the cache-key component)."""
    module = getattr(fn, "__module__", None)
    qualname = getattr(fn, "__qualname__", None)
    if not module or not qualname or "<locals>" in qualname:
        raise ConfigurationError(
            f"task function {fn!r} must be an importable module-level "
            "function (lambdas and closures cannot be dispatched to "
            "worker processes or cache-keyed)"
        )
    return f"{module}:{qualname}"


@dataclass(frozen=True)
class SweepTask:
    """One pure, seeded unit of work in a sweep.

    ``fn`` is called as ``fn(**params)`` — with ``seed=<seed>`` appended
    when :attr:`seed` is not None — and must depend on nothing but those
    arguments.
    """

    fn: Callable[..., Any]
    params: Tuple[Tuple[str, Any], ...] = ()
    seed: Optional[int] = None
    label: str = ""

    @staticmethod
    def make(
        fn: Callable[..., Any],
        params: Optional[Mapping[str, Any]] = None,
        seed: Optional[int] = None,
        label: str = "",
    ) -> "SweepTask":
        """Build a task, canonicalizing ``params`` and validating ``fn``."""
        identity = fn_identity(fn)
        canonical = canonical_params(params or {})
        if seed is not None and not isinstance(seed, int):
            raise ConfigurationError(
                f"task seed must be an int or None, got {type(seed).__name__}"
            )
        return SweepTask(
            fn=fn,
            params=canonical,
            seed=seed,
            label=label or identity.rsplit(":", 1)[1],
        )

    @property
    def fn_id(self) -> str:
        """``module:qualname`` of the task function."""
        return fn_identity(self.fn)

    def kwargs(self) -> "dict[str, Any]":
        """The keyword arguments the task function is called with.

        Canonicalized containers stay tuples: task functions taking
        sequence parameters must accept any sequence type.
        """
        kwargs: "dict[str, Any]" = dict(self.params)
        if self.seed is not None:
            kwargs["seed"] = self.seed
        return kwargs

    def execute(self) -> Any:
        """Run the task in-process (the serial backend's core)."""
        return self.fn(**self.kwargs())
