"""Deterministic per-task seeding via ``numpy.random.SeedSequence``.

The engine's bit-identity guarantee rests on fixing every task's seed
*before* dispatch: a root seed spawns one ``SeedSequence`` child per
task (by index), and each child collapses to a 128-bit integer seed.
Execution order — serial, process-pool, whatever — can then never
change what any task computes.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.runtime.task import SweepTask

#: Words of 32-bit state drawn per spawned child; 128 bits makes seed
#: collisions across a sweep astronomically unlikely (and the property
#: suite checks 10k spawns stay collision-free).
_SEED_STATE_WORDS = 4


def spawn_seed_sequences(
    root_seed: int, n_tasks: int
) -> List[np.random.SeedSequence]:
    """The first ``n_tasks`` children of ``SeedSequence(root_seed)``.

    Child ``i`` depends only on ``(root_seed, i)``, never on how many
    siblings were spawned, so growing a sweep keeps old tasks' seeds.
    """
    if n_tasks < 0:
        raise ConfigurationError(f"cannot spawn {n_tasks} seed sequences")
    return list(np.random.SeedSequence(root_seed).spawn(n_tasks))


def spawn_task_seeds(root_seed: int, n_tasks: int) -> List[int]:
    """128-bit integer seeds for ``n_tasks`` tasks under one root."""
    seeds = []
    for child in spawn_seed_sequences(root_seed, n_tasks):
        words = child.generate_state(_SEED_STATE_WORDS, dtype=np.uint32)
        value = 0
        for word in words:
            value = (value << 32) | int(word)
        seeds.append(value)
    return seeds


def seed_tasks(
    tasks: Sequence[SweepTask], root_seed: Optional[int]
) -> List[SweepTask]:
    """Fill in missing task seeds by spawning from ``root_seed``.

    Tasks that already carry an explicit seed keep it (the experiment
    ports use explicit arithmetic seeds to stay comparable with the
    paper tables); only ``seed=None`` tasks consume spawned children.
    Spawn indices follow task order, so the assignment is deterministic
    and backend-independent. With ``root_seed=None`` the tasks pass
    through untouched — seedless tasks are legal for functions that are
    pure in their parameters alone.
    """
    tasks = list(tasks)
    unseeded = [i for i, task in enumerate(tasks) if task.seed is None]
    if not unseeded or root_seed is None:
        return tasks
    spawned = spawn_task_seeds(root_seed, len(tasks))
    for i in unseeded:
        tasks[i] = SweepTask(
            fn=tasks[i].fn,
            params=tasks[i].params,
            seed=spawned[i],
            label=tasks[i].label,
        )
    return tasks
