"""Execution backends: in-process serial and process-pool parallel.

This module is the one audited home of ``concurrent.futures`` in the
package (reprolint R304 bans it everywhere else). Both backends consume
``(index, task, probe)`` specs and return :class:`TaskOutcome` rows in
task order; because every task's seed is fixed before dispatch, the two
backends are interchangeable bit-for-bit.

The :class:`~repro.obs.observers.WorkerProbe` element of each spec is a
picklable set of capability flags: it tells the task wrapper which
telemetry collectors (tracer, metrics registry, tracemalloc, cProfile)
to arm around the task body. Collected telemetry rides back inside the
outcome envelope, so worker-process spans and metric snapshots reach
the engine without any shared state — and get reduced in task order.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Any, Callable, List, Optional, Sequence, Tuple, TypeVar

from repro.obs import tracing
from repro.obs.observers import TaskTelemetry, WorkerProbe, probed
from repro.runtime.config import RuntimeConfig
from repro.runtime.task import SweepTask

#: One dispatchable unit: task index, the task, telemetry capabilities.
TaskSpec = Tuple[int, SweepTask, WorkerProbe]


@dataclass(frozen=True)
class TaskOutcome:
    """One executed task: payload, measured cost, optional telemetry."""

    index: int
    payload: Any
    wall_time_s: float
    telemetry: Optional[TaskTelemetry] = None

    @property
    def peak_memory_bytes(self) -> Optional[int]:
        """Peak traced allocations, when the tracemalloc probe was armed."""
        return None if self.telemetry is None else self.telemetry.peak_memory_bytes


def execute_task(spec: TaskSpec) -> TaskOutcome:
    """Run one task and time it (module-level so workers can pickle it).

    When the probe arms tracing, the task body runs under a *fresh*
    tracer with a single ``task.execute`` root span — identically
    in-process and in a worker, which is what makes serial and parallel
    span structures comparable.
    """
    index, task, probe = spec
    start_s = time.perf_counter()
    with probed(probe) as telemetry:
        with tracing.span("task.execute", fn=task.fn_id, label=task.label):
            payload = task.execute()
    return TaskOutcome(
        index=index,
        payload=payload,
        wall_time_s=time.perf_counter() - start_s,
        telemetry=telemetry if probe.enabled else None,
    )


def run_serial(specs: Sequence[TaskSpec]) -> List[TaskOutcome]:
    """Execute specs one by one, in order."""
    return [execute_task(spec) for spec in specs]


def run_process_pool(
    specs: Sequence[TaskSpec],
    max_workers: int,
) -> List[TaskOutcome]:
    """Fan specs out over worker processes; results return in spec order.

    Scheduling order is irrelevant to the payloads (tasks are pure and
    pre-seeded); only the gather order here matters, and it follows the
    submission order exactly.
    """
    if not specs:
        return []
    with ProcessPoolExecutor(max_workers=max_workers) as pool:
        futures = [pool.submit(execute_task, spec) for spec in specs]
        return [future.result() for future in futures]


_ItemT = TypeVar("_ItemT")
_ResultT = TypeVar("_ResultT")


def map_in_processes(
    fn: Callable[[_ItemT], _ResultT],
    items: Sequence[_ItemT],
    max_workers: int,
) -> List[_ResultT]:
    """Map a picklable function over items in worker processes, in order.

    The generic sibling of :func:`run_process_pool` for callers (the
    shard router) whose work units are not :class:`SweepTask` specs.
    Same discipline: submit in input order, gather in input order, so
    results are independent of worker scheduling. ``fn`` and every item
    must pickle; determinism is the caller's job (pre-seeded payloads).
    """
    if not items:
        return []
    with ProcessPoolExecutor(max_workers=max_workers) as pool:
        futures = [pool.submit(fn, item) for item in items]
        return [future.result() for future in futures]


def run_backend(
    config: RuntimeConfig,
    specs: Sequence[TaskSpec],
) -> List[TaskOutcome]:
    """Dispatch specs to the configured backend."""
    if config.backend == "process" and len(specs) > 1:
        return run_process_pool(specs, max_workers=config.resolved_workers)
    return run_serial(specs)
