"""Execution backends: in-process serial and process-pool parallel.

This module is the one audited home of ``concurrent.futures`` in the
package (reprolint R304 bans it everywhere else). Both backends consume
``(index, task)`` pairs and return :class:`TaskOutcome` rows in task
order; because every task's seed is fixed before dispatch, the two
backends are interchangeable bit-for-bit.
"""

from __future__ import annotations

import time
import tracemalloc
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Any, List, Optional, Sequence, Tuple

from repro.runtime.config import RuntimeConfig
from repro.runtime.task import SweepTask


@dataclass(frozen=True)
class TaskOutcome:
    """One executed task: payload plus its measured cost."""

    index: int
    payload: Any
    wall_time_s: float
    peak_memory_bytes: Optional[int] = None


def execute_task(
    spec: "Tuple[int, SweepTask, bool]",
) -> TaskOutcome:
    """Run one task and time it (module-level so workers can pickle it)."""
    index, task, trace_memory = spec
    if trace_memory:
        tracemalloc.start()
    start = time.perf_counter()
    try:
        payload = task.execute()
    finally:
        elapsed = time.perf_counter() - start
        peak: Optional[int] = None
        if trace_memory:
            _, peak = tracemalloc.get_traced_memory()
            tracemalloc.stop()
    return TaskOutcome(
        index=index,
        payload=payload,
        wall_time_s=elapsed,
        peak_memory_bytes=peak,
    )


def run_serial(
    specs: Sequence["Tuple[int, SweepTask, bool]"],
) -> List[TaskOutcome]:
    """Execute specs one by one, in order."""
    return [execute_task(spec) for spec in specs]


def run_process_pool(
    specs: Sequence["Tuple[int, SweepTask, bool]"],
    max_workers: int,
) -> List[TaskOutcome]:
    """Fan specs out over worker processes; results return in spec order.

    Scheduling order is irrelevant to the payloads (tasks are pure and
    pre-seeded); only the gather order here matters, and it follows the
    submission order exactly.
    """
    if not specs:
        return []
    with ProcessPoolExecutor(max_workers=max_workers) as pool:
        futures = [pool.submit(execute_task, spec) for spec in specs]
        return [future.result() for future in futures]


def run_backend(
    config: RuntimeConfig,
    specs: Sequence["Tuple[int, SweepTask, bool]"],
) -> List[TaskOutcome]:
    """Dispatch specs to the configured backend."""
    if config.backend == "process" and len(specs) > 1:
        return run_process_pool(specs, max_workers=config.resolved_workers)
    return run_serial(specs)
