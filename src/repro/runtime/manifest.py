"""Run manifests: what a sweep did, per task, and what it cost.

A manifest records one :func:`repro.runtime.engine.run_sweep` call:
every task's identity (function, parameters, seed, cache key), whether
it hit the cache, and its wall time (plus peak traced memory when
enabled). ``benchmarks/`` consumes these to build the timing trajectory
in ``BENCH_*.json``.

The *fingerprint* is the determinism-relevant projection — identities
and payload hashes, no timings — and must be byte-equal between serial
and parallel runs of the same sweep (the property suite enforces this).
"""

from __future__ import annotations

import hashlib
import json
import pickle
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional

#: Canonical formatting for a task's parameter tuple in reports.
def params_repr(params: Any) -> str:
    """Stable textual form of canonicalized task parameters."""
    return repr(params)


def payload_hash(payload: Any) -> str:
    """SHA-256 over a payload's pickle — the bit-identity witness.

    Two payloads with equal hashes round-tripped through the same
    pickle protocol are byte-identical, which is exactly the claim the
    serial-vs-parallel and cache-hit properties need.
    """
    return hashlib.sha256(
        pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    ).hexdigest()


@dataclass(frozen=True)
class TaskRecord:
    """One task's row in the manifest."""

    index: int
    label: str
    fn: str
    params: str
    seed: Optional[int]
    cache_key: str
    cache_hit: bool
    wall_time_s: float
    result_hash: str
    peak_memory_bytes: Optional[int] = None
    #: Serialized span trees recorded inside the task (trace observer
    #: attached); ``None`` for untraced runs and cache hits. Excluded
    #: from :meth:`RunManifest.fingerprint` — spans carry timings.
    spans: Optional[List[Dict[str, Any]]] = None


@dataclass
class RunManifest:
    """Everything one sweep run recorded."""

    sweep: str
    backend: str
    n_workers: int
    repro_version: str
    cache_dir: Optional[str]
    cache_enabled: bool
    total_wall_time_s: float = 0.0
    #: The engine's own serialized span trees (``sweep.run`` and its
    #: phases) when a trace observer was attached; empty otherwise.
    spans: List[Dict[str, Any]] = field(default_factory=list)
    tasks: List[TaskRecord] = field(default_factory=list)

    @property
    def n_tasks(self) -> int:
        """Task count."""
        return len(self.tasks)

    @property
    def cache_hits(self) -> int:
        """How many tasks were served from the cache."""
        return sum(1 for t in self.tasks if t.cache_hit)

    @property
    def task_wall_time_s(self) -> float:
        """Summed per-task wall time (CPU-side cost, ignores overlap)."""
        return float(sum(t.wall_time_s for t in self.tasks))

    def fingerprint(self) -> str:
        """Digest of the determinism-relevant fields only.

        Excludes wall times, memory, worker counts, and backend name:
        serial and process runs of one sweep must agree on this value.
        """
        material = repr(
            [
                (t.index, t.fn, t.params, t.seed, t.cache_key, t.result_hash)
                for t in self.tasks
            ]
        ).encode("utf-8")
        return hashlib.sha256(material).hexdigest()

    def to_dict(self) -> "dict[str, Any]":
        """JSON-ready mapping (includes derived summary fields)."""
        return {
            "sweep": self.sweep,
            "backend": self.backend,
            "n_workers": self.n_workers,
            "repro_version": self.repro_version,
            "cache_dir": self.cache_dir,
            "cache_enabled": self.cache_enabled,
            "n_tasks": self.n_tasks,
            "cache_hits": self.cache_hits,
            "total_wall_time_s": self.total_wall_time_s,
            "task_wall_time_s": self.task_wall_time_s,
            "fingerprint": self.fingerprint(),
            "spans": self.spans,
            "tasks": [asdict(t) for t in self.tasks],
        }

    def to_json(self, indent: int = 2) -> str:
        """Serialized manifest."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=False)

    def save(self, path: "str | Path") -> Path:
        """Write the manifest to ``path`` (parents created)."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.to_json() + "\n", encoding="utf-8")
        return path
