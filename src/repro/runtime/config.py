"""Runtime configuration: backend choice, cache location, manifests."""

from __future__ import annotations

import os
from dataclasses import dataclass
from pathlib import Path
from typing import Optional

from repro.errors import ConfigurationError

BACKENDS = ("serial", "process")


@dataclass(frozen=True)
class RuntimeConfig:
    """Immutable knobs for one sweep run.

    ``backend``
        ``"serial"`` runs tasks in-process in task order; ``"process"``
        fans them out over a ``ProcessPoolExecutor``. Results are
        bit-identical either way (seeds are fixed before dispatch).
    ``max_workers``
        Pool width for the process backend; ``None`` uses the CPU count.
    ``cache_dir`` / ``use_cache``
        Directory of the content-addressed result cache; ``use_cache=
        False`` is the ``--no-cache`` escape hatch (the directory is
        then neither read nor written).
    ``manifest_dir``
        When set, every sweep writes ``<manifest_dir>/<sweep name>.json``.
    ``trace_memory``
        Deprecated: equivalent to passing
        ``observers=[repro.obs.TraceMallocObserver()]`` to
        :func:`~repro.runtime.engine.run_sweep`. Kept working for one
        release via a shim that appends the observer and warns.
    """

    backend: str = "serial"
    max_workers: Optional[int] = None
    cache_dir: Optional[Path] = None
    use_cache: bool = True
    manifest_dir: Optional[Path] = None
    trace_memory: bool = False

    def __post_init__(self) -> None:
        if self.backend not in BACKENDS:
            raise ConfigurationError(
                f"unknown backend {self.backend!r}; choices: {BACKENDS}"
            )
        if self.max_workers is not None and self.max_workers < 1:
            raise ConfigurationError(
                f"max_workers must be >= 1, got {self.max_workers}"
            )
        if self.cache_dir is not None:
            object.__setattr__(self, "cache_dir", Path(self.cache_dir))
        if self.manifest_dir is not None:
            object.__setattr__(self, "manifest_dir", Path(self.manifest_dir))

    @property
    def resolved_workers(self) -> int:
        """Worker count the process backend will actually use."""
        if self.backend == "serial":
            return 1
        if self.max_workers is not None:
            return self.max_workers
        return max(1, os.cpu_count() or 1)

    @staticmethod
    def auto(
        cache_dir: "Optional[str | os.PathLike[str]]" = None,
        manifest_dir: "Optional[str | os.PathLike[str]]" = None,
    ) -> "RuntimeConfig":
        """Process backend when the host has >1 CPU, serial otherwise."""
        backend = "process" if (os.cpu_count() or 1) > 1 else "serial"
        return RuntimeConfig(
            backend=backend,
            cache_dir=None if cache_dir is None else Path(cache_dir),
            manifest_dir=None if manifest_dir is None else Path(manifest_dir),
        )
