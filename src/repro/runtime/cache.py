"""Content-addressed on-disk result cache for sweep tasks.

The cache key is the SHA-256 of the task's identity — function
``module:qualname``, canonical parameters, seed — plus the package
version, so results invalidate wholesale on every release (the repro
band's tables are version artifacts, not forever-truths). Payloads are
pickled; loading a hit returns a bit-identical payload, which the
property suite asserts via pickle-roundtrip equality.

Writes are atomic (temp file + ``os.replace``) so a process-pool sweep
and a concurrent sweep over the same cache directory never interleave
partial payloads.

Corrupt-entry self-healing is *observable*: every evicted entry logs a
warning with its key and increments the
``runtime.cache.corrupt_evicted`` counter on the active metrics
registry (see :mod:`repro.obs.metrics`) — a silently shrinking cache
was indistinguishable from a cold one.
"""

from __future__ import annotations

import hashlib
import logging
import os
import pickle
import tempfile
from pathlib import Path
from typing import Any, Optional, Tuple

import repro
from repro.errors import ConfigurationError
from repro.obs import metrics
from repro.runtime.task import SweepTask

logger = logging.getLogger(__name__)

#: Bump to invalidate every cached payload without a version release
#: (e.g. when the pickle layout of a result type changes).
CACHE_SCHEMA = 1


def cache_key(task: SweepTask, version: Optional[str] = None) -> str:
    """Hex digest addressing one task's payload.

    The key binds the function identity, the canonicalized parameters,
    the seed, the cache schema, and the package version. It does NOT
    hash the function's source: edits within a release must bump
    ``CACHE_SCHEMA`` (or run with the cache disabled) — hashing
    bytecode would spuriously invalidate on cosmetic changes and still
    miss edits in callees.
    """
    version = repro.__version__ if version is None else version
    material = repr(
        (CACHE_SCHEMA, version, task.fn_id, task.params, task.seed)
    ).encode("utf-8")
    return hashlib.sha256(material).hexdigest()


class ResultCache:
    """A directory of content-addressed pickled task payloads."""

    def __init__(self, cache_dir: "str | os.PathLike[str]") -> None:
        self.cache_dir = Path(cache_dir)
        self.cache_dir.mkdir(parents=True, exist_ok=True)

    def path_for(self, key: str) -> Path:
        """Where a key's payload lives (two-level fan-out, git-style)."""
        if len(key) < 3:
            raise ConfigurationError(f"malformed cache key {key!r}")
        return self.cache_dir / key[:2] / f"{key}.pkl"

    def load(self, key: str) -> Tuple[bool, Any]:
        """``(hit, payload)``; corrupt entries read as misses.

        A half-written or unreadable entry is deleted and reported as a
        miss rather than poisoning the sweep — the task simply re-runs.
        """
        path = self.path_for(key)
        try:
            with open(path, "rb") as fh:
                return True, pickle.load(fh)
        except FileNotFoundError:
            return False, None
        except (
            OSError,
            pickle.UnpicklingError,
            EOFError,
            AttributeError,
            ImportError,
            IndexError,
            TypeError,
            ValueError,
        ):
            # pickle.load raises a zoo of exception types on truncated
            # or garbage bytes; any of them means the entry is corrupt.
            logger.warning(
                "evicting corrupt cache entry %s (%s); task will re-run",
                key,
                path,
            )
            metrics.count("runtime.cache.corrupt_evicted")
            try:
                path.unlink()
            except OSError:
                pass
            return False, None

    def store(self, key: str, payload: Any) -> None:
        """Atomically persist one payload under its key."""
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(
            dir=str(path.parent), prefix=".tmp-", suffix=".pkl"
        )
        try:
            with os.fdopen(fd, "wb") as fh:
                pickle.dump(payload, fh, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise

    def clear(self) -> int:
        """Delete every cached payload; returns how many were removed."""
        removed = 0
        for path in self.cache_dir.glob("*/*.pkl"):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed

    def __len__(self) -> int:
        return sum(1 for _ in self.cache_dir.glob("*/*.pkl"))
