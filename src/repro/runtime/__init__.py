"""The sweep engine: parallel, cached execution of experiment tasks.

Every figure regeneration is a sweep over independent (scenario, seed,
parameter) points. This package expresses each point as a pure, seeded
:class:`~repro.runtime.task.SweepTask`, fans the tasks out over a
serial or process-pool backend (:mod:`repro.runtime.backends` is the
single audited home of ``concurrent.futures`` in the tree — reprolint
R304 enforces this), memoizes results in a content-addressed on-disk
cache, and records per-task wall-time/memory statistics into a run
manifest consumable by ``benchmarks/``.

Determinism contract: per-task seeds are fixed *before* dispatch
(explicitly, or spawned from a root seed via
``numpy.random.SeedSequence``), so the parallel backend produces
bit-identical results — and an identical manifest fingerprint — to the
serial one.

Observability plugs in through ``run_sweep(..., observers=[...])``
(see :mod:`repro.obs`): span trees, metric snapshots, and profiling
data collected inside tasks ride back in the result envelope and are
reduced in task order, so observers never perturb the determinism
contract.
"""

from __future__ import annotations

from repro.runtime.backends import TaskOutcome
from repro.runtime.cache import ResultCache, cache_key
from repro.runtime.config import RuntimeConfig
from repro.runtime.engine import SweepResult, run_sweep
from repro.runtime.manifest import RunManifest, TaskRecord
from repro.runtime.seeding import seed_tasks, spawn_seed_sequences, spawn_task_seeds
from repro.runtime.task import SweepTask

__all__ = [
    "SweepTask",
    "SweepResult",
    "TaskOutcome",
    "run_sweep",
    "RuntimeConfig",
    "ResultCache",
    "cache_key",
    "RunManifest",
    "TaskRecord",
    "seed_tasks",
    "spawn_seed_sequences",
    "spawn_task_seeds",
]
