"""Fleet traffic generation: N relays, one merged Gen2 read stream.

This is the fleet counterpart of
:func:`repro.scenarios.compiler.generate_workload`, and it preserves
that function's determinism contract *exactly* in the degenerate case:
with one relay flying the scenario's own trajectory, every draw — the
world realization, tag epc generators, MAC slot draws, measurement
noise — comes from the same base generator in the same order, the
interference penalty is exactly ``0.0``, and the selection policy
returns a lone candidate without touching any rng, so the produced
event stream is bit-identical to the pre-fleet path (the equivalence
suite pins this).

For N > 1 the pose timelines of all relays merge into one globally
ordered stream (sorted by ``(time, relay index)`` — relays launch
simultaneously at t=0). At each pose instant every powered tag is
assigned exactly one serving relay by the fleet's selection policy;
only the relay taking the current pose inventories its assigned tags
(through the shared Gen2 MAC draw stream), and each resulting
measurement is taken through that relay's own frequency plan with the
co-channel interference of every other active relay folded into its
SNR. Events carry the serving relay's name, which is what drives
session handoff in :mod:`repro.serve`.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.channel.interference import (
    MIN_INTERFERENCE_DISTANCE_M,
    co_channel_penalty_db,
)
from repro.channel.pathloss import free_space_path_loss_db
from repro.errors import ConfigurationError
from repro.fleet.plan import FleetPlan, RelayPlan, realize_fleet
from repro.fleet.selection import RelayCandidate, build_policy
from repro.localization.measurement import MeasurementModel
from repro.mobility.groundtruth import OptiTrack
from repro.mobility.trajectory import TrajectorySample
from repro.obs import tracing
from repro.scenarios import registry
from repro.scenarios.compiler import (
    build_grid,
    build_measurement_model,
    realize_world,
    resolve_snr_db,
)
from repro.scenarios.spec import Scenario


def _relay_model(
    spec: Scenario, environment: Any, reader_position: np.ndarray,
    relay: RelayPlan,
) -> MeasurementModel:
    """The through-relay model for one fleet relay's frequency slot."""
    return MeasurementModel(
        environment=environment,
        reader_position=reader_position,
        reader_frequency_hz=spec.radio.center_frequency_hz,
        frequency_shift_hz=relay.shift_hz,
        relay_gain_db=relay.gain_db,
    )


def _link_budget_db(
    relay: RelayPlan,
    relay_position: np.ndarray,
    tag_position: np.ndarray,
    reader_position: np.ndarray,
) -> float:
    """End-to-end free-space budget: gain minus both hop losses."""
    d_reader = max(
        float(np.linalg.norm(relay_position - reader_position)),
        MIN_INTERFERENCE_DISTANCE_M,
    )
    d_tag = max(
        float(np.linalg.norm(relay_position - tag_position)),
        MIN_INTERFERENCE_DISTANCE_M,
    )
    return (
        relay.gain_db
        - free_space_path_loss_db(d_reader, relay.tag_frequency_hz)
        - free_space_path_loss_db(d_tag, relay.tag_frequency_hz)
    )


def generate_fleet_workload(
    scenario: Union[str, Scenario],
    n_tags: Optional[int] = None,
    seed: int = 0,
    load: Optional[float] = None,
    pose_spacing_m: Optional[float] = None,
    snr_db: Optional[float] = None,
    grid_resolution: Optional[float] = None,
    use_gen2_mac: Optional[bool] = None,
    powering_range_m: Optional[float] = None,
    tracker: Optional[OptiTrack] = None,
) -> Any:
    """Lower a fleet scenario to a replayable, relay-tagged read stream.

    Mirrors :func:`repro.scenarios.compiler.generate_workload` knob for
    knob; the scenario must declare a :class:`~repro.scenarios.spec.
    FleetSpec`. All randomness comes from ``seed``.
    """
    from repro.serve.traffic import TrafficWorkload, UpdateEvent
    from repro.hardware.tag import PassiveTag
    from repro.sim.events import inventory_at_pose

    spec = registry.resolve(scenario)
    if spec.fleet is None:
        raise ConfigurationError(
            f"scenario {spec.name!r} declares no fleet; use "
            "repro.scenarios.generate_workload"
        )
    resolved_load = spec.traffic.load if load is None else float(load)
    if resolved_load <= 0:
        raise ConfigurationError("load factor must be positive")
    spacing = (
        spec.trajectory.spacing_m
        if pose_spacing_m is None
        else float(pose_spacing_m)
    )
    mac = spec.traffic.use_gen2_mac if use_gen2_mac is None else use_gen2_mac
    powering = (
        spec.traffic.powering_range_m
        if powering_range_m is None
        else float(powering_range_m)
    )

    # Base draw stream: world realization first, tag generators second,
    # then the per-pose MAC/noise draws — the single-relay draw order.
    rng = np.random.default_rng(seed)
    world = realize_world(spec, rng, n_tags=n_tags)
    plan: FleetPlan = realize_fleet(spec, world, seed)
    models = [
        _relay_model(
            spec, world.environment, world.reader_position_m, relay
        )
        for relay in plan.relays
    ]
    relay_samples: List[Sequence[TrajectorySample]] = []
    for relay in plan.relays:
        samples: Sequence[TrajectorySample] = (
            relay.trajectory.sample_every(spacing)
        )
        if tracker is not None:
            samples = tracker.observe_trajectory(samples)
        relay_samples.append(samples)
    snr = resolve_snr_db(spec, world) if snr_db is None else float(snr_db)
    tags = [
        PassiveTag(
            epc=index + 1,
            position=(float(position[0]), float(position[1])),
            rng=rng,
        )
        for index, position in enumerate(world.tag_positions_m)
    ]
    session_ids = {tag.epc_int: f"tag-{tag.epc_int:04d}" for tag in tags}
    grid = build_grid(
        spec.grid,
        positions=np.concatenate(
            [
                np.stack([s.position for s in samples])
                for samples in relay_samples
            ]
        ),
        resolution_m=grid_resolution,
    )
    policy = build_policy(spec.fleet, seed)
    frequencies = plan.frequencies_hz()
    gains = plan.gains_db()
    # Merge pose timelines; the sort is stable, so a single relay's
    # already-ordered samples pass through untouched.
    timeline: List[Tuple[float, int, TrajectorySample]] = sorted(
        (
            (sample.time, relay_index, sample)
            for relay_index, samples in enumerate(relay_samples)
            for sample in samples
        ),
        key=lambda entry: (entry[0], entry[1]),
    )
    events: List[Any] = []
    with tracing.span(
        "fleet.traffic",
        n_relays=plan.n_relays,
        n_tags=len(tags),
        poses=len(timeline),
    ):
        for time_s, relay_index, sample in timeline:
            # Every relay's position at this instant: the posing relay
            # uses its (possibly tracker-observed) sample, the others
            # their nominal plan positions.
            relay_positions = [
                sample.position
                if other == relay_index
                else plan.relays[other].position_at_time(time_s)
                for other in range(plan.n_relays)
            ]
            assigned: Dict[int, Optional[int]] = {}
            for tag in tags:
                tag_position = np.asarray(tag.position, dtype=float)
                candidates = []
                for other in range(plan.n_relays):
                    distance = float(
                        np.linalg.norm(
                            tag_position - relay_positions[other]
                        )
                    )
                    if distance > powering:
                        continue
                    candidates.append(
                        RelayCandidate(
                            index=other,
                            name=plan.relays[other].name,
                            distance_m=distance,
                            link_budget_db=_link_budget_db(
                                plan.relays[other],
                                np.asarray(
                                    relay_positions[other], dtype=float
                                ),
                                tag_position,
                                world.reader_position_m,
                            ),
                        )
                    )
                assigned[tag.epc_int] = (
                    policy.select(session_ids[tag.epc_int], candidates)
                    if candidates
                    else None
                )
            served = {
                epc: (choice == relay_index)
                for epc, choice in assigned.items()
            }
            if mac:
                read_epcs = inventory_at_pose(
                    tags, lambda t: served[t.epc_int], rng
                )
            else:
                read_epcs = {epc for epc, on in served.items() if on}
            for tag in tags:
                if served[tag.epc_int]:
                    policy.observe(
                        session_ids[tag.epc_int],
                        relay_index,
                        1.0 if tag.epc_int in read_epcs else 0.0,
                    )
                if tag.epc_int not in read_epcs:
                    continue
                penalty_db = co_channel_penalty_db(
                    relay_index,
                    relay_positions,
                    frequencies,
                    gains,
                    (float(tag.position[0]), float(tag.position[1])),
                    (
                        float(world.reader_position_m[0]),
                        float(world.reader_position_m[1]),
                    ),
                    plan.guard_hz,
                )
                measurement = models[relay_index].measure(
                    sample.position,
                    tag.position,
                    rng=rng,
                    snr_db=snr - penalty_db,
                    time=sample.time,
                )
                events.append(
                    UpdateEvent(
                        time_s=sample.time / resolved_load,
                        session_id=session_ids[tag.epc_int],
                        measurement=dataclasses.replace(
                            measurement, relay=plan.relays[relay_index].name
                        ),
                    )
                )
    events.sort(key=lambda e: (e.time_s, e.session_id))
    duration_s = max(
        samples[-1].time for samples in relay_samples
    ) / resolved_load
    return TrafficWorkload(
        events=tuple(events),
        grids={sid: grid for sid in session_ids.values()},
        tag_positions={
            session_ids[tag.epc_int]: np.asarray(tag.position, dtype=float)
            for tag in tags
        },
        duration_s=duration_s,
    )
