"""Fleet realization: per-relay trajectories plus a frequency plan.

A :class:`~repro.scenarios.spec.FleetSpec` is declarative; this module
lowers it against a realized world into a :class:`FleetPlan` of
concrete :class:`~repro.mobility.trajectory.LineTrajectory` passes and
tag-side carrier frequencies. Validation reuses the daisy-chain rule
(:class:`repro.relay.daisy_chain.ChainPlan`: every shift must be
positive so the relay's output clears the reader's channel) and the
FCC band of :func:`repro.relay.freq_discovery.ism_channels` — every
tag-side carrier must land inside both the 902-928 MHz channelization
and the scenario's declared ``[band_low_hz, band_high_hz]``.

Seeding follows the runtime spawn discipline: relays with their own
(possibly random) trajectory specs realize from ``SeedSequence``
children of the task seed, one child per relay index, so relay ``i``'s
flight depends only on ``(seed, i)`` — never on how many other relays
fly or on the base world's draw stream. Relay 0 with no explicit
trajectory inherits the *world's* realized trajectory, which is what
keeps a one-relay fleet bit-identical to the single-relay path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.channel.interference import co_channel_groups
from repro.errors import ConfigurationError
from repro.mobility.trajectory import LineTrajectory
from repro.relay.daisy_chain import ChainPlan
from repro.relay.freq_discovery import ism_channels
from repro.runtime.seeding import spawn_task_seeds
from repro.scenarios.compiler import RealizedWorld, build_trajectory
from repro.scenarios.spec import (
    FleetSpec,
    RelaySpec,
    Scenario,
    TrajectorySpec,
)



@dataclass(frozen=True)
class RelayPlan:
    """One realized relay: a concrete flight plus its frequency slot."""

    name: str
    trajectory: LineTrajectory
    shift_hz: float
    gain_db: float
    tag_frequency_hz: float

    def position_at_time(self, time_s: float) -> np.ndarray:
        """Relay position at ``time_s`` (parked at the end afterwards)."""
        distance = min(
            max(float(time_s), 0.0) * self.trajectory.speed_mps,
            self.trajectory.length,
        )
        return self.trajectory.position_at(distance)


class FleetPlan:
    """Realized relays plus the co-channel gate."""

    def __init__(
        self,
        relays: Tuple[RelayPlan, ...],
        guard_hz: float,
        reader_frequency_hz: float,
    ) -> None:
        if not relays:
            raise ConfigurationError("a fleet plan needs at least one relay")
        self.relays = tuple(relays)
        self.guard_hz = float(guard_hz)
        self.reader_frequency_hz = float(reader_frequency_hz)

    @property
    def n_relays(self) -> int:
        """Fleet size."""
        return len(self.relays)

    def names(self) -> Tuple[str, ...]:
        """Relay names in fleet order."""
        return tuple(relay.name for relay in self.relays)

    def frequencies_hz(self) -> Tuple[float, ...]:
        """Tag-side carrier per relay, in fleet order."""
        return tuple(relay.tag_frequency_hz for relay in self.relays)

    def gains_db(self) -> Tuple[float, ...]:
        """Relay amplifier gain per relay, in fleet order."""
        return tuple(relay.gain_db for relay in self.relays)

    def co_channel_groups(self) -> List[List[int]]:
        """Relay indices clustered by co-channel carriers."""
        return co_channel_groups(self.frequencies_hz(), self.guard_hz)

    def positions_at_time(self, time_s: float) -> List[np.ndarray]:
        """Every relay's position at ``time_s``, in fleet order."""
        return [relay.position_at_time(time_s) for relay in self.relays]


def _resolved_shift_hz(scenario: Scenario, relay: RelaySpec) -> float:
    return (
        scenario.radio.relay_shift_hz
        if relay.shift_hz is None
        else relay.shift_hz
    )


def _resolved_gain_db(scenario: Scenario, relay: RelaySpec) -> float:
    return (
        scenario.radio.relay_gain_db
        if relay.gain_db is None
        else relay.gain_db
    )


def validate_fleet(scenario: Scenario) -> FleetSpec:
    """Check a scenario's fleet against the band constraints.

    Each relay's shift must satisfy the daisy-chain rule (positive, so
    the mirrored output clears the reader's channel — enforced by
    constructing a one-hop :class:`ChainPlan`), and its tag-side
    carrier ``center + shift`` must land inside the scenario's declared
    band *and* the FCC 902-928 MHz channelization. Returns the fleet
    spec for chaining; raises :class:`ConfigurationError` otherwise.
    """
    fleet = scenario.fleet
    if fleet is None:
        raise ConfigurationError(
            f"scenario {scenario.name!r} declares no fleet"
        )
    radio = scenario.radio
    channels = ism_channels()
    half_step = (channels[1] - channels[0]) / 2.0
    band_floor = float(channels[0] - half_step)
    band_ceiling = float(channels[-1] + half_step)
    for name, relay in zip(fleet.relay_names(), fleet.relays):
        shift = _resolved_shift_hz(scenario, relay)
        chain = ChainPlan(
            reader_frequency_hz=radio.center_frequency_hz,
            shift_hz=shift,
            n_relays=1,
        )
        tag_frequency = chain.tag_frequency_hz
        if not radio.band_low_hz <= tag_frequency <= radio.band_high_hz:
            raise ConfigurationError(
                f"relay {name!r}: tag-side carrier "
                f"{tag_frequency / 1e6:.3f} MHz falls outside the "
                f"scenario band [{radio.band_low_hz / 1e6:.3f}, "
                f"{radio.band_high_hz / 1e6:.3f}] MHz"
            )
        if not band_floor <= tag_frequency <= band_ceiling:
            raise ConfigurationError(
                f"relay {name!r}: tag-side carrier "
                f"{tag_frequency / 1e6:.3f} MHz falls outside the FCC "
                "902-928 MHz channelization"
            )
    return fleet


def realize_fleet(
    scenario: Scenario, world: RealizedWorld, seed: int
) -> FleetPlan:
    """Lower the scenario's fleet against a realized world.

    Relays without an explicit trajectory fly the world's realized
    trajectory (shared; relay 0 of a default fleet IS the pre-fleet
    relay). Relays with their own spec realize it from a spawned seed
    child — by relay index, independent of the base draw stream.
    """
    fleet = validate_fleet(scenario)
    child_seeds = spawn_task_seeds(seed, len(fleet.relays))
    relays: List[RelayPlan] = []
    for index, (name, relay) in enumerate(
        zip(fleet.relay_names(), fleet.relays)
    ):
        if relay.trajectory is None:
            trajectory = world.trajectory
        else:
            trajectory = _realize_relay_trajectory(
                relay.trajectory, child_seeds[index]
            )
        shift = _resolved_shift_hz(scenario, relay)
        relays.append(
            RelayPlan(
                name=name,
                trajectory=trajectory,
                shift_hz=shift,
                gain_db=_resolved_gain_db(scenario, relay),
                tag_frequency_hz=(
                    scenario.radio.center_frequency_hz + shift
                ),
            )
        )
    return FleetPlan(
        relays=tuple(relays),
        guard_hz=fleet.guard_hz,
        reader_frequency_hz=scenario.radio.center_frequency_hz,
    )


def _realize_relay_trajectory(
    spec: TrajectorySpec, child_seed: int
) -> LineTrajectory:
    rng = (
        np.random.default_rng(child_seed)
        if spec.kind != "line"
        else None
    )
    trajectory, _, _, _ = build_trajectory(spec, rng)
    return trajectory


def scale_fleet(scenario: Scenario, fleet_size: int) -> Scenario:
    """A scenario variant flying ``fleet_size`` relays over the aisle.

    The coverage-sweep synthesizer behind the ``fleet_coverage``
    experiment. The base line splits into ``fleet_size`` equal
    segments, one relay per segment, all launching at once — the fleet
    scans the aisle in roughly ``1/N`` the wall time, at the price of a
    shorter per-tag SAR aperture (the fig13 tradeoff). Each flight
    extends half a segment past both boundaries (clamped to the line),
    so every point of the aisle is swept by two relays: a boundary tag
    hands off between neighbors and its final fix combines both
    relays' segments noncoherently
    (:func:`~repro.localization.incremental.finalize_segments`).
    Keeping every pass *on* the base line avoids the mirror ambiguity
    a laterally offset lane would reintroduce (a lane through the tag
    field puts ghost peaks back inside the grid). Shifts alternate
    between the scenario's base slot and twice it, so adjacent
    segments never share a carrier and co-channel groups form only
    between next-nearest segments — frequency reuse-2.

    With ``fleet_size=1`` the single relay declares no trajectory and
    therefore inherits the world's realized trajectory: bit-identical
    to the pre-fleet single-relay path.
    """
    if fleet_size < 1:
        raise ConfigurationError("fleet_size must be >= 1")
    base = scenario.trajectory
    if base.kind != "line":
        raise ConfigurationError(
            "scale_fleet segments a line trajectory; scenario "
            f"{scenario.name!r} flies {base.kind!r}"
        )
    start = np.array([base.x0_m, base.y0_m])
    end = np.array([base.x1_m, base.y1_m])
    relays: List[RelaySpec]
    if fleet_size == 1:
        relays = [RelaySpec(name="relay-00")]
    else:
        base_shift = scenario.radio.relay_shift_hz
        relays = []
        for index in range(fleet_size):
            lo = max(0.0, (index - 0.5) / fleet_size)
            hi = min(1.0, (index + 1.5) / fleet_size)
            seg_start = start + (end - start) * lo
            seg_end = start + (end - start) * hi
            relays.append(
                RelaySpec(
                    name=f"relay-{index:02d}",
                    trajectory=TrajectorySpec(
                        kind="line",
                        x0_m=float(seg_start[0]),
                        y0_m=float(seg_start[1]),
                        x1_m=float(seg_end[0]),
                        y1_m=float(seg_end[1]),
                        spacing_m=base.spacing_m,
                        speed_mps=base.speed_mps,
                    ),
                    shift_hz=base_shift * (1.0 + index % 2),
                )
            )
    fleet = (
        scenario.fleet
        if scenario.fleet is not None
        else FleetSpec()
    )
    return Scenario.from_dict(
        {
            **scenario.to_dict(),
            "fleet": {
                **fleet.to_dict(),
                "relays": [relay.to_dict() for relay in relays],
            },
        }
    )
