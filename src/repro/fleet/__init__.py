"""Multi-relay fleets: trajectories, frequency plans, relay selection.

The paper's warehouse vision (§9) is a *fleet* of relay drones covering
a facility. This package generalizes the single-relay simulation to N
relays:

* :mod:`repro.fleet.plan` — :class:`FleetPlan`: per-relay realized
  trajectories plus a frequency plan validated against the daisy-chain
  shift rule and the FCC channel band, seeded via the runtime's
  ``SeedSequence`` spawn discipline.
* :mod:`repro.fleet.selection` — per-tag relay-selection policies
  (``nearest``, ``best_link_budget``, ``epsilon_greedy``) as pure,
  picklable strategy objects.
* :mod:`repro.fleet.workload` — the fleet traffic generator: one
  merged pose timeline across relays, per-tag serving-relay
  assignment, co-channel interference folded into the SNR, and
  relay-tagged update events that drive session handoff in
  :mod:`repro.serve`.

A one-relay fleet is bit-identical to the pre-fleet single-relay path:
same draw order, no policy rng draws with a single candidate, and an
exact-zero interference penalty without co-channel interferers.
"""

from __future__ import annotations

from repro.fleet.plan import (
    FleetPlan,
    RelayPlan,
    realize_fleet,
    scale_fleet,
    validate_fleet,
)
from repro.fleet.selection import (
    BestLinkBudgetPolicy,
    EpsilonGreedyPolicy,
    NearestPolicy,
    RelayCandidate,
    build_policy,
)
from repro.fleet.workload import generate_fleet_workload

__all__ = [
    "BestLinkBudgetPolicy",
    "EpsilonGreedyPolicy",
    "FleetPlan",
    "NearestPolicy",
    "RelayCandidate",
    "RelayPlan",
    "build_policy",
    "generate_fleet_workload",
    "realize_fleet",
    "scale_fleet",
    "validate_fleet",
]
