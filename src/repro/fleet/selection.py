"""Per-tag relay-selection policies.

At every pose instant each powered tag is served by exactly one relay;
the policy picks which. Policies are pure, picklable strategy objects
(they ride inside sweep-task closures to process-pool workers), and
all of them share one invariant the bit-identity suite pins: **a
single candidate is returned immediately with no rng draw and no state
update**, so a one-relay fleet consumes exactly the same random stream
as the pre-fleet path.

``nearest`` and ``best_link_budget`` are stateless and deterministic;
``epsilon_greedy`` keeps a per-(tag, relay) running reward (the
Q-learning relay selection of the dronet routing algorithms, collapsed
to a one-step bandit) and draws its exploration from a dedicated
generator spawned off the task seed — never from the workload's base
stream.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence, Tuple, Union

import numpy as np

from repro.errors import ConfigurationError
from repro.runtime.seeding import spawn_task_seeds
from repro.scenarios.spec import FleetSpec

#: Spawn index of the policy's exploration stream under the task seed
#: (relay trajectory children use indices ``0..n_relays-1`` of their
#: own spawn call; the policy spawns one child deeper to stay clear).
_POLICY_SPAWN_INDEX = 1


@dataclass(frozen=True)
class RelayCandidate:
    """One relay currently able to power a tag."""

    index: int
    name: str
    distance_m: float
    link_budget_db: float


@dataclass(frozen=True)
class NearestPolicy:
    """Serve each tag from the closest powering relay (ties: lowest
    fleet index — deterministic and order-stable)."""

    def select(
        self, tag_id: str, candidates: Sequence[RelayCandidate]
    ) -> int:
        """Fleet index of the serving relay."""
        if not candidates:
            raise ConfigurationError("select() needs at least one candidate")
        if len(candidates) == 1:
            return candidates[0].index
        best = min(candidates, key=lambda c: (c.distance_m, c.index))
        return best.index

    def observe(self, tag_id: str, relay_index: int, reward: float) -> None:
        """Stateless: read outcomes are ignored."""


@dataclass(frozen=True)
class BestLinkBudgetPolicy:
    """Serve each tag from the relay with the strongest end-to-end
    link budget (ties: lowest fleet index)."""

    def select(
        self, tag_id: str, candidates: Sequence[RelayCandidate]
    ) -> int:
        """Fleet index of the serving relay."""
        if not candidates:
            raise ConfigurationError("select() needs at least one candidate")
        if len(candidates) == 1:
            return candidates[0].index
        best = max(
            candidates, key=lambda c: (c.link_budget_db, -c.index)
        )
        return best.index

    def observe(self, tag_id: str, relay_index: int, reward: float) -> None:
        """Stateless: read outcomes are ignored."""


class EpsilonGreedyPolicy:
    """Epsilon-greedy bandit over relays, learned per tag.

    Exploit: the relay with the highest running reward for this tag
    (unseen relays start at 0; ties break toward the stronger link
    budget, then the lower index — so before any feedback the policy
    behaves like :class:`BestLinkBudgetPolicy`). Explore: with
    probability ``epsilon``, a uniform candidate from the policy's own
    spawned-seed generator. Rewards (1 = the assigned relay read the
    tag at this pose, 0 = it did not) fold in with ``learning_rate``
    as an exponential running mean.
    """

    def __init__(
        self, epsilon: float, learning_rate: float, seed: int
    ) -> None:
        if not 0.0 <= epsilon <= 1.0:
            raise ConfigurationError("epsilon must be in [0, 1]")
        if not 0.0 < learning_rate <= 1.0:
            raise ConfigurationError("learning_rate must be in (0, 1]")
        self.epsilon = float(epsilon)
        self.learning_rate = float(learning_rate)
        self.seed = int(seed)
        self._rng = np.random.default_rng(
            spawn_task_seeds(seed, _POLICY_SPAWN_INDEX + 1)[
                _POLICY_SPAWN_INDEX
            ]
        )
        self._q: Dict[Tuple[str, int], float] = {}

    def select(
        self, tag_id: str, candidates: Sequence[RelayCandidate]
    ) -> int:
        """Fleet index of the serving relay."""
        if not candidates:
            raise ConfigurationError("select() needs at least one candidate")
        if len(candidates) == 1:
            return candidates[0].index
        if self.epsilon > 0.0 and self._rng.random() < self.epsilon:
            pick = int(self._rng.integers(0, len(candidates)))
            return candidates[pick].index
        best = max(
            candidates,
            key=lambda c: (
                self._q.get((tag_id, c.index), 0.0),
                c.link_budget_db,
                -c.index,
            ),
        )
        return best.index

    def observe(self, tag_id: str, relay_index: int, reward: float) -> None:
        """Fold one read outcome into the running reward."""
        key = (tag_id, int(relay_index))
        old = self._q.get(key, 0.0)
        self._q[key] = old + self.learning_rate * (float(reward) - old)


SelectionPolicy = Union[
    NearestPolicy, BestLinkBudgetPolicy, EpsilonGreedyPolicy
]


def build_policy(fleet: FleetSpec, seed: int) -> SelectionPolicy:
    """Instantiate the fleet's selection policy for one task seed."""
    if fleet.selection == "nearest":
        return NearestPolicy()
    if fleet.selection == "best_link_budget":
        return BestLinkBudgetPolicy()
    if fleet.selection == "epsilon_greedy":
        return EpsilonGreedyPolicy(
            epsilon=fleet.epsilon,
            learning_rate=fleet.learning_rate,
            seed=seed,
        )
    raise ConfigurationError(
        f"unknown selection policy {fleet.selection!r}"
    )
