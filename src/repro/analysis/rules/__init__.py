"""Rule registry: importing this package registers every rule module."""

from __future__ import annotations

from repro.analysis.rules import (  # noqa: F401  (registration)
    api,
    determinism,
    faults,
    observability,
    purity,
    taint,
    units,
    unitflow,
)
from repro.analysis.rules.base import ModuleContext, Rule, all_rules, register

__all__ = ["ModuleContext", "Rule", "all_rules", "register"]
