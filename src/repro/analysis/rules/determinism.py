"""Determinism rules (``R3xx``).

Every figure reproduction must regenerate bit-identically from its
seed, so library code never owns hidden randomness: RNGs are injected
as ``np.random.Generator`` instances seeded by the caller (the
convention established in ``repro/sim/scenarios.py``), and fallbacks
derive from a documented fixed seed. These rules ban the three ways
nondeterminism has historically crept in.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.analysis.findings import Finding
from repro.analysis.rules.base import ModuleContext, Rule, register

#: numpy legacy global-state RandomState functions; calling any of these
#: as ``np.random.<fn>`` uses (and mutates) hidden module-level state.
LEGACY_NP_RANDOM = frozenset(
    {
        "seed",
        "random",
        "random_sample",
        "rand",
        "randn",
        "randint",
        "normal",
        "uniform",
        "choice",
        "shuffle",
        "permutation",
        "standard_normal",
        "exponential",
        "poisson",
        "binomial",
        "get_state",
        "set_state",
    }
)


def _np_random_attr(func: ast.AST) -> Optional[str]:
    """``fn`` when ``func`` is ``np.random.fn`` / ``numpy.random.fn``."""
    if not isinstance(func, ast.Attribute):
        return None
    parent = func.value
    if (
        isinstance(parent, ast.Attribute)
        and parent.attr == "random"
        and isinstance(parent.value, ast.Name)
        and parent.value.id in ("np", "numpy")
    ):
        return func.attr
    return None


@register
class UnseededDefaultRng(Rule):
    """R301: argless ``np.random.default_rng()`` is nondeterministic."""

    code = "R301"
    name = "unseeded-default-rng"
    severity = "error"

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            attr = _np_random_attr(node.func)
            is_bare_name = (
                isinstance(node.func, ast.Name) and node.func.id == "default_rng"
            )
            if (attr == "default_rng" or is_bare_name) and not (
                node.args or node.keywords
            ):
                yield self.finding(
                    ctx,
                    node,
                    "np.random.default_rng() without a seed; inject an rng "
                    "or seed from a documented constant",
                )


@register
class LegacyGlobalNpRandom(Rule):
    """R302: ``np.random.<fn>`` legacy global-state calls."""

    code = "R302"
    name = "legacy-global-np-random"
    severity = "error"

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            attr = _np_random_attr(node.func)
            if attr in LEGACY_NP_RANDOM:
                yield self.finding(
                    ctx,
                    node,
                    f"np.random.{attr} uses hidden global state; draw from "
                    "an injected np.random.Generator instead",
                )


#: Path fragment identifying the one package allowed to spawn workers.
RUNTIME_PACKAGE_FRAGMENT = "repro/runtime/"

#: Modules whose import means ad-hoc parallelism outside the sweep engine.
PARALLELISM_MODULES = ("multiprocessing", "concurrent.futures", "concurrent")


def _parallelism_root(name: str) -> Optional[str]:
    """The banned top-level module when ``name`` falls under one."""
    for banned in PARALLELISM_MODULES:
        if name == banned or name.startswith(banned + "."):
            return banned
    return None


@register
class AdHocParallelism(Rule):
    """R304: worker pools outside ``repro.runtime``.

    Parallel dispatch is only bit-reproducible when seeds are fixed
    before fan-out and results are reduced in task order — the
    contract ``repro.runtime.backends`` implements once. Importing
    ``multiprocessing`` or ``concurrent.futures`` anywhere else
    reintroduces scheduling-order nondeterminism the engine exists to
    prevent, so those modules route through ``repro.runtime.run_sweep``
    instead.
    """

    code = "R304"
    name = "ad-hoc-parallelism"
    severity = "error"

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if RUNTIME_PACKAGE_FRAGMENT in ctx.path.replace("\\", "/"):
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    root = _parallelism_root(alias.name)
                    if root is not None:
                        yield self.finding(
                            ctx,
                            node,
                            f"direct {root} use outside repro.runtime; "
                            "dispatch through repro.runtime.run_sweep",
                        )
            elif isinstance(node, ast.ImportFrom):
                if node.level == 0 and node.module is not None:
                    root = _parallelism_root(node.module)
                    if root is not None:
                        yield self.finding(
                            ctx,
                            node,
                            f"direct {root} use outside repro.runtime; "
                            "dispatch through repro.runtime.run_sweep",
                        )


@register
class StdlibRandomImport(Rule):
    """R303: stdlib ``random`` in library code."""

    code = "R303"
    name = "stdlib-random-import"
    severity = "error"

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "random" or alias.name.startswith("random."):
                        yield self.finding(
                            ctx,
                            node,
                            "stdlib random is unseedable per-call; use an "
                            "injected np.random.Generator",
                        )
            elif isinstance(node, ast.ImportFrom):
                if node.module == "random" and node.level == 0:
                    yield self.finding(
                        ctx,
                        node,
                        "stdlib random is unseedable per-call; use an "
                        "injected np.random.Generator",
                    )
