"""Determinism taint rules (``R310``–``R313``).

The ``R30x`` rules ban the *syntactic* forms of hidden randomness.
These rules track nondeterminism as a dataflow property instead:

* **R310** — a generator or ``SeedSequence`` seeded from a tainted
  value (``default_rng(int(wall_clock_s()))``) is as unreproducible as
  an unseeded one, however disciplined the spelling looks;
* **R311** — tainted values reaching the sweep engine's task boundary:
  an unseeded/entropy-derived argument passed to a known task function
  or into a ``SweepTask``/``SweepTask.make`` construction (seeds must
  trace back to explicit constants or ``SeedSequence.spawn``
  discipline, see :mod:`repro.runtime.seeding`);
* **R312** — iteration over a ``set``/``frozenset`` value: ordering
  depends on ``PYTHONHASHSEED``, so any reduce/merge path that walks a
  set without ``sorted(...)`` can differ between the serial backend
  and pool workers;
* **R313** — wall-clock readings flowing into a task function's return
  value: the payload lands in the content-addressed cache, and a
  cached replay can never be bit-identical to the original run.

Taint *sources* are wall clocks (``time.*``, ``datetime.now``, and the
sanctioned ``repro.obs.wall_clock_s`` — sanctioned for CLI status
lines, still wall-clock), OS entropy (``os.urandom``, ``secrets``,
``uuid.uuid1/4``), and unseeded RNG constructors.
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, Iterator, List, Optional, Set, Tuple

from repro.analysis.dataflow import (
    FlowWalker,
    TaintLattice,
    call_chain,
    functions_in,
    statement_expressions,
)
from repro.analysis.findings import Finding
from repro.analysis.rules.base import ModuleContext, Rule, register

#: Dotted-call tails that read a wall clock.
WALL_CLOCK_TAILS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "datetime.now",
        "datetime.utcnow",
        "datetime.today",
        "date.today",
        "wall_clock_s",
        "tracing.wall_clock_s",
        "obs.wall_clock_s",
    }
)

#: Dotted-call tails that draw OS entropy.
ENTROPY_TAILS = frozenset(
    {
        "os.urandom",
        "secrets.token_bytes",
        "secrets.token_hex",
        "secrets.token_urlsafe",
        "secrets.randbits",
        "secrets.randbelow",
        "secrets.choice",
        "uuid.uuid1",
        "uuid.uuid4",
    }
)

_RNG_CONSTRUCTOR_TAILS = ("default_rng", "SeedSequence")


def _chain_tail(chain: str, depth: int = 2) -> str:
    """The last ``depth`` dotted components of a call chain."""
    return ".".join(chain.split(".")[-depth:])


def classify_taint_source(chain: str, node: ast.Call) -> FrozenSet[str]:
    """Taint reasons introduced by one call, by its dotted target."""
    tail2 = _chain_tail(chain, 2)
    tail1 = _chain_tail(chain, 1)
    if tail2 in WALL_CLOCK_TAILS or tail1 in WALL_CLOCK_TAILS:
        return frozenset({"wall-clock"})
    if tail2 in ENTROPY_TAILS:
        return frozenset({"entropy"})
    if tail1 in _RNG_CONSTRUCTOR_TAILS and not node.args and not node.keywords:
        return frozenset({"unseeded-rng"})
    return frozenset()


def _make_lattice(ctx: ModuleContext) -> TaintLattice:
    return TaintLattice(classify_taint_source, ctx.resolver())


def _task_function_nodes(
    ctx: ModuleContext,
) -> "List[Tuple[ast.FunctionDef | ast.AsyncFunctionDef, str]]":
    """(node, symbol) for this module's functions that are task fns."""
    if ctx.project is None:
        return []
    task_symbols = ctx.project.task_functions()
    if not task_symbols:
        return []
    nodes = []
    for node, qualname in function_qualnames(ctx.tree):
        symbol = f"{ctx.module_name}:{qualname}"
        if symbol in task_symbols:
            nodes.append((node, symbol))
    return nodes


def function_qualnames(
    tree: ast.Module,
) -> "List[Tuple[ast.FunctionDef | ast.AsyncFunctionDef, str]]":
    """Every function definition in ``tree`` with its dotted qualname.

    Nested scopes follow Python's ``<locals>``-free dotted spelling the
    project model uses (``Class.method``, ``outer.inner``).
    """
    out: "List[Tuple[ast.FunctionDef | ast.AsyncFunctionDef, str]]" = []

    def _visit(node: ast.AST, scope: Tuple[str, ...]) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qualname = ".".join([*scope, child.name])
                out.append((child, qualname))
                _visit(child, (*scope, child.name))
            elif isinstance(child, ast.ClassDef):
                _visit(child, (*scope, child.name))
            elif isinstance(
                child, (ast.If, ast.Try, ast.For, ast.While, ast.With)
            ):
                _visit(child, scope)

    _visit(tree, ())
    return out


def _reasons(found: Optional[FrozenSet[str]]) -> str:
    return ", ".join(sorted(found or ()))


@register
class TaintedSeed(Rule):
    """R310: RNG/SeedSequence seeded from a nondeterministic value."""

    code = "R310"
    name = "tainted-seed"
    severity = "error"

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        lattice = _make_lattice(ctx)
        walker = FlowWalker(lattice)
        for scope in [ctx.tree, *functions_in(ctx.tree)]:
            for stmt, env in walker.walk(scope):  # type: ignore[arg-type]
                for tree in statement_expressions(stmt):
                    for node in ast.walk(tree):
                        if not isinstance(node, ast.Call):
                            continue
                        chain = call_chain(node)
                        if chain is None:
                            continue
                        if _chain_tail(chain, 1) not in _RNG_CONSTRUCTOR_TAILS:
                            continue
                        tainted: FrozenSet[str] = frozenset()
                        for arg in [
                            *node.args,
                            *[kw.value for kw in node.keywords],
                        ]:
                            tainted = tainted | (
                                lattice.infer(arg, env)  # type: ignore[arg-type]
                                or frozenset()
                            )
                        if tainted:
                            yield self.finding(
                                ctx,
                                node,
                                f"{_chain_tail(chain, 1)} seeded from a "
                                f"nondeterministic value "
                                f"({_reasons(tainted)}); derive seeds from "
                                "constants or SeedSequence.spawn",
                            )


@register
class TaintReachesTaskBoundary(Rule):
    """R311: tainted values crossing into the sweep engine's task layer."""

    code = "R311"
    name = "taint-reaches-task"
    severity = "error"

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        lattice = _make_lattice(ctx)
        walker = FlowWalker(lattice)
        project = ctx.project
        task_symbols = (
            project.task_functions() if project is not None else frozenset()
        )
        for scope in [ctx.tree, *functions_in(ctx.tree)]:
            for stmt, env in walker.walk(scope):  # type: ignore[arg-type]
                for tree in statement_expressions(stmt):
                    for node in ast.walk(tree):
                        if not isinstance(node, ast.Call):
                            continue
                        chain = call_chain(node)
                        if chain is None:
                            continue
                        is_task_boundary = chain.endswith(
                            "SweepTask"
                        ) or chain.endswith("SweepTask.make")
                        if not is_task_boundary and project is not None:
                            fn = project.resolve_call(
                                ctx.module_name, chain
                            )
                            is_task_boundary = (
                                fn is not None
                                and fn.symbol in task_symbols
                            )
                        if not is_task_boundary:
                            continue
                        for arg in [
                            *[
                                a
                                for a in node.args
                                if not isinstance(a, ast.Starred)
                            ],
                            *[kw.value for kw in node.keywords],
                        ]:
                            tainted = lattice.infer(arg, env)  # type: ignore[arg-type]
                            if tainted:
                                yield self.finding(
                                    ctx,
                                    node,
                                    "nondeterministic value "
                                    f"({_reasons(tainted)}) passed into "
                                    f"the task boundary '{chain}'; tasks "
                                    "must be pure in (params, seed)",
                                )


class _SetLattice:
    """Tracks which locals hold ``set``/``frozenset`` values.

    The single abstract value is the string ``"set"``; everything else
    is unknown. Ordered wrappers (``sorted``, ``list``, ``tuple``)
    deliberately return unknown — they are the sanctioned exits.
    """

    _CONSTRUCTORS = frozenset({"set", "frozenset"})
    _SET_METHODS = frozenset(
        {
            "union",
            "intersection",
            "difference",
            "symmetric_difference",
            "copy",
        }
    )

    def join(self, a: Optional[str], b: Optional[str]) -> Optional[str]:
        """Branch merge: both branches must agree on set-ness."""
        return a if a == b else None

    def infer(self, node: ast.AST, env: Dict[str, str]) -> Optional[str]:
        """``"set"`` when ``node`` evaluates to a set, else None."""
        if isinstance(node, (ast.Set, ast.SetComp)):
            return "set"
        if isinstance(node, ast.Name):
            return env.get(node.id)
        if isinstance(node, ast.Call):
            chain = call_chain(node)
            if chain is None:
                return None
            tail = chain.split(".")[-1]
            if chain in self._CONSTRUCTORS:
                return "set"
            if tail in self._SET_METHODS and isinstance(
                node.func, ast.Attribute
            ):
                return self.infer(node.func.value, env)
            return None
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.BitXor, ast.Sub)
        ):
            left = self.infer(node.left, env)
            right = self.infer(node.right, env)
            return "set" if "set" in (left, right) else None
        if isinstance(node, ast.IfExp):
            return self.join(
                self.infer(node.body, env), self.infer(node.orelse, env)
            )
        return None


#: Call targets whose iteration order becomes observable output.
_ORDER_SENSITIVE_CONSUMERS = frozenset(
    {"list", "tuple", "enumerate", "iter", "join", "next"}
)

#: Order-insensitive reducers where set iteration is harmless.
_ORDER_FREE_CONSUMERS = frozenset(
    {"sorted", "len", "sum", "min", "max", "any", "all", "set", "frozenset"}
)


@register
class UnorderedSetIteration(Rule):
    """R312: iterating a set where the order becomes observable.

    ``for x in some_set``, ``list(some_set)``, ``",".join(some_set)``
    and friends inherit ``PYTHONHASHSEED``-dependent order; a reduce or
    merge path built on them differs run-to-run and backend-to-backend.
    Wrap the set in ``sorted(...)`` at the iteration site.
    """

    code = "R312"
    name = "unordered-set-iteration"
    severity = "error"

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        lattice = _SetLattice()
        walker = FlowWalker(lattice)  # type: ignore[arg-type]
        for scope in [ctx.tree, *functions_in(ctx.tree)]:
            for stmt, env in walker.walk(scope):  # type: ignore[arg-type]
                yield from self._check_statement(ctx, lattice, stmt, env)

    def _check_statement(
        self,
        ctx: ModuleContext,
        lattice: _SetLattice,
        stmt: ast.stmt,
        env: "dict[str, str]",
    ) -> Iterator[Finding]:
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            if lattice.infer(stmt.iter, env) == "set":
                yield self._site(ctx, stmt.iter, "for-loop")
        for tree in statement_expressions(stmt):
            for node in ast.walk(tree):
                if isinstance(node, ast.Call):
                    yield from self._check_call(ctx, lattice, node, env)
                elif isinstance(
                    node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
                ):
                    for generator in node.generators:
                        if lattice.infer(generator.iter, env) == "set":
                            # Set comprehensions re-hash anyway; list/
                            # dict/generator outputs keep the order.
                            if not isinstance(node, ast.SetComp):
                                yield self._site(
                                    ctx, generator.iter, "comprehension"
                                )
                elif isinstance(node, ast.Starred):
                    if lattice.infer(node.value, env) == "set":
                        yield self._site(ctx, node.value, "unpacking")

    def _check_call(
        self,
        ctx: ModuleContext,
        lattice: _SetLattice,
        node: ast.Call,
        env: "dict[str, str]",
    ) -> Iterator[Finding]:
        chain = call_chain(node)
        if chain is None:
            return
        tail = chain.split(".")[-1]
        if tail in _ORDER_FREE_CONSUMERS:
            return
        if tail not in _ORDER_SENSITIVE_CONSUMERS:
            return
        candidates = node.args[:1]
        if tail == "join" and isinstance(node.func, ast.Attribute):
            candidates = node.args[:1]
        for arg in candidates:
            if lattice.infer(arg, env) == "set":
                yield self._site(ctx, arg, f"{tail}()")

    def _site(self, ctx: ModuleContext, node: ast.AST, how: str) -> Finding:
        return self.finding(
            ctx,
            node,
            f"set iterated via {how}: order depends on PYTHONHASHSEED; "
            "wrap in sorted(...)",
        )


@register
class WallClockInTaskPayload(Rule):
    """R313: wall-clock taint entering a cached task payload."""

    code = "R313"
    name = "wall-clock-in-task-payload"
    severity = "error"

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        lattice = _make_lattice(ctx)
        walker = FlowWalker(lattice)
        for node, symbol in _task_function_nodes(ctx):
            for stmt, env in walker.walk(node):
                if not isinstance(stmt, ast.Return) or stmt.value is None:
                    continue
                tainted = lattice.infer(stmt.value, env)  # type: ignore[arg-type]
                if tainted and "wall-clock" in tainted:
                    yield self.finding(
                        ctx,
                        stmt,
                        f"task function '{symbol}' returns a wall-clock-"
                        "derived value; cached replays can never be "
                        "bit-identical (timing belongs in the manifest)",
                    )
