"""Flow-sensitive and cross-module unit rules (``U110``–``U115``).

The per-file ``U10x`` rules only catch unit mixing spelled directly in
identifier suffixes. These rules close the gaps that actually bite in
a growing codebase:

* a suffix-less local that *holds* a decibel value (``loss =
  path_loss_db(...)``) mixed with a linear quantity statements later
  (U110, U115) or stored into a conflicting suffixed name (U114);
* a value crossing a call boundary into a parameter of a different
  dimension — resolved cross-module through the project model's symbol
  table (U111) — or returned from a function whose name promises a
  different unit (U112);
* the one mixing mode with a dedicated remedy: decibel values meeting
  linear power (watts) anywhere outside ``repro.dsp.units``, which is
  always a missing converter call (U113).

U113 owns every dB-vs-watts crossing; U110/U111/U112/U114/U115 skip
those pairs so each defect reports exactly one code. Pairs already
flagged by the suffix-only rules (both operands directly suffixed) are
likewise skipped — these rules report only what dataflow *added*.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Tuple

from repro.analysis.dataflow import (
    FlowWalker,
    UnitLattice,
    call_chain,
    functions_in,
    statement_expressions,
)
from repro.analysis.findings import Finding
from repro.analysis.rules.base import ModuleContext, Rule, register
from repro.analysis.rules.units import (
    families_compatible_additive,
    family_of,
    operand_family,
)

#: The decibel-domain families and the linear-power family whose
#: crossings mean "someone forgot a repro.dsp.units converter".
_DECIBEL_FAMILIES = frozenset({"db", "dbm"})
_LINEAR_POWER_FAMILY = "watts"


def _is_db_linear_crossing(a: str, b: str) -> bool:
    """True when families ``a``/``b`` are a decibel-vs-watts pair."""
    return (a in _DECIBEL_FAMILIES and b == _LINEAR_POWER_FAMILY) or (
        b in _DECIBEL_FAMILIES and a == _LINEAR_POWER_FAMILY
    )


class _UnitFlowRule(Rule):
    """Shared traversal: walk every function with a live unit env."""

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        """Drive :meth:`check_site` over every statement of every scope."""
        lattice = UnitLattice(ctx.resolver())
        walker = FlowWalker(lattice)
        scopes: List[ast.AST] = [ctx.tree, *functions_in(ctx.tree)]
        for scope in scopes:
            for stmt, env in walker.walk(scope):  # type: ignore[arg-type]
                yield from self.check_site(ctx, lattice, stmt, env)

    def check_site(
        self,
        ctx: ModuleContext,
        lattice: UnitLattice,
        stmt: ast.stmt,
        env: "dict[str, str]",
    ) -> Iterator[Finding]:
        """Inspect one statement under its live environment."""
        raise NotImplementedError


def _inferred_pair(
    lattice: UnitLattice,
    env: "dict[str, str]",
    left: ast.AST,
    right: ast.AST,
) -> Optional[Tuple[str, str]]:
    """Incompatible (left, right) families added by dataflow, else None.

    Returns None when either family is unknown, when the two are
    additively compatible, or when *both* operands carry the families
    directly in their suffixes — the suffix-only rules already own
    that case.
    """
    left_family = lattice.infer(left, env)
    right_family = lattice.infer(right, env)
    if left_family is None or right_family is None:
        return None
    if families_compatible_additive(left_family, right_family):
        return None
    if operand_family(left) is not None and operand_family(right) is not None:
        return None
    return left_family, right_family


def _describe(node: ast.AST) -> str:
    """Compact source rendering of an operand for messages."""
    try:
        text = ast.unparse(node)
    except Exception:  # pragma: no cover - unparse covers all exprs
        return "<expression>"
    return text if len(text) <= 40 else text[:37] + "..."


@register
class FlowAdditiveMix(_UnitFlowRule):
    """U110: additive mixing of incompatible *propagated* unit families."""

    code = "U110"
    name = "flow-additive-unit-mix"
    severity = "error"

    def check_site(
        self,
        ctx: ModuleContext,
        lattice: UnitLattice,
        stmt: ast.stmt,
        env: "dict[str, str]",
    ) -> Iterator[Finding]:
        for tree in statement_expressions(stmt):
            for node in ast.walk(tree):
                if not isinstance(node, ast.BinOp):
                    continue
                if not isinstance(node.op, (ast.Add, ast.Sub)):
                    continue
                pair = _inferred_pair(lattice, env, node.left, node.right)
                if pair is None or _is_db_linear_crossing(*pair):
                    continue
                yield self.finding(
                    ctx,
                    node,
                    f"additive mix of '{_describe(node.left)}' "
                    f"({pair[0]}) and '{_describe(node.right)}' "
                    f"({pair[1]}) via dataflow",
                )


def _call_argument_bindings(
    node: ast.Call, params: Tuple[str, ...]
) -> Iterator[Tuple[str, ast.AST]]:
    """(parameter name, argument expression) pairs for a resolved call.

    Positional matching stops at the first ``*args`` splat; ``**kwargs``
    splats contribute nothing.
    """
    for index, arg in enumerate(node.args):
        if isinstance(arg, ast.Starred):
            break
        if index < len(params):
            yield params[index], arg
    for keyword in node.keywords:
        if keyword.arg is not None and keyword.arg in params:
            yield keyword.arg, keyword.value


@register
class CallArgumentUnitMismatch(_UnitFlowRule):
    """U111: argument unit family conflicts with the callee's parameter."""

    code = "U111"
    name = "call-argument-unit-mismatch"
    severity = "error"

    def check_site(
        self,
        ctx: ModuleContext,
        lattice: UnitLattice,
        stmt: ast.stmt,
        env: "dict[str, str]",
    ) -> Iterator[Finding]:
        for tree in statement_expressions(stmt):
            for node in ast.walk(tree):
                if not isinstance(node, ast.Call):
                    continue
                chain = call_chain(node)
                if chain is None:
                    continue
                fn = lattice.resolve(chain)
                if fn is None:
                    continue
                for param, arg in _call_argument_bindings(node, fn.params):
                    param_family = fn.family_for_param(param)
                    if param_family is None:
                        continue
                    arg_family = lattice.infer(arg, env)
                    if arg_family is None or families_compatible_additive(
                        arg_family, param_family
                    ):
                        continue
                    if _is_db_linear_crossing(arg_family, param_family):
                        continue  # U113 owns the decibel/linear case
                    yield self.finding(
                        ctx,
                        node,
                        f"argument '{_describe(arg)}' ({arg_family}) "
                        f"bound to parameter '{param}' ({param_family}) "
                        f"of '{fn.symbol}'",
                    )


@register
class ReturnUnitMismatch(_UnitFlowRule):
    """U112: returned value's family conflicts with the function's suffix."""

    code = "U112"
    name = "return-unit-mismatch"
    severity = "error"

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        lattice = UnitLattice(ctx.resolver())
        walker = FlowWalker(lattice)
        for fn in functions_in(ctx.tree):
            declared = family_of(fn.name)
            if declared is None:
                continue
            for stmt, env in walker.walk(fn):
                if not isinstance(stmt, ast.Return) or stmt.value is None:
                    continue
                returned = lattice.infer(stmt.value, env)  # type: ignore[arg-type]
                if returned is None or families_compatible_additive(
                    returned, declared
                ):
                    continue
                if _is_db_linear_crossing(returned, declared):
                    continue  # U113 owns the decibel/linear case
                yield self.finding(
                    ctx,
                    stmt,
                    f"'{fn.name}' promises {declared} but returns "
                    f"'{_describe(stmt.value)}' ({returned})",
                )

    def check_site(
        self,
        ctx: ModuleContext,
        lattice: UnitLattice,
        stmt: ast.stmt,
        env: "dict[str, str]",
    ) -> Iterator[Finding]:  # pragma: no cover - custom check() above
        return iter(())


@register
class DbLinearCrossing(_UnitFlowRule):
    """U113: decibel value meets linear watts without a converter.

    Fires on any of the three hand-off points — additive arithmetic,
    call arguments against a resolved signature, assignments into a
    suffixed name — whenever one side is ``db``/``dbm`` and the other
    ``watts``. The remedy is always the same:
    ``repro.dsp.units.db_to_linear`` / ``linear_to_db`` /
    ``dbm_to_watts`` / ``watts_to_dbm``. The converter module itself is
    exempt via the default per-path ignores (it *is* the crossing).
    """

    code = "U113"
    name = "db-linear-crossing"
    severity = "error"

    _REMEDY = "; convert via repro.dsp.units"

    def check_site(
        self,
        ctx: ModuleContext,
        lattice: UnitLattice,
        stmt: ast.stmt,
        env: "dict[str, str]",
    ) -> Iterator[Finding]:
        for tree in statement_expressions(stmt):
            for node in ast.walk(tree):
                if isinstance(node, ast.BinOp) and isinstance(
                    node.op, (ast.Add, ast.Sub, ast.Mult, ast.Div)
                ):
                    left = lattice.infer(node.left, env)
                    right = lattice.infer(node.right, env)
                    if (
                        left is not None
                        and right is not None
                        and _is_db_linear_crossing(left, right)
                    ):
                        yield self.finding(
                            ctx,
                            node,
                            f"'{_describe(node.left)}' ({left}) and "
                            f"'{_describe(node.right)}' ({right}) mix "
                            f"decibel and linear power{self._REMEDY}",
                        )
                elif isinstance(node, ast.Call):
                    chain = call_chain(node)
                    fn = None if chain is None else lattice.resolve(chain)
                    if fn is None:
                        continue
                    for param, arg in _call_argument_bindings(
                        node, fn.params
                    ):
                        param_family = fn.family_for_param(param)
                        arg_family = lattice.infer(arg, env)
                        if (
                            param_family is not None
                            and arg_family is not None
                            and _is_db_linear_crossing(
                                arg_family, param_family
                            )
                        ):
                            yield self.finding(
                                ctx,
                                node,
                                f"argument '{_describe(arg)}' "
                                f"({arg_family}) bound to parameter "
                                f"'{param}' ({param_family}) of "
                                f"'{fn.symbol}'{self._REMEDY}",
                            )
        if isinstance(stmt, (ast.Assign, ast.AnnAssign)):
            targets = (
                stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
            )
            value = stmt.value
            if value is None:
                return
            value_family = lattice.infer(value, env)
            if value_family is None:
                return
            for target in targets:
                target_family = operand_family(target)
                if target_family is not None and _is_db_linear_crossing(
                    value_family, target_family
                ):
                    yield self.finding(
                        ctx,
                        stmt,
                        f"assigning '{_describe(value)}' ({value_family}) "
                        f"to '{_describe(target)}' ({target_family}) mixes "
                        f"decibel and linear power{self._REMEDY}",
                    )


@register
class FlowAssignmentUnitMismatch(_UnitFlowRule):
    """U114: inferred value family conflicts with a suffixed target."""

    code = "U114"
    name = "flow-assignment-unit-mismatch"
    severity = "error"

    def check_site(
        self,
        ctx: ModuleContext,
        lattice: UnitLattice,
        stmt: ast.stmt,
        env: "dict[str, str]",
    ) -> Iterator[Finding]:
        if not isinstance(stmt, (ast.Assign, ast.AnnAssign)):
            return
        targets = (
            stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
        )
        value = stmt.value
        if value is None:
            return
        if operand_family(value) is not None:
            return  # direct suffixed identifier: U102 owns this
        value_family = lattice.infer(value, env)
        if value_family is None:
            return
        for target in targets:
            target_family = operand_family(target)
            if target_family is None:
                continue
            if families_compatible_additive(target_family, value_family):
                continue
            if _is_db_linear_crossing(value_family, target_family):
                continue  # U113 owns the decibel/linear case
            yield self.finding(
                ctx,
                stmt,
                f"assigning '{_describe(value)}' ({value_family}) to "
                f"'{_describe(target)}' ({target_family}) mixes unit "
                "families via dataflow",
            )


@register
class FlowComparisonUnitMismatch(_UnitFlowRule):
    """U115: comparison across incompatible *propagated* unit families."""

    code = "U115"
    name = "flow-comparison-unit-mismatch"
    severity = "error"

    def check_site(
        self,
        ctx: ModuleContext,
        lattice: UnitLattice,
        stmt: ast.stmt,
        env: "dict[str, str]",
    ) -> Iterator[Finding]:
        for tree in statement_expressions(stmt):
            for node in ast.walk(tree):
                if not isinstance(node, ast.Compare):
                    continue
                operands = [node.left, *node.comparators]
                for a, b in zip(operands, operands[1:]):
                    pair = _inferred_pair(lattice, env, a, b)
                    if pair is None or _is_db_linear_crossing(*pair):
                        continue
                    yield self.finding(
                        ctx,
                        node,
                        f"comparing '{_describe(a)}' ({pair[0]}) with "
                        f"'{_describe(b)}' ({pair[1]}) via dataflow",
                    )
