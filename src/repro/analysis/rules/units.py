"""Unit-suffix discipline and dB/linear hygiene rules (``U1xx``).

The package-wide convention (see ``repro/constants.py`` and DESIGN.md
§8) is that every identifier holding a physical quantity spells its
unit as a trailing snake-case token: ``power_dbm``, ``distance_m``,
``cutoff_hz``, ``phase_rad``. These rules turn that convention into a
checked contract: quantities without a suffix are flagged where the
name makes the physical dimension obvious, and arithmetic or
assignment mixing *conflicting* suffixes is an error.

Two deliberate limits keep the checker honest rather than clever:

* Only identifier-shaped operands (names and attribute accesses) carry
  unit information; expressions are not dimension-inferred.
* Same-dimension scale mixing (``_m`` + ``_mm``) is allowed — the
  families below model dimensions, not scales.
"""

from __future__ import annotations

import ast
from typing import Iterator, Tuple

from repro.analysis.findings import Finding
from repro.analysis.rules.base import ModuleContext, Rule, register
from repro.analysis.unitlang import (  # noqa: F401  (re-exported legacy home)
    PHYSICAL_STEMS,
    UNIT_FAMILIES,
    families_compatible_additive,
    family_of,
    has_physical_stem,
    head_noun_is_physical_stem,
    identifier_name,
    operand_family,
    suffix_of,
)


def _is_number(node: ast.AST, value: float) -> bool:
    return (
        isinstance(node, ast.Constant)
        and isinstance(node.value, (int, float))
        and not isinstance(node.value, bool)
        and float(node.value) == value
    )


@register
class UnitSuffixMissing(Rule):
    """U101: physical-quantity names must carry a unit suffix."""

    code = "U101"
    name = "unit-suffix-missing"
    severity = "error"

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        allowed = set(ctx.config.allowed_unsuffixed)
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if node.name.startswith("_"):
                    continue
                if (
                    node.name not in allowed
                    and head_noun_is_physical_stem(node.name)
                    and suffix_of(node.name) is None
                ):
                    yield self.finding(
                        ctx,
                        node,
                        f"public function '{node.name}' returns a physical "
                        "quantity but has no unit suffix",
                    )
                for arg in _public_args(node):
                    if self._violates(arg.arg, allowed):
                        yield self.finding(
                            ctx,
                            arg,
                            f"parameter '{arg.arg}' of '{node.name}' names a "
                            "physical quantity but has no unit suffix",
                        )
            elif isinstance(node, ast.ClassDef):
                for stmt in node.body:
                    if isinstance(stmt, ast.AnnAssign) and isinstance(
                        stmt.target, ast.Name
                    ):
                        field = stmt.target.id
                        if not field.startswith("_") and self._violates(field, allowed):
                            yield self.finding(
                                ctx,
                                stmt,
                                f"field '{field}' of '{node.name}' names a "
                                "physical quantity but has no unit suffix",
                            )

    @staticmethod
    def _violates(name: str, allowed: "set[str]") -> bool:
        return (
            name not in allowed
            and has_physical_stem(name)
            and suffix_of(name) is None
        )


def _public_args(node: "ast.FunctionDef | ast.AsyncFunctionDef") -> Iterator[ast.arg]:
    args = node.args
    for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
        if arg.arg in ("self", "cls") or arg.arg.startswith("_"):
            continue
        yield arg


@register
class ConflictingUnitAssignment(Rule):
    """U102: ``x_db = y_watts`` — assignment across dimension families."""

    code = "U102"
    name = "conflicting-unit-assignment"
    severity = "error"

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            targets: Tuple[ast.AST, ...]
            if isinstance(node, ast.Assign):
                targets, value = tuple(node.targets), node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                targets, value = (node.target,), node.value
            else:
                continue
            value_name = identifier_name(value)
            value_family = family_of(value_name) if value_name else None
            if value_family is None:
                continue
            for target in targets:
                target_name = identifier_name(target)
                target_family = family_of(target_name) if target_name else None
                if target_family is None or target_family == value_family:
                    continue
                yield self.finding(
                    ctx,
                    node,
                    f"assigning '{value_name}' ({value_family}) to "
                    f"'{target_name}' ({target_family}) mixes unit families",
                )


@register
class ConflictingUnitAdditiveMix(Rule):
    """U103: additive mixing of incompatible unit families."""

    code = "U103"
    name = "conflicting-unit-additive-mix"
    severity = "error"

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.BinOp):
                continue
            if not isinstance(node.op, (ast.Add, ast.Sub)):
                continue
            left, right = operand_family(node.left), operand_family(node.right)
            if left and right and not families_compatible_additive(left, right):
                yield self.finding(
                    ctx,
                    node,
                    f"additive mix of '{identifier_name(node.left)}' ({left}) "
                    f"and '{identifier_name(node.right)}' ({right})",
                )


@register
class DecibelMultiplication(Rule):
    """U104: two decibel quantities multiplied — dB composes by addition."""

    code = "U104"
    name = "db-multiplication"
    severity = "error"

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not (isinstance(node, ast.BinOp) and isinstance(node.op, ast.Mult)):
                continue
            left, right = operand_family(node.left), operand_family(node.right)
            if left in ("db", "dbm") and right in ("db", "dbm"):
                yield self.finding(
                    ctx,
                    node,
                    f"multiplying '{identifier_name(node.left)}' and "
                    f"'{identifier_name(node.right)}': decibel quantities "
                    "compose additively; convert with repro.dsp.units first",
                )


@register
class ConflictingUnitComparison(Rule):
    """U105: comparing identifiers across dimension families."""

    code = "U105"
    name = "conflicting-unit-comparison"
    severity = "error"

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left, *node.comparators]
            for a, b in zip(operands, operands[1:]):
                left, right = operand_family(a), operand_family(b)
                if left and right and not families_compatible_additive(left, right):
                    yield self.finding(
                        ctx,
                        node,
                        f"comparing '{identifier_name(a)}' ({left}) with "
                        f"'{identifier_name(b)}' ({right})",
                    )


@register
class RawDbConversion(Rule):
    """U106: inline ``10**(x/10)`` / ``10*log10(x)`` outside the converters.

    Power-domain dB conversions must go through
    :func:`repro.dsp.units.db_to_linear` / ``linear_to_db`` (and the
    dBm/watts wrappers) so ``-inf`` and zero-power edge cases are
    handled in exactly one place. Amplitude-domain ``20 log10`` forms
    have no shared converter and are not flagged.
    """

    code = "U106"
    name = "raw-db-conversion"
    severity = "error"

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.BinOp):
                continue
            if isinstance(node.op, ast.Pow) and _is_number(node.left, 10.0):
                exponent = node.right
                if isinstance(exponent, ast.UnaryOp):
                    exponent = exponent.operand
                if (
                    isinstance(exponent, ast.BinOp)
                    and isinstance(exponent.op, ast.Div)
                    and _is_number(exponent.right, 10.0)
                ):
                    yield self.finding(
                        ctx,
                        node,
                        "inline 10**(x/10); use repro.dsp.units.db_to_linear",
                    )
            elif isinstance(node.op, ast.Mult):
                for factor, other in ((node.left, node.right), (node.right, node.left)):
                    if _is_number(factor, 10.0) and _is_log10_call(other):
                        yield self.finding(
                            ctx,
                            node,
                            "inline 10*log10(x); use repro.dsp.units.linear_to_db",
                        )
                        break


def _is_log10_call(node: ast.AST) -> bool:
    if not isinstance(node, ast.Call):
        return False
    func = node.func
    if isinstance(func, ast.Attribute):
        return func.attr == "log10"
    return isinstance(func, ast.Name) and func.id == "log10"
