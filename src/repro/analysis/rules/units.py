"""Unit-suffix discipline and dB/linear hygiene rules (``U1xx``).

The package-wide convention (see ``repro/constants.py`` and DESIGN.md
§8) is that every identifier holding a physical quantity spells its
unit as a trailing snake-case token: ``power_dbm``, ``distance_m``,
``cutoff_hz``, ``phase_rad``. These rules turn that convention into a
checked contract: quantities without a suffix are flagged where the
name makes the physical dimension obvious, and arithmetic or
assignment mixing *conflicting* suffixes is an error.

Two deliberate limits keep the checker honest rather than clever:

* Only identifier-shaped operands (names and attribute accesses) carry
  unit information; expressions are not dimension-inferred.
* Same-dimension scale mixing (``_m`` + ``_mm``) is allowed — the
  families below model dimensions, not scales.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Tuple

from repro.analysis.findings import Finding
from repro.analysis.rules.base import ModuleContext, Rule, register

#: unit suffix token -> dimension family
UNIT_FAMILIES = {
    "db": "db",
    "dbi": "db",
    "dbc": "db",
    "dbm": "dbm",
    "hz": "hz",
    "khz": "hz",
    "mhz": "hz",
    "ghz": "hz",
    "m": "m",
    "mm": "m",
    "cm": "m",
    "km": "m",
    "meters": "m",
    "s": "s",
    "ms": "s",
    "us": "s",
    "ns": "s",
    "sec": "s",
    "seconds": "s",
    "rad": "angle",
    "deg": "angle",
    "watts": "watts",
    "mw": "watts",
    "ppm": "ppm",
}

#: snake-case tokens whose presence marks an identifier as physical.
#: Kept to tokens whose dimension is unambiguous in RF code so U101
#: stays high-precision; dimensionless names (``rate``, ``snr`` as a
#: bare ratio, ``gain`` of a linear amplifier object) are indirected
#: through the suffix lexicon instead.
PHYSICAL_STEMS = frozenset(
    {
        "frequency",
        "freq",
        "wavelength",
        "bandwidth",
        "cutoff",
        "distance",
        "spacing",
        "separation",
        "altitude",
        "aperture",
        "wattage",
        "dwell",
        "latency",
        "azimuth",
        "elevation",
        "attenuation",
        "isolation",
    }
)

#: Families that may mix additively / in comparisons: adding a dB gain
#: to a dBm power yields dBm, and dBm - dBm yields dB, so the decibel
#: families are mutually compatible.
_ADDITIVE_COMPATIBLE = frozenset({frozenset({"db", "dbm"})})


def suffix_of(name: str) -> Optional[str]:
    """The unit-suffix token of ``name`` (lowercased), or None.

    Only underscore-separated trailing tokens count, so a variable
    named plainly ``m`` or ``s`` carries no unit claim.
    """
    lowered = name.lower()
    if "_" not in lowered:
        return None
    token = lowered.rsplit("_", 1)[1]
    return token if token in UNIT_FAMILIES else None


def family_of(name: str) -> Optional[str]:
    """The dimension family of ``name``'s unit suffix, or None."""
    token = suffix_of(name)
    return UNIT_FAMILIES[token] if token else None


def identifier_name(node: ast.AST) -> Optional[str]:
    """The trailing identifier of a Name/Attribute operand, else None."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def operand_family(node: ast.AST) -> Optional[str]:
    """Dimension family claimed by an identifier-shaped operand."""
    name = identifier_name(node)
    return family_of(name) if name else None


def families_compatible_additive(a: str, b: str) -> bool:
    """Whether families ``a`` and ``b`` may be added/subtracted/compared."""
    return a == b or frozenset({a, b}) in _ADDITIVE_COMPATIBLE


def has_physical_stem(name: str) -> bool:
    """True when a snake-case token of ``name`` is a physical stem."""
    return any(tok in PHYSICAL_STEMS for tok in name.lower().split("_"))


def head_noun_is_physical_stem(name: str) -> bool:
    """True when the *last* snake-case token of ``name`` is a physical stem.

    Used for function names, where the head noun is what the function
    returns: a bare ``carrier_frequency`` returns a frequency and needs
    a suffix, ``frequency_shift_ablation`` returns an ablation result
    and does not.
    """
    return name.lower().rsplit("_", 1)[-1] in PHYSICAL_STEMS


def _is_number(node: ast.AST, value: float) -> bool:
    return (
        isinstance(node, ast.Constant)
        and isinstance(node.value, (int, float))
        and not isinstance(node.value, bool)
        and float(node.value) == value
    )


@register
class UnitSuffixMissing(Rule):
    """U101: physical-quantity names must carry a unit suffix."""

    code = "U101"
    name = "unit-suffix-missing"
    severity = "error"

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        allowed = set(ctx.config.allowed_unsuffixed)
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if node.name.startswith("_"):
                    continue
                if (
                    node.name not in allowed
                    and head_noun_is_physical_stem(node.name)
                    and suffix_of(node.name) is None
                ):
                    yield self.finding(
                        ctx,
                        node,
                        f"public function '{node.name}' returns a physical "
                        "quantity but has no unit suffix",
                    )
                for arg in _public_args(node):
                    if self._violates(arg.arg, allowed):
                        yield self.finding(
                            ctx,
                            arg,
                            f"parameter '{arg.arg}' of '{node.name}' names a "
                            "physical quantity but has no unit suffix",
                        )
            elif isinstance(node, ast.ClassDef):
                for stmt in node.body:
                    if isinstance(stmt, ast.AnnAssign) and isinstance(
                        stmt.target, ast.Name
                    ):
                        field = stmt.target.id
                        if not field.startswith("_") and self._violates(field, allowed):
                            yield self.finding(
                                ctx,
                                stmt,
                                f"field '{field}' of '{node.name}' names a "
                                "physical quantity but has no unit suffix",
                            )

    @staticmethod
    def _violates(name: str, allowed: "set[str]") -> bool:
        return (
            name not in allowed
            and has_physical_stem(name)
            and suffix_of(name) is None
        )


def _public_args(node: "ast.FunctionDef | ast.AsyncFunctionDef") -> Iterator[ast.arg]:
    args = node.args
    for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
        if arg.arg in ("self", "cls") or arg.arg.startswith("_"):
            continue
        yield arg


@register
class ConflictingUnitAssignment(Rule):
    """U102: ``x_db = y_watts`` — assignment across dimension families."""

    code = "U102"
    name = "conflicting-unit-assignment"
    severity = "error"

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            targets: Tuple[ast.AST, ...]
            if isinstance(node, ast.Assign):
                targets, value = tuple(node.targets), node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                targets, value = (node.target,), node.value
            else:
                continue
            value_name = identifier_name(value)
            value_family = family_of(value_name) if value_name else None
            if value_family is None:
                continue
            for target in targets:
                target_name = identifier_name(target)
                target_family = family_of(target_name) if target_name else None
                if target_family is None or target_family == value_family:
                    continue
                yield self.finding(
                    ctx,
                    node,
                    f"assigning '{value_name}' ({value_family}) to "
                    f"'{target_name}' ({target_family}) mixes unit families",
                )


@register
class ConflictingUnitAdditiveMix(Rule):
    """U103: additive mixing of incompatible unit families."""

    code = "U103"
    name = "conflicting-unit-additive-mix"
    severity = "error"

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.BinOp):
                continue
            if not isinstance(node.op, (ast.Add, ast.Sub)):
                continue
            left, right = operand_family(node.left), operand_family(node.right)
            if left and right and not families_compatible_additive(left, right):
                yield self.finding(
                    ctx,
                    node,
                    f"additive mix of '{identifier_name(node.left)}' ({left}) "
                    f"and '{identifier_name(node.right)}' ({right})",
                )


@register
class DecibelMultiplication(Rule):
    """U104: two decibel quantities multiplied — dB composes by addition."""

    code = "U104"
    name = "db-multiplication"
    severity = "error"

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not (isinstance(node, ast.BinOp) and isinstance(node.op, ast.Mult)):
                continue
            left, right = operand_family(node.left), operand_family(node.right)
            if left in ("db", "dbm") and right in ("db", "dbm"):
                yield self.finding(
                    ctx,
                    node,
                    f"multiplying '{identifier_name(node.left)}' and "
                    f"'{identifier_name(node.right)}': decibel quantities "
                    "compose additively; convert with repro.dsp.units first",
                )


@register
class ConflictingUnitComparison(Rule):
    """U105: comparing identifiers across dimension families."""

    code = "U105"
    name = "conflicting-unit-comparison"
    severity = "error"

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left, *node.comparators]
            for a, b in zip(operands, operands[1:]):
                left, right = operand_family(a), operand_family(b)
                if left and right and not families_compatible_additive(left, right):
                    yield self.finding(
                        ctx,
                        node,
                        f"comparing '{identifier_name(a)}' ({left}) with "
                        f"'{identifier_name(b)}' ({right})",
                    )


@register
class RawDbConversion(Rule):
    """U106: inline ``10**(x/10)`` / ``10*log10(x)`` outside the converters.

    Power-domain dB conversions must go through
    :func:`repro.dsp.units.db_to_linear` / ``linear_to_db`` (and the
    dBm/watts wrappers) so ``-inf`` and zero-power edge cases are
    handled in exactly one place. Amplitude-domain ``20 log10`` forms
    have no shared converter and are not flagged.
    """

    code = "U106"
    name = "raw-db-conversion"
    severity = "error"

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.BinOp):
                continue
            if isinstance(node.op, ast.Pow) and _is_number(node.left, 10.0):
                exponent = node.right
                if isinstance(exponent, ast.UnaryOp):
                    exponent = exponent.operand
                if (
                    isinstance(exponent, ast.BinOp)
                    and isinstance(exponent.op, ast.Div)
                    and _is_number(exponent.right, 10.0)
                ):
                    yield self.finding(
                        ctx,
                        node,
                        "inline 10**(x/10); use repro.dsp.units.db_to_linear",
                    )
            elif isinstance(node.op, ast.Mult):
                for factor, other in ((node.left, node.right), (node.right, node.left)):
                    if _is_number(factor, 10.0) and _is_log10_call(other):
                        yield self.finding(
                            ctx,
                            node,
                            "inline 10*log10(x); use repro.dsp.units.linear_to_db",
                        )
                        break


def _is_log10_call(node: ast.AST) -> bool:
    if not isinstance(node, ast.Call):
        return False
    func = node.func
    if isinstance(func, ast.Attribute):
        return func.attr == "log10"
    return isinstance(func, ast.Name) and func.id == "log10"
