"""Observability rules (``O5xx``).

Timing belongs to the tracing layer: spans carry wall/CPU time into run
manifests, and :func:`repro.obs.tracing.wall_clock_s` is the sanctioned
raw clock. Ad-hoc ``time.perf_counter()`` stopwatches scattered through
library code bypass that surface — their measurements never reach a
manifest, a trace file, or the metrics registry.

Buffering belongs to the serving layer for the same reason: an
unbounded ``deque``/``queue.Queue`` hides backlog growth that
``repro.serve``'s bounded queues would expose as gauges and shed
counters.

Routing belongs to the shard ring: Python's builtin ``hash()`` is
salted per process (``PYTHONHASHSEED``), so any key-to-worker mapping
derived from it silently disagrees between the router and its workers.
``repro.serve.shard.ShardRing`` hashes with a keyed blake2b digest that
is stable across processes, machines, and interpreter versions.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.findings import Finding
from repro.analysis.rules.base import ModuleContext, Rule, register

#: Path fragments of the packages allowed to read clocks directly: the
#: tracing layer itself and the engine that records task wall times.
CLOCK_EXEMPT_FRAGMENTS = ("repro/obs/", "repro/runtime/")

#: ``time`` module functions that read a clock.
CLOCK_FUNCTIONS = frozenset(
    {
        "time",
        "time_ns",
        "perf_counter",
        "perf_counter_ns",
        "monotonic",
        "monotonic_ns",
        "process_time",
        "process_time_ns",
        "clock",
    }
)


#: Path fragments allowed to build raw deques/queues: the serving layer
#: owns admission control (``BoundedBuffer`` checks capacity explicitly
#: because ``maxlen`` would silently drop the wrong end).
QUEUE_EXEMPT_FRAGMENTS = ("repro/serve/",)

#: ``queue`` module classes whose default construction is unbounded.
QUEUE_CLASSES = frozenset({"Queue", "LifoQueue", "PriorityQueue"})


def _is_exempt(ctx: ModuleContext) -> bool:
    path = ctx.path.replace("\\", "/")
    return any(fragment in path for fragment in CLOCK_EXEMPT_FRAGMENTS)


def _is_queue_exempt(ctx: ModuleContext) -> bool:
    path = ctx.path.replace("\\", "/")
    return any(fragment in path for fragment in QUEUE_EXEMPT_FRAGMENTS)


@register
class AdHocTiming(Rule):
    """O501: raw clock reads outside ``repro.obs``/``repro.runtime``.

    A ``time.perf_counter()`` pair is an untracked span: its duration
    is printed or dropped instead of landing in the run manifest. Wrap
    the region in ``repro.obs.tracing.span(...)``, or call
    ``repro.obs.wall_clock_s()`` when only a raw timestamp difference
    is needed (e.g. CLI status lines).
    """

    code = "O501"
    name = "ad-hoc-timing"
    severity = "error"

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if _is_exempt(ctx):
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                func = node.func
                if (
                    isinstance(func, ast.Attribute)
                    and func.attr in CLOCK_FUNCTIONS
                    and isinstance(func.value, ast.Name)
                    and func.value.id == "time"
                ):
                    yield self.finding(
                        ctx,
                        node,
                        f"ad-hoc time.{func.attr}() timing; use a "
                        "repro.obs.tracing span (or repro.obs.wall_clock_s)",
                    )
            elif isinstance(node, ast.ImportFrom):
                if node.module == "time" and node.level == 0:
                    for alias in node.names:
                        if alias.name in CLOCK_FUNCTIONS:
                            yield self.finding(
                                ctx,
                                node,
                                f"importing {alias.name} from time for ad-hoc "
                                "timing; use a repro.obs.tracing span (or "
                                "repro.obs.wall_clock_s)",
                            )


def _has_bound_argument(node: ast.Call, keyword: str) -> bool:
    """Whether a deque/queue constructor call passes a real bound.

    ``deque(items)`` and ``Queue()`` are unbounded; so are the explicit
    ``maxlen=None`` / ``maxsize=0`` spellings. A non-``None``/non-zero
    keyword, a second positional argument (``deque``'s ``maxlen``), or
    anything dynamic (``*args`` / ``**kwargs``) counts as bounded.
    """
    if keyword == "maxlen" and len(node.args) >= 2:
        return not (
            isinstance(node.args[1], ast.Constant)
            and node.args[1].value is None
        )
    if keyword == "maxsize" and len(node.args) >= 1:
        return not (
            isinstance(node.args[0], ast.Constant)
            and node.args[0].value in (0, None)
        )
    for kw in node.keywords:
        if kw.arg is None:  # **kwargs — assume the caller bounds it
            return True
        if kw.arg == keyword:
            if isinstance(kw.value, ast.Constant):
                return kw.value.value not in (0, None)
            return True
    return False


@register
class UnboundedQueue(Rule):
    """O502: unbounded ``deque``/``queue.Queue`` growth outside serving.

    A queue without a capacity is a latent memory leak under sustained
    load: nothing sheds when the producer outruns the consumer. Library
    code should pass ``deque(maxlen=...)`` / ``Queue(maxsize=...)`` or
    route buffering through ``repro.serve``'s admission-controlled
    :class:`~repro.serve.queueing.BoundedBuffer`, which is why only the
    ``repro.serve`` package is exempt.
    """

    code = "O502"
    name = "unbounded-queue"
    severity = "error"

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if _is_queue_exempt(ctx):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            name = None
            if isinstance(func, ast.Name):
                name = func.id
            elif isinstance(func, ast.Attribute) and isinstance(
                func.value, ast.Name
            ):
                owner = func.value.id
                if (owner, func.attr) == ("collections", "deque"):
                    name = "deque"
                elif owner == "queue" and (
                    func.attr in QUEUE_CLASSES or func.attr == "SimpleQueue"
                ):
                    name = func.attr
            if name == "deque":
                if not _has_bound_argument(node, "maxlen"):
                    yield self.finding(
                        ctx,
                        node,
                        "unbounded deque(); pass maxlen=... or use "
                        "repro.serve's admission-controlled BoundedBuffer",
                    )
            elif name in QUEUE_CLASSES:
                if not _has_bound_argument(node, "maxsize"):
                    yield self.finding(
                        ctx,
                        node,
                        f"unbounded queue.{name}(); pass a positive "
                        "maxsize=... so producers back-pressure",
                    )
            elif name == "SimpleQueue":
                yield self.finding(
                    ctx,
                    node,
                    "queue.SimpleQueue cannot be bounded; use "
                    "queue.Queue(maxsize=...) instead",
                )


def _enclosing_function_names(tree: ast.AST) -> "dict[ast.AST, str]":
    """Map each node to the name of its nearest enclosing function."""
    owners: "dict[ast.AST, str]" = {}

    def visit(node: ast.AST, current: str) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            current = node.name
        for child in ast.iter_child_nodes(node):
            owners[child] = current
            visit(child, current)

    visit(tree, "")
    return owners


@register
class SaltedHashRouting(Rule):
    """O503: builtin ``hash()`` — salted, so never routing-stable.

    ``hash(tag_id) % n_shards`` looks like consistent routing but is
    randomized per interpreter process (PYTHONHASHSEED), so a router
    and its pool workers can disagree about who owns a session, and a
    replayed run cannot reproduce yesterday's placement. Shard and
    session routing must go through
    :class:`repro.serve.shard.ShardRing` (or another keyed
    ``hashlib`` digest) instead. Delegating ``hash()`` calls inside a
    ``__hash__`` implementation are exempt — in-process dict identity
    is exactly what the builtin is for.
    """

    code = "O503"
    name = "salted-hash-routing"
    severity = "error"

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        owners = None
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            is_builtin_hash = (
                isinstance(func, ast.Name) and func.id == "hash"
            ) or (
                isinstance(func, ast.Attribute)
                and func.attr == "hash"
                and isinstance(func.value, ast.Name)
                and func.value.id == "builtins"
            )
            if not is_builtin_hash:
                continue
            if owners is None:
                owners = _enclosing_function_names(ctx.tree)
            if owners.get(node) == "__hash__":
                continue
            yield self.finding(
                ctx,
                node,
                "builtin hash() is salted per process (PYTHONHASHSEED) "
                "and cannot route keys deterministically; use "
                "repro.serve.shard.ShardRing or a keyed hashlib digest",
            )
