"""Observability rules (``O5xx``).

Timing belongs to the tracing layer: spans carry wall/CPU time into run
manifests, and :func:`repro.obs.tracing.wall_clock_s` is the sanctioned
raw clock. Ad-hoc ``time.perf_counter()`` stopwatches scattered through
library code bypass that surface — their measurements never reach a
manifest, a trace file, or the metrics registry.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.findings import Finding
from repro.analysis.rules.base import ModuleContext, Rule, register

#: Path fragments of the packages allowed to read clocks directly: the
#: tracing layer itself and the engine that records task wall times.
CLOCK_EXEMPT_FRAGMENTS = ("repro/obs/", "repro/runtime/")

#: ``time`` module functions that read a clock.
CLOCK_FUNCTIONS = frozenset(
    {
        "time",
        "time_ns",
        "perf_counter",
        "perf_counter_ns",
        "monotonic",
        "monotonic_ns",
        "process_time",
        "process_time_ns",
        "clock",
    }
)


def _is_exempt(ctx: ModuleContext) -> bool:
    path = ctx.path.replace("\\", "/")
    return any(fragment in path for fragment in CLOCK_EXEMPT_FRAGMENTS)


@register
class AdHocTiming(Rule):
    """O501: raw clock reads outside ``repro.obs``/``repro.runtime``.

    A ``time.perf_counter()`` pair is an untracked span: its duration
    is printed or dropped instead of landing in the run manifest. Wrap
    the region in ``repro.obs.tracing.span(...)``, or call
    ``repro.obs.wall_clock_s()`` when only a raw timestamp difference
    is needed (e.g. CLI status lines).
    """

    code = "O501"
    name = "ad-hoc-timing"
    severity = "error"

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if _is_exempt(ctx):
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                func = node.func
                if (
                    isinstance(func, ast.Attribute)
                    and func.attr in CLOCK_FUNCTIONS
                    and isinstance(func.value, ast.Name)
                    and func.value.id == "time"
                ):
                    yield self.finding(
                        ctx,
                        node,
                        f"ad-hoc time.{func.attr}() timing; use a "
                        "repro.obs.tracing span (or repro.obs.wall_clock_s)",
                    )
            elif isinstance(node, ast.ImportFrom):
                if node.module == "time" and node.level == 0:
                    for alias in node.names:
                        if alias.name in CLOCK_FUNCTIONS:
                            yield self.finding(
                                ctx,
                                node,
                                f"importing {alias.name} from time for ad-hoc "
                                "timing; use a repro.obs.tracing span (or "
                                "repro.obs.wall_clock_s)",
                            )
