"""Rule protocol, module context, and the global rule registry."""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, Iterator, List, Type

from repro.analysis.config import AnalysisConfig
from repro.analysis.findings import Finding


@dataclass(frozen=True)
class ModuleContext:
    """Everything a rule needs to inspect one parsed module."""

    path: str
    tree: ast.Module
    config: AnalysisConfig


class Rule:
    """Base class for all reprolint rules.

    Subclasses set ``code`` (stable, reported, selectable), ``name``
    (kebab-case slug), and ``severity``, then implement :meth:`check`
    as a generator of findings over the module AST.
    """

    code: str = ""
    name: str = ""
    severity: str = "error"

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        """Yield findings for one module; default checks nothing."""
        raise NotImplementedError

    def finding(self, ctx: ModuleContext, node: ast.AST, message: str) -> Finding:
        """Build a finding anchored at ``node`` in ``ctx``'s file."""
        return Finding(
            path=ctx.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            code=self.code,
            message=message,
            severity=self.severity,
        )


_REGISTRY: Dict[str, Type[Rule]] = {}


def register(rule_cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to the global registry.

    Duplicate codes are a programming error in the rule modules
    themselves, so they fail loudly at import time.
    """
    if not rule_cls.code:
        raise ValueError(f"rule {rule_cls.__name__} has no code")
    if rule_cls.code in _REGISTRY:
        raise ValueError(f"duplicate rule code {rule_cls.code}")
    _REGISTRY[rule_cls.code] = rule_cls
    return rule_cls


def all_rules() -> List[Rule]:
    """Fresh instances of every registered rule, sorted by code."""
    return [_REGISTRY[code]() for code in sorted(_REGISTRY)]
