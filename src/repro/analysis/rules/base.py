"""Rule protocol, module context, and the global rule registry."""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, Iterator, List, Optional, Type

from repro.analysis.config import AnalysisConfig
from repro.analysis.findings import Finding

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.analysis.project import FunctionSummary, ProjectModel


@dataclass(frozen=True)
class ModuleContext:
    """Everything a rule needs to inspect one parsed module.

    ``project`` carries the whole-program model (symbol table, import
    graph, call graph) when the engine analyzed a full tree; rules that
    use it degrade gracefully to single-module resolution when only one
    source was analyzed, and ``module_name`` names this module inside
    the model.
    """

    path: str
    tree: ast.Module
    config: AnalysisConfig
    project: "Optional[ProjectModel]" = None
    module_name: str = ""

    def resolver(self) -> "Callable[[str], Optional[FunctionSummary]]":
        """Resolve raw dotted call targets against the project model."""
        project, module = self.project, self.module_name

        def _resolve(chain: str) -> "Optional[FunctionSummary]":
            if project is None:
                return None
            return project.resolve_call(module, chain)

        return _resolve


class Rule:
    """Base class for all reprolint rules.

    Subclasses set ``code`` (stable, reported, selectable), ``name``
    (kebab-case slug), and ``severity``, then implement :meth:`check`
    as a generator of findings over the module AST.
    """

    code: str = ""
    name: str = ""
    severity: str = "error"

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        """Yield findings for one module; default checks nothing."""
        raise NotImplementedError

    def finding(self, ctx: ModuleContext, node: ast.AST, message: str) -> Finding:
        """Build a finding anchored at ``node`` in ``ctx``'s file."""
        return Finding(
            path=ctx.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            code=self.code,
            message=message,
            severity=self.severity,
        )


_REGISTRY: Dict[str, Type[Rule]] = {}


def register(rule_cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to the global registry.

    Duplicate codes are a programming error in the rule modules
    themselves, so they fail loudly at import time.
    """
    if not rule_cls.code:
        raise ValueError(f"rule {rule_cls.__name__} has no code")
    if rule_cls.code in _REGISTRY:
        raise ValueError(f"duplicate rule code {rule_cls.code}")
    _REGISTRY[rule_cls.code] = rule_cls
    return rule_cls


def all_rules() -> List[Rule]:
    """Fresh instances of every registered rule, sorted by code."""
    return [_REGISTRY[code]() for code in sorted(_REGISTRY)]
