"""Worker-purity race rules (``P701``–``P703``).

The sweep engine's bit-identity contract rests on task functions being
pure in ``(params, seed)``: the serial backend runs every task in one
shared process while the pool backend gives each worker fresh state,
so *any* process-global mutation reachable from a task function makes
the two backends observably different — the race these rules detect
statically, using the project model's call graph:

* **P701** — mutation of a module-level name (``global`` stores,
  ``CACHE[key] = ...``, ``_REGISTRY.append(...)``) in any function
  reachable from a task function;
* **P702** — un-picklable task callables at ``SweepTask`` creation
  sites: lambdas, functions nested inside the enclosing scope, and
  ``functools.partial`` objects (all of which also fail
  ``fn_identity`` at runtime — this rule moves the failure to lint
  time);
* **P703** — shared-state mutation beyond module globals reachable
  from a task function: class-attribute stores (``Config.limit = ...``,
  ``cls.cache = ...``, ``type(x).attr = ...``) and process environment
  mutation (``os.environ[...] = ...``, ``os.putenv``, ``sys.path``
  edits).

The audited process-global surfaces — :mod:`repro.obs` (telemetry
registries ride back in outcome envelopes), :mod:`repro.runtime` (the
engine itself), and :mod:`repro.faults` (the engaged-engine slot with
guaranteed restore) — are exempt; everything else must stay pure.
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, Iterator, List, Optional, Set, Tuple

from repro.analysis.findings import Finding
from repro.analysis.project import MUTATING_METHODS, _collect_global_mutations
from repro.analysis.rules.base import ModuleContext, Rule, register
from repro.analysis.rules.taint import function_qualnames

#: Path fragments of the audited shared-state packages (see module
#: docstring); purity findings are suppressed inside them.
PURITY_EXEMPT_FRAGMENTS = (
    "repro/obs/",
    "repro/runtime/",
    "repro/faults/",
)


def _is_exempt(ctx: ModuleContext) -> bool:
    path = ctx.path.replace("\\", "/")
    return any(fragment in path for fragment in PURITY_EXEMPT_FRAGMENTS)


def _reachable_symbols(ctx: ModuleContext) -> FrozenSet[str]:
    if ctx.project is None:
        return frozenset()
    return ctx.project.reachable_from_tasks()


def _module_level_names(ctx: ModuleContext) -> FrozenSet[str]:
    if ctx.project is None:
        return frozenset()
    summary = ctx.project.modules.get(ctx.module_name)
    if summary is None:
        return frozenset()
    return frozenset(summary.module_level_names)


def _reachable_function_nodes(
    ctx: ModuleContext,
) -> "List[Tuple[ast.FunctionDef | ast.AsyncFunctionDef, str]]":
    """(node, symbol) for this module's task-reachable functions."""
    reachable = _reachable_symbols(ctx)
    if not reachable:
        return []
    out = []
    for node, qualname in function_qualnames(ctx.tree):
        symbol = f"{ctx.module_name}:{qualname}"
        if symbol in reachable:
            out.append((node, symbol))
    return out


@register
class TaskReachableGlobalMutation(Rule):
    """P701: module-global mutation reachable from a task function."""

    code = "P701"
    name = "task-reachable-global-mutation"
    severity = "error"

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if _is_exempt(ctx):
            return
        module_names = _module_level_names(ctx)
        for node, symbol in _reachable_function_nodes(ctx):
            declared_global = {
                name
                for child in ast.walk(node)
                if isinstance(child, ast.Global)
                for name in child.names
            }
            for name in _collect_global_mutations(node):
                if name in module_names or name in declared_global:
                    yield self.finding(
                        ctx,
                        node,
                        f"'{symbol}' (reachable from a SweepTask fn) "
                        f"mutates module global '{name}'; serial and "
                        "pool backends would diverge — pass state "
                        "through params/seed instead",
                    )


def _sweeptask_fn_argument(node: ast.Call) -> Optional[ast.AST]:
    """The ``fn`` argument of a SweepTask construction call, if any."""
    chain_parts: List[str] = []
    func: ast.AST = node.func
    while isinstance(func, ast.Attribute):
        chain_parts.append(func.attr)
        func = func.value
    if isinstance(func, ast.Name):
        chain_parts.append(func.id)
    chain = ".".join(reversed(chain_parts))
    if not (chain.endswith("SweepTask") or chain.endswith("SweepTask.make")):
        return None
    if node.args:
        return node.args[0]
    for keyword in node.keywords:
        if keyword.arg == "fn":
            return keyword.value
    return None


@register
class UnpicklableTaskFunction(Rule):
    """P702: SweepTask built from a lambda/closure/partial."""

    code = "P702"
    name = "unpicklable-task-function"
    severity = "error"

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        nested_names = self._nested_function_names(ctx.tree)
        for call in ast.walk(ctx.tree):
            if not isinstance(call, ast.Call):
                continue
            fn_arg = _sweeptask_fn_argument(call)
            if fn_arg is None:
                continue
            if isinstance(fn_arg, ast.Lambda):
                yield self.finding(
                    ctx,
                    call,
                    "SweepTask fn is a lambda; workers cannot import it "
                    "— use a module-level function",
                )
            elif isinstance(fn_arg, ast.Call):
                func = fn_arg.func
                tail = (
                    func.attr
                    if isinstance(func, ast.Attribute)
                    else func.id if isinstance(func, ast.Name) else ""
                )
                if tail == "partial":
                    yield self.finding(
                        ctx,
                        call,
                        "SweepTask fn is a functools.partial; it has no "
                        "qualname to dispatch — bind arguments via "
                        "params instead",
                    )
            elif isinstance(fn_arg, ast.Name) and fn_arg.id in nested_names:
                yield self.finding(
                    ctx,
                    call,
                    f"SweepTask fn '{fn_arg.id}' is a nested function; "
                    "closures cannot be pickled to workers — hoist it "
                    "to module level",
                )

    @staticmethod
    def _nested_function_names(tree: ast.Module) -> Set[str]:
        """Names of functions defined inside another function."""
        nested: Set[str] = set()
        for node, qualname in function_qualnames(tree):
            for child in ast.walk(node):
                if child is node:
                    continue
                if isinstance(
                    child, (ast.FunctionDef, ast.AsyncFunctionDef)
                ):
                    nested.add(child.name)
        return nested


#: Full dotted owners whose item stores / mutating calls touch
#: process-shared state. ``environ`` alone is included because
#: ``from os import environ`` is common; a bare ``path`` is not (it
#: would collide with ordinary locals).
_PROCESS_STATE_OWNERS: Dict[str, str] = {
    "os.environ": "os.environ",
    "environ": "os.environ",
    "sys.path": "sys.path",
}


def _owner_chain(node: ast.AST) -> str:
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
    return ".".join(reversed(parts))


def _is_class_attribute_store(target: ast.AST, local_names: Set[str]) -> bool:
    """``Owner.attr = ...`` where Owner looks like a class, not a local."""
    if not isinstance(target, ast.Attribute):
        return False
    owner = target.value
    if isinstance(owner, ast.Name):
        name = owner.id
        if name in ("self",) or name in local_names:
            return False
        return name == "cls" or (name[:1].isupper() and "_" not in name[:1])
    if isinstance(owner, ast.Call):
        func = owner.func
        return isinstance(func, ast.Name) and func.id == "type"
    if isinstance(owner, ast.Attribute):
        return owner.attr == "__class__"
    return False


@register
class TaskReachableSharedStateMutation(Rule):
    """P703: class-attribute or process-environment mutation in task paths."""

    code = "P703"
    name = "task-reachable-shared-state-mutation"
    severity = "error"

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if _is_exempt(ctx):
            return
        for node, symbol in _reachable_function_nodes(ctx):
            local_names = self._local_bindings(node)
            for child in ast.walk(node):
                if isinstance(child, (ast.Assign, ast.AugAssign)):
                    targets = (
                        child.targets
                        if isinstance(child, ast.Assign)
                        else [child.target]
                    )
                    for target in targets:
                        yield from self._check_store(
                            ctx, symbol, child, target, local_names
                        )
                elif isinstance(child, ast.Call):
                    yield from self._check_call(ctx, symbol, child)

    @staticmethod
    def _local_bindings(
        node: "ast.FunctionDef | ast.AsyncFunctionDef",
    ) -> Set[str]:
        names: Set[str] = set()
        args = node.args
        for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
            names.add(arg.arg)
        for child in ast.walk(node):
            if isinstance(child, ast.Assign):
                for target in child.targets:
                    if isinstance(target, ast.Name):
                        names.add(target.id)
            elif isinstance(child, (ast.For, ast.AsyncFor)):
                if isinstance(child.target, ast.Name):
                    names.add(child.target.id)
        return names

    def _check_store(
        self,
        ctx: ModuleContext,
        symbol: str,
        stmt: ast.stmt,
        target: ast.AST,
        local_names: Set[str],
    ) -> Iterator[Finding]:
        if _is_class_attribute_store(target, local_names):
            yield self.finding(
                ctx,
                stmt,
                f"'{symbol}' (reachable from a SweepTask fn) stores to "
                f"class attribute '{_owner_chain(target)}'; class state "
                "is shared in the serial backend — use instance state "
                "or params",
            )
        elif isinstance(target, ast.Subscript):
            owner = _owner_chain(target.value)
            if owner in _PROCESS_STATE_OWNERS:
                yield self.finding(
                    ctx,
                    stmt,
                    f"'{symbol}' mutates {_PROCESS_STATE_OWNERS[owner]} "
                    "in a task-reachable path; environment is process-"
                    "shared state",
                )

    def _check_call(
        self, ctx: ModuleContext, symbol: str, node: ast.Call
    ) -> Iterator[Finding]:
        func = node.func
        if not isinstance(func, ast.Attribute):
            return
        owner = _owner_chain(func.value)
        if func.attr == "putenv" and owner == "os":
            yield self.finding(
                ctx,
                node,
                f"'{symbol}' calls os.putenv in a task-reachable path; "
                "environment is process-shared state",
            )
        elif owner in _PROCESS_STATE_OWNERS and func.attr in MUTATING_METHODS:
            yield self.finding(
                ctx,
                node,
                f"'{symbol}' mutates {_PROCESS_STATE_OWNERS[owner]} via "
                f".{func.attr}() in a task-reachable path; process-"
                "shared state breaks serial/pool bit-identity",
            )
