"""Fault-injection rules (``F6xx``).

Faults enter the simulator through exactly one surface: a declarative
:class:`repro.faults.FaultPlan` engaged around the code under test. The
hooks compiled into the hardware, relay, channel, and serving layers
fire only for an engaged plan, so every injection is seeded, logged,
and counted. Ad-hoc monkeypatching of repro internals — reassigning a
module attribute, ``setattr`` on a module, ``mock.patch`` over a
``repro.*`` target — bypasses all of that: the "fault" is invisible to
the injection log, unreproducible across seeds, and leaks past the
block that installed it. Library code must not do it (tests are
exempt; their fixtures clean up after themselves).
"""

from __future__ import annotations

import ast
from typing import Iterator, Set

from repro.analysis.findings import Finding
from repro.analysis.rules.base import ModuleContext, Rule, register

#: Path fragments exempt from the rule: the engine's own package (it
#: IS the sanctioned surface) and test suites (their monkeypatching is
#: fixture-scoped and cleaned up by the test harness).
FAULTS_EXEMPT_FRAGMENTS = ("repro/faults/", "tests/")

#: Engine entry points reserved to :func:`repro.faults.engaged`.
_ENGINE_ENTRY_POINTS = frozenset({"FaultEngine", "activate_engine"})


def _is_exempt(ctx: ModuleContext) -> bool:
    path = ctx.path.replace("\\", "/")
    return any(fragment in path for fragment in FAULTS_EXEMPT_FRAGMENTS)


def _repro_module_aliases(tree: ast.Module) -> Set[str]:
    """Names in this module bound to (probable) ``repro`` modules.

    ``import repro.x`` binds ``repro``; ``import repro.x as y`` binds
    ``y``; ``from repro[.pkg] import name`` binds ``name``, which is a
    submodule exactly when it is lowercase (classes are CamelCase
    throughout the codebase, so this heuristic is safe here).
    """
    aliases: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "repro" or alias.name.startswith("repro."):
                    if alias.asname is not None:
                        aliases.add(alias.asname)
                    else:
                        aliases.add(alias.name.split(".")[0])
        elif isinstance(node, ast.ImportFrom):
            module = node.module or ""
            if node.level == 0 and (
                module == "repro" or module.startswith("repro.")
            ):
                for alias in node.names:
                    bound = alias.asname or alias.name
                    if bound == bound.lower():
                        aliases.add(bound)
    return aliases


def _attribute_root(node: ast.AST) -> str:
    """The root ``Name`` id of an attribute chain, or ``""``."""
    while isinstance(node, ast.Attribute):
        node = node.value
    if isinstance(node, ast.Name):
        return node.id
    return ""


def _call_name(func: ast.AST) -> str:
    """The trailing name of a call target (``mock.patch`` -> ``patch``)."""
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return ""


@register
class AdHocFaultInjection(Rule):
    """F601: faults injected by monkeypatching instead of repro.faults.

    Reassigning an attribute on an imported ``repro`` module (or
    ``setattr``/``mock.patch`` over a ``repro.*`` target) installs an
    invisible, unseeded, unlogged fault that outlives its scope. Build
    a :class:`repro.faults.FaultPlan` and wrap the code under test in
    ``faults.engaged(plan, seed=...)`` — the compiled hooks then fire
    deterministically and land in the injection log and metrics.
    Constructing ``FaultEngine`` or calling ``activate_engine``
    directly is reserved to ``repro.faults`` itself for the same
    reason: ``engaged`` guarantees the previous engine is restored.
    """

    code = "F601"
    name = "ad-hoc-fault-injection"
    severity = "error"

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if _is_exempt(ctx):
            return
        aliases = _repro_module_aliases(ctx.tree)
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = (
                    node.targets
                    if isinstance(node, ast.Assign)
                    else [node.target]
                )
                for target in targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and _attribute_root(target) in aliases
                    ):
                        yield self.finding(
                            ctx,
                            node,
                            "monkeypatching a repro module attribute; "
                            "inject faults with a repro.faults.FaultPlan "
                            "engaged around the code under test",
                        )
            elif isinstance(node, ast.Call):
                name = _call_name(node.func)
                if (
                    name == "setattr"
                    and isinstance(node.func, ast.Name)
                    and node.args
                    and _attribute_root(node.args[0]) in aliases
                ):
                    yield self.finding(
                        ctx,
                        node,
                        "setattr on a repro module; inject faults with a "
                        "repro.faults.FaultPlan instead of patching "
                        "internals",
                    )
                elif (
                    name == "patch"
                    and node.args
                    and isinstance(node.args[0], ast.Constant)
                    and isinstance(node.args[0].value, str)
                    and node.args[0].value.startswith("repro.")
                ):
                    yield self.finding(
                        ctx,
                        node,
                        "mock.patch over a repro target in library code; "
                        "use a repro.faults plan so the injection is "
                        "seeded and logged",
                    )
                elif name in _ENGINE_ENTRY_POINTS:
                    yield self.finding(
                        ctx,
                        node,
                        f"direct {name} use outside repro.faults; "
                        "faults.engaged(plan, seed=...) is the supported "
                        "entry point and restores the previous engine",
                    )
