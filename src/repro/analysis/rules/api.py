"""API-contract rules (``A4xx``): annotations, module hygiene, foot-guns."""

from __future__ import annotations

import ast
from typing import Iterator, Union

from repro.analysis.findings import Finding
from repro.analysis.rules.base import ModuleContext, Rule, register

_FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]


def _public_functions(tree: ast.Module) -> Iterator[_FunctionNode]:
    """Module-level and class-body functions with public names.

    Functions nested inside other functions are implementation detail
    and carry no API contract.
    """
    stack = [(tree, False)]
    while stack:
        node, _in_class = stack.pop()
        for child in getattr(node, "body", []):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if not child.name.startswith("_"):
                    yield child
            elif isinstance(child, ast.ClassDef):
                stack.append((child, True))


@register
class MissingReturnAnnotation(Rule):
    """A401: public functions must annotate their return type."""

    code = "A401"
    name = "missing-return-annotation"
    severity = "error"

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for func in _public_functions(ctx.tree):
            if func.returns is None:
                yield self.finding(
                    ctx,
                    func,
                    f"public function '{func.name}' has no return annotation",
                )


@register
class MissingFutureAnnotations(Rule):
    """A402: every module starts with ``from __future__ import annotations``."""

    code = "A402"
    name = "missing-future-annotations"
    severity = "error"

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ctx.tree.body:
            if (
                isinstance(node, ast.ImportFrom)
                and node.module == "__future__"
                and any(alias.name == "annotations" for alias in node.names)
            ):
                return
        yield self.finding(
            ctx, ctx.tree, "module lacks 'from __future__ import annotations'"
        )


@register
class MissingModuleDocstring(Rule):
    """A403: every module carries a docstring."""

    code = "A403"
    name = "missing-module-docstring"
    severity = "error"

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if ast.get_docstring(ctx.tree) is None:
            yield self.finding(ctx, ctx.tree, "module lacks a docstring")


@register
class BareExcept(Rule):
    """A404: bare ``except:`` swallows KeyboardInterrupt and SystemExit."""

    code = "A404"
    name = "bare-except"
    severity = "error"

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ExceptHandler) and node.type is None:
                yield self.finding(
                    ctx, node, "bare 'except:'; catch a specific exception type"
                )


@register
class ExperimentsBypassScenarioRegistry(Rule):
    """A406: experiments resolve worlds via ``repro.scenarios``.

    Geometry and traffic under ``repro/experiments/`` must come from a
    named scenario spec — hand-building world objects (environments,
    measurement models, trajectories, grids, tag placements) or calling
    the legacy ``serve.traffic`` generator / deprecated ``sim.scenarios``
    builders inline bypasses the registry, so the run is no longer
    reproducible from a spec name. Grandfathered sites live in the
    checked-in reprolint baseline and must ratchet down, not up.
    """

    code = "A406"
    name = "experiments-bypass-scenario-registry"
    severity = "error"

    #: (defining module, exported name) pairs experiments may not call.
    _BANNED = frozenset(
        {
            ("repro.sim.environment", "Environment"),
            ("repro.localization.measurement", "MeasurementModel"),
            ("repro.localization.grid", "Grid2D"),
            ("repro.localization", "Grid2D"),
            ("repro.mobility.trajectory", "LineTrajectory"),
            ("repro.mobility", "LineTrajectory"),
            ("repro.hardware.tag", "PassiveTag"),
            ("repro.hardware", "PassiveTag"),
            ("repro.serve.traffic", "generate_workload"),
            ("repro.sim.scenarios", "los_heatmap_scenario"),
            ("repro.sim.scenarios", "multipath_heatmap_scenario"),
            ("repro.sim.scenarios", "fig12_trial"),
            ("repro.sim.scenarios", "aperture_microbenchmark"),
            ("repro.sim.scenarios", "distance_microbenchmark"),
        }
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        normalized = ctx.path.replace("\\", "/")
        if "repro/experiments/" not in normalized:
            return
        from_imports: dict = {}
        module_aliases: dict = {}
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ImportFrom) and node.module:
                for alias in node.names:
                    local = alias.asname or alias.name
                    from_imports[local] = (node.module, alias.name)
            elif isinstance(node, ast.Import):
                for alias in node.names:
                    module_aliases[alias.asname or alias.name] = alias.name
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            origin = self._call_origin(
                node.func, from_imports, module_aliases
            )
            if origin in self._BANNED:
                module, name = origin
                yield self.finding(
                    ctx,
                    node,
                    f"experiment builds its world inline via "
                    f"{module}.{name}; resolve geometry/traffic through "
                    "a repro.scenarios spec instead",
                )

    @staticmethod
    def _call_origin(func: ast.AST, from_imports: dict, module_aliases: dict):
        """(defining module, name) of a call target, if import-traceable."""
        if isinstance(func, ast.Name):
            return from_imports.get(func.id)
        if isinstance(func, ast.Attribute):
            parts = []
            node = func
            while isinstance(node, ast.Attribute):
                parts.append(node.attr)
                node = node.value
            if not isinstance(node, ast.Name):
                return None
            parts.append(node.id)
            parts.reverse()
            dotted_module = ".".join(parts[:-1])
            if dotted_module in module_aliases:
                # plain `import repro.serve.traffic` binds the full path
                return (module_aliases[dotted_module], parts[-1])
            head = module_aliases.get(parts[0])
            if head is None and parts[0] in from_imports:
                # `from repro.serve import traffic; traffic.generate_workload`
                mod, name = from_imports[parts[0]]
                head = f"{mod}.{name}"
            if head is None:
                return None
            return (".".join([head] + parts[1:-1]), parts[-1])
        return None


@register
class MutableDefaultArgument(Rule):
    """A405: list/dict/set defaults are shared across calls."""

    code = "A405"
    name = "mutable-default-argument"
    severity = "error"

    _MUTABLE_CONSTRUCTORS = frozenset({"list", "dict", "set", "bytearray"})

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            defaults = list(node.args.defaults) + [
                d for d in node.args.kw_defaults if d is not None
            ]
            for default in defaults:
                if self._is_mutable(default):
                    yield self.finding(
                        ctx,
                        node,
                        f"function '{node.name}' has a mutable default "
                        "argument; use None and construct inside",
                    )

    def _is_mutable(self, node: ast.AST) -> bool:
        if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)):
            return True
        return (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in self._MUTABLE_CONSTRUCTORS
        )
