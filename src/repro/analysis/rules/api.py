"""API-contract rules (``A4xx``): annotations, module hygiene, foot-guns."""

from __future__ import annotations

import ast
from typing import Iterator, Union

from repro.analysis.findings import Finding
from repro.analysis.rules.base import ModuleContext, Rule, register

_FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]


def _public_functions(tree: ast.Module) -> Iterator[_FunctionNode]:
    """Module-level and class-body functions with public names.

    Functions nested inside other functions are implementation detail
    and carry no API contract.
    """
    stack = [(tree, False)]
    while stack:
        node, _in_class = stack.pop()
        for child in getattr(node, "body", []):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if not child.name.startswith("_"):
                    yield child
            elif isinstance(child, ast.ClassDef):
                stack.append((child, True))


@register
class MissingReturnAnnotation(Rule):
    """A401: public functions must annotate their return type."""

    code = "A401"
    name = "missing-return-annotation"
    severity = "error"

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for func in _public_functions(ctx.tree):
            if func.returns is None:
                yield self.finding(
                    ctx,
                    func,
                    f"public function '{func.name}' has no return annotation",
                )


@register
class MissingFutureAnnotations(Rule):
    """A402: every module starts with ``from __future__ import annotations``."""

    code = "A402"
    name = "missing-future-annotations"
    severity = "error"

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ctx.tree.body:
            if (
                isinstance(node, ast.ImportFrom)
                and node.module == "__future__"
                and any(alias.name == "annotations" for alias in node.names)
            ):
                return
        yield self.finding(
            ctx, ctx.tree, "module lacks 'from __future__ import annotations'"
        )


@register
class MissingModuleDocstring(Rule):
    """A403: every module carries a docstring."""

    code = "A403"
    name = "missing-module-docstring"
    severity = "error"

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if ast.get_docstring(ctx.tree) is None:
            yield self.finding(ctx, ctx.tree, "module lacks a docstring")


@register
class BareExcept(Rule):
    """A404: bare ``except:`` swallows KeyboardInterrupt and SystemExit."""

    code = "A404"
    name = "bare-except"
    severity = "error"

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ExceptHandler) and node.type is None:
                yield self.finding(
                    ctx, node, "bare 'except:'; catch a specific exception type"
                )


@register
class MutableDefaultArgument(Rule):
    """A405: list/dict/set defaults are shared across calls."""

    code = "A405"
    name = "mutable-default-argument"
    severity = "error"

    _MUTABLE_CONSTRUCTORS = frozenset({"list", "dict", "set", "bytearray"})

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            defaults = list(node.args.defaults) + [
                d for d in node.args.kw_defaults if d is not None
            ]
            for default in defaults:
                if self._is_mutable(default):
                    yield self.finding(
                        ctx,
                        node,
                        f"function '{node.name}' has a mutable default "
                        "argument; use None and construct inside",
                    )

    def _is_mutable(self, node: ast.AST) -> bool:
        if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)):
            return True
        return (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in self._MUTABLE_CONSTRUCTORS
        )
