"""Unit-suffix vocabulary shared by the rules and the project model.

This is the single home of the suffix lexicon (``_dbm``, ``_hz``, …)
and the helpers that read unit claims off identifiers. It deliberately
imports nothing from :mod:`repro.analysis.rules` or
:mod:`repro.analysis.project`, so both layers — per-module rules and
the whole-program model — can share the vocabulary without a cycle.
"""

from __future__ import annotations

import ast
from typing import Optional

#: unit suffix token -> dimension family
UNIT_FAMILIES = {
    "db": "db",
    "dbi": "db",
    "dbc": "db",
    "dbm": "dbm",
    "hz": "hz",
    "khz": "hz",
    "mhz": "hz",
    "ghz": "hz",
    "m": "m",
    "mm": "m",
    "cm": "m",
    "km": "m",
    "meters": "m",
    "s": "s",
    "ms": "s",
    "us": "s",
    "ns": "s",
    "sec": "s",
    "seconds": "s",
    "rad": "angle",
    "deg": "angle",
    "watts": "watts",
    "mw": "watts",
    "ppm": "ppm",
}

#: snake-case tokens whose presence marks an identifier as physical.
#: Kept to tokens whose dimension is unambiguous in RF code so U101
#: stays high-precision; dimensionless names (``rate``, ``snr`` as a
#: bare ratio, ``gain`` of a linear amplifier object) are indirected
#: through the suffix lexicon instead.
PHYSICAL_STEMS = frozenset(
    {
        "frequency",
        "freq",
        "wavelength",
        "bandwidth",
        "cutoff",
        "distance",
        "spacing",
        "separation",
        "altitude",
        "aperture",
        "wattage",
        "dwell",
        "latency",
        "azimuth",
        "elevation",
        "attenuation",
        "isolation",
    }
)

#: Families that may mix additively / in comparisons: adding a dB gain
#: to a dBm power yields dBm, and dBm - dBm yields dB, so the decibel
#: families are mutually compatible.
_ADDITIVE_COMPATIBLE = frozenset({frozenset({"db", "dbm"})})


def suffix_of(name: str) -> Optional[str]:
    """The unit-suffix token of ``name`` (lowercased), or None.

    Only underscore-separated trailing tokens count, so a variable
    named plainly ``m`` or ``s`` carries no unit claim.
    """
    lowered = name.lower()
    if "_" not in lowered:
        return None
    token = lowered.rsplit("_", 1)[1]
    return token if token in UNIT_FAMILIES else None


def family_of(name: str) -> Optional[str]:
    """The dimension family of ``name``'s unit suffix, or None.

    Ratio names (``noise_dbm_per_hz``) take the *numerator*'s family:
    a dBm/Hz density plus a dB(Hz) bandwidth term is a dBm power, so
    treating the density as decibel-family keeps the canonical noise-
    floor sum (``N = kTB`` in dB form) clean while still flagging a
    density added to, say, a distance.
    """
    lowered = name.lower()
    if "_per_" in lowered:
        numerator = lowered.split("_per_", 1)[0]
        token = numerator.rsplit("_", 1)[-1]
        return UNIT_FAMILIES.get(token)
    token = suffix_of(name)
    return UNIT_FAMILIES[token] if token else None


def identifier_name(node: ast.AST) -> Optional[str]:
    """The trailing identifier of a Name/Attribute operand, else None."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def operand_family(node: ast.AST) -> Optional[str]:
    """Dimension family claimed by an identifier-shaped operand."""
    name = identifier_name(node)
    return family_of(name) if name else None


def families_compatible_additive(a: str, b: str) -> bool:
    """Whether families ``a`` and ``b`` may be added/subtracted/compared."""
    return a == b or frozenset({a, b}) in _ADDITIVE_COMPATIBLE


def has_physical_stem(name: str) -> bool:
    """True when a snake-case token of ``name`` is a physical stem."""
    return any(tok in PHYSICAL_STEMS for tok in name.lower().split("_"))


def head_noun_is_physical_stem(name: str) -> bool:
    """True when the *last* snake-case token of ``name`` is a physical stem.

    Used for function names, where the head noun is what the function
    returns: a bare ``carrier_frequency`` returns a frequency and needs
    a suffix, ``frequency_shift_ablation`` returns an ablation result
    and does not.
    """
    return name.lower().rsplit("_", 1)[-1] in PHYSICAL_STEMS
