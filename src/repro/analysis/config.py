"""Analyzer configuration: rule selection, per-path ignores, allowlists."""

from __future__ import annotations

from dataclasses import dataclass, field
from fnmatch import fnmatch
from typing import Mapping, Tuple

#: Identifiers that look like unsuffixed physical quantities but follow a
#: conventional unit by near-universal DSP usage; U101 skips them.
DEFAULT_ALLOWED_UNSUFFIXED: Tuple[str, ...] = (
    "sample_rate",  # conventionally Hz throughout the package
    "blf",  # backscatter link frequency, Hz by Gen2 definition
    "hamming_distance",  # a bit count, not a physical distance
)

#: Per-path rule suppressions applied after ``select``/``ignore``.
#: ``repro/dsp/units.py`` is the one module allowed to spell out the raw
#: dB/linear conversion formulas — it *is* the converter.
DEFAULT_PER_PATH_IGNORES: Mapping[str, Tuple[str, ...]] = {
    "*repro/dsp/units.py": ("U106", "U113"),
}


@dataclass(frozen=True)
class AnalysisConfig:
    """Immutable knobs for one analyzer run.

    ``select``/``ignore`` hold rule-code *prefixes*: ``("U",)`` selects
    every units rule, ``("U104",)`` exactly one. An empty ``select``
    means all registered rules.
    """

    select: Tuple[str, ...] = ()
    ignore: Tuple[str, ...] = ()
    exclude_paths: Tuple[str, ...] = ()
    per_path_ignores: Mapping[str, Tuple[str, ...]] = field(
        default_factory=lambda: dict(DEFAULT_PER_PATH_IGNORES)
    )
    allowed_unsuffixed: Tuple[str, ...] = DEFAULT_ALLOWED_UNSUFFIXED

    def rule_enabled(self, code: str) -> bool:
        """Apply ``select`` then ``ignore`` prefix filters to a rule code."""
        if self.select and not any(code.startswith(p) for p in self.select if p):
            return False
        return not any(code.startswith(p) for p in self.ignore if p)

    def code_ignored_for_path(self, code: str, path: str) -> bool:
        """True when a per-path pattern suppresses this code for this file."""
        normalized = path.replace("\\", "/")
        for pattern, codes in self.per_path_ignores.items():
            if fnmatch(normalized, pattern) and any(
                code.startswith(p) for p in codes if p
            ):
                return True
        return False

    def path_excluded(self, path: str) -> bool:
        """True when the file should not be analyzed at all."""
        normalized = path.replace("\\", "/")
        return any(fnmatch(normalized, pat) or pat in normalized for pat in self.exclude_paths)
