"""Analysis engine: file discovery, parsing, rule dispatch, filtering."""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterable, Iterator, List, Optional, Sequence

from repro.analysis.config import AnalysisConfig
from repro.analysis.findings import Finding
from repro.analysis.rules import ModuleContext, all_rules


def iter_python_files(paths: Sequence[str], config: AnalysisConfig) -> Iterator[Path]:
    """Expand files/directories into the sorted set of ``.py`` files."""
    seen = set()
    for raw in paths:
        root = Path(raw)
        if root.is_dir():
            candidates: Iterable[Path] = sorted(root.rglob("*.py"))
        else:
            candidates = [root]
        for path in candidates:
            if config.path_excluded(str(path)) or path in seen:
                continue
            seen.add(path)
            yield path


def analyze_source(
    source: str,
    path: str = "<string>",
    config: Optional[AnalysisConfig] = None,
) -> List[Finding]:
    """Run every enabled rule over one module's source text.

    This is the entry point the rule unit tests use: they feed
    deliberately-broken snippets through the same dispatch path the CLI
    uses, so a rule passing its tests is the rule the gate runs.
    """
    config = config or AnalysisConfig()
    tree = ast.parse(source, filename=path)
    ctx = ModuleContext(path=path, tree=tree, config=config)
    findings: List[Finding] = []
    for rule in all_rules():
        if not config.rule_enabled(rule.code):
            continue
        if config.code_ignored_for_path(rule.code, path):
            continue
        findings.extend(rule.check(ctx))
    return sorted(findings)


def analyze_paths(
    paths: Sequence[str], config: Optional[AnalysisConfig] = None
) -> List[Finding]:
    """Analyze every Python file under ``paths`` and collect findings.

    A file that fails to parse is itself a finding (``E999``) rather
    than an exception, so one broken file cannot hide the report for
    the rest of the tree.
    """
    config = config or AnalysisConfig()
    findings: List[Finding] = []
    for path in iter_python_files(paths, config):
        try:
            source = path.read_text(encoding="utf-8")
        except OSError as exc:
            findings.append(
                Finding(str(path), 1, 0, "E998", f"cannot read file: {exc}")
            )
            continue
        try:
            findings.extend(analyze_source(source, str(path), config))
        except SyntaxError as exc:
            findings.append(
                Finding(str(path), exc.lineno or 1, 0, "E999", f"syntax error: {exc.msg}")
            )
    return sorted(findings)
