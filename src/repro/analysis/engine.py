"""Analysis engine: file discovery, parsing, rule dispatch, filtering.

Since the whole-program upgrade the engine runs in two passes: it
first parses every file and builds the :class:`ProjectModel` (import
graph, symbol table, call graph), then dispatches the rules per module
with the model attached to each :class:`ModuleContext`. Single-source
entry points (``analyze_source``) build a one-module model so the
dataflow rules still resolve same-module calls.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.analysis.config import AnalysisConfig
from repro.analysis.findings import Finding
from repro.analysis.project import ProjectModel, module_name_for_path
from repro.analysis.rules import ModuleContext, all_rules


def iter_python_files(paths: Sequence[str], config: AnalysisConfig) -> Iterator[Path]:
    """Expand files/directories into the sorted set of ``.py`` files."""
    seen = set()
    for raw in paths:
        root = Path(raw)
        if root.is_dir():
            candidates: Iterable[Path] = sorted(root.rglob("*.py"))
        else:
            candidates = [root]
        for path in candidates:
            if config.path_excluded(str(path)) or path in seen:
                continue
            seen.add(path)
            yield path


def parse_tree(
    paths: Sequence[str], config: AnalysisConfig
) -> Tuple[Dict[str, ast.Module], List[Finding]]:
    """Parse every file under ``paths``: (path -> AST, parse findings).

    A file that fails to read or parse becomes an ``E998``/``E999``
    finding rather than an exception, so one broken file cannot hide
    the report for the rest of the tree.
    """
    sources: Dict[str, ast.Module] = {}
    findings: List[Finding] = []
    for path in iter_python_files(paths, config):
        try:
            text = path.read_text(encoding="utf-8")
        except OSError as exc:
            findings.append(
                Finding(str(path), 1, 0, "E998", f"cannot read file: {exc}")
            )
            continue
        try:
            sources[str(path)] = ast.parse(text, filename=str(path))
        except SyntaxError as exc:
            findings.append(
                Finding(str(path), exc.lineno or 1, 0, "E999", f"syntax error: {exc.msg}")
            )
    return sources, findings


def analyze_module(
    tree: ast.Module,
    path: str,
    config: AnalysisConfig,
    project: Optional[ProjectModel] = None,
    module_name: str = "",
) -> List[Finding]:
    """Run every enabled rule over one parsed module."""
    ctx = ModuleContext(
        path=path,
        tree=tree,
        config=config,
        project=project,
        module_name=module_name or module_name_for_path(path),
    )
    findings: List[Finding] = []
    for rule in all_rules():
        if not config.rule_enabled(rule.code):
            continue
        if config.code_ignored_for_path(rule.code, path):
            continue
        findings.extend(rule.check(ctx))
    return sorted(findings)


def analyze_source(
    source: str,
    path: str = "<string>",
    config: Optional[AnalysisConfig] = None,
    project: Optional[ProjectModel] = None,
) -> List[Finding]:
    """Run every enabled rule over one module's source text.

    This is the entry point the rule unit tests use: they feed
    deliberately-broken snippets through the same dispatch path the CLI
    uses, so a rule passing its tests is the rule the gate runs. When
    no ``project`` is supplied, a single-module model is built so the
    dataflow rules resolve same-module calls.
    """
    config = config or AnalysisConfig()
    tree = ast.parse(source, filename=path)
    module_name = module_name_for_path(path) if path != "<string>" else "string"
    if project is None:
        project = ProjectModel.build({path: tree}, names={path: module_name})
    return analyze_module(
        tree, path, config, project=project, module_name=module_name
    )


def analyze_paths(
    paths: Sequence[str], config: Optional[AnalysisConfig] = None
) -> List[Finding]:
    """Analyze every Python file under ``paths`` and collect findings.

    Builds the whole-program model over the full file set first, so
    cross-module rules (U11x, R31x, P70x) see every symbol, then
    analyzes each module against it in path order.
    """
    config = config or AnalysisConfig()
    sources, findings = parse_tree(paths, config)
    project = ProjectModel.build(sources)
    for path in sorted(sources):
        summary = project.module_for_path(path)
        findings.extend(
            analyze_module(
                sources[path],
                path,
                config,
                project=project,
                module_name=summary.name if summary else "",
            )
        )
    return sorted(findings)
