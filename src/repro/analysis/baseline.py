"""Baseline files: adopt the linter on a tree with accepted legacy findings.

A baseline is a JSON document of finding keys (code + path + message,
deliberately line-free). Findings whose key appears in the baseline are
suppressed; everything new still fails the run. ``--write-baseline``
snapshots the current findings so a future PR can ratchet them down.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import List, Sequence, Set

from repro.analysis.findings import Finding

_FORMAT_VERSION = 1


def write_baseline(path: str, findings: Sequence[Finding]) -> None:
    """Snapshot ``findings`` as an accepted-violations baseline file."""
    payload = {
        "version": _FORMAT_VERSION,
        "keys": sorted({f.baseline_key() for f in findings}),
    }
    Path(path).write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")


def load_baseline(path: str) -> Set[str]:
    """The set of suppressed finding keys stored in ``path``."""
    payload = json.loads(Path(path).read_text(encoding="utf-8"))
    if not isinstance(payload, dict) or "keys" not in payload:
        raise ValueError(f"{path} is not a reprolint baseline file")
    return set(payload["keys"])


def apply_baseline(findings: Sequence[Finding], keys: Set[str]) -> List[Finding]:
    """Drop findings whose baseline key is in ``keys``."""
    return [f for f in findings if f.baseline_key() not in keys]
