"""Baseline files: adopt the linter on a tree with accepted legacy findings.

A baseline is a JSON document of finding keys (code + path + message,
deliberately line-free). Findings whose key appears in the baseline are
suppressed; everything new still fails the run. ``--write-baseline``
snapshots the current findings so a future PR can ratchet them down.

Paths inside baseline keys are stored repo-relative with POSIX
separators, so a baseline written on one machine (or OS) matches the
same findings checked out anywhere else. Keys written by older
versions (absolute or backslashed paths) are still honored on load.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import List, Sequence, Set

from repro.analysis.findings import Finding

_FORMAT_VERSION = 2


def portable_path(raw: str) -> str:
    """``raw`` relative to the working directory, POSIX-separated.

    Absolute paths outside the working directory are kept absolute
    (still POSIX-normalized): better an unportable key than a wrong
    one.
    """
    path = Path(raw.replace("\\", "/"))
    if path.is_absolute():
        try:
            path = path.relative_to(Path.cwd())
        except ValueError:
            pass
    return path.as_posix()


def portable_key(finding: Finding) -> str:
    """The baseline key with its path made repo-relative and POSIX."""
    return f"{finding.code}::{portable_path(finding.path)}::{finding.message}"


def write_baseline(path: str, findings: Sequence[Finding]) -> None:
    """Snapshot ``findings`` as an accepted-violations baseline file."""
    payload = {
        "version": _FORMAT_VERSION,
        "keys": sorted({portable_key(f) for f in findings}),
    }
    Path(path).write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")


def load_baseline(path: str) -> Set[str]:
    """The set of suppressed finding keys stored in ``path``."""
    payload = json.loads(Path(path).read_text(encoding="utf-8"))
    if not isinstance(payload, dict) or "keys" not in payload:
        raise ValueError(f"{path} is not a reprolint baseline file")
    return set(payload["keys"])


def apply_baseline(findings: Sequence[Finding], keys: Set[str]) -> List[Finding]:
    """Drop findings whose baseline key is in ``keys``.

    Both the portable (v2) and the legacy raw-path (v1) forms of each
    finding's key are checked, so existing baselines keep suppressing
    across the format change.
    """
    return [
        f
        for f in findings
        if portable_key(f) not in keys and f.baseline_key() not in keys
    ]
