"""The finding record shared by rules, the engine, and the reporters."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Union


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at a specific source location.

    Ordering is (path, line, col, code) so reports read top-to-bottom
    per file regardless of which rule produced each finding.
    """

    path: str
    line: int
    col: int
    code: str
    message: str
    severity: str = "error"

    def render(self) -> str:
        """``path:line:col: CODE message`` — the text-reporter line."""
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"

    def baseline_key(self) -> str:
        """Identity used for baseline suppression.

        Deliberately excludes the line number so an accepted legacy
        finding keeps matching as unrelated edits shift the file.
        """
        return f"{self.code}::{self.path}::{self.message}"

    def to_dict(self) -> Dict[str, Union[str, int]]:
        """JSON-reporter representation."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "code": self.code,
            "message": self.message,
            "severity": self.severity,
        }
