"""Command-line interface: ``python -m repro.analysis [paths...]``."""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Optional, Sequence, Tuple

from repro.analysis.baseline import apply_baseline, load_baseline, write_baseline
from repro.analysis.config import AnalysisConfig
from repro.analysis.engine import analyze_paths
from repro.analysis.reporting import REPORTERS
from repro.analysis.rules import all_rules


def _split_codes(raw: Optional[str]) -> Tuple[str, ...]:
    if not raw:
        return ()
    return tuple(code.strip() for code in raw.split(",") if code.strip())


def build_parser() -> argparse.ArgumentParser:
    """The argument parser (exposed for --help tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description=(
            "reprolint: unit-suffix, dB/linear, determinism, and "
            "API-contract static analysis for the RFly reproduction"
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        help="files or directories to analyze (default: src/repro)",
    )
    parser.add_argument(
        "--format",
        choices=sorted(REPORTERS),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--select",
        metavar="CODES",
        help="comma-separated rule-code prefixes to enable (e.g. U,R301)",
    )
    parser.add_argument(
        "--ignore",
        metavar="CODES",
        help="comma-separated rule-code prefixes to disable",
    )
    parser.add_argument(
        "--exclude",
        action="append",
        default=[],
        metavar="GLOB",
        help="path glob/substring to skip (repeatable)",
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        help="suppress findings recorded in this baseline JSON file",
    )
    parser.add_argument(
        "--write-baseline",
        metavar="FILE",
        help="write current findings to FILE as a new baseline and exit 0",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="list registered rules and exit",
    )
    parser.add_argument(
        "--backend",
        choices=("inline", "serial", "process"),
        default="inline",
        help=(
            "execution backend: 'inline' analyzes in-process; 'serial' "
            "and 'process' route through the repro.runtime sweep engine "
            "with per-file result caching (default: inline)"
        ),
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="worker count for --backend process (default: cpu count)",
    )
    parser.add_argument(
        "--cache-dir",
        metavar="DIR",
        help=(
            "result-cache directory for the runtime backends "
            "(default: .reprolint_cache)"
        ),
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable result caching for the runtime backends",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Run the linter; returns the process exit code.

    Exit status: 0 when no findings survive filtering (or when writing
    a baseline), 1 when findings remain, 2 on usage errors.
    """
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.code}  {rule.severity:<7}  {rule.name}")
        return 0

    select, ignore = _split_codes(args.select), _split_codes(args.ignore)
    known_codes = [rule.code for rule in all_rules()]
    for flag, prefixes in (("--select", select), ("--ignore", ignore)):
        for prefix in prefixes:
            if not any(code.startswith(prefix) for code in known_codes):
                print(
                    f"reprolint: {flag} {prefix!r} matches no registered rule "
                    "(see --list-rules)",
                    file=sys.stderr,
                )
                return 2

    config = AnalysisConfig(
        select=select,
        ignore=ignore,
        exclude_paths=tuple(args.exclude),
    )
    if args.backend == "inline":
        findings = analyze_paths(args.paths, config)
    else:
        from repro.analysis.driver import analyze_project
        from repro.runtime import RuntimeConfig

        runtime = RuntimeConfig(
            backend=args.backend,
            max_workers=args.jobs,
            cache_dir=None
            if args.no_cache
            else Path(args.cache_dir or ".reprolint_cache"),
            use_cache=not args.no_cache,
        )
        findings = analyze_project(args.paths, config, runtime=runtime)

    if args.write_baseline:
        write_baseline(args.write_baseline, findings)
        print(
            f"reprolint: wrote baseline with {len(findings)} finding(s) "
            f"to {args.write_baseline}"
        )
        return 0

    if args.baseline:
        try:
            keys = load_baseline(args.baseline)
        except (OSError, ValueError) as exc:
            print(f"reprolint: cannot load baseline: {exc}", file=sys.stderr)
            return 2
        findings = apply_baseline(findings, keys)

    print(REPORTERS[args.format](findings))
    return 1 if findings else 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
