"""The whole-program project model: import graph, symbol table, call graph.

Per-file AST rules can enforce *local* conventions, but the bugs that
threaten the reproduction are cross-module: a ``_db`` value flowing
into a linear-domain parameter two calls away, an unseeded generator
reaching a :class:`~repro.runtime.task.SweepTask` function, a worker
mutating a module global that the serial backend would share across
tasks. This module builds the shared substrate those analyses need:

* a **module summary** per file — dotted module name, import bindings,
  function signatures with unit-suffix facts, module-level names;
* an **import graph** over the analyzed tree (project-internal edges
  only), from which per-file *dependency signatures* are derived for
  content-addressed caching;
* a **call graph** of resolved project-internal call edges, plus the
  set of *task functions* (functions referenced at ``SweepTask`` /
  ``SweepTask.make`` construction sites) and everything reachable from
  them — the worker-purity rules' root set.

Every summary is plain JSON-serializable data so the model ships to
worker processes (and round-trips byte-identically, which the
hypothesis suite pins).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, FrozenSet, Iterator, List, Mapping, Optional, Set, Tuple

from repro.analysis.unitlang import family_of

#: Bump when summary layout or extraction semantics change so cached
#: project summaries (and per-file findings keyed on them) invalidate.
MODEL_VERSION = 1


def module_name_for_path(path: str) -> str:
    """Dotted module name for a source path.

    The name is rooted at the outermost enclosing package: directories
    are included while they contain an ``__init__.py``, so
    ``src/repro/dsp/units.py`` maps to ``repro.dsp.units`` regardless
    of the checkout location, and a bare ``tmp/helper.py`` maps to
    ``helper``. ``__init__.py`` maps to its package's name.
    """
    resolved = Path(path)
    parts: List[str] = []
    if resolved.name != "__init__.py":
        parts.append(resolved.stem)
    parent = resolved.parent
    while (parent / "__init__.py").is_file():
        parts.append(parent.name)
        grandparent = parent.parent
        if grandparent == parent:
            break
        parent = grandparent
    return ".".join(reversed(parts)) if parts else resolved.stem


@dataclass(frozen=True)
class FunctionSummary:
    """Cross-module facts about one function definition.

    ``param_families`` maps parameter name to the unit family its
    suffix claims (parameters with no unit suffix are absent);
    ``return_family`` is the family claimed by the function name's own
    suffix. ``calls`` holds the *raw* dotted call targets appearing in
    the body (resolution to project symbols happens against the
    containing module's import bindings); ``mutated_globals`` the
    module-level names the body mutates.
    """

    qualname: str
    module: str
    line: int
    params: Tuple[str, ...] = ()
    param_families: Tuple[Tuple[str, str], ...] = ()
    return_family: Optional[str] = None
    calls: Tuple[str, ...] = ()
    mutated_globals: Tuple[str, ...] = ()
    is_public: bool = True

    @property
    def symbol(self) -> str:
        """``module:qualname`` — the project-wide function identity."""
        return f"{self.module}:{self.qualname}"

    def family_for_param(self, name: str) -> Optional[str]:
        """Unit family claimed by parameter ``name``'s suffix, if any."""
        for param, fam in self.param_families:
            if param == name:
                return fam
        return None

    def param_at(self, index: int) -> Optional[str]:
        """Positional parameter name at ``index``, if in range."""
        if 0 <= index < len(self.params):
            return self.params[index]
        return None

    def to_dict(self) -> Dict[str, Any]:
        """Plain-data form (JSON-serializable, order-stable)."""
        return {
            "qualname": self.qualname,
            "module": self.module,
            "line": self.line,
            "params": list(self.params),
            "param_families": [list(pair) for pair in self.param_families],
            "return_family": self.return_family,
            "calls": list(self.calls),
            "mutated_globals": list(self.mutated_globals),
            "is_public": self.is_public,
        }

    @staticmethod
    def from_dict(data: Mapping[str, Any]) -> "FunctionSummary":
        """Inverse of :meth:`to_dict`."""
        return FunctionSummary(
            qualname=data["qualname"],
            module=data["module"],
            line=data["line"],
            params=tuple(data["params"]),
            param_families=tuple(
                (pair[0], pair[1]) for pair in data["param_families"]
            ),
            return_family=data["return_family"],
            calls=tuple(data["calls"]),
            mutated_globals=tuple(data["mutated_globals"]),
            is_public=data["is_public"],
        )


@dataclass(frozen=True)
class ModuleSummary:
    """One analyzed module: bindings, functions, graph-relevant facts.

    ``imports`` maps each locally bound name to the dotted target it
    refers to — a module (``units`` -> ``repro.dsp.units``) or a symbol
    (``db_to_linear`` -> ``repro.dsp.units:db_to_linear``).
    ``task_fn_refs`` holds the raw names referenced as the ``fn``
    argument of ``SweepTask``/``SweepTask.make`` calls in this module.
    """

    name: str
    path: str
    imports: Tuple[Tuple[str, str], ...] = ()
    functions: Tuple[FunctionSummary, ...] = ()
    module_level_names: Tuple[str, ...] = ()
    task_fn_refs: Tuple[str, ...] = ()

    def to_dict(self) -> Dict[str, Any]:
        """Plain-data form (JSON-serializable, order-stable)."""
        return {
            "name": self.name,
            "path": self.path,
            "imports": [list(pair) for pair in self.imports],
            "functions": [fn.to_dict() for fn in self.functions],
            "module_level_names": list(self.module_level_names),
            "task_fn_refs": list(self.task_fn_refs),
        }

    @staticmethod
    def from_dict(data: Mapping[str, Any]) -> "ModuleSummary":
        """Inverse of :meth:`to_dict`."""
        return ModuleSummary(
            name=data["name"],
            path=data["path"],
            imports=tuple((pair[0], pair[1]) for pair in data["imports"]),
            functions=tuple(
                FunctionSummary.from_dict(fn) for fn in data["functions"]
            ),
            module_level_names=tuple(data["module_level_names"]),
            task_fn_refs=tuple(data["task_fn_refs"]),
        )


def _attribute_chain(node: ast.AST) -> Optional[str]:
    """Dotted name of a Name/Attribute chain (``a.b.c``), else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def _resolve_relative(module: str, level: int, target: Optional[str]) -> str:
    """Absolute dotted module for a level-``level`` relative import."""
    # The containing *package* of ``module`` is its name minus the last
    # component; each additional level strips one more component.
    parts = module.split(".")
    keep = len(parts) - level
    base = parts[: max(keep, 0)]
    if target:
        base.append(target)
    return ".".join(base)


class _ModuleExtractor(ast.NodeVisitor):
    """Single-pass extraction of one module's summary facts."""

    def __init__(self, module_name: str, path: str) -> None:
        self.module_name = module_name
        self.path = path
        self.imports: List[Tuple[str, str]] = []
        self.functions: List[FunctionSummary] = []
        self.module_level_names: List[str] = []
        self.task_fn_refs: List[str] = []
        self._scope: List[str] = []

    # -- imports ----------------------------------------------------

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            bound = alias.asname or alias.name.split(".")[0]
            target = alias.name if alias.asname else alias.name.split(".")[0]
            self.imports.append((bound, target))
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.level:
            source = _resolve_relative(
                self.module_name, node.level, node.module
            )
        else:
            source = node.module or ""
        for alias in node.names:
            if alias.name == "*":
                continue
            bound = alias.asname or alias.name
            # A lowercase name imported from a package is, throughout
            # this codebase, a submodule; CamelCase names are classes
            # and the rest are functions/constants. Record modules as
            # dotted paths and symbols as ``module:name``.
            if alias.name != alias.name.lower():
                target = f"{source}:{alias.name}"
            else:
                target = f"{source}:{alias.name}" if source else alias.name
            self.imports.append((bound, target))
        self.generic_visit(node)

    # -- module-level bindings --------------------------------------

    def _record_module_target(self, target: ast.AST) -> None:
        if not self._scope and isinstance(target, ast.Name):
            self.module_level_names.append(target.id)

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            if isinstance(target, (ast.Tuple, ast.List)):
                for element in target.elts:
                    self._record_module_target(element)
            else:
                self._record_module_target(target)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        self._record_module_target(node.target)
        self.generic_visit(node)

    # -- functions ---------------------------------------------------

    def _visit_function(
        self, node: "ast.FunctionDef | ast.AsyncFunctionDef"
    ) -> None:
        qualname = ".".join([*self._scope, node.name])
        args = node.args
        params = tuple(
            arg.arg
            for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]
            if arg.arg not in ("self", "cls")
        )
        families = tuple(
            (name, fam)
            for name in params
            for fam in (family_of(name),)
            if fam is not None
        )
        self.functions.append(
            FunctionSummary(
                qualname=qualname,
                module=self.module_name,
                line=node.lineno,
                params=params,
                param_families=families,
                return_family=family_of(node.name),
                calls=tuple(_collect_calls(node)),
                mutated_globals=tuple(_collect_global_mutations(node)),
                is_public=not node.name.startswith("_"),
            )
        )
        self._scope.append(node.name)
        self.generic_visit(node)
        self._scope.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_function(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_function(node)

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        if not self._scope:
            self.module_level_names.append(node.name)
        self._scope.append(node.name)
        self.generic_visit(node)
        self._scope.pop()

    # -- task-fn references -----------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        chain = _attribute_chain(node.func)
        if chain is not None and chain.split(".")[-1] in (
            "SweepTask",
            "make",
        ):
            is_sweeptask = chain.endswith("SweepTask") or chain.endswith(
                "SweepTask.make"
            )
            if is_sweeptask:
                fn_arg: Optional[ast.AST] = None
                if node.args:
                    fn_arg = node.args[0]
                else:
                    for kw in node.keywords:
                        if kw.arg == "fn":
                            fn_arg = kw.value
                            break
                if fn_arg is not None:
                    ref = _attribute_chain(fn_arg)
                    if ref is not None:
                        self.task_fn_refs.append(ref)
        self.generic_visit(node)

    def summary(self) -> ModuleSummary:
        """The extracted, order-stable module summary."""
        return ModuleSummary(
            name=self.module_name,
            path=self.path,
            imports=tuple(sorted(set(self.imports))),
            functions=tuple(self.functions),
            module_level_names=tuple(
                sorted(set(self.module_level_names))
            ),
            task_fn_refs=tuple(sorted(set(self.task_fn_refs))),
        )


def _collect_calls(fn: "ast.FunctionDef | ast.AsyncFunctionDef") -> List[str]:
    """Sorted raw dotted call targets appearing in ``fn``'s body."""
    calls: Set[str] = set()
    for node in ast.walk(fn):
        if isinstance(node, ast.Call):
            chain = _attribute_chain(node.func)
            if chain is not None:
                calls.add(chain)
    return sorted(calls)


#: Method names that mutate their receiver in place.
MUTATING_METHODS = frozenset(
    {
        "append",
        "extend",
        "insert",
        "add",
        "update",
        "setdefault",
        "pop",
        "popitem",
        "remove",
        "discard",
        "clear",
        "appendleft",
        "extendleft",
        "sort",
        "reverse",
    }
)


def _store_names(target: ast.AST) -> Iterator[str]:
    """Plain names bound by an assignment/loop target (destructured too)."""
    if isinstance(target, ast.Name):
        yield target.id
    elif isinstance(target, ast.Starred):
        yield from _store_names(target.value)
    elif isinstance(target, (ast.Tuple, ast.List)):
        for elt in target.elts:
            yield from _store_names(elt)


def _collect_global_mutations(
    fn: "ast.FunctionDef | ast.AsyncFunctionDef",
) -> List[str]:
    """Module-level names ``fn`` mutates (assign, augassign, method, item).

    A name is counted when it is declared ``global`` and stored to, or
    when a store/mutating-method/subscript-store targets a name the
    function never binds locally — the classic shared-state patterns
    (``CACHE[key] = value``, ``_REGISTRY.append(...)``) that diverge
    between the serial backend (one shared process) and pool workers
    (fresh state each).
    """
    declared_global: Set[str] = set()
    local_bindings: Set[str] = set()
    args = fn.args
    for arg in [
        *args.posonlyargs,
        *args.args,
        *args.kwonlyargs,
        *([args.vararg] if args.vararg else []),
        *([args.kwarg] if args.kwarg else []),
    ]:
        local_bindings.add(arg.arg)
    mutated: Set[str] = set()

    for node in ast.walk(fn):
        if isinstance(node, ast.Global):
            declared_global.update(node.names)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if node is not fn:
                local_bindings.add(node.name)
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                for name in _store_names(target):
                    local_bindings.add(name)
        elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
            for name in _store_names(node.target):
                local_bindings.add(name)
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            for name in _store_names(node.target):
                local_bindings.add(name)
        elif isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                if item.optional_vars is not None:
                    for name in _store_names(item.optional_vars):
                        local_bindings.add(name)
        elif isinstance(node, ast.comprehension):
            for name in _store_names(node.target):
                local_bindings.add(name)

    for node in ast.walk(fn):
        if isinstance(node, (ast.Assign, ast.AugAssign)):
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            for target in targets:
                if isinstance(target, ast.Name) and target.id in declared_global:
                    mutated.add(target.id)
                elif isinstance(target, ast.Subscript) and isinstance(
                    target.value, ast.Name
                ):
                    name = target.value.id
                    if name in declared_global or name not in local_bindings:
                        mutated.add(name)
        elif isinstance(node, ast.Call):
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr in MUTATING_METHODS
                and isinstance(func.value, ast.Name)
            ):
                name = func.value.id
                if name in declared_global or name not in local_bindings:
                    mutated.add(name)
    # Names never bound locally are only *module* globals when the
    # module actually defines them; that containment check happens in
    # the purity rule against ``ModuleSummary.module_level_names``.
    return sorted(mutated)


@dataclass
class ProjectModel:
    """Symbol table + import graph + call graph over an analyzed tree.

    ``pinned_task_functions`` / ``pinned_reachable`` override the
    graph-derived task-function and task-reachability sets. The lint
    driver uses them to hand a worker a model restricted to one file's
    import closure while preserving *global* facts: whether a function
    is referenced at a ``SweepTask`` site (possibly by a module outside
    the closure) is decided over the whole tree, then pinned here. They
    are runtime-only and never serialized.
    """

    modules: Dict[str, ModuleSummary] = field(default_factory=dict)
    pinned_task_functions: Optional[FrozenSet[str]] = None
    pinned_reachable: Optional[FrozenSet[str]] = None
    _import_graph_cache: Optional[Dict[str, Tuple[str, ...]]] = field(
        default=None, init=False, repr=False, compare=False
    )

    # -- construction ------------------------------------------------

    @staticmethod
    def build(
        sources: Mapping[str, ast.Module],
        names: Optional[Mapping[str, str]] = None,
    ) -> "ProjectModel":
        """Model a set of parsed modules, keyed by file path.

        ``names`` optionally overrides the path-derived module name per
        path (used when analyzing source text without a real file).
        """
        model = ProjectModel()
        for path, tree in sources.items():
            module_name = (
                names[path]
                if names is not None and path in names
                else module_name_for_path(path)
            )
            extractor = _ModuleExtractor(module_name, path)
            extractor.visit(tree)
            model.modules[module_name] = extractor.summary()
        return model

    # -- symbol resolution -------------------------------------------

    def module_for_path(self, path: str) -> Optional[ModuleSummary]:
        """The summary whose source file is ``path``, if modeled."""
        for summary in self.modules.values():
            if summary.path == path:
                return summary
        return None

    def function(self, symbol: str) -> Optional[FunctionSummary]:
        """Look up ``module:qualname`` in the symbol table."""
        module, _, qualname = symbol.partition(":")
        summary = self.modules.get(module)
        if summary is None:
            return None
        for fn in summary.functions:
            if fn.qualname == qualname:
                return fn
        return None

    def resolve_call(
        self, module: str, chain: str
    ) -> Optional[FunctionSummary]:
        """Resolve a raw dotted call target seen in ``module``.

        Handles the three project idioms: a bare name defined in the
        same module, a bare name imported ``from mod import fn``, and a
        one-level attribute call on an imported module alias
        (``units.db_to_linear``). Anything deeper (methods on objects)
        resolves to None — unknown, not wrong.
        """
        summary = self.modules.get(module)
        if summary is None:
            return None
        imports = dict(summary.imports)
        head, _, rest = chain.partition(".")
        if not rest:
            # Bare name: local function first, then imported symbol.
            local = self.function(f"{module}:{head}")
            if local is not None:
                return local
            target = imports.get(head)
            if target is not None and ":" in target:
                return self.function(target)
            return None
        target = imports.get(head)
        if target is None or ":" in target:
            return None
        # ``alias.fn`` on an imported module, or ``alias.sub.fn`` /
        # ``alias.Class.method`` through a package or class: try every
        # split of the remaining chain into (submodule path, qualname).
        parts = rest.split(".")
        for split in range(len(parts) - 1, -1, -1):
            module_path = ".".join([target, *parts[:split]])
            qualname = ".".join(parts[split:])
            fn = self.function(f"{module_path}:{qualname}")
            if fn is not None:
                return fn
        return None

    # -- graphs ------------------------------------------------------

    def import_graph(self) -> Dict[str, Tuple[str, ...]]:
        """Project-internal import edges: module -> imported modules.

        Memoized: the driver walks dependencies for every file of the
        tree, and the module set never changes after construction.
        """
        if self._import_graph_cache is not None:
            return self._import_graph_cache
        graph: Dict[str, Tuple[str, ...]] = {}
        for name, summary in self.modules.items():
            targets: Set[str] = set()
            for _bound, target in summary.imports:
                dotted = target.partition(":")[0]
                # Walk up the dotted path so ``repro.dsp.units`` also
                # records a dependency on the ``repro.dsp`` package
                # module when it is part of the analyzed tree.
                parts = dotted.split(".")
                for stop in range(len(parts), 0, -1):
                    candidate = ".".join(parts[:stop])
                    if candidate in self.modules and candidate != name:
                        targets.add(candidate)
                        break
            graph[name] = tuple(sorted(targets))
        self._import_graph_cache = graph
        return graph

    def dependencies_of(self, module: str) -> FrozenSet[str]:
        """Transitive project-internal imports of ``module`` (closed set)."""
        graph = self.import_graph()
        seen: Set[str] = set()
        frontier = [module]
        while frontier:
            current = frontier.pop()
            for target in graph.get(current, ()):
                if target not in seen:
                    seen.add(target)
                    frontier.append(target)
        seen.discard(module)
        return frozenset(seen)

    def task_functions(self) -> FrozenSet[str]:
        """Symbols of functions referenced at SweepTask creation sites."""
        if self.pinned_task_functions is not None:
            return self.pinned_task_functions
        symbols: Set[str] = set()
        for name, summary in self.modules.items():
            for ref in summary.task_fn_refs:
                fn = self.resolve_call(name, ref)
                if fn is not None:
                    symbols.add(fn.symbol)
        return frozenset(symbols)

    def reachable_from_tasks(self) -> FrozenSet[str]:
        """Function symbols reachable from any task fn via resolved calls."""
        if self.pinned_reachable is not None:
            return self.pinned_reachable
        roots = self.task_functions()
        seen: Set[str] = set(roots)
        frontier = list(roots)
        while frontier:
            symbol = frontier.pop()
            fn = self.function(symbol)
            if fn is None:
                continue
            for chain in fn.calls:
                callee = self.resolve_call(fn.module, chain)
                if callee is not None and callee.symbol not in seen:
                    seen.add(callee.symbol)
                    frontier.append(callee.symbol)
        return frozenset(seen)

    # -- serialization -----------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """Plain-data form: sorted modules, ready for JSON."""
        return {
            "version": MODEL_VERSION,
            "modules": [
                self.modules[name].to_dict()
                for name in sorted(self.modules)
            ],
        }

    @staticmethod
    def from_dict(data: Mapping[str, Any]) -> "ProjectModel":
        """Inverse of :meth:`to_dict` (raises on version mismatch)."""
        if data.get("version") != MODEL_VERSION:
            raise ValueError(
                f"project model version {data.get('version')!r} != "
                f"{MODEL_VERSION}"
            )
        model = ProjectModel()
        for entry in data["modules"]:
            summary = ModuleSummary.from_dict(entry)
            model.modules[summary.name] = summary
        return model
