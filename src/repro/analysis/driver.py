"""Whole-repo lint driver on the sweep engine (``repro.runtime``).

Linting a tree is itself an embarrassingly parallel sweep: one task
per file, pure in its inputs, with results worth caching. This module
expresses it that way instead of hand-rolling a second pool:

* each file becomes a :class:`~repro.runtime.task.SweepTask` over
  :func:`lint_file_task`, parameterized by the file's content hash,
  its transitive *dependency signature*, and the analyzer config — so
  the engine's content-addressed cache serves warm results only when
  neither the file, nor anything it imports, nor the analyzer itself
  has changed;
* workers never see whole-project state. Each task carries a model
  restricted to its file's import closure (a content-addressed JSON
  sidecar named by the dependency signature) plus the two genuinely
  global facts — which closure symbols are task functions, and which
  of the file's own symbols are task-reachable — pinned as explicit
  params. Editing one file therefore invalidates exactly the files
  whose closure or global facts actually changed, never the whole
  tree;
* findings come back as plain dicts and are re-sorted globally, so the
  report is byte-identical across serial and process backends and
  across repeated runs.

Cold runs parse everything once (to build the model) and analyze
every file; warm runs hash the tree, find the model sidecars already
on disk, and serve every task from the result cache without parsing
a single file — the ≥5× speedup asserted in ``benchmarks/``.
"""

from __future__ import annotations

import ast
import dataclasses
import hashlib
import json
import os
import tempfile
from collections import abc
from functools import lru_cache
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.analysis.config import AnalysisConfig
from repro.analysis.engine import analyze_module, iter_python_files
from repro.analysis.findings import Finding
from repro.analysis.project import ProjectModel, module_name_for_path
from repro.runtime import RuntimeConfig, SweepTask, run_sweep

#: Bumped whenever a rule, the model schema, or the dataflow engine
#: changes behavior: it rides in every task's params, so the result
#: cache can never serve findings computed by an older analyzer.
ANALYZER_SCHEMA = 1


def file_sha(path: "str | Path") -> str:
    """Content hash of one source file."""
    return hashlib.sha256(Path(path).read_bytes()).hexdigest()


def project_signature(shas: Mapping[str, str]) -> str:
    """Content hash of the whole file set (paths + contents + schema)."""
    digest = hashlib.sha256()
    digest.update(f"analyzer={ANALYZER_SCHEMA}".encode())
    for path in sorted(shas):
        digest.update(f"{Path(path).as_posix()}={shas[path]}".encode())
    return digest.hexdigest()


def dependency_signature(
    module: str, model: ProjectModel, shas_by_module: Mapping[str, str]
) -> str:
    """Hash of a module's content plus all transitive project imports.

    This is what makes per-file caching sound under whole-program
    analysis: a change in ``repro.dsp.units`` must invalidate the
    cached findings of every module whose call summaries reach it —
    and *only* those modules.
    """
    digest = hashlib.sha256()
    own = shas_by_module.get(module, "")
    digest.update(f"{module}={own}".encode())
    for dep in sorted(model.dependencies_of(module)):
        digest.update(f"{dep}={shas_by_module.get(dep, '')}".encode())
    return digest.hexdigest()


def _config_params(config: AnalysisConfig) -> Dict[str, object]:
    """The analyzer-config fields that affect findings, as task params."""
    return {
        "select": list(config.select),
        "ignore": list(config.ignore),
        "per_path_ignores": {
            pattern: list(codes)
            for pattern, codes in config.per_path_ignores.items()
        },
        "allowed_unsuffixed": list(config.allowed_unsuffixed),
    }


def _config_from_params(
    select: Sequence[str],
    ignore: Sequence[str],
    per_path_ignores: "Mapping[str, Sequence[str]] | Sequence[Tuple[str, Sequence[str]]]",
    allowed_unsuffixed: Sequence[str],
) -> AnalysisConfig:
    # ``canonical_params`` lowers dicts to sorted item tuples on the
    # way into the task, so accept both shapes here.
    items = (
        per_path_ignores.items()
        if isinstance(per_path_ignores, abc.Mapping)
        else per_path_ignores
    )
    return AnalysisConfig(
        select=tuple(select),
        ignore=tuple(ignore),
        per_path_ignores={pattern: tuple(codes) for pattern, codes in items},
        allowed_unsuffixed=tuple(allowed_unsuffixed),
    )


@lru_cache(maxsize=None)
def _load_closure_model(closure_json: str, dep_sig: str) -> ProjectModel:
    """Deserialize a closure-model sidecar (memoized per worker).

    ``dep_sig`` is part of the key so a worker reused across driver
    invocations can never serve a stale model; the sidecar is also
    content-addressed by the same signature, so a hit at this path is
    valid by construction. The cache is unbounded but naturally capped
    by the number of distinct files linted in one worker's lifetime.
    """
    with open(closure_json, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    if payload.get("signature") != dep_sig:
        raise RuntimeError(
            f"closure model sidecar {closure_json} has signature "
            f"{payload.get('signature')!r}, expected {dep_sig!r}"
        )
    return ProjectModel.from_dict(payload["model"])


def lint_file_task(
    path: str,
    sha: str,
    dep_sig: str,
    model_dir: str,
    schema: int,
    select: Sequence[str],
    ignore: Sequence[str],
    per_path_ignores: Mapping[str, Sequence[str]],
    allowed_unsuffixed: Sequence[str],
    task_symbols: Sequence[str],
    reachable_symbols: Sequence[str],
    seed: int,
) -> List[Dict[str, object]]:
    """Analyze one file against its closure model (worker body).

    Every argument is a cache-key component, and none of them varies
    with files outside the file's import closure: ``sha`` pins the
    file, ``dep_sig`` pins its transitive imports (and names the model
    sidecar), ``schema`` pins the analyzer, the config fields pin rule
    selection, and ``task_symbols``/``reachable_symbols`` pin the
    whole-program facts the orchestrator computed for this file.
    ``seed`` is unused — lint is deterministic — but rides along to
    satisfy the engine's task signature.
    """
    del sha, schema, seed  # cache-key components only
    config = _config_from_params(
        select, ignore, per_path_ignores, allowed_unsuffixed
    )
    closure_json = str(Path(model_dir) / f"closure-{dep_sig}.json")
    model = dataclasses.replace(
        _load_closure_model(closure_json, dep_sig),
        pinned_task_functions=frozenset(task_symbols),
        pinned_reachable=frozenset(reachable_symbols),
    )
    try:
        source = Path(path).read_text(encoding="utf-8")
    except OSError as exc:
        return [Finding(path, 1, 0, "E998", f"cannot read file: {exc}").to_dict()]
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [
            Finding(
                path, exc.lineno or 1, 0, "E999", f"syntax error: {exc.msg}"
            ).to_dict()
        ]
    summary = model.module_for_path(path)
    findings = analyze_module(
        tree,
        path,
        config,
        project=model,
        module_name=summary.name if summary else module_name_for_path(path),
    )
    return [finding.to_dict() for finding in findings]


def _atomic_write_json(target: Path, payload: Dict[str, object]) -> None:
    """Write ``payload`` atomically (tmp + rename) next to ``target``.

    Concurrent drivers racing on the same cache directory can only
    ever observe a complete sidecar.
    """
    target.parent.mkdir(parents=True, exist_ok=True)
    handle = tempfile.NamedTemporaryFile(
        "w",
        dir=str(target.parent),
        prefix=target.stem + ".",
        suffix=".tmp",
        delete=False,
        encoding="utf-8",
    )
    try:
        with handle:
            json.dump(payload, handle, sort_keys=True)
        os.replace(handle.name, target)
    except BaseException:
        Path(handle.name).unlink(missing_ok=True)
        raise


def _write_project_sidecar(
    model_dir: Path, sig: str, sources: Mapping[str, ast.Module]
) -> Path:
    """Build the whole-tree model and persist it content-addressed.

    The project sidecar is orchestrator-only: it lets warm runs skip
    re-parsing the tree. Workers read per-closure sidecars instead.
    """
    model_path = model_dir / f"project-{sig}.json"
    if model_path.exists():
        return model_path
    model = ProjectModel.build(sources)
    _atomic_write_json(model_path, {"signature": sig, "model": model.to_dict()})
    return model_path


def _write_closure_sidecar(
    model_dir: Path, dep_sig: str, model: ProjectModel, module: str
) -> None:
    """Persist the model restricted to ``module``'s import closure.

    Content-addressed by the dependency signature, so an existing file
    is valid by construction and an edit outside the closure leaves
    the sidecar (and every cache key derived from it) untouched.
    """
    closure_path = model_dir / f"closure-{dep_sig}.json"
    if closure_path.exists():
        return
    closure = {module} | set(model.dependencies_of(module))
    restricted = ProjectModel(
        modules={
            name: model.modules[name]
            for name in sorted(closure)
            if name in model.modules
        }
    )
    _atomic_write_json(
        closure_path, {"signature": dep_sig, "model": restricted.to_dict()}
    )


def _parse_all(
    shas: Mapping[str, str],
) -> Tuple[Dict[str, ast.Module], List[Finding]]:
    sources: Dict[str, ast.Module] = {}
    findings: List[Finding] = []
    for path in sorted(shas):
        try:
            text = Path(path).read_text(encoding="utf-8")
        except OSError as exc:
            findings.append(Finding(path, 1, 0, "E998", f"cannot read file: {exc}"))
            continue
        try:
            sources[path] = ast.parse(text, filename=path)
        except SyntaxError as exc:
            findings.append(
                Finding(path, exc.lineno or 1, 0, "E999", f"syntax error: {exc.msg}")
            )
    return sources, findings


def analyze_project(
    paths: Sequence[str],
    config: Optional[AnalysisConfig] = None,
    runtime: Optional[RuntimeConfig] = None,
    name: str = "reprolint",
) -> List[Finding]:
    """Whole-repo analysis as a cached sweep over the configured backend.

    Functionally equivalent to :func:`repro.analysis.analyze_paths`
    (byte-identical findings), but executed through
    :func:`repro.runtime.run_sweep`: serial or process-pool dispatch,
    content-addressed per-file result caching, and a run manifest when
    ``runtime.manifest_dir`` is set.
    """
    config = config or AnalysisConfig()
    runtime = runtime or RuntimeConfig()

    shas: Dict[str, str] = {}
    findings: List[Finding] = []
    for file_path in iter_python_files(paths, config):
        try:
            shas[str(file_path)] = file_sha(file_path)
        except OSError as exc:
            findings.append(
                Finding(str(file_path), 1, 0, "E998", f"cannot read file: {exc}")
            )

    sig = project_signature(shas)
    if runtime.cache_dir is not None:
        model_dir = Path(runtime.cache_dir) / "reprolint-models"
    else:
        model_dir = Path(tempfile.mkdtemp(prefix="reprolint-models-"))
    model_path = model_dir / f"project-{sig}.json"
    parse_findings: List[Finding] = []
    if not model_path.exists():
        sources, parse_findings = _parse_all(shas)
        model_path = _write_project_sidecar(model_dir, sig, sources)
    findings.extend(parse_findings)

    with open(model_path, "r", encoding="utf-8") as handle:
        model = ProjectModel.from_dict(json.load(handle)["model"])
    shas_by_module: Dict[str, str] = {}
    for module_name, summary in model.modules.items():
        if summary.path in shas:
            shas_by_module[module_name] = shas[summary.path]

    # The two whole-program facts the per-closure models cannot derive
    # themselves: which symbols are task functions (a module *outside*
    # a file's closure may reference its functions at a SweepTask
    # site), and which symbols those roots reach. Restricted per file
    # below, so the params change only when the facts relevant to that
    # file change.
    all_task_symbols = model.task_functions()
    all_reachable = model.reachable_from_tasks()

    config_params = _config_params(config)
    tasks = []
    for path in sorted(shas):
        summary = model.module_for_path(path)
        module = summary.name if summary else module_name_for_path(path)
        dep_sig = dependency_signature(module, model, shas_by_module)
        _write_closure_sidecar(model_dir, dep_sig, model, module)
        closure = {module} | set(model.dependencies_of(module))
        tasks.append(
            SweepTask.make(
                lint_file_task,
                params={
                    "path": path,
                    "sha": shas[path],
                    "dep_sig": dep_sig,
                    "model_dir": str(model_dir),
                    "schema": ANALYZER_SCHEMA,
                    **config_params,
                    "task_symbols": sorted(
                        symbol
                        for symbol in all_task_symbols
                        if symbol.partition(":")[0] in closure
                    ),
                    "reachable_symbols": sorted(
                        symbol
                        for symbol in all_reachable
                        if symbol.partition(":")[0] == module
                    ),
                },
                seed=0,
                label=Path(path).name,
            )
        )

    result = run_sweep(tasks, config=runtime, name=name)
    for payload in result.results:
        findings.extend(Finding(**item) for item in payload)
    # Files that failed to parse are reported twice on cold runs (once
    # by the model build, once by the worker); dedupe keeps E999 single.
    return sorted(set(findings))
