"""Flow-sensitive intraprocedural dataflow for the whole-program rules.

The per-file rules in :mod:`repro.analysis.rules.units` only see unit
facts spelled directly in identifier suffixes. The dataflow rules need
more: ``loss = path_loss_db(...)`` makes ``loss`` a decibel quantity
three statements before it is misused, and ``stamp = wall_clock_s()``
makes ``stamp`` wall-clock-tainted wherever it flows. This module
provides the shared machinery:

* a statement **walker** that traverses one function body in execution
  order, maintaining an abstract environment (local name -> lattice
  value), forking per branch and re-joining afterwards — findings are
  emitted against the environment *live* at each statement;
* two lattices over that walker — :class:`UnitLattice` (dimension
  families, join drops to unknown on disagreement so branchy code
  never false-positives) and :class:`TaintLattice` (reason sets, join
  is union so taint can only grow).

Loops get a silent pre-pass so loop-carried facts reach the emitting
pass; nested function definitions open fresh scopes and are analyzed
separately by the rules.
"""

from __future__ import annotations

import ast
from typing import (
    Callable,
    Dict,
    FrozenSet,
    Iterator,
    List,
    Optional,
    Tuple,
)

from repro.analysis.project import FunctionSummary, _attribute_chain
from repro.analysis.unitlang import UNIT_FAMILIES, family_of

#: Resolves a raw dotted call target (as seen in the module's source)
#: to a modeled project function, or None when unknown.
CallResolver = Callable[[str], Optional[FunctionSummary]]

#: Builtins / numpy helpers whose result carries the same unit family
#: (and taint) as their first argument.
PASSTHROUGH_CALLS = frozenset(
    {
        "float",
        "int",
        "abs",
        "round",
        "min",
        "max",
        "sum",
        "sorted",
        "np.abs",
        "np.asarray",
        "np.array",
        "np.asfarray",
        "np.mean",
        "np.median",
        "np.max",
        "np.min",
        "np.sum",
        "np.percentile",
        "np.quantile",
        "np.clip",
        "np.round",
        "np.copy",
        "np.ravel",
        "np.squeeze",
    }
)


def call_chain(node: ast.Call) -> Optional[str]:
    """Dotted target of a call (``np.mean``), or None for dynamic calls."""
    return _attribute_chain(node.func)


def _is_numeric_literal(node: ast.AST) -> bool:
    """A literal int/float, optionally signed — known dimensionless."""
    if isinstance(node, ast.UnaryOp) and isinstance(
        node.op, (ast.UAdd, ast.USub)
    ):
        node = node.operand
    return (
        isinstance(node, ast.Constant)
        and isinstance(node.value, (int, float))
        and not isinstance(node.value, bool)
    )


class UnitLattice:
    """Infers dimension families for expressions under an environment.

    A value is a family token from
    :data:`repro.analysis.rules.units.UNIT_FAMILIES` or None (unknown /
    dimensionless). Precedence for names: an explicit unit suffix is a
    *declaration* and wins over anything propagated — the propagated
    value only fills in suffix-less locals.
    """

    def __init__(self, resolver: Optional[CallResolver] = None) -> None:
        self._resolver = resolver

    def resolve(self, chain: str) -> Optional[FunctionSummary]:
        """The modeled callee for a raw call target, when resolvable."""
        if self._resolver is None:
            return None
        return self._resolver(chain)

    def join(self, a: Optional[str], b: Optional[str]) -> Optional[str]:
        """Branch merge: agreement survives, disagreement drops to unknown."""
        return a if a == b else None

    def infer(
        self, node: ast.AST, env: Dict[str, str]
    ) -> Optional[str]:
        """Family of ``node``'s value, or None when unknown."""
        if isinstance(node, ast.Name):
            declared = family_of(node.id)
            return declared if declared is not None else env.get(node.id)
        if isinstance(node, ast.Attribute):
            return family_of(node.attr)
        if isinstance(node, ast.Subscript):
            return self.infer(node.value, env)
        if isinstance(node, ast.UnaryOp):
            return self.infer(node.operand, env)
        if isinstance(node, ast.IfExp):
            return self.join(
                self.infer(node.body, env), self.infer(node.orelse, env)
            )
        if isinstance(node, ast.Call):
            return self._infer_call(node, env)
        if isinstance(node, ast.BinOp):
            return self._infer_binop(node, env)
        return None

    def _infer_call(
        self, node: ast.Call, env: Dict[str, str]
    ) -> Optional[str]:
        chain = call_chain(node)
        if chain is None:
            return None
        if chain in PASSTHROUGH_CALLS and node.args:
            return self.infer(node.args[0], env)
        fn = self.resolve(chain)
        if fn is not None:
            return fn.return_family
        # Unresolved call: a trailing unit suffix on the callee name
        # still declares the return family (``path_loss_db(...)``).
        return family_of(chain.rsplit(".", 1)[-1])

    def _infer_binop(
        self, node: ast.BinOp, env: Dict[str, str]
    ) -> Optional[str]:
        left = self.infer(node.left, env)
        right = self.infer(node.right, env)
        if isinstance(node.op, (ast.Add, ast.Sub)):
            if left is None or right is None:
                return left if right is None else right
            if left == right:
                return left
            if {left, right} == {"db", "dbm"}:
                # gain_db + power_dbm is an absolute power in dBm;
                # dbm - dbm is handled by the same-family branch.
                return "dbm"
            return None
        if isinstance(node.op, (ast.Mult, ast.Div)):
            # Only a literal numeric factor is known dimensionless, so
            # only it preserves the family; an unknown *expression* may
            # carry dimension (``f_hz * t`` is a phase, not a
            # frequency), so any other product drops to unknown.
            if left is not None and _is_numeric_literal(node.right):
                return left
            if right is not None and _is_numeric_literal(node.left) and isinstance(
                node.op, ast.Mult
            ):
                return right
            return None
        return None


class TaintLattice:
    """Propagates nondeterminism-taint reason sets through expressions.

    A value is a frozenset of reason strings produced by the rule's
    ``sources`` classifier at call sites; any expression built from a
    tainted operand is tainted with the union of its operands' reasons.
    """

    def __init__(
        self,
        sources: Callable[[str, ast.Call], FrozenSet[str]],
        resolver: Optional[CallResolver] = None,
    ) -> None:
        self._sources = sources
        self._resolver = resolver

    def join(
        self, a: Optional[FrozenSet[str]], b: Optional[FrozenSet[str]]
    ) -> Optional[FrozenSet[str]]:
        """Branch merge: taint is a may-property, so reasons union."""
        if not a:
            return b
        if not b:
            return a
        return a | b

    def infer(
        self, node: ast.AST, env: Dict[str, FrozenSet[str]]
    ) -> Optional[FrozenSet[str]]:
        """Taint reasons carried by ``node``'s value (None when clean)."""
        if isinstance(node, ast.Name):
            return env.get(node.id)
        if isinstance(node, ast.Call):
            reasons: FrozenSet[str] = frozenset()
            chain = call_chain(node)
            if chain is not None:
                reasons = self._sources(chain, node)
            for arg in node.args:
                reasons = reasons | (self.infer(arg, env) or frozenset())
            for kw in node.keywords:
                reasons = reasons | (self.infer(kw.value, env) or frozenset())
            return reasons or None
        if isinstance(node, (ast.BinOp, ast.BoolOp, ast.Compare)):
            reasons = frozenset()
            for child in ast.iter_child_nodes(node):
                reasons = reasons | (self.infer(child, env) or frozenset())
            return reasons or None
        if isinstance(node, (ast.UnaryOp, ast.Starred)):
            return self.infer(
                node.operand
                if isinstance(node, ast.UnaryOp)
                else node.value,
                env,
            )
        if isinstance(node, (ast.Subscript, ast.Attribute)):
            return self.infer(node.value, env)
        if isinstance(node, ast.IfExp):
            return self.join(
                self.infer(node.body, env), self.infer(node.orelse, env)
            )
        if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            reasons = frozenset()
            for element in node.elts:
                reasons = reasons | (self.infer(element, env) or frozenset())
            return reasons or None
        if isinstance(node, ast.Dict):
            reasons = frozenset()
            for value in [*node.keys, *node.values]:
                if value is not None:
                    reasons = reasons | (
                        self.infer(value, env) or frozenset()
                    )
            return reasons or None
        if isinstance(node, ast.JoinedStr):
            reasons = frozenset()
            for part in node.values:
                reasons = reasons | (self.infer(part, env) or frozenset())
            return reasons or None
        if isinstance(node, ast.FormattedValue):
            return self.infer(node.value, env)
        return None


def statement_expressions(stmt: ast.stmt) -> Iterator[ast.AST]:
    """The expression trees evaluated *directly* by one statement.

    Compound statements (``if``/``for``/``with``/...) contribute only
    their own condition/iterable/context expressions — their nested
    statement blocks are walked (and emitted) separately, so a rule
    inspecting these trees never sees the same expression twice.
    """
    if isinstance(stmt, ast.Expr):
        yield stmt.value
    elif isinstance(stmt, ast.Assign):
        yield stmt.value
        for target in stmt.targets:
            yield target
    elif isinstance(stmt, ast.AnnAssign):
        if stmt.value is not None:
            yield stmt.value
        yield stmt.target
    elif isinstance(stmt, ast.AugAssign):
        yield stmt.value
        yield stmt.target
    elif isinstance(stmt, ast.Return):
        if stmt.value is not None:
            yield stmt.value
    elif isinstance(stmt, (ast.If, ast.While)):
        yield stmt.test
    elif isinstance(stmt, (ast.For, ast.AsyncFor)):
        yield stmt.iter
        yield stmt.target
    elif isinstance(stmt, (ast.With, ast.AsyncWith)):
        for item in stmt.items:
            yield item.context_expr
    elif isinstance(stmt, ast.Assert):
        yield stmt.test
        if stmt.msg is not None:
            yield stmt.msg
    elif isinstance(stmt, ast.Raise):
        if stmt.exc is not None:
            yield stmt.exc
        if stmt.cause is not None:
            yield stmt.cause
    elif isinstance(stmt, ast.Delete):
        for target in stmt.targets:
            yield target


def _target_names(target: ast.AST) -> List[str]:
    """Plain local names bound by an assignment target."""
    if isinstance(target, ast.Name):
        return [target.id]
    if isinstance(target, (ast.Tuple, ast.List)):
        names: List[str] = []
        for element in target.elts:
            names.extend(_target_names(element))
        return names
    return []


class FlowWalker:
    """Executes one function body abstractly, yielding (stmt, env) pairs.

    ``lattice`` is either lattice class above (anything with ``infer``
    and ``join``). The environment passed with each statement is the
    abstract state *before* the statement executes; rules must treat it
    as read-only (the walker snapshots lazily).
    """

    def __init__(self, lattice: "UnitLattice | TaintLattice") -> None:
        self._lattice = lattice

    def walk(
        self, fn: "ast.FunctionDef | ast.AsyncFunctionDef"
    ) -> Iterator[Tuple[ast.stmt, Dict[str, object]]]:
        """Yield (statement, live environment) in execution order."""
        events: List[Tuple[ast.stmt, Dict[str, object]]] = []
        self._block(list(fn.body), {}, events, emit=True)
        return iter(events)

    # -- internals ---------------------------------------------------

    def _block(
        self,
        stmts: List[ast.stmt],
        env: Dict[str, object],
        events: List[Tuple[ast.stmt, Dict[str, object]]],
        emit: bool,
    ) -> Dict[str, object]:
        for stmt in stmts:
            if emit:
                events.append((stmt, dict(env)))
            env = self._transfer(stmt, env, events, emit)
        return env

    def _merge(
        self, branches: List[Dict[str, object]]
    ) -> Dict[str, object]:
        if not branches:
            return {}
        merged = dict(branches[0])
        for other in branches[1:]:
            for name in sorted(set(merged) | set(other)):
                joined = self._lattice.join(  # type: ignore[arg-type]
                    merged.get(name), other.get(name)
                )
                if joined is None:
                    merged.pop(name, None)
                else:
                    merged[name] = joined
        return merged

    def _bind(
        self, env: Dict[str, object], target: ast.AST, value: object
    ) -> None:
        for name in _target_names(target):
            # Tuple unpacking smears one value over every name, which
            # is only sound for single-name targets; drop otherwise.
            if value is None or not isinstance(target, ast.Name):
                env.pop(name, None)
            else:
                env[name] = value

    def _transfer(
        self,
        stmt: ast.stmt,
        env: Dict[str, object],
        events: List[Tuple[ast.stmt, Dict[str, object]]],
        emit: bool,
    ) -> Dict[str, object]:
        lattice = self._lattice
        if isinstance(stmt, ast.Assign):
            value = lattice.infer(stmt.value, env)  # type: ignore[arg-type]
            for target in stmt.targets:
                self._bind(env, target, value)
            return env
        if isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                value = lattice.infer(stmt.value, env)  # type: ignore[arg-type]
                self._bind(env, stmt.target, value)
            return env
        if isinstance(stmt, ast.AugAssign):
            if isinstance(stmt.target, ast.Name):
                current = env.get(stmt.target.id)
                update = lattice.infer(stmt.value, env)  # type: ignore[arg-type]
                joined = lattice.join(current, update)  # type: ignore[arg-type]
                if joined is None:
                    env.pop(stmt.target.id, None)
                else:
                    env[stmt.target.id] = joined
            return env
        if isinstance(stmt, ast.If):
            body_env = self._block(list(stmt.body), dict(env), events, emit)
            else_env = self._block(
                list(stmt.orelse), dict(env), events, emit
            )
            return self._merge([body_env, else_env])
        if isinstance(stmt, (ast.For, ast.AsyncFor, ast.While)):
            if isinstance(stmt, (ast.For, ast.AsyncFor)):
                self._bind(env, stmt.target, None)
            # Silent pre-pass so loop-carried facts are live when the
            # emitting pass records events inside the body.
            pre_env = self._block(list(stmt.body), dict(env), events, False)
            seeded = self._merge([env, pre_env])
            body_env = self._block(list(stmt.body), seeded, events, emit)
            else_env = self._block(
                list(stmt.orelse), dict(env), events, emit
            )
            return self._merge([env, body_env, else_env])
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                if item.optional_vars is not None:
                    value = lattice.infer(  # type: ignore[arg-type]
                        item.context_expr, env
                    )
                    self._bind(env, item.optional_vars, value)
            return self._block(list(stmt.body), env, events, emit)
        if isinstance(stmt, ast.Try):
            body_env = self._block(list(stmt.body), dict(env), events, emit)
            branch_envs = [body_env]
            for handler in stmt.handlers:
                handler_env = dict(env)
                if handler.name is not None:
                    handler_env.pop(handler.name, None)
                branch_envs.append(
                    self._block(list(handler.body), handler_env, events, emit)
                )
            merged = self._merge(branch_envs)
            merged = self._block(list(stmt.orelse), merged, events, emit)
            return self._block(list(stmt.finalbody), merged, events, emit)
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            env.pop(stmt.name, None)
            return env
        if isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                for name in _target_names(target):
                    env.pop(name, None)
            return env
        return env


def functions_in(tree: ast.Module) -> Iterator["ast.FunctionDef | ast.AsyncFunctionDef"]:
    """Every function definition in a module, outermost first.

    Nested functions are yielded too (each opens a fresh abstract
    scope), so rules analyze every body exactly once.
    """
    stack: List[ast.AST] = [tree]
    while stack:
        node = stack.pop()
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield child
                stack.append(child)
            elif isinstance(child, (ast.ClassDef, ast.Module)):
                stack.append(child)
            elif isinstance(child, (ast.If, ast.Try, ast.For, ast.While, ast.With)):
                stack.append(child)


__all__ = [
    "CallResolver",
    "FlowWalker",
    "PASSTHROUGH_CALLS",
    "TaintLattice",
    "UnitLattice",
    "UNIT_FAMILIES",
    "call_chain",
    "functions_in",
    "statement_expressions",
]
