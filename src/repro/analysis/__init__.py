"""reprolint: project-specific static analysis for the RFly reproduction.

The package parses ``src/repro`` with :mod:`ast` and enforces the
correctness contracts that the rest of the codebase relies on but that
nothing else checks mechanically:

* **Unit-suffix discipline** (``U1xx``) — public parameters, function
  names, and dataclass fields holding physical quantities carry a unit
  suffix (``_db``, ``_dbm``, ``_hz``, ``_m``, ``_s``, ``_rad``,
  ``_watts``, ...), and identifiers with *conflicting* suffixes are
  never assigned, added, compared, or (for decibel quantities)
  multiplied together.
* **dB/linear hygiene** (``U106``) — raw ``10 ** (x / 10)`` and
  ``10 * log10(x)`` conversions outside :mod:`repro.dsp.units` must go
  through the shared converters.
* **Determinism** (``R3xx``) — no argless ``np.random.default_rng()``,
  no legacy ``np.random.*`` global-state calls, no stdlib :mod:`random`
  in library code; randomness is injected as seeded ``Generator``s.
* **API contracts** (``A4xx``) — public functions are
  return-annotated, modules have docstrings and
  ``from __future__ import annotations``, and bare ``except:`` /
  mutable default arguments are errors.

Run it as ``python -m repro.analysis src/repro``; the zero-findings
state of the tree is enforced as a tier-1 test in
``tests/test_static_analysis.py``.
"""

from __future__ import annotations

from repro.analysis.config import AnalysisConfig
from repro.analysis.engine import analyze_paths, analyze_source
from repro.analysis.findings import Finding

__all__ = [
    "AnalysisConfig",
    "Finding",
    "analyze_paths",
    "analyze_source",
]
