"""Text, JSON, and SARIF reporters for analysis findings."""

from __future__ import annotations

import json
from collections import Counter
from typing import Dict, List, Sequence, Tuple

import repro
from repro.analysis.baseline import portable_path
from repro.analysis.findings import Finding
from repro.analysis.rules import all_rules

#: Engine-level findings that have no registered Rule behind them.
_ENGINE_CODES: Dict[str, Tuple[str, str]] = {
    "E998": ("unreadable-file", "error"),
    "E999": ("syntax-error", "error"),
}


def render_text(findings: Sequence[Finding]) -> str:
    """Human-oriented report: one line per finding plus a per-rule tally."""
    if not findings:
        return "reprolint: no findings"
    lines = [f.render() for f in findings]
    tally = Counter(f.code for f in findings)
    summary = ", ".join(f"{code}: {n}" for code, n in sorted(tally.items()))
    lines.append(f"reprolint: {len(findings)} finding(s) ({summary})")
    return "\n".join(lines)


def render_json(findings: Sequence[Finding]) -> str:
    """Machine-oriented report consumed by CI annotations and baselines."""
    payload = {
        "finding_count": len(findings),
        "findings": [f.to_dict() for f in findings],
    }
    return json.dumps(payload, indent=2)


def _rule_catalog(codes: Sequence[str]) -> List[Dict[str, object]]:
    """SARIF ``tool.driver.rules`` entries for the referenced codes."""
    by_code: Dict[str, Tuple[str, str]] = dict(_ENGINE_CODES)
    for rule in all_rules():
        by_code[rule.code] = (rule.name, rule.severity)
    catalog = []
    for code in codes:
        name, severity = by_code.get(code, (code.lower(), "error"))
        catalog.append(
            {
                "id": code,
                "name": name,
                "defaultConfiguration": {
                    "level": "error" if severity == "error" else "warning"
                },
            }
        )
    return catalog


def render_sarif(findings: Sequence[Finding]) -> str:
    """SARIF 2.1.0 report for code-scanning upload.

    Paths are emitted repo-relative with POSIX separators (the
    ``artifactLocation.uri`` contract); columns are converted from the
    analyzer's 0-based offsets to SARIF's 1-based ones.
    """
    codes = sorted({f.code for f in findings})
    rule_index = {code: i for i, code in enumerate(codes)}
    results = [
        {
            "ruleId": f.code,
            "ruleIndex": rule_index[f.code],
            "level": "error" if f.severity == "error" else "warning",
            "message": {"text": f.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": portable_path(f.path),
                            "uriBaseId": "SRCROOT",
                        },
                        "region": {
                            "startLine": max(f.line, 1),
                            "startColumn": f.col + 1,
                        },
                    }
                }
            ],
        }
        for f in findings
    ]
    document = {
        "$schema": "https://json.schemastore.org/sarif-2.1.0.json",
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "reprolint",
                        "version": repro.__version__,
                        "rules": _rule_catalog(codes),
                    }
                },
                "originalUriBaseIds": {"SRCROOT": {"uri": "file:///"}},
                "results": results,
            }
        ],
    }
    return json.dumps(document, indent=2)


REPORTERS = {"text": render_text, "json": render_json, "sarif": render_sarif}
