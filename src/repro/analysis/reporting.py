"""Text and JSON reporters for analysis findings."""

from __future__ import annotations

import json
from collections import Counter
from typing import Sequence

from repro.analysis.findings import Finding


def render_text(findings: Sequence[Finding]) -> str:
    """Human-oriented report: one line per finding plus a per-rule tally."""
    if not findings:
        return "reprolint: no findings"
    lines = [f.render() for f in findings]
    tally = Counter(f.code for f in findings)
    summary = ", ".join(f"{code}: {n}" for code, n in sorted(tally.items()))
    lines.append(f"reprolint: {len(findings)} finding(s) ({summary})")
    return "\n".join(lines)


def render_json(findings: Sequence[Finding]) -> str:
    """Machine-oriented report consumed by CI annotations and baselines."""
    payload = {
        "finding_count": len(findings),
        "findings": [f.to_dict() for f in findings],
    }
    return json.dumps(payload, indent=2)


REPORTERS = {"text": render_text, "json": render_json}
