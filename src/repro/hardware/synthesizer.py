"""Frequency synthesizer model.

A :class:`Synthesizer` is a tunable oscillator with a fixed crystal: its
fractional frequency error (ppm) is a property of the part, so retuning
to a new frequency rescales the absolute CFO. The relay's mirrored
architecture (paper §4.3/§6.1) works precisely because the *same
synthesizer object* feeds the downlink downconverter and the uplink
upconverter — their errors cancel — which this model makes explicit.
"""

from __future__ import annotations

import numpy as np

from repro import faults
from repro.dsp.oscillator import Oscillator
from repro.errors import ConfigurationError


class Synthesizer:
    """A tunable LO with a persistent crystal error and phase offset."""

    def __init__(
        self,
        frequency_hz: float,
        ppm_error: float = 0.0,
        phase_offset_rad: float = 0.0,
        phase_jitter_std_rad: float = 0.0,
        rng: np.random.Generator | None = None,
    ) -> None:
        if frequency_hz <= 0:
            raise ConfigurationError("synthesizer frequency must be positive")
        if abs(ppm_error) > 100.0:
            raise ConfigurationError(
                f"crystal error {ppm_error} ppm is implausibly large"
            )
        self.ppm_error = float(ppm_error)
        self.phase_offset_rad = float(phase_offset_rad)
        self.phase_jitter_std_rad = float(phase_jitter_std_rad)
        self.rng = rng
        self._oscillator: Oscillator | None = None
        self.tune(frequency_hz)

    @property
    def frequency_hz(self) -> float:
        """Current programmed frequency."""
        return self._oscillator.nominal_frequency_hz

    @property
    def oscillator(self) -> Oscillator:
        """The LO at the current tuning; stable across calls until retuned."""
        return self._oscillator

    def tune(self, frequency_hz: float) -> Oscillator:
        """Retune; CFO scales with frequency (same crystal, same ppm)."""
        if frequency_hz <= 0:
            raise ConfigurationError("synthesizer frequency must be positive")
        cfo_hz = float(frequency_hz) * self.ppm_error * 1e-6
        phase_offset_rad = self.phase_offset_rad
        if faults.watching("hardware.synthesizer"):
            cfo_hz += faults.cfo_step_hz("hardware.synthesizer")
            phase_offset_rad += faults.phase_jump_rad("hardware.synthesizer")
        self._oscillator = Oscillator(
            nominal_frequency_hz=float(frequency_hz),
            cfo_hz=cfo_hz,
            phase_offset_rad=phase_offset_rad,
            phase_jitter_std_rad=self.phase_jitter_std_rad,
            rng=self.rng,
        )
        return self._oscillator

    @staticmethod
    def random(
        frequency_hz: float,
        rng: np.random.Generator,
        max_ppm: float = 2.0,
        phase_jitter_std_rad: float = 0.0,
    ) -> "Synthesizer":
        """A synthesizer with random crystal error and start phase."""
        return Synthesizer(
            frequency_hz,
            ppm_error=float(rng.uniform(-max_ppm, max_ppm)),
            phase_offset_rad=float(rng.uniform(0.0, 2.0 * np.pi)),
            phase_jitter_std_rad=phase_jitter_std_rad,
            rng=rng,
        )
