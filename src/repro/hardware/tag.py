"""Passive RFID tag hardware model.

A passive tag has no battery: it harvests power from the incident
downlink wave. Two conditions gate its operation (paper §2):

* **power-up**: the incident power must exceed the chip sensitivity
  (about -15 dBm for the Alien Squiggle class of tags), and
* **decode**: the downlink modulation depth must be large enough for the
  envelope detector to recover the reader's PIE symbols.

When powered, the tag backscatters by switching its input impedance,
reflecting a fraction of the incident wave (the modulation/backscatter
loss). This is what bounds the relay-to-tag half-link to a few meters no
matter how good the relay's isolation is — the range decoupling argument
at the heart of the paper (§4.3, footnote 2).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro.constants import (
    TAG_ANTENNA_GAIN_DBI,
    TAG_MIN_MODULATION_DEPTH,
    TAG_MODULATION_LOSS_DB,
    TAG_SENSITIVITY_DBM,
)
from repro.dsp.signal import Signal
from repro.dsp.units import db_to_linear
from repro.errors import ConfigurationError, TagNotPoweredError
from repro.gen2.bitops import Bits, bits_from_int, validate_bits
from repro.gen2.tag_state import Gen2Tag


class TagPowerState(enum.Enum):
    """Why a tag is (or is not) operational."""

    POWERED = "powered"
    INSUFFICIENT_POWER = "insufficient_power"
    INSUFFICIENT_MODULATION = "insufficient_modulation"


@dataclass
class PassiveTag:
    """A passive UHF tag: harvesting rules + protocol engine + position.

    Parameters
    ----------
    epc:
        96-bit EPC (bit tuple or integer).
    position:
        2-D coordinates in the simulation world.
    rng:
        Randomness for the Gen2 slot draws.
    sensitivity_dbm:
        Minimum harvested power to operate.
    """

    epc: object
    position: Sequence[float]
    rng: np.random.Generator
    sensitivity_dbm: float = TAG_SENSITIVITY_DBM
    modulation_loss_db: float = TAG_MODULATION_LOSS_DB
    min_modulation_depth: float = TAG_MIN_MODULATION_DEPTH
    antenna_gain_dbi: float = TAG_ANTENNA_GAIN_DBI

    def __post_init__(self) -> None:
        if isinstance(self.epc, (int, np.integer)):
            self.epc = bits_from_int(int(self.epc), 96)
        else:
            self.epc = validate_bits(self.epc)
        self.position = np.asarray(self.position, dtype=float)
        if not 0.0 < self.min_modulation_depth <= 1.0:
            raise ConfigurationError(
                f"modulation depth threshold must be in (0, 1], got "
                f"{self.min_modulation_depth}"
            )
        self.protocol = Gen2Tag(self.epc, self.rng)

    # -- power ------------------------------------------------------------------

    def power_state(
        self, incident_power_dbm: float, modulation_depth: float = 1.0
    ) -> TagPowerState:
        """Can the tag operate on this downlink?"""
        if incident_power_dbm < self.sensitivity_dbm:
            return TagPowerState.INSUFFICIENT_POWER
        if modulation_depth < self.min_modulation_depth:
            return TagPowerState.INSUFFICIENT_MODULATION
        return TagPowerState.POWERED

    def is_powered(
        self, incident_power_dbm: float, modulation_depth: float = 1.0
    ) -> bool:
        """True when both the power and modulation-depth gates pass."""
        return (
            self.power_state(incident_power_dbm, modulation_depth)
            == TagPowerState.POWERED
        )

    # -- backscatter ---------------------------------------------------------------

    @property
    def backscatter_gain_db(self) -> float:
        """Power "gain" of the reflection: negative (a loss)."""
        return -self.modulation_loss_db

    def backscattered_power_dbm(self, incident_power_dbm: float) -> float:
        """Reflected power for a given incident power.

        Raises
        ------
        TagNotPoweredError
            When the incident power is below the chip sensitivity.
        """
        if incident_power_dbm < self.sensitivity_dbm:
            raise TagNotPoweredError(
                f"incident {incident_power_dbm:.1f} dBm below sensitivity "
                f"{self.sensitivity_dbm:.1f} dBm"
            )
        return incident_power_dbm - self.modulation_loss_db

    def modulate(self, carrier: Signal, reflection_waveform: Signal) -> Signal:
        """Impose an ON-OFF reflection waveform on an incident carrier.

        ``reflection_waveform`` holds the FM0/Miller levels in {0, 1}
        (see :mod:`repro.gen2.backscatter`); the reflected signal is the
        element-wise product scaled by the backscatter loss.
        """
        n = min(len(carrier), len(reflection_waveform))
        amplitude = np.sqrt(db_to_linear(self.backscatter_gain_db))
        product = (
            carrier.samples[:n] * reflection_waveform.samples[:n] * amplitude
        )
        return Signal(
            product, carrier.sample_rate, carrier.center_frequency_hz, carrier.start_time
        )

    # -- identity ---------------------------------------------------------------

    @property
    def epc_int(self) -> int:
        """The EPC as an integer (convenient dictionary key)."""
        return self.protocol.epc_int

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PassiveTag(epc={self.epc_int:#x}, position={self.position.tolist()})"
