"""Radio hardware models: passive tags, synthesizers, reader front end."""

from __future__ import annotations

from repro.hardware.tag import PassiveTag, TagPowerState
from repro.hardware.synthesizer import Synthesizer
from repro.hardware.reader_frontend import ReaderFrontend

__all__ = ["PassiveTag", "TagPowerState", "Synthesizer", "ReaderFrontend"]
