"""USRP-class reader front end.

The paper's reader is built on a USRP N210 (§6.3) running the Gen2
implementation of Kargas et al. [26]. The front end matters for
localization in one specific way: TX and RX share one LO, so the
receiver is *coherent* — downconverting a backscattered reply with the
same oscillator that generated the carrier preserves the propagation
phase, which the localization algorithm then consumes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.constants import READER_NOISE_FIGURE_DB, READER_TX_POWER_DBM
from repro.dsp.mixer import downconvert, upconvert
from repro.dsp.noise import thermal_noise
from repro.dsp.signal import Signal
from repro.dsp.units import amplitude_for_power_dbm
from repro.errors import ConfigurationError
from repro.hardware.synthesizer import Synthesizer


class ReaderFrontend:
    """TX/RX chains of a coherent SDR reader.

    Parameters
    ----------
    synthesizer:
        The shared TX/RX LO. Its programmed frequency is the carrier.
    tx_power_dbm:
        Conducted transmit power.
    noise_figure_db:
        Receive-chain noise figure.
    rng:
        Noise randomness; required unless noise is disabled.
    """

    def __init__(
        self,
        synthesizer: Synthesizer,
        tx_power_dbm: float = READER_TX_POWER_DBM,
        noise_figure_db: float = READER_NOISE_FIGURE_DB,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        if tx_power_dbm > 36.0:
            raise ConfigurationError(
                f"tx power {tx_power_dbm} dBm exceeds the FCC EIRP headroom"
            )
        self.synthesizer = synthesizer
        self.tx_power_dbm = float(tx_power_dbm)
        self.noise_figure_db = float(noise_figure_db)
        self.rng = rng

    @property
    def carrier_frequency_hz(self) -> float:
        """The RF carrier the reader transmits (including crystal error)."""
        return self.synthesizer.oscillator.actual_frequency_hz

    def transmit(self, baseband: Signal) -> Signal:
        """Upconvert a unit-scale baseband waveform at the TX power.

        The baseband waveform (PIE command or all-ones CW) is scaled so a
        unit-envelope region transmits at ``tx_power_dbm``, then mixed up
        with the shared LO.
        """
        scaled = baseband.scaled(amplitude_for_power_dbm(self.tx_power_dbm))
        return upconvert(scaled, self.synthesizer.oscillator)

    def continuous_wave(
        self, duration: float, sample_rate: float, start_time: float = 0.0
    ) -> Signal:
        """The unmodulated carrier transmitted while tags reply."""
        n = int(round(duration * sample_rate))
        baseband = Signal(
            np.ones(n, dtype=np.complex128), sample_rate, 0.0, start_time
        )
        return self.transmit(baseband)

    def receive(self, rf: Signal, add_noise: bool = True) -> Signal:
        """Coherently downconvert an RF signal to baseband, adding noise."""
        baseband = downconvert(rf, self.synthesizer.oscillator)
        if add_noise:
            if self.rng is None:
                raise ConfigurationError(
                    "an rng is required to generate receiver noise"
                )
            baseband = thermal_noise(baseband, self.noise_figure_db, self.rng)
        return baseband
