"""VGA gain programming (paper §6.1).

The paper lists four rules for programming the relay's variable-gain
amplifiers:

1. each link's gain is bounded by its own intra-link isolation (no
   positive feedback through a single path);
2. the sum of all gains is bounded by the total achievable isolation;
3. the downlink gain is maximized subject to those constraints, because
   the downlink must power up the tags;
4. most uplink gain is placed after the band-pass filter to avoid
   saturating the uplink input with the strong relayed query.

:func:`plan_gains` encodes those rules and returns a :class:`GainPlan`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import RelayInstabilityError
from repro.relay.isolation import IsolationReport


@dataclass(frozen=True)
class GainPlan:
    """A stability-respecting gain assignment."""

    downlink_gain_db: float
    uplink_gain_db: float
    uplink_pre_filter_gain_db: float
    margin_db: float

    @property
    def total_gain_db(self) -> float:
        """Sum of downlink and uplink gains."""
        return self.downlink_gain_db + self.uplink_gain_db

    @property
    def uplink_post_filter_gain_db(self) -> float:
        """Uplink gain placed after the BPF."""
        return self.uplink_gain_db - self.uplink_pre_filter_gain_db


def plan_gains(
    report: IsolationReport,
    margin_db: float = 3.0,
    max_downlink_gain_db: float = 45.0,
    max_uplink_gain_db: float = 45.0,
    min_uplink_gain_db: float = 10.0,
    pre_filter_fraction: float = 0.2,
) -> GainPlan:
    """Program the VGAs against a measured isolation report.

    Raises
    ------
    RelayInstabilityError
        When the isolations cannot support even the minimum gains.
    """
    if margin_db < 0:
        raise RelayInstabilityError("margin must be >= 0 dB")
    # Rule 1: per-link bounds from intra-link isolation.
    downlink_cap = report.intra_downlink_db - margin_db
    uplink_cap = report.intra_uplink_db - margin_db
    # Rule 2: the sum is bounded by the total isolation budget — the
    # binding figure is the worst inter-link isolation, since the two
    # paths' gains cascade around an inter-link loop.
    total_cap = (
        min(report.inter_downlink_db, report.inter_uplink_db) - margin_db
    )
    if min(downlink_cap, uplink_cap, total_cap) <= 0:
        raise RelayInstabilityError(
            f"isolation too low for any stable gain: caps "
            f"dl={downlink_cap:.1f}, ul={uplink_cap:.1f}, sum={total_cap:.1f} dB"
        )
    uplink_gain = min(min_uplink_gain_db, uplink_cap, max_uplink_gain_db)
    if uplink_gain <= 0:
        raise RelayInstabilityError("no headroom for uplink gain")
    # Rule 3: maximize the downlink with what remains of the budget.
    downlink_gain = min(downlink_cap, total_cap - uplink_gain, max_downlink_gain_db)
    if downlink_gain <= 0:
        raise RelayInstabilityError(
            "no headroom for downlink gain after reserving the uplink"
        )
    # Grow the uplink into any leftover budget.
    leftover = total_cap - downlink_gain - uplink_gain
    if leftover > 0:
        uplink_gain = min(uplink_gain + leftover, uplink_cap, max_uplink_gain_db)
    # Rule 4: keep most uplink gain after the BPF.
    pre_filter = uplink_gain * pre_filter_fraction
    return GainPlan(
        downlink_gain_db=float(downlink_gain),
        uplink_gain_db=float(uplink_gain),
        uplink_pre_filter_gain_db=float(pre_filter),
        margin_db=float(margin_db),
    )
