"""The mirrored relay architecture (paper §4.3, Fig. 8).

Two synthesizers drive four mixers:

* synthesizer A runs at the *discovered reader frequency* f1. It
  downconverts on the downlink and upconverts on the uplink.
* synthesizer B runs at the shifted frequency f2 = f1 + shift. It
  upconverts on the downlink and downconverts on the uplink.

Because each synthesizer appears once as a down- and once as an
up-converter across the round trip, its CFO and phase offset cancel:
the relay only adds a *constant* hardware phase (filter group delay),
which the relay-embedded reference RFID factors out during localization
(§5.1). Inter-link isolation comes from the baseband LPF/BPF exploiting
the Gen2 guard-band (Fig. 4); intra-link isolation comes from the
frequency shift (out-of-band full duplex).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.constants import (
    DEFAULT_HARDWARE_SEED,
    RELAY_BPF_CENTER_HZ,
    RELAY_BPF_HALF_BANDWIDTH_HZ,
    RELAY_FREQUENCY_SHIFT_HZ,
    RELAY_LPF_CUTOFF_HZ,
    RELAY_PA_P1DB_DBM,
)
from repro.dsp.amplifier import AmplifierChain, PowerAmplifier, VariableGainAmplifier
from repro.dsp.filters import BandPassFilter, LowPassFilter
from repro.dsp.signal import Signal
from repro.errors import ConfigurationError
from repro.hardware.synthesizer import Synthesizer
from repro.relay.paths import ForwardingPath, PathConfig
from repro.relay.self_interference import AntennaCoupling


@dataclass(frozen=True)
class RelayConfig:
    """Tunable parameters of the relay build.

    Defaults reproduce the paper's PCB: 100 kHz LPF, 500 kHz BPF, 1 MHz
    frequency shift, and a 29 dBm-P1dB downlink PA.
    """

    sample_rate: float = 4.0e6
    frequency_shift_hz: float = RELAY_FREQUENCY_SHIFT_HZ
    lpf_cutoff_hz: float = RELAY_LPF_CUTOFF_HZ
    lpf_order: int = 6
    bpf_center_hz: float = RELAY_BPF_CENTER_HZ
    bpf_half_bandwidth_hz: float = RELAY_BPF_HALF_BANDWIDTH_HZ
    bpf_order: int = 3
    downlink_gain_db: float = 25.0
    uplink_gain_db: float = 20.0
    pa_gain_db: float = 10.0
    pa_p1db_dbm: float = RELAY_PA_P1DB_DBM
    downlink_feedthrough_db: float = 18.0
    uplink_feedthrough_db: float = 20.0
    synth_ppm_error: float = 1.0
    phase_jitter_std_rad: float = 0.0

    def __post_init__(self) -> None:
        if self.frequency_shift_hz <= 0:
            raise ConfigurationError("frequency shift must be positive")
        guard = self.bpf_center_hz + self.bpf_half_bandwidth_hz
        if self.frequency_shift_hz <= guard:
            raise ConfigurationError(
                "frequency shift must exceed the filter bandwidths so no "
                "signal feeds back within a path (§6.1): shift "
                f"{self.frequency_shift_hz} <= {guard}"
            )
        if self.sample_rate < 2.0 * (self.frequency_shift_hz + guard):
            raise ConfigurationError(
                "sample rate too low to represent the shifted band"
            )


class MirroredRelay:
    """RFly's relay: both forwarding paths plus shared synthesizers.

    Parameters
    ----------
    reader_frequency_hz:
        The (discovered) reader carrier the relay locks to.
    config:
        Hardware build parameters.
    rng:
        Randomness for synthesizer errors (and phase jitter, if any).
    coupling:
        Antenna coupling figures used by the isolation accounting.
    """

    def __init__(
        self,
        reader_frequency_hz: float,
        config: RelayConfig = RelayConfig(),
        rng: Optional[np.random.Generator] = None,
        coupling: Optional[AntennaCoupling] = None,
    ) -> None:
        if reader_frequency_hz <= 0:
            raise ConfigurationError("reader frequency must be positive")
        self.config = config
        self.reader_frequency_hz = float(reader_frequency_hz)
        self.shifted_frequency_hz = self.reader_frequency_hz + config.frequency_shift_hz
        self.coupling = coupling or AntennaCoupling()
        # Reproducible by default: synthesizer CFO/phase realizations come
        # from the documented fixed seed unless the caller injects an rng.
        rng = rng if rng is not None else np.random.default_rng(DEFAULT_HARDWARE_SEED)

        # The two shared synthesizers of the mirrored architecture.
        self.synth_reader = Synthesizer.random(
            self.reader_frequency_hz,
            rng,
            max_ppm=config.synth_ppm_error,
            phase_jitter_std_rad=config.phase_jitter_std_rad,
        )
        self.synth_shifted = Synthesizer.random(
            self.shifted_frequency_hz,
            rng,
            max_ppm=config.synth_ppm_error,
            phase_jitter_std_rad=config.phase_jitter_std_rad,
        )

        fs = config.sample_rate
        downlink_amps = AmplifierChain(
            [
                VariableGainAmplifier(
                    config.downlink_gain_db, min_gain_db=-10.0, max_gain_db=45.0
                ),
                PowerAmplifier(config.pa_gain_db, p1db_dbm=config.pa_p1db_dbm),
            ]
        )
        # Most of the uplink gain sits after the bandpass filter (§6.1:
        # avoids saturating the uplink input with the relayed query).
        uplink_amps = AmplifierChain(
            [
                VariableGainAmplifier(
                    config.uplink_gain_db, min_gain_db=-10.0, max_gain_db=45.0
                )
            ]
        )
        self.downlink = ForwardingPath(
            lo_in=self.synth_reader.oscillator,
            baseband_filter=LowPassFilter(config.lpf_cutoff_hz, fs, config.lpf_order),
            amplifiers=downlink_amps,
            lo_out=self.synth_shifted.oscillator,
            config=PathConfig(feedthrough_db=config.downlink_feedthrough_db),
        )
        self.uplink = ForwardingPath(
            lo_in=self.synth_shifted.oscillator,
            baseband_filter=BandPassFilter(
                config.bpf_center_hz, config.bpf_half_bandwidth_hz, fs, config.bpf_order
            ),
            amplifiers=uplink_amps,
            lo_out=self.synth_reader.oscillator,
            config=PathConfig(feedthrough_db=config.uplink_feedthrough_db),
        )

    # -- forwarding ---------------------------------------------------------------

    def forward_downlink(self, sig: Signal) -> Signal:
        """Relay a reader query/CW toward the tags (f1 -> f2)."""
        return self.downlink.forward(sig)

    def forward_uplink(self, sig: Signal) -> Signal:
        """Relay a tag response toward the reader (f2 -> f1)."""
        return self.uplink.forward(sig)

    # -- introspection -------------------------------------------------------

    @property
    def downlink_gain_db(self) -> float:
        """Small-signal downlink conversion gain."""
        return self.downlink.gain_db

    @property
    def uplink_gain_db(self) -> float:
        """Small-signal uplink conversion gain."""
        return self.uplink.gain_db

    def round_trip_phase_is_mirrored(self) -> bool:
        """True when the four mixers share two synthesizers (sanity check)."""
        return (
            self.downlink.lo_in is self.uplink.lo_out
            and self.downlink.lo_out is self.uplink.lo_in
        )
