"""Daisy-chained relays (paper §4.3 and §9: the swarm extension).

"In practice, RFly's design can extend to multiple relays, which may be
daisy chained." Each hop is an ordinary mirrored relay whose "reader"
is the previous relay's output: hop i listens at f_i and transmits at
f_{i+1} = f_i + shift. Because every hop is individually mirrored, the
end-to-end round trip still cancels all oscillator terms, so phase-
based localization keeps working through the whole chain — the
measured channel is the product of all hop half-links, and dividing by
the *last* drone's reference RFID isolates the final relay-tag link
exactly as in the single-relay case.

This module provides the frequency planning, the stability/range
analysis per hop, and a phasor-level measurement model for chains.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.channel.environment import Environment
from repro.channel.pathloss import free_space_path_loss_db
from repro.constants import RELAY_FREQUENCY_SHIFT_HZ, UHF_CENTER_FREQUENCY
from repro.dsp.units import db_to_linear
from repro.errors import ConfigurationError, RelayInstabilityError
from repro.localization.measurement import ThroughRelayMeasurement


@dataclass(frozen=True)
class ChainPlan:
    """The frequency plan of an N-hop relay chain."""

    reader_frequency_hz: float
    shift_hz: float
    n_relays: int

    def __post_init__(self) -> None:
        if self.n_relays < 1:
            raise ConfigurationError("a chain needs at least one relay")
        if self.shift_hz <= 0:
            raise ConfigurationError("frequency shift must be positive")

    def hop_frequency_hz(self, hop: int) -> float:
        """Frequency on the link *into* relay ``hop`` (0 = reader link)."""
        if not 0 <= hop <= self.n_relays:
            raise ConfigurationError(
                f"hop must be 0..{self.n_relays}, got {hop}"
            )
        return self.reader_frequency_hz + hop * self.shift_hz

    @property
    def tag_frequency_hz(self) -> float:
        """The frequency the last relay illuminates the tags at."""
        return self.hop_frequency_hz(self.n_relays)

    def band_span_hz(self) -> float:
        """Total spectrum the chain occupies beyond the reader carrier."""
        return self.n_relays * self.shift_hz


def check_chain_stability(
    hop_distances_m: Sequence[float],
    isolation_db: float,
    frequency_hz: float = UHF_CENTER_FREQUENCY,
    margin_db: float = 3.0,
) -> None:
    """Every hop must satisfy the Eq. 3 criterion independently.

    Raises
    ------
    RelayInstabilityError
        Naming the first hop whose path loss falls below the isolation.
    """
    if margin_db < 0:
        raise ConfigurationError("margin must be >= 0 dB")
    for i, distance in enumerate(hop_distances_m):
        if distance <= 0:
            raise ConfigurationError("hop distances must be positive")
        loss = free_space_path_loss_db(distance, frequency_hz)
        if loss + margin_db > isolation_db:
            raise RelayInstabilityError(
                f"hop {i}: path loss {loss:.1f} dB (+{margin_db:.0f} margin) "
                f"exceeds isolation {isolation_db:.1f} dB"
            )


def max_chain_range_m(
    n_relays: int,
    isolation_db: float,
    frequency_hz: float = UHF_CENTER_FREQUENCY,
    tag_reach_m: float = 3.0,
) -> float:
    """End-to-end reach: N stable hops plus the final power-up radius."""
    from repro.channel.pathloss import free_space_range_for_loss

    if n_relays < 1:
        raise ConfigurationError("a chain needs at least one relay")
    per_hop = free_space_range_for_loss(isolation_db, frequency_hz)
    return n_relays * per_hop + tag_reach_m


class DaisyChainMeasurementModel:
    """Phasor measurements through an N-relay chain.

    The reader's channel for a tag is the product of every hop's
    round-trip half-link (at that hop's frequency) times the final
    relay-tag round trip; the last relay's reference RFID measures the
    same product without the tag link, so Eq. 10 still disentangles.
    """

    def __init__(
        self,
        reader_position,
        plan: ChainPlan,
        environment: Optional[Environment] = None,
        reference_gain: complex = 0.05 * np.exp(1j * 0.7),
        relay_gain_db_per_hop: float = 40.0,
    ) -> None:
        if reference_gain == 0:
            raise ConfigurationError("reference gain must be nonzero")
        self.reader_position = np.asarray(reader_position, dtype=float)
        self.plan = plan
        self.environment = environment or Environment.free_space()
        self.reference_gain = complex(reference_gain)
        self.hop_gain = float(np.sqrt(db_to_linear(relay_gain_db_per_hop)))

    def _round_trip(self, a, b, frequency_hz: float) -> complex:
        one_way = self.environment.channel(a, b, frequency_hz)
        return complex(one_way * one_way)

    def measure(
        self,
        relay_positions: Sequence,
        tag_position,
        rng: Optional[np.random.Generator] = None,
        snr_db: float = 30.0,
        time: float = 0.0,
    ) -> ThroughRelayMeasurement:
        """One observation through the chain.

        ``relay_positions`` orders the drones from the reader outward;
        the ThroughRelayMeasurement's position is the LAST drone's (the
        one whose motion forms the synthetic aperture for the tag).
        """
        relay_positions = [np.asarray(p, dtype=float) for p in relay_positions]
        if len(relay_positions) != self.plan.n_relays:
            raise ConfigurationError(
                f"plan expects {self.plan.n_relays} relays, got "
                f"{len(relay_positions)}"
            )
        upstream = 1.0 + 0.0j
        previous = self.reader_position
        for hop, position in enumerate(relay_positions):
            upstream *= self._round_trip(
                previous, position, self.plan.hop_frequency_hz(hop)
            )
            upstream *= self.hop_gain
            previous = position
        tag_link = self._round_trip(
            previous, np.asarray(tag_position, dtype=float),
            self.plan.tag_frequency_hz,
        )
        h_target = upstream * tag_link
        h_reference = upstream * self.reference_gain / self.hop_gain
        if rng is not None and np.isfinite(snr_db):
            scale = np.sqrt(db_to_linear(-snr_db) / 2.0)
            h_target += (
                abs(h_target) * scale
                * (rng.standard_normal() + 1j * rng.standard_normal())
            )
            h_reference += (
                abs(h_reference) * scale
                * (rng.standard_normal() + 1j * rng.standard_normal())
            )
        return ThroughRelayMeasurement(
            position=relay_positions[-1],
            h_target=complex(h_target),
            h_reference=complex(h_reference),
            snr_db=float(snr_db),
            time=float(time),
        )
