"""The isolation measurement procedure of paper §7.1.

For each of the four leakage paths, a probe tone emulating the relevant
signal (query at +50 kHz, tag response at +500 kHz) is injected into the
relevant path input, and the power leaking to the *wrong* output
frequency is measured — exactly the USRP + spectrum-analyzer procedure
of the paper. Isolation is reported as attenuation plus path gain
(factoring the gain out), plus the antenna coupling of that leakage
path, matching the paper's accounting.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

import numpy as np

from repro import faults
from repro.dsp.measurements import peak_tone_power_dbm, tone
from repro.dsp.units import amplitude_for_power_dbm
from repro.errors import RelayError
from repro.relay.mirrored import MirroredRelay
from repro.relay.self_interference import LeakagePath

QUERY_OFFSET_HZ = 50.0e3
RESPONSE_OFFSET_HZ = 500.0e3
_PROBE_DURATION = 4.0e-3
_SETTLE_FRACTION = 0.5


@dataclass(frozen=True)
class IsolationReport:
    """Isolation of the four leakage paths, in dB."""

    inter_downlink_db: float
    inter_uplink_db: float
    intra_downlink_db: float
    intra_uplink_db: float

    def of(self, path: LeakagePath) -> float:
        """The value stored for one leakage path."""
        return float(getattr(self, f"{path.value}_db"))

    @property
    def worst_db(self) -> float:
        """The binding constraint for stability and range."""
        return min(
            self.inter_downlink_db,
            self.inter_uplink_db,
            self.intra_downlink_db,
            self.intra_uplink_db,
        )


def _measure(
    relay: MirroredRelay,
    path: LeakagePath,
    input_power_dbm: float,
) -> float:
    """Run one §7.1 probe and return the isolation in dB."""
    fs = relay.config.sample_rate
    f1 = relay.reader_frequency_hz
    f2 = relay.shifted_frequency_hz
    amp = amplitude_for_power_dbm(input_power_dbm)

    if path == LeakagePath.INTER_DOWNLINK:
        # A tag response (f1 + 500 kHz) leaking through the downlink: it
        # would be re-relayed to f2 + 500 kHz unless the LPF stops it.
        probe = tone(RESPONSE_OFFSET_HZ, _PROBE_DURATION, fs, amp, f1)
        out = relay.forward_downlink(probe)
        leak_offset = RESPONSE_OFFSET_HZ  # at f2 + 500 kHz, center is f2
        gain_db = relay.downlink_gain_db
    elif path == LeakagePath.INTER_UPLINK:
        # A reader query (f2 + 50 kHz, as relayed) leaking into the
        # uplink: it would emerge at f1 + 50 kHz unless the BPF stops it.
        probe = tone(QUERY_OFFSET_HZ, _PROBE_DURATION, fs, amp, f2)
        out = relay.forward_uplink(probe)
        leak_offset = QUERY_OFFSET_HZ
        gain_db = relay.uplink_gain_db
    elif path == LeakagePath.INTRA_DOWNLINK:
        # A query into the downlink; the leak is the un-converted
        # feed-through at the ORIGINAL frequency f1 + 50 kHz.
        probe = tone(QUERY_OFFSET_HZ, _PROBE_DURATION, fs, amp, f1)
        out = relay.forward_downlink(probe)
        leak_offset = (f1 + QUERY_OFFSET_HZ) - out.center_frequency_hz
        gain_db = relay.downlink_gain_db
    elif path == LeakagePath.INTRA_UPLINK:
        # A tag response into the uplink; the leak is the feed-through
        # at the original frequency f2 + 500 kHz.
        probe = tone(RESPONSE_OFFSET_HZ, _PROBE_DURATION, fs, amp, f2)
        out = relay.forward_uplink(probe)
        leak_offset = (f2 + RESPONSE_OFFSET_HZ) - out.center_frequency_hz
        gain_db = relay.uplink_gain_db
    else:  # pragma: no cover - exhaustive enum
        raise RelayError(f"unknown leakage path {path}")

    steady = out.sliced(int(len(out) * _SETTLE_FRACTION))
    leak_dbm = peak_tone_power_dbm(steady, leak_offset)
    attenuation_db = input_power_dbm - leak_dbm
    conducted_isolation = attenuation_db + gain_db
    isolation_db = conducted_isolation + relay.coupling.of(path)
    if faults.watching("relay.isolation"):
        # Degraded shielding/filtering: the leak gets stronger, so the
        # measured isolation drops — plan_gains() then refuses loudly.
        isolation_db -= faults.gain_collapse_db("relay.isolation")
    return isolation_db


def measure_isolation_db(
    relay: MirroredRelay, path: LeakagePath, input_power_dbm: float = -30.0
) -> float:
    """Isolation of a single leakage path, in dB."""
    return _measure(relay, path, input_power_dbm)


def measure_all_isolations(
    relay: MirroredRelay, input_power_dbm: float = -30.0
) -> IsolationReport:
    """Run all four probes of §7.1 and report the isolations."""
    return IsolationReport(
        inter_downlink_db=_measure(relay, LeakagePath.INTER_DOWNLINK, input_power_dbm),
        inter_uplink_db=_measure(relay, LeakagePath.INTER_UPLINK, input_power_dbm),
        intra_downlink_db=_measure(relay, LeakagePath.INTRA_DOWNLINK, input_power_dbm),
        intra_uplink_db=_measure(relay, LeakagePath.INTRA_UPLINK, input_power_dbm),
    )
