"""The no-mirror relay baseline of paper Fig. 10.

Structurally identical to :class:`~repro.relay.mirrored.MirroredRelay`
— same filters, same frequency plan — but each of the four mixers is
driven by its *own* synthesizer. The up/down conversions then no longer
cancel: the round trip picks up the CFO and phase-offset rotation of
Eq. 6, randomizing the phase the reader measures and making SAR
localization impossible. The paper isolates exactly this effect by
comparing against the mirrored architecture in Fig. 10.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.constants import DEFAULT_HARDWARE_SEED
from repro.dsp.amplifier import AmplifierChain, PowerAmplifier, VariableGainAmplifier
from repro.dsp.filters import BandPassFilter, LowPassFilter
from repro.dsp.signal import Signal
from repro.errors import ConfigurationError
from repro.hardware.synthesizer import Synthesizer
from repro.relay.mirrored import RelayConfig
from repro.relay.paths import ForwardingPath, PathConfig
from repro.relay.self_interference import AntennaCoupling


class NoMirrorRelay:
    """A full-duplex relay with four independent synthesizers."""

    def __init__(
        self,
        reader_frequency_hz: float,
        config: RelayConfig = RelayConfig(),
        rng: Optional[np.random.Generator] = None,
        coupling: Optional[AntennaCoupling] = None,
    ) -> None:
        if reader_frequency_hz <= 0:
            raise ConfigurationError("reader frequency must be positive")
        self.config = config
        self.reader_frequency_hz = float(reader_frequency_hz)
        self.shifted_frequency_hz = self.reader_frequency_hz + config.frequency_shift_hz
        self.coupling = coupling or AntennaCoupling()
        # Reproducible by default: synthesizer realizations come from the
        # documented fixed seed unless the caller injects an rng (R301).
        rng = rng if rng is not None else np.random.default_rng(DEFAULT_HARDWARE_SEED)

        make = lambda freq: Synthesizer.random(
            freq,
            rng,
            max_ppm=config.synth_ppm_error,
            phase_jitter_std_rad=config.phase_jitter_std_rad,
        )
        # Four synthesizers: nothing cancels.
        self._dl_down = make(self.reader_frequency_hz)
        self._dl_up = make(self.shifted_frequency_hz)
        self._ul_down = make(self.shifted_frequency_hz)
        self._ul_up = make(self.reader_frequency_hz)

        fs = config.sample_rate
        self.downlink = ForwardingPath(
            lo_in=self._dl_down.oscillator,
            baseband_filter=LowPassFilter(config.lpf_cutoff_hz, fs, config.lpf_order),
            amplifiers=AmplifierChain(
                [
                    VariableGainAmplifier(
                        config.downlink_gain_db, min_gain_db=-10.0, max_gain_db=45.0
                    ),
                    PowerAmplifier(config.pa_gain_db, p1db_dbm=config.pa_p1db_dbm),
                ]
            ),
            lo_out=self._dl_up.oscillator,
            config=PathConfig(feedthrough_db=config.downlink_feedthrough_db),
        )
        self.uplink = ForwardingPath(
            lo_in=self._ul_down.oscillator,
            baseband_filter=BandPassFilter(
                config.bpf_center_hz, config.bpf_half_bandwidth_hz, fs, config.bpf_order
            ),
            amplifiers=AmplifierChain(
                [
                    VariableGainAmplifier(
                        config.uplink_gain_db, min_gain_db=-10.0, max_gain_db=45.0
                    )
                ]
            ),
            lo_out=self._ul_up.oscillator,
            config=PathConfig(feedthrough_db=config.uplink_feedthrough_db),
        )

    def forward_downlink(self, sig: Signal) -> Signal:
        """Relay a reader query/CW toward the tags (f1 -> f2)."""
        return self.downlink.forward(sig)

    def forward_uplink(self, sig: Signal) -> Signal:
        """Relay a tag response toward the reader (f2 -> f1)."""
        return self.uplink.forward(sig)

    def round_trip_phase_is_mirrored(self) -> bool:
        """Always False: that is the point of this baseline."""
        return False
