"""Reader center-frequency discovery (paper §4.2, Eq. 5).

A reader may transmit on any of the 50 FCC channels in 902-928 MHz, and
the relay must find that channel to downconvert and filter at baseband.
Instead of digitizing the whole 26 MHz band and running a Fourier
transform, RFly sweeps candidate frequencies over contiguous 1-ms chunks
of the incoming wave — a streaming emulation of the transform:

    f_hat = argmax_f | sum_t x(t) exp(-j 2 pi f t) |

The full sweep takes ~20 ms, after which the relay locks on. Under FCC
rules the reader then hops every <=0.4 s along a pseudo-random pattern;
once one dwell is identified the relay follows the pattern (§4.2
footnote 3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.constants import (
    FCC_HOP_DWELL_SECONDS,
    RELAY_FREQ_SWEEP_TOTAL_SECONDS,
    UHF_BAND_START,
    UHF_BAND_STOP,
    UHF_CHANNEL_SPACING,
    UHF_NUM_CHANNELS,
)
from repro.dsp.signal import Signal
from repro.errors import ConfigurationError, FrequencyLockError


def ism_channels() -> np.ndarray:
    """Center frequencies of the 50 FCC hopping channels."""
    first = UHF_BAND_START + UHF_CHANNEL_SPACING / 2.0
    return first + UHF_CHANNEL_SPACING * np.arange(UHF_NUM_CHANNELS)


@dataclass(frozen=True)
class HoppingPattern:
    """A pseudo-random FCC channel hopping sequence.

    Readers must use all channels pseudo-randomly with bounded dwell;
    the sequence is fixed per reader, which is what lets the relay lock
    onto the *pattern* after identifying a single dwell.
    """

    channels: Tuple[float, ...]
    dwell_seconds: float = FCC_HOP_DWELL_SECONDS

    def __post_init__(self) -> None:
        if len(self.channels) == 0:
            raise ConfigurationError("hopping pattern must contain channels")
        if not 0 < self.dwell_seconds <= FCC_HOP_DWELL_SECONDS:
            raise ConfigurationError(
                f"dwell must be in (0, {FCC_HOP_DWELL_SECONDS}] s"
            )

    @staticmethod
    def random(
        rng: np.random.Generator, dwell_seconds: float = FCC_HOP_DWELL_SECONDS
    ) -> "HoppingPattern":
        """A random permutation of the 50 ISM channels."""
        channels = tuple(float(c) for c in rng.permutation(ism_channels()))
        return HoppingPattern(channels=channels, dwell_seconds=dwell_seconds)

    def channel_at(self, t: float) -> float:
        """The channel in use at absolute time ``t``."""
        # The epsilon absorbs float roundoff at exact dwell boundaries.
        index = int(np.floor(t / self.dwell_seconds + 1e-9)) % len(self.channels)
        return self.channels[index]

    def index_of(self, frequency_hz: float) -> int:
        """Position of a channel in the pattern."""
        for i, c in enumerate(self.channels):
            if abs(c - frequency_hz) < UHF_CHANNEL_SPACING / 2:
                return i
        raise FrequencyLockError(
            f"{frequency_hz / 1e6:.3f} MHz is not in the hopping pattern"
        )

    def next_after(self, frequency_hz: float) -> float:
        """The channel the reader will hop to after the given one."""
        return self.channels[(self.index_of(frequency_hz) + 1) % len(self.channels)]


class FrequencyDiscovery:
    """Streaming sweep over candidate reader channels.

    Parameters
    ----------
    candidates:
        Candidate center frequencies (defaults to the 50 ISM channels).
    total_sweep_seconds:
        Wall-clock budget for the whole sweep; each candidate gets an
        equal contiguous chunk of the incoming wave (the paper's chunks
        are ~1 ms and the sweep ~20 ms).
    min_snr_db:
        Peak-to-median ratio of correlation magnitudes below which no
        lock is declared (pure noise in the band).
    """

    def __init__(
        self,
        candidates: Optional[Sequence[float]] = None,
        total_sweep_seconds: float = RELAY_FREQ_SWEEP_TOTAL_SECONDS,
        min_peak_ratio: float = 3.0,
    ) -> None:
        self.candidates = np.asarray(
            ism_channels() if candidates is None else candidates, dtype=float
        )
        if len(self.candidates) == 0:
            raise ConfigurationError("need at least one candidate frequency")
        if total_sweep_seconds <= 0:
            raise ConfigurationError("sweep budget must be positive")
        if min_peak_ratio <= 1.0:
            raise ConfigurationError("peak ratio threshold must exceed 1")
        self.total_sweep_seconds = float(total_sweep_seconds)
        self.min_peak_ratio = float(min_peak_ratio)

    @property
    def chunk_seconds(self) -> float:
        """Per-candidate observation window."""
        return self.total_sweep_seconds / len(self.candidates)

    def correlations(self, sig: Signal) -> np.ndarray:
        """|correlation| of each candidate against its streaming chunk.

        Each candidate is evaluated on its own contiguous chunk — the
        streaming behaviour of the hardware sweep, which never stores
        the wide-band signal.
        """
        chunk_len = int(self.chunk_seconds * sig.sample_rate)
        if chunk_len < 8:
            raise ConfigurationError(
                "chunks too short: raise the sweep budget or the sample rate"
            )
        needed = chunk_len * len(self.candidates)
        if len(sig) < needed:
            raise FrequencyLockError(
                f"sweep needs {needed} samples, signal has {len(sig)}"
            )
        magnitudes = np.empty(len(self.candidates))
        for i, candidate in enumerate(self.candidates):
            chunk = sig.sliced(i * chunk_len, (i + 1) * chunk_len)
            offset = candidate - sig.center_frequency_hz
            reference = np.exp(-2j * np.pi * offset * chunk.times)
            magnitudes[i] = abs(np.mean(chunk.samples * reference))
        return magnitudes

    def discover(self, sig: Signal) -> float:
        """Run the sweep; return the locked reader frequency.

        Raises
        ------
        FrequencyLockError
            When no candidate stands out of the noise floor.
        """
        magnitudes = self.correlations(sig)
        best = int(np.argmax(magnitudes))
        floor = float(np.median(magnitudes))
        if floor > 0 and magnitudes[best] / floor < self.min_peak_ratio:
            raise FrequencyLockError(
                "no reader carrier found: peak correlation "
                f"{magnitudes[best]:.3e} vs floor {floor:.3e}"
            )
        return float(self.candidates[best])

    def track(
        self, locked_frequency_hz: float, pattern: HoppingPattern, t: float
    ) -> float:
        """Predict the reader's current channel from one past lock.

        ``locked_frequency_hz`` was discovered at time 0 (start of a
        dwell); the pattern then determines the channel at time ``t``.
        """
        start_index = pattern.index_of(locked_frequency_hz)
        hops = int(t // pattern.dwell_seconds)
        return pattern.channels[(start_index + hops) % len(pattern.channels)]
