"""Sample-level self-interference feedback (the physics behind Eq. 3).

The stability criterion used elsewhere (gain below isolation) is the
control-theory shortcut; this module demonstrates the mechanism itself:
the relay's output leaks back into its input with some isolation, gets
re-amplified, and recirculates. When the loop gain crosses unity the
recirculated signal *grows* every pass — the relay "rings" (paper §4.1).

:func:`simulate_feedback` iterates the loop on real waveforms and
reports the growth ratio per pass, so the analytic criterion can be
checked against the simulated dynamics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.dsp.mixer import retune
from repro.dsp.signal import Signal
from repro.dsp.units import db_to_linear, linear_to_db
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class FeedbackResult:
    """Per-pass powers of the recirculating signal."""

    pass_powers_watts: List[float]

    @property
    def growth_per_pass_db(self) -> float:
        """Average power growth per recirculation pass, in dB."""
        powers = np.asarray(self.pass_powers_watts)
        if len(powers) < 2 or powers[0] <= 0.0:
            return float("-inf")
        usable = powers[powers > 0]
        if len(usable) < 2:
            return float("-inf")
        ratios = linear_to_db(usable[1:] / usable[:-1])
        return float(np.mean(ratios))

    @property
    def rings(self) -> bool:
        """True when the loop amplifies itself (positive growth)."""
        return self.growth_per_pass_db > 0.0


def simulate_feedback(
    path,
    seed_signal: Signal,
    coupling_db: float,
    n_passes: int = 6,
) -> FeedbackResult:
    """Recirculate a seed waveform around one forwarding stage.

    Each pass sends the signal through the stage, attenuates it by the
    antenna coupling, re-expresses it at the input's center frequency
    (absolute spectral content preserved), and feeds it in again.

    Parameters
    ----------
    path:
        Anything with a ``forward(Signal) -> Signal`` method: a relay
        :class:`~repro.relay.paths.ForwardingPath` (frequency-shifting)
        or an analog same-frequency amplifier stage.
    seed_signal:
        The initial disturbance at the path's input frequency.
    coupling_db:
        Over-the-air isolation between the path's output and input
        antennas (positive dB).
    n_passes:
        Recirculation count; growth converges within a few passes.
    """
    if coupling_db < 0:
        raise ConfigurationError("coupling isolation must be >= 0 dB")
    if n_passes < 2:
        raise ConfigurationError("need at least two passes to measure growth")
    coupling_amp = float(np.sqrt(db_to_linear(-coupling_db)))
    signal = seed_signal
    powers = [signal.mean_power_watts]
    for _ in range(n_passes):
        out = path.forward(signal)
        # The leak: output couples into the input antenna and whatever
        # energy falls in the input band recirculates.
        leaked = retune(out.scaled(coupling_amp), seed_signal.center_frequency_hz)
        # Keep the signal length bounded (filters extend transients).
        leaked = leaked.sliced(0, min(len(leaked), len(seed_signal)))
        powers.append(leaked.mean_power_watts)
        signal = leaked
    return FeedbackResult(pass_powers_watts=powers)
