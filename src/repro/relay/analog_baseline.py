"""The traditional analog relay baseline of paper §7.1 (Fig. 9).

An amplify-and-forward relay: no frequency conversion, no filtering.
Its only defenses against self-interference are antenna separation and
polarization — which, at the 10 cm spacing a drone-mountable form factor
allows, buys only a couple of tens of dB. Since input and output share
one frequency, every leakage path recirculates at full gain, so the
usable gain (and with it the range, via Eq. 4) is tiny.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.dsp.signal import Signal
from repro.dsp.units import db_to_linear
from repro.errors import ConfigurationError
from repro.relay.isolation import IsolationReport
from repro.relay.self_interference import LeakagePath, require_stable


@dataclass(frozen=True)
class AnalogCoupling:
    """Isolation purely from antenna placement/polarization, in dB.

    The inter paths see cross-polarized antennas (more isolation); the
    intra paths are limited by the near-field coupling of the closely
    spaced same-band antennas.
    """

    inter_db: float = 25.0
    intra_db: float = 12.0

    def __post_init__(self) -> None:
        if self.inter_db < 0 or self.intra_db < 0:
            raise ConfigurationError("coupling isolation must be >= 0 dB")

    @staticmethod
    def random(
        rng: np.random.Generator,
        inter_mean_db: float = 25.0,
        intra_mean_db: float = 12.0,
        std_db: float = 4.0,
        floor_db: float = 3.0,
    ) -> "AnalogCoupling":
        """A build-tolerance draw, floored at a small physical minimum
        (even touching antennas provide a few dB of mismatch loss)."""
        return AnalogCoupling(
            inter_db=float(max(rng.normal(inter_mean_db, std_db), floor_db)),
            intra_db=float(max(rng.normal(intra_mean_db, std_db), floor_db)),
        )


class AnalogRelay:
    """Amplify-and-forward at a single frequency.

    ``forward`` simply scales the signal; isolation measurements return
    the antenna coupling alone since nothing in the signal path
    discriminates the leakage from the desired signal.
    """

    def __init__(
        self,
        gain_db: float = 5.0,
        coupling: Optional[AnalogCoupling] = None,
        margin_db: float = 3.0,
    ) -> None:
        self.coupling = coupling or AnalogCoupling()
        self.gain_db = float(gain_db)
        # An analog relay rings unless its gain stays below the worst
        # coupling isolation — the reason these designs cannot amplify
        # much (paper §8, [18, 39]).
        require_stable(self.gain_db, self.coupling.intra_db, margin_db)

    def forward(self, sig: Signal) -> Signal:
        """Amplify-and-forward (same frequency, both directions)."""
        return sig.scaled(np.sqrt(db_to_linear(self.gain_db)))

    # The downlink and uplink are the same circuit in this design.
    forward_downlink = forward
    forward_uplink = forward

    def isolation_report(self) -> IsolationReport:
        """Isolation per leakage path: antenna coupling only."""
        return IsolationReport(
            inter_downlink_db=self.coupling.inter_db,
            inter_uplink_db=self.coupling.inter_db,
            intra_downlink_db=self.coupling.intra_db,
            intra_uplink_db=self.coupling.intra_db,
        )
