"""RFly's relay: phase-preserving, bidirectionally full-duplex forwarding.

This package is the paper's first core contribution (§4, §6.1):

* :mod:`~repro.relay.paths` — the downconvert/filter/amplify/upconvert
  forwarding path that both link directions instantiate.
* :mod:`~repro.relay.mirrored` — the mirrored architecture: the uplink
  reuses the downlink's synthesizers in reverse, cancelling CFO and
  phase offsets so the reader can measure propagation phase through the
  relay.
* :mod:`~repro.relay.self_interference` — the four leakage paths of
  Fig. 3, antenna coupling, and the stability (oscillation) criterion of
  Eq. 3-4.
* :mod:`~repro.relay.isolation` — the measurement procedure of §7.1.
* :mod:`~repro.relay.freq_discovery` — the streaming center-frequency
  sweep of Eq. 5 and FCC hopping lock-on.
* :mod:`~repro.relay.gain_control` — the VGA programming rules of §6.1.
* :mod:`~repro.relay.analog_baseline` / :mod:`~repro.relay.no_mirror_baseline`
  — the two baselines the paper evaluates against (Fig. 9 and Fig. 10).
"""

from __future__ import annotations

from repro.relay.paths import ForwardingPath, PathConfig
from repro.relay.mirrored import MirroredRelay, RelayConfig
from repro.relay.self_interference import (
    AntennaCoupling,
    LeakagePath,
    loop_gain_db,
    is_stable,
    max_stable_range_m,
)
from repro.relay.isolation import IsolationReport, measure_all_isolations
from repro.relay.freq_discovery import FrequencyDiscovery, HoppingPattern
from repro.relay.gain_control import GainPlan, plan_gains
from repro.relay.analog_baseline import AnalogRelay
from repro.relay.no_mirror_baseline import NoMirrorRelay
from repro.relay.daisy_chain import (
    ChainPlan,
    DaisyChainMeasurementModel,
    check_chain_stability,
    max_chain_range_m,
)
from repro.relay.feedback import FeedbackResult, simulate_feedback

__all__ = [
    "ForwardingPath",
    "PathConfig",
    "MirroredRelay",
    "RelayConfig",
    "AntennaCoupling",
    "LeakagePath",
    "loop_gain_db",
    "is_stable",
    "max_stable_range_m",
    "IsolationReport",
    "measure_all_isolations",
    "FrequencyDiscovery",
    "HoppingPattern",
    "GainPlan",
    "plan_gains",
    "AnalogRelay",
    "NoMirrorRelay",
    "ChainPlan",
    "DaisyChainMeasurementModel",
    "check_chain_stability",
    "max_chain_range_m",
    "FeedbackResult",
    "simulate_feedback",
]
