"""Self-interference accounting and stability (paper §4.1, Fig. 3).

Four leakage paths couple the relay's transmit antennas back into its
receive antennas: two *inter-link* paths (between the uplink and
downlink) and two *intra-link* paths (within each direction). The
amount of isolation achieved against them directly bounds the usable
reader-relay range through the oscillation criterion of Eq. 3-4.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.channel.pathloss import free_space_range_for_loss
from repro.errors import ConfigurationError, RelayInstabilityError
from repro.obs import metrics


class LeakagePath(enum.Enum):
    """The four self-interference paths of Fig. 3."""

    INTER_DOWNLINK = "inter_downlink"  # uplink output -> downlink path
    INTER_UPLINK = "inter_uplink"  # downlink output -> uplink path
    INTRA_DOWNLINK = "intra_downlink"  # downlink output -> downlink input
    INTRA_UPLINK = "intra_uplink"  # uplink output -> uplink input


@dataclass(frozen=True)
class AntennaCoupling:
    """Over-the-air isolation between the relay's antennas, in dB.

    The PCB places the antennas ~10 cm apart with orthogonal
    polarizations; the defaults model the resulting ~24 dB of coupling
    isolation per leakage path, the figure the paper's §7.1 counts
    "toward the total isolation".
    """

    inter_downlink_db: float = 24.0
    inter_uplink_db: float = 24.0
    intra_downlink_db: float = 24.0
    intra_uplink_db: float = 24.0

    def __post_init__(self) -> None:
        for name in (
            "inter_downlink_db",
            "inter_uplink_db",
            "intra_downlink_db",
            "intra_uplink_db",
        ):
            if getattr(self, name) < 0:
                raise ConfigurationError(f"{name} must be >= 0 dB")

    def of(self, path: LeakagePath) -> float:
        """Coupling isolation of one leakage path."""
        return float(getattr(self, f"{path.value}_db"))

    @staticmethod
    def random(
        rng: np.random.Generator, mean_db: float = 24.0, std_db: float = 3.0
    ) -> "AntennaCoupling":
        """Per-build coupling draw (component/placement tolerance)."""
        draw = lambda: float(max(rng.normal(mean_db, std_db), 0.0))
        return AntennaCoupling(draw(), draw(), draw(), draw())


def loop_gain_db(path_gain_db: float, isolation_db: float) -> float:
    """Open-loop gain of a feedback loop: gain minus isolation.

    A positive value means the leaked, re-amplified signal exceeds the
    original — the relay rings (paper §4.1, citing control theory).
    """
    return float(path_gain_db - isolation_db)


def is_stable(
    path_gain_db: float, isolation_db: float, margin_db: float = 3.0
) -> bool:
    """True when the loop gain stays below unity with a safety margin."""
    if margin_db < 0:
        raise ConfigurationError("stability margin must be >= 0 dB")
    metrics.count("relay.stability_checks")
    return loop_gain_db(path_gain_db, isolation_db) < -margin_db


def require_stable(
    path_gain_db: float, isolation_db: float, margin_db: float = 3.0
) -> None:
    """Raise :class:`RelayInstabilityError` when the loop would ring."""
    if not is_stable(path_gain_db, isolation_db, margin_db):
        raise RelayInstabilityError(
            f"loop gain {loop_gain_db(path_gain_db, isolation_db):+.1f} dB "
            f"(gain {path_gain_db:.1f} dB vs isolation {isolation_db:.1f} dB, "
            f"margin {margin_db:.1f} dB): the relay would oscillate"
        )


def max_stable_range_m(isolation_db: float, frequency_hz: float) -> float:
    """Maximum reader-relay range the isolation supports (paper Eq. 4).

    ``R = (lambda / 4 pi) * 10^(I/20)``: 30 dB of isolation buys under a
    meter; 80 dB buys hundreds of meters.
    """
    if isolation_db < 0:
        raise ConfigurationError("isolation must be >= 0 dB")
    return free_space_range_for_loss(isolation_db, frequency_hz)
