"""The relay's forwarding paths (paper Fig. 8).

Each direction is a downconvert -> baseband filter -> amplifier chain ->
upconvert pipeline. Two non-idealities matter to the evaluation:

* **RF feed-through**: a small fraction of the input leaks straight to
  the output at its *original* frequency, bypassing the frequency
  conversion (mixer port-to-port isolation, board coupling). This is
  what limits the intra-link isolation of Fig. 9(c)/(d).
* **Oscillator errors**: the mixers impart the LOs' CFO and phase, the
  distortion Eq. 6 describes; the mirrored architecture cancels it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro import faults
from repro.dsp.amplifier import AmplifierChain
from repro.dsp.filters import Filter
from repro.dsp.mixer import downconvert, retune, upconvert
from repro.dsp.oscillator import Oscillator
from repro.dsp.signal import Signal
from repro.dsp.units import db_to_linear
from repro.errors import ConfigurationError, RelayError, RelayRebootError
from repro.obs import metrics


@dataclass(frozen=True)
class PathConfig:
    """Static parameters of one forwarding path."""

    feedthrough_db: float = 60.0
    """Conducted input-to-output leakage at the input frequency (positive dB)."""

    def __post_init__(self) -> None:
        if self.feedthrough_db <= 0:
            raise ConfigurationError("feed-through isolation must be positive dB")


class ForwardingPath:
    """One direction of the relay: mixer, filter, amplifiers, mixer.

    Parameters
    ----------
    lo_in:
        Downconversion oscillator (nominal frequency = the RF center the
        path listens at).
    baseband_filter:
        The LPF (downlink) or BPF (uplink) applied at baseband.
    amplifiers:
        The gain chain applied after filtering.
    lo_out:
        Upconversion oscillator (nominal = the RF center transmitted).
    config:
        Non-ideality parameters.
    """

    def __init__(
        self,
        lo_in: Oscillator,
        baseband_filter: Filter,
        amplifiers: AmplifierChain,
        lo_out: Oscillator,
        config: PathConfig = PathConfig(),
    ) -> None:
        if lo_in.nominal_frequency_hz == lo_out.nominal_frequency_hz:
            raise ConfigurationError(
                "in/out LOs must differ for out-of-band full duplex (§4.3)"
            )
        self.lo_in = lo_in
        self.lo_out = lo_out
        self.baseband_filter = baseband_filter
        self.amplifiers = amplifiers
        self.config = config

    @property
    def input_frequency_hz(self) -> float:
        """RF center the path receives at."""
        return self.lo_in.nominal_frequency_hz

    @property
    def output_frequency_hz(self) -> float:
        """RF center the path transmits at."""
        return self.lo_out.nominal_frequency_hz

    @property
    def gain_db(self) -> float:
        """Small-signal conversion gain of the path."""
        return self.amplifiers.total_gain_db

    def forward(self, sig: Signal) -> Signal:
        """Relay a received RF signal to the output frequency.

        The returned signal is declared at the output center and includes
        the feed-through leakage of the input at its original frequency.
        """
        if abs(sig.center_frequency_hz - self.input_frequency_hz) > sig.sample_rate / 4:
            raise RelayError(
                f"path listens at {self.input_frequency_hz / 1e6:.3f} MHz but the "
                f"signal is centered at {sig.center_frequency_hz / 1e6:.3f} MHz"
            )
        metrics.count("relay.signals_forwarded")
        collapse_db = 0.0
        if faults.watching("relay.forward"):
            if faults.rebooted("relay.forward"):
                raise RelayRebootError(
                    "relay power-cycled mid-forward; signal lost in flight"
                )
            if faults.dropped("relay.forward"):
                raise RelayError(
                    "forwarding path dropped the signal (injected fault)"
                )
            collapse_db = faults.gain_collapse_db("relay.forward")
        baseband = downconvert(sig, self.lo_in)
        filtered = self.baseband_filter.apply(baseband)
        amplified = self.amplifiers.apply(filtered)
        if collapse_db:
            amplified = amplified.scaled(
                float(np.sqrt(db_to_linear(-collapse_db)))
            )
        out = upconvert(amplified, self.lo_out)
        if sig.center_frequency_hz != out.center_frequency_hz:
            leak_amp = np.sqrt(db_to_linear(-self.config.feedthrough_db))
            leak = retune(sig, out.center_frequency_hz).scaled(leak_amp)
            out = out + leak
        return out
