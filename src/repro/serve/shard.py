"""Consistent-hash sharding of the serving layer.

One :class:`~repro.serve.service.LocalizationService` is a single
virtual server; this module partitions the tag-session population
across ``M`` independent service workers with a consistent-hash ring,
so the serving layer scales horizontally while staying *bit-identical*
to the unsharded service.

Why bit-identity is even possible
---------------------------------

Three properties stack:

1. **Partitioned capacity isolation** (``ServeConfig(capacity_mode
   ="partitioned")``, required here): every session runs against its
   own virtual server, so its scheduling decisions — degradation,
   charging, latency — read only its own stream. Which other sessions
   share a worker stops mattering.
2. **Stacking-invariant batched folds**
   (:func:`repro.localization.batched.fold_blocks`): an accumulator's
   bits never depend on which co-scheduled sessions were stacked into
   the same kernel call.
3. **Sample-pooled report merging**: per-shard raw latency samples are
   concatenated in shard order and percentiles recomputed from the
   pool (``np.percentile`` sorts), so the merged report equals the
   unsharded one instead of averaging per-shard percentiles.

Hence ``run_sharded_workload`` with ``n_shards=M`` (serial or process
backend) returns the same fixes, errors, ladder logs, and latency
percentiles as with ``n_shards=1`` — the unsharded serial service —
and the hypothesis suite in ``tests/serve`` pins it.

Routing uses a :class:`ShardRing` over ``hashlib.blake2b`` digests —
never the builtin ``hash()``, which is salted per process
(``PYTHONHASHSEED``) and would route the same session differently in
different workers (reprolint O503 bans it). Virtual nodes keep the
partition balanced, and the ring's removal property bounds failover
churn: dropping one of ``M`` shards remigrates only ~``1/M`` of the
keys, everything else stays put.

Failover rides the deterministic fault engine: a ``serve.shard``
reboot (:func:`repro.faults.rebooted` with the shard index) crash-drops
one worker's sessions through the store's checkpoint/kill path, and
restores account their recoveries exactly like the unsharded
``serve.session`` kill discipline.
"""

from __future__ import annotations

import bisect
import contextlib
import hashlib
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro import faults
from repro.errors import ConfigurationError, LocalizationError, ServeError
from repro.localization.grid import Grid2D
from repro.localization.measurement import ThroughRelayMeasurement
from repro.obs import metrics, tracing
from repro.runtime.backends import map_in_processes
from repro.runtime.cache import ResultCache
from repro.runtime.seeding import spawn_task_seeds
from repro.serve.config import ServeConfig
from repro.serve.queueing import Admission
from repro.serve.service import (
    LocalizationService,
    ServiceReport,
    _percentile_s,
)
from repro.serve.traffic import TrafficWorkload, UpdateEvent

#: Default virtual nodes per shard on the ring; enough that the
#: keyspace split stays within a few percent of uniform at small M.
DEFAULT_RING_REPLICAS = 64

#: Salt namespacing the ring's digests (vnode and key points draw from
#: disjoint families even for colliding raw strings).
_RING_SALT = "repro.serve.shard"


def _digest64(material: str) -> int:
    """Process-stable 64-bit point on the ring for ``material``.

    ``blake2b`` keyed by content only — unlike builtin ``hash()``,
    identical across processes, interpreter runs, and platforms, which
    is what routing tables require.
    """
    digest = hashlib.blake2b(
        material.encode("utf-8"), digest_size=8
    ).digest()
    return int.from_bytes(digest, "big")


def default_shard_ids(n_shards: int) -> Tuple[str, ...]:
    """The canonical shard id sequence ``shard-00 .. shard-(M-1)``."""
    return tuple(f"shard-{index:02d}" for index in range(n_shards))


class ShardRing:
    """A consistent-hash ring mapping session ids to shard ids.

    Each shard contributes ``replicas`` virtual nodes; a key routes to
    the first vnode clockwise from its digest. Routing is a pure
    function of ``(shard_ids, replicas, key)`` — no process state —
    and removing a shard leaves every other shard's vnodes in place,
    so only the removed shard's keys remigrate (~``1/M`` of the
    keyspace), the consistent-hashing property the failover tests pin.
    """

    def __init__(
        self,
        shards: Union[int, Sequence[str]],
        replicas: int = DEFAULT_RING_REPLICAS,
    ) -> None:
        if isinstance(shards, int):
            if shards < 1:
                raise ConfigurationError("need at least one shard")
            shard_ids: Tuple[str, ...] = default_shard_ids(shards)
        else:
            shard_ids = tuple(shards)
            if not shard_ids:
                raise ConfigurationError("need at least one shard")
            if len(set(shard_ids)) != len(shard_ids):
                raise ConfigurationError("shard ids must be unique")
        if replicas < 1:
            raise ConfigurationError("ring replicas must be >= 1")
        self.shard_ids = shard_ids
        self.replicas = replicas
        points: List[Tuple[int, str]] = [
            (
                _digest64(f"{_RING_SALT}|vnode|{shard_id}|{replica}"),
                shard_id,
            )
            for shard_id in shard_ids
            for replica in range(replicas)
        ]
        points.sort()
        self._points = points
        self._keys = [point for point, _ in points]

    def route(self, session_id: str) -> str:
        """The shard id owning ``session_id``."""
        point = _digest64(f"{_RING_SALT}|key|{session_id}")
        index = bisect.bisect_right(self._keys, point)
        if index == len(self._keys):
            index = 0
        return self._points[index][1]

    def table(self, session_ids: Sequence[str]) -> Dict[str, str]:
        """Routing table for a batch of session ids."""
        return {sid: self.route(sid) for sid in session_ids}

    def without(self, shard_id: str) -> "ShardRing":
        """The ring with one shard removed (failover reassignment)."""
        remaining = tuple(s for s in self.shard_ids if s != shard_id)
        if len(remaining) == len(self.shard_ids):
            raise ConfigurationError(f"unknown shard {shard_id!r}")
        return ShardRing(remaining, replicas=self.replicas)

    def with_shard(self, shard_id: str) -> "ShardRing":
        """The ring with one shard added (scale-out reassignment)."""
        if shard_id in self.shard_ids:
            raise ConfigurationError(f"duplicate shard {shard_id!r}")
        return ShardRing(
            self.shard_ids + (shard_id,), replicas=self.replicas
        )


@dataclass(frozen=True)
class ShardConfig:
    """How to shard: worker count, ring shape, execution backend."""

    n_shards: int = 1
    replicas: int = DEFAULT_RING_REPLICAS
    backend: str = "serial"
    max_workers: Optional[int] = None
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_shards < 1:
            raise ConfigurationError("need at least one shard")
        if self.replicas < 1:
            raise ConfigurationError("ring replicas must be >= 1")
        if self.backend not in ("serial", "process"):
            raise ConfigurationError(
                f"shard backend must be 'serial' or 'process', "
                f"got {self.backend!r}"
            )
        if self.max_workers is not None and self.max_workers < 1:
            raise ConfigurationError("max workers must be >= 1")

    def shard_ids(self) -> Tuple[str, ...]:
        """Shard ids ``shard-00 .. shard-(M-1)``."""
        return default_shard_ids(self.n_shards)

    def ring(self) -> ShardRing:
        """The routing ring for this configuration."""
        return ShardRing(self.shard_ids(), replicas=self.replicas)


def _require_partitioned(config: ServeConfig) -> None:
    """Sharding without isolation would silently change the numbers."""
    if config.capacity_mode != "partitioned":
        raise ConfigurationError(
            "sharding requires ServeConfig(capacity_mode="
            "'partitioned'): with a shared virtual server, sessions "
            "couple through the global backlog and a sharded run would "
            "NOT match the unsharded service"
        )


def merge_service_reports(
    reports: Sequence[ServiceReport],
    latencies_s: Sequence[Sequence[float]],
    recoveries_s: Sequence[Sequence[float]],
    handoffs_s: Sequence[Sequence[float]] = (),
) -> ServiceReport:
    """Merge per-shard reports into one service-level report.

    Counters add; percentiles recompute from the pooled raw samples
    (bitwise what the unsharded service reports, since
    ``np.percentile`` sorts); ``busy_s`` is the makespan — the shards
    run concurrently, so the fleet is busy as long as its slowest
    member. Handoff counts add and the mean handoff latency pools the
    per-shard samples, so heterogeneous per-shard counters merge the
    same whatever order the shards are listed in (a sum of samples is
    permutation-invariant up to float association; the tests pin
    order-insensitivity of the merged numbers).
    """
    pooled: List[float] = [
        sample for samples in latencies_s for sample in samples
    ]
    recoveries: List[float] = [
        sample for samples in recoveries_s for sample in samples
    ]
    handoffs: List[float] = [
        sample for samples in handoffs_s for sample in samples
    ]
    return ServiceReport(
        updates_accepted=sum(r.updates_accepted for r in reports),
        updates_applied=sum(r.updates_applied for r in reports),
        updates_degraded=sum(r.updates_degraded for r in reports),
        updates_shed=sum(r.updates_shed for r in reports),
        full_batches=sum(r.full_batches for r in reports),
        degraded_batches=sum(r.degraded_batches for r in reports),
        catchup_poses=sum(r.catchup_poses for r in reports),
        p50_latency_s=_percentile_s(pooled, 50.0),
        p99_latency_s=_percentile_s(pooled, 99.0),
        max_latency_s=max(pooled) if pooled else 0.0,
        busy_s=max((r.busy_s for r in reports), default=0.0),
        updates_rejected=sum(r.updates_rejected for r in reports),
        updates_lost=sum(r.updates_lost for r in reports),
        recoveries=sum(r.recoveries for r in reports),
        mean_recovery_latency_s=(
            float(np.mean(recoveries)) if recoveries else 0.0
        ),
        handoffs=sum(r.handoffs for r in reports),
        # Sorting canonicalizes the float summation order, so the
        # merged mean is exactly permutation-invariant and matches the
        # unsharded service (which sorts too).
        mean_handoff_latency_s=(
            float(np.mean(np.sort(np.asarray(handoffs, dtype=float))))
            if handoffs
            else 0.0
        ),
    )


class ShardedLocalizationService:
    """An interactive facade over ``M`` independent service workers.

    Routes every per-session call through the ring; ``step`` runs one
    scheduling round on every worker, checking the ``serve.shard``
    reboot hook per shard index first — which is how the fault engine's
    ``pose_index`` trigger targets exactly one shard for failover.
    """

    def __init__(
        self,
        config: ServeConfig,
        shards: ShardConfig = ShardConfig(),
        cache: Optional[ResultCache] = None,
    ) -> None:
        _require_partitioned(config)
        self.config = config
        self.shards = shards
        self.ring = shards.ring()
        self._index_of = {
            shard_id: index
            for index, shard_id in enumerate(shards.shard_ids())
        }
        self.workers: Tuple[LocalizationService, ...] = tuple(
            LocalizationService(config, cache=cache)
            for _ in range(shards.n_shards)
        )

    def route(self, session_id: str) -> int:
        """The worker index owning ``session_id``."""
        return self._index_of[self.ring.route(session_id)]

    def worker_of(self, session_id: str) -> LocalizationService:
        """The worker owning ``session_id``."""
        return self.workers[self.route(session_id)]

    def open_session(
        self, session_id: str, grid: Grid2D, now_s: float = 0.0
    ) -> None:
        """Open a session on its ring-assigned worker."""
        self.worker_of(session_id).open_session(
            session_id, grid, now_s=now_s
        )

    def submit(
        self,
        session_id: str,
        measurement: ThroughRelayMeasurement,
        now_s: Optional[float] = None,
    ) -> Admission:
        """Ingest one measurement through the owning worker."""
        return self.worker_of(session_id).submit(
            session_id, measurement, now_s=now_s
        )

    def step(self, now_s: Optional[float] = None) -> None:
        """One scheduling round on every worker (reboot hooks first)."""
        for index, worker in enumerate(self.workers):
            if faults.rebooted("serve.shard", index=index, now_s=now_s):
                worker.kill_sessions(now_s)
            worker.step(now_s=now_s)

    def kill_shard(self, index: int, now_s: Optional[float] = None) -> int:
        """Crash one worker's session population (checkpoint + drop)."""
        return self.workers[index].kill_sessions(now_s)

    def drain(self, max_rounds: int = 10_000) -> int:
        """Drain every worker; returns total rounds taken."""
        return sum(w.drain(max_rounds=max_rounds) for w in self.workers)

    def finalize(
        self, session_id: str, now_s: Optional[float] = None
    ) -> Any:
        """Finalize a session on its owning worker."""
        return self.worker_of(session_id).finalize(session_id, now_s=now_s)

    def estimate(self, session_id: str) -> np.ndarray:
        """Freshest coarse estimate from the owning worker."""
        return self.worker_of(session_id).estimate(session_id)

    def estimates(self) -> Dict[str, np.ndarray]:
        """Merged current estimates across every worker."""
        merged: Dict[str, np.ndarray] = {}
        for worker in self.workers:
            merged.update(worker.estimates())
        return merged

    def final_ladder(
        self, session_id: str
    ) -> Tuple[Tuple[int, str], ...]:
        """Ladder transition log from the owning worker."""
        return self.worker_of(session_id).final_ladder(session_id)

    def session_data_loss(self, session_id: str) -> int:
        """Lost-update accounting from the owning worker."""
        return self.worker_of(session_id).session_data_loss(session_id)

    def report(self) -> ServiceReport:
        """Merged (sample-pooled) service report across the fleet."""
        return merge_service_reports(
            [w.report() for w in self.workers],
            [w.latency_samples() for w in self.workers],
            [w.recovery_latency_samples() for w in self.workers],
            [w.handoff_latency_samples() for w in self.workers],
        )


# -- whole-workload sharded replay -----------------------------------------------


@dataclass(frozen=True)
class _ShardPayload:
    """Everything one shard worker needs, picklable for process pools."""

    index: int
    shard_id: str
    config: ServeConfig
    events: Tuple[UpdateEvent, ...]
    grids: Dict[str, Grid2D]
    tag_positions: Dict[str, np.ndarray]
    duration_s: float
    fault_plan: Optional[faults.FaultPlan]
    seed: int
    cache_dir: Optional[str]


@dataclass(frozen=True)
class _ShardResult:
    """One shard's replay, summarized for in-order merging."""

    index: int
    shard_id: str
    report: ServiceReport
    latencies_s: Tuple[float, ...]
    recovery_latencies_s: Tuple[float, ...]
    handoff_latencies_s: Tuple[float, ...]
    estimates: Dict[str, np.ndarray]
    errors_m: Dict[str, float]
    ladders: Dict[str, Tuple[Tuple[int, str], ...]]
    session_loss: Dict[str, int]
    metrics_snapshot: Dict[str, Any]
    injected: int


@dataclass(frozen=True)
class ShardedRunReport:
    """A workload replayed through the sharded service, merged."""

    n_shards: int
    assignment: Dict[str, str]
    service: ServiceReport
    offered: int
    duration_s: float
    throughput_per_s: float
    shed_fraction: float
    degraded_fraction: float
    estimates: Dict[str, np.ndarray]
    errors_m: Dict[str, float]
    ladders: Dict[str, Tuple[Tuple[int, str], ...]]
    session_loss: Dict[str, int]
    per_shard: Tuple[ServiceReport, ...] = field(default_factory=tuple)
    injected: int = 0
    #: Raw per-update latency samples pooled across shards, sorted —
    #: what long-horizon consumers (``repro.soak``) pool further to
    #: compute whole-run percentiles instead of averaging per-run
    #: percentiles.
    latency_samples_s: Tuple[float, ...] = ()


def _replay_shard(payload: _ShardPayload) -> _ShardResult:
    """Replay one shard's event stream through a fresh worker.

    Runs identically in-process and in a pool worker: fresh metrics
    registry, optional fault engine engaged with this shard's spawned
    seed, event-driven submit+step loop with the ``serve.shard`` reboot
    hook checked at each event time, then drain and finalize every
    session (sorted) at the workload's end time — the explicit
    ``now_s`` keeps per-shard clocks aligned however events split.
    """
    registry = metrics.MetricsRegistry()
    cache = (
        ResultCache(payload.cache_dir)
        if payload.cache_dir is not None
        else None
    )
    engine: Optional[faults.FaultEngine] = None
    with metrics.activated(registry), contextlib.ExitStack() as stack:
        if payload.fault_plan is not None:
            engine = stack.enter_context(
                faults.engaged(payload.fault_plan, seed=payload.seed)
            )
        service = LocalizationService(payload.config, cache=cache)
        for session_id in sorted(payload.grids):
            service.open_session(
                session_id, payload.grids[session_id], now_s=0.0
            )
        for event in payload.events:
            if faults.rebooted(
                "serve.shard",
                index=payload.index,
                now_s=event.time_s,
            ):
                service.kill_sessions(event.time_s)
            service.submit(
                event.session_id,
                event.measurement,
                now_s=event.time_s,
            )
            service.step()
        service.drain()
        estimates: Dict[str, np.ndarray] = {}
        errors_m: Dict[str, float] = {}
        ladders: Dict[str, Tuple[Tuple[int, str], ...]] = {}
        for session_id in sorted(payload.grids):
            live = service.store.sessions().get(session_id)
            if live is not None and live.degraded.n_poses < 2:
                continue
            try:
                result = service.finalize(
                    session_id, now_s=payload.duration_s
                )
            except (ServeError, LocalizationError):
                # Dead without a checkpoint, or restored with too
                # little data for a fix — a session-local outcome,
                # so skipping it is shard-invariant.
                continue
            estimates[session_id] = result.position
            errors_m[session_id] = float(
                np.linalg.norm(
                    result.position - payload.tag_positions[session_id]
                )
            )
            ladders[session_id] = service.final_ladder(session_id)
        session_loss = {
            session_id: service.session_data_loss(session_id)
            for session_id in sorted(payload.grids)
            if service.session_data_loss(session_id)
        }
        return _ShardResult(
            index=payload.index,
            shard_id=payload.shard_id,
            report=service.report(),
            latencies_s=service.latency_samples(),
            recovery_latencies_s=service.recovery_latency_samples(),
            handoff_latencies_s=service.handoff_latency_samples(),
            estimates=estimates,
            errors_m=errors_m,
            ladders=ladders,
            session_loss=session_loss,
            metrics_snapshot=registry.snapshot(),
            injected=len(engine.injections) if engine is not None else 0,
        )


def run_sharded_workload(
    workload: TrafficWorkload,
    config: ServeConfig,
    shards: ShardConfig = ShardConfig(),
    cache: Optional[ResultCache] = None,
    fault_plan: Optional[faults.FaultPlan] = None,
) -> ShardedRunReport:
    """Replay a workload across ``M`` shards and merge the results.

    Partitions the event stream by the routing ring, replays every
    shard independently (serially in-process or over a process pool —
    bit-identical either way, the sweep-engine discipline), and merges
    in shard order. With ``n_shards=1`` this *is* the unsharded serial
    service; the equivalence suite pins ``M > 1`` against it.

    Fault engines are per shard, seeded by ``SeedSequence`` children of
    ``shards.seed`` (the sweep engine's spawn discipline), so injected
    failover is reproducible under either backend.
    """
    _require_partitioned(config)
    ring = shards.ring()
    session_ids = sorted(workload.grids)
    assignment = ring.table(session_ids)
    seeds = spawn_task_seeds(shards.seed, shards.n_shards)
    payloads: List[_ShardPayload] = []
    for index, shard_id in enumerate(shards.shard_ids()):
        owned = [s for s in session_ids if assignment[s] == shard_id]
        payloads.append(
            _ShardPayload(
                index=index,
                shard_id=shard_id,
                config=config,
                events=tuple(
                    event
                    for event in workload.events
                    if assignment[event.session_id] == shard_id
                ),
                grids={s: workload.grids[s] for s in owned},
                tag_positions={
                    s: workload.tag_positions[s] for s in owned
                },
                duration_s=workload.duration_s,
                fault_plan=fault_plan,
                seed=seeds[index],
                cache_dir=(
                    str(cache.cache_dir) if cache is not None else None
                ),
            )
        )
    with tracing.span(
        "serve.shard.run",
        shards=shards.n_shards,
        backend=shards.backend,
        events=len(workload.events),
    ):
        if shards.backend == "process" and shards.n_shards > 1:
            results = map_in_processes(
                _replay_shard,
                payloads,
                max_workers=shards.max_workers or shards.n_shards,
            )
        else:
            results = [_replay_shard(payload) for payload in payloads]
    registry = metrics.active_registry()
    estimates: Dict[str, np.ndarray] = {}
    errors_m: Dict[str, float] = {}
    ladders: Dict[str, Tuple[Tuple[int, str], ...]] = {}
    session_loss: Dict[str, int] = {}
    for result in results:
        estimates.update(result.estimates)
        errors_m.update(result.errors_m)
        ladders.update(result.ladders)
        session_loss.update(result.session_loss)
        if registry is not None:
            registry.merge_snapshot(result.metrics_snapshot)
            registry.set_gauge(
                f"serve.shard.{result.index}.sessions",
                float(
                    sum(
                        1
                        for shard_id in assignment.values()
                        if shard_id == result.shard_id
                    )
                ),
            )
            registry.set_gauge(
                f"serve.shard.{result.index}.applied",
                float(result.report.updates_applied),
            )
    merged = merge_service_reports(
        [result.report for result in results],
        [result.latencies_s for result in results],
        [result.recovery_latencies_s for result in results],
        [result.handoff_latencies_s for result in results],
    )
    offered = len(workload.events)
    busy_s = max(merged.busy_s, 1e-12)
    return ShardedRunReport(
        n_shards=shards.n_shards,
        assignment=assignment,
        service=merged,
        offered=offered,
        duration_s=workload.duration_s,
        throughput_per_s=merged.updates_applied / busy_s,
        shed_fraction=merged.updates_shed / max(1, offered),
        degraded_fraction=(
            merged.updates_degraded / max(1, merged.updates_applied)
        ),
        estimates=estimates,
        errors_m=errors_m,
        ladders=ladders,
        session_loss=session_loss,
        per_shard=tuple(result.report for result in results),
        injected=sum(result.injected for result in results),
        latency_samples_s=tuple(
            sorted(
                sample
                for result in results
                for sample in result.latencies_s
            )
        ),
    )
