"""Online streaming localization serving (the inference-serving layer).

RFly's estimates are computed from measurements accumulated *while the
drone flies* (Eq. 10-12); this package serves them that way. Per-pose
measurements stream into per-tag sessions; a micro-batch scheduler
coalesces pending updates into vectorized grid projections on a
virtual-time cost model; bounded queues shed overload at ingest; and a
latency SLO walks an explicit degradation ladder (full grid -> coarse
multires grid -> shed) whose deferred work is caught up *exactly*
later, because the SAR accumulation is linear.

Layout:

* :mod:`~repro.serve.config` — :class:`ServeConfig`: SLOs, bounds, and
  the deterministic virtual cost model.
* :mod:`~repro.serve.clock` — the monotonic virtual clock.
* :mod:`~repro.serve.queueing` — bounded buffers + admission control.
* :mod:`~repro.serve.session` — :class:`TagSession` (dual incremental
  accumulators) and the TTL/checkpoint :class:`SessionStore`.
* :mod:`~repro.serve.scheduler` — deterministic micro-batch rounds and
  the degradation decision.
* :mod:`~repro.serve.service` — the :class:`LocalizationService`
  facade (submit / step / estimate / finalize).
* :mod:`~repro.serve.traffic` — the Gen2-MAC-driven traffic generator
  and workload replay.
* :mod:`~repro.serve.shard` — consistent-hash sharding across ``M``
  independent workers, bit-identical (under partitioned capacity
  isolation) to the unsharded service.

``python -m repro.serve`` smoke-runs a generated workload against the
service and (with ``--obs-dir``) writes trace/metrics artifacts.
"""

from __future__ import annotations

from repro.serve.clock import VirtualClock
from repro.serve.config import ServeConfig
from repro.serve.queueing import Admission, BoundedBuffer, PendingUpdate
from repro.serve.scheduler import BatchPlan, MicroBatchScheduler
from repro.serve.service import (
    LocalizationService,
    ServiceReport,
    StepReport,
)
from repro.serve.session import SessionStats, SessionStore, TagSession
from repro.serve.shard import (
    ShardConfig,
    ShardedLocalizationService,
    ShardedRunReport,
    ShardRing,
    run_sharded_workload,
)
from repro.serve.traffic import (
    ServeRunReport,
    TrafficWorkload,
    UpdateEvent,
    generate_workload,
    run_workload,
)

__all__ = [
    "Admission",
    "BatchPlan",
    "BoundedBuffer",
    "LocalizationService",
    "MicroBatchScheduler",
    "PendingUpdate",
    "ServeConfig",
    "ServeRunReport",
    "ServiceReport",
    "SessionStats",
    "SessionStore",
    "ShardConfig",
    "ShardRing",
    "ShardedLocalizationService",
    "ShardedRunReport",
    "StepReport",
    "TagSession",
    "TrafficWorkload",
    "UpdateEvent",
    "VirtualClock",
    "generate_workload",
    "run_sharded_workload",
    "run_workload",
]
