"""Smoke-run the traffic generator against the service.

Usage::

    python -m repro.serve --tags 4 --seed 0 --load 4.0
    python -m repro.serve --smoke --obs-dir reports/obs

Generates a seeded Gen2-MAC traffic workload, replays it through a
fresh :class:`~repro.serve.service.LocalizationService`, prints the
throughput/latency table, and — when ``--obs-dir`` is given — writes
``serve.trace.jsonl`` and ``serve.metrics.json`` artifacts (the files
CI uploads).
"""

from __future__ import annotations

import argparse
from pathlib import Path
from typing import List, Optional

from repro.constants import UHF_CENTER_FREQUENCY
from repro.obs import (
    MetricsRegistry,
    Tracer,
    wall_clock_s,
    write_spans_jsonl,
)
from repro.obs import metrics as metrics_mod
from repro.obs import tracing as tracing_mod
from repro.serve.config import ServeConfig
from repro.serve.shard import (
    ShardConfig,
    ShardedRunReport,
    run_sharded_workload,
)
from repro.serve.traffic import ServeRunReport, generate_workload, run_workload


def build_parser() -> argparse.ArgumentParser:
    """The ``python -m repro.serve`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description=(
            "Replay a generated traffic workload through the online "
            "localization service."
        ),
    )
    parser.add_argument(
        "--tags", type=int, default=4, help="tag population size"
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="workload seed"
    )
    parser.add_argument(
        "--load",
        type=float,
        default=4.0,
        help="arrival-time compression factor (1.0 = real flight pace)",
    )
    parser.add_argument(
        "--latency-slo-ms",
        type=float,
        default=250.0,
        help="target p99 latency in milliseconds",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=1,
        help=(
            "consistent-hash shard the service across this many workers "
            "(>1 switches to partitioned capacity isolation; the "
            "numbers stay bit-identical to the partitioned unsharded "
            "service)"
        ),
    )
    parser.add_argument(
        "--shard-backend",
        choices=("serial", "process"),
        default="serial",
        help="how shard replays execute (only meaningful with --shards > 1)",
    )
    parser.add_argument(
        "--no-gen2",
        action="store_true",
        help="skip the Gen2 MAC (every powered tag reads at every pose)",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small fast run (3 tags, coarse grid) for CI",
    )
    parser.add_argument(
        "--obs-dir",
        default=None,
        metavar="DIR",
        help="write serve.trace.jsonl / serve.metrics.json here",
    )
    return parser


def _render_report(report: "ServeRunReport | ShardedRunReport") -> str:
    """The fixed-width summary table of one replayed workload."""
    service = report.service
    lines = [
        "== serve: online localization service ==",
        f"offered updates      {report.offered}",
        f"applied updates      {service.updates_applied}",
        f"shed fraction        {report.shed_fraction:.3f}",
        f"degraded fraction    {report.degraded_fraction:.3f}",
        f"throughput (upd/s)   {report.throughput_per_s:.1f}",
        f"p50 latency (ms)     {service.p50_latency_s * 1e3:.2f}",
        f"p99 latency (ms)     {service.p99_latency_s * 1e3:.2f}",
    ]
    for session_id in sorted(report.estimates):
        estimate = report.estimates[session_id]
        lines.append(
            f"{session_id}: estimate ({estimate[0]:.3f}, {estimate[1]:.3f})"
            f"  error {report.errors_m[session_id]:.3f} m"
        )
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    n_tags = 3 if args.smoke else args.tags
    grid_resolution = 0.15 if args.smoke else 0.10
    config = ServeConfig(
        frequency_hz=UHF_CENTER_FREQUENCY,
        latency_slo_s=args.latency_slo_ms / 1e3,
    )
    tracer = Tracer()
    registry = MetricsRegistry()
    start_s = wall_clock_s()
    with tracing_mod.activated(tracer), metrics_mod.activated(registry):
        workload = generate_workload(
            n_tags=n_tags,
            seed=args.seed,
            load=args.load,
            grid_resolution=grid_resolution,
            use_gen2_mac=not args.no_gen2,
        )
        if args.shards > 1:
            config = ServeConfig(
                frequency_hz=config.frequency_hz,
                latency_slo_s=config.latency_slo_s,
                capacity_mode="partitioned",
            )
            report = run_sharded_workload(
                workload,
                config,
                shards=ShardConfig(
                    n_shards=args.shards, backend=args.shard_backend
                ),
            )
        else:
            report = run_workload(workload, config)
    print(_render_report(report))
    if args.obs_dir is not None:
        obs_dir = Path(args.obs_dir)
        obs_dir.mkdir(parents=True, exist_ok=True)
        write_spans_jsonl(
            obs_dir / "serve.trace.jsonl", tracer.root_dicts()
        )
        registry.save_json(obs_dir / "serve.metrics.json")
        print(f"[obs artifacts written to {obs_dir}]")
    print(f"[serve replay finished in {wall_clock_s() - start_s:.1f} s]")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI test
    raise SystemExit(main())
