"""The service's virtual clock.

Serving is simulated on a deterministic clock: arrivals carry their own
timestamps (from the traffic generator or the caller) and service time
is charged by the cost model in :class:`repro.serve.config.ServeConfig`.
No wall clock is ever read on the data path — ``repro.obs`` spans keep
their own wall times for profiling, but every latency the service
*reports* is virtual, which is what makes the serve tables reproduce
bit-for-bit under a fixed seed.
"""

from __future__ import annotations


class VirtualClock:
    """A monotonic, manually-advanced clock (seconds)."""

    def __init__(self, start_s: float = 0.0) -> None:
        self._now_s = float(start_s)

    @property
    def now_s(self) -> float:
        """The current virtual time."""
        return self._now_s

    def advance_to(self, time_s: float) -> float:
        """Move forward to ``time_s`` (late timestamps clamp: no rewind).

        Out-of-order arrivals are legal — an event stamped earlier than
        the clock is processed *now* rather than rewriting history —
        so the clock only ever moves forward.
        """
        self._now_s = max(self._now_s, float(time_s))
        return self._now_s
