"""Bounded per-session queues and admission control.

Every pending update sits in exactly one session's
:class:`BoundedBuffer`. The bound is the backpressure contract: when a
session's buffer is full the new arrival is *shed at ingest* and the
caller is told so (:class:`Admission`), rather than growing an
unbounded queue that converts overload into unbounded latency. This
module is why ``repro/serve/`` is the one place reprolint's O502 rule
permits raw ``deque`` construction — the bound lives here, enforced
explicitly, with the shed path instrumented.
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass
from typing import Deque, List, Optional

import numpy as np

from repro.errors import ConfigurationError


class Admission(enum.Enum):
    """What happened to a submitted update at the queue boundary."""

    ACCEPTED = "accepted"
    SHED = "shed"
    REJECTED = "rejected"
    """Refused by a recovery policy (retries exhausted, reference lost)
    rather than by queue capacity — always counted, never silent."""


@dataclass(frozen=True)
class PendingUpdate:
    """One ingested, disentangled pose waiting to be folded in.

    ``channel`` is the isolated relay-tag half-link (Eq. 10) — the
    division happens at ingest so a micro-batch is a pure vectorized
    grid projection.
    """

    position: np.ndarray
    channel: complex
    arrival_s: float
    seq: int
    #: Serving relay's name (``""`` on single-relay paths); a change
    #: between consecutive staged updates is a session handoff.
    relay: str = ""


class BoundedBuffer:
    """FIFO of pending updates with a hard capacity.

    ``deque`` is deliberately constructed without ``maxlen``: a maxlen
    deque silently drops from the head (oldest first), which would shed
    the *wrong* end and hide the drop from the caller. Admission is
    checked explicitly in :meth:`offer` so every shed is counted and
    reported.
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ConfigurationError(
                f"queue capacity must be >= 1, got {capacity}"
            )
        self.capacity = int(capacity)
        self._items: Deque[PendingUpdate] = deque()

    def __len__(self) -> int:
        return len(self._items)

    @property
    def oldest_arrival_s(self) -> Optional[float]:
        """Arrival time of the head update, or ``None`` when empty."""
        return self._items[0].arrival_s if self._items else None

    def offer(self, update: PendingUpdate) -> Admission:
        """Admit or shed one update against the capacity bound."""
        if len(self._items) >= self.capacity:
            return Admission.SHED
        self._items.append(update)
        return Admission.ACCEPTED

    def take(self, limit: int) -> List[PendingUpdate]:
        """Pop up to ``limit`` updates in FIFO order."""
        if limit < 1:
            return []
        taken: List[PendingUpdate] = []
        while self._items and len(taken) < limit:
            taken.append(self._items.popleft())
        return taken
