"""Per-tag sessions and the TTL/checkpoint session store.

A :class:`TagSession` owns two incremental accumulators over the same
extent: the *full* session grid and a *degraded* grid
``degraded_resolution_factor`` times coarser. Every update always lands
in the degraded accumulator (it is cheap and keeps the quick estimate
complete); FULL-mode batches also land in the full accumulator, while
DEGRADED-mode batches defer that fold-in to a lag list. Because the
coherent sum is linear, catching up later is *exact* — degradation
trades estimate resolution now for zero accuracy loss at finalize.

The :class:`SessionStore` bounds live sessions, evicts quiesced ones
after a TTL, and (when given a :class:`repro.runtime.ResultCache`)
checkpoints evicted state so a later submit transparently restores the
session — the same content-addressed atomic-write cache the sweep
engine uses for task payloads.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ServeError, SessionNotFoundError
from repro.localization.batched import PoseBlock
from repro.localization.grid import Grid2D
from repro.localization.incremental import IncrementalSar
from repro.localization.pipeline import LocalizationResult
from repro.obs import metrics
from repro.runtime.cache import ResultCache
from repro.serve.config import ServeConfig
from repro.serve.queueing import Admission, BoundedBuffer, PendingUpdate


def _checkpoint_key(session_id: str) -> str:
    """Content address of one session's checkpoint payload."""
    material = f"serve-session:{session_id}".encode("utf-8")
    return hashlib.sha256(material).hexdigest()


@dataclass
class SessionStats:
    """Ingest/apply counters for one session."""

    accepted: int = 0
    shed: int = 0
    applied_full: int = 0
    applied_degraded: int = 0
    caught_up: int = 0


def _degraded_grid(grid: Grid2D, factor: float) -> Grid2D:
    """The coarse fallback grid: same extent, ``factor`` x resolution."""
    resolution = min(
        grid.resolution * factor,
        (grid.x_max - grid.x_min) / 2.0,
        (grid.y_max - grid.y_min) / 2.0,
    )
    return Grid2D(
        x_min=grid.x_min,
        x_max=grid.x_max,
        y_min=grid.y_min,
        y_max=grid.y_max,
        resolution=resolution,
    )


class TagSession:
    """Streaming localization state for one tag."""

    def __init__(
        self,
        session_id: str,
        config: ServeConfig,
        grid: Grid2D,
        opened_s: float = 0.0,
    ) -> None:
        self.session_id = str(session_id)
        self.config = config
        self.grid = grid
        self.opened_s = float(opened_s)
        self.last_seen_s = float(opened_s)
        self.pending = BoundedBuffer(config.queue_capacity)
        self.stats = SessionStats()
        self.full = IncrementalSar(
            config.frequency_hz,
            grid,
            chunk_nodes=config.chunk_nodes,
            fine_resolution=config.fine_resolution,
            fine_span=config.fine_span,
            relative_threshold=config.relative_threshold,
            use_nearest_peak_rule=config.use_nearest_peak_rule,
        )
        self.degraded = IncrementalSar(
            config.frequency_hz,
            _degraded_grid(grid, config.degraded_resolution_factor),
            chunk_nodes=config.chunk_nodes,
            fine_resolution=min(
                config.fine_resolution, grid.resolution
            ),
            fine_span=config.fine_span,
            relative_threshold=config.relative_threshold,
            use_nearest_peak_rule=config.use_nearest_peak_rule,
        )
        self._lag: List[Tuple[np.ndarray, np.ndarray]] = []
        self._lag_poses = 0
        #: Degradation-ladder transition log: ``(applied_before, mode)``
        #: per mode change, keyed by the session-local applied-update
        #: count so the log is invariant to how sessions are sharded.
        self.ladder: List[Tuple[int, str]] = []

    # -- ingest ------------------------------------------------------------------

    def offer(self, update: PendingUpdate, now_s: float) -> Admission:
        """Admit or shed one arrival; touches the TTL clock either way."""
        self.last_seen_s = max(self.last_seen_s, float(now_s))
        admission = self.pending.offer(update)
        if admission is Admission.ACCEPTED:
            self.stats.accepted += 1
        else:
            self.stats.shed += 1
        return admission

    # -- scheduler-facing state --------------------------------------------------

    @property
    def lag_poses(self) -> int:
        """Deferred full-resolution poses awaiting catch-up."""
        return self._lag_poses

    @property
    def full_nodes(self) -> int:
        """Projection cost (nodes) of one pose on the full grid."""
        return self.full.n_nodes

    @property
    def degraded_nodes(self) -> int:
        """Projection cost (nodes) of one pose on the degraded grid."""
        return self.degraded.n_nodes

    # -- applying work -----------------------------------------------------------

    def _record_mode(self, degraded: bool) -> None:
        """Log a ladder transition (FULL <-> DEGRADED), if one happened.

        The position key is the session-local applied-update count
        *before* this batch — never a service-global sequence number,
        which would vary with how sessions are packed onto shards.
        """
        mode = "degraded" if degraded else "full"
        if not self.ladder or self.ladder[-1][1] != mode:
            applied = self.stats.applied_full + self.stats.applied_degraded
            self.ladder.append((applied, mode))

    def stage_batch(
        self, updates: Sequence[PendingUpdate], degraded: bool
    ) -> List[PoseBlock]:
        """Bookkeep one planned micro-batch and stage its folds.

        Performs every side effect of :meth:`apply_batch` *except* the
        accumulator arithmetic, which it returns as
        :class:`~repro.localization.batched.PoseBlock` entries for the
        round's single stacked kernel call. FULL mode stages both
        accumulators; DEGRADED mode stages only the cheap one and
        defers the full-resolution fold-in to the lag list.
        """
        if not updates:
            return []
        positions = np.stack([u.position for u in updates])
        channels = np.array([u.channel for u in updates], dtype=complex)
        self._record_mode(degraded)
        blocks = [PoseBlock(self.degraded, positions, channels)]
        if degraded:
            self._lag.append((positions, channels))
            self._lag_poses += len(updates)
            self.stats.applied_degraded += len(updates)
        else:
            blocks.append(PoseBlock(self.full, positions, channels))
            self.stats.applied_full += len(updates)
        return blocks

    def apply_batch(
        self, updates: Sequence[PendingUpdate], degraded: bool
    ) -> int:
        """Fold one micro-batch in; returns grid nodes projected.

        The scalar path: stages the batch and executes each fold
        through the session's own accumulators inline (the batched
        service collects the staged blocks of a whole round instead).
        """
        projected = 0
        for block in self.stage_batch(updates, degraded):
            projected += block.target.update(block.positions, block.channels)
        return projected

    def stage_catchup(
        self, max_poses: Optional[int] = None
    ) -> List[PoseBlock]:
        """Pop deferred poses off the lag list and stage their folds.

        ``max_poses`` bounds the work (scheduler budget); ``None``
        drains the whole lag (finalize / idle). Bookkeeping happens
        here; the returned blocks carry the actual arithmetic.
        """
        blocks: List[PoseBlock] = []
        caught = 0
        while self._lag and (max_poses is None or caught < max_poses):
            positions, channels = self._lag[0]
            budget = len(positions)
            if max_poses is not None:
                budget = min(budget, max_poses - caught)
            if budget < len(positions):
                head_positions, head_channels = (
                    positions[:budget],
                    channels[:budget],
                )
                self._lag[0] = (positions[budget:], channels[budget:])
            else:
                head_positions, head_channels = positions, channels
                self._lag.pop(0)
            blocks.append(PoseBlock(self.full, head_positions, head_channels))
            caught += len(head_positions)
        self._lag_poses -= caught
        self.stats.caught_up += caught
        return blocks

    def catch_up(self, max_poses: Optional[int] = None) -> int:
        """Fold deferred poses into the full accumulator; returns nodes.

        The scalar counterpart of :meth:`stage_catchup`, folding each
        staged block inline.
        """
        projected = 0
        for block in self.stage_catchup(max_poses):
            projected += block.target.update(block.positions, block.channels)
        return projected

    # -- readout -----------------------------------------------------------------

    def estimate(self) -> np.ndarray:
        """The freshest complete estimate (coarse argmax, no fine stage).

        The full accumulator wins when it has seen everything; while it
        lags (degraded mode), the degraded accumulator — which always
        sees every pose — answers instead.
        """
        if self._lag_poses == 0 and self.full.n_poses > 0:
            return self.full.estimate()
        return self.degraded.estimate()

    def finalize(self) -> LocalizationResult:
        """Catch up in full and run the batch-equivalent fine stage."""
        self.catch_up(None)
        return self.full.finalize()

    # -- checkpointing -----------------------------------------------------------

    def checkpoint_payload(self) -> Dict[str, Any]:
        """A picklable snapshot of everything but the pending queue.

        Only quiesced sessions (empty queue) are checkpointed, so the
        queue is deliberately absent from the payload.
        """
        return {
            "session_id": self.session_id,
            "opened_s": self.opened_s,
            "last_seen_s": self.last_seen_s,
            "full": self.full.to_payload(),
            "degraded": self.degraded.to_payload(),
            "lag": [(p.copy(), c.copy()) for p, c in self._lag],
            "ladder": [tuple(entry) for entry in self.ladder],
            "stats": {
                "accepted": self.stats.accepted,
                "shed": self.stats.shed,
                "applied_full": self.stats.applied_full,
                "applied_degraded": self.stats.applied_degraded,
                "caught_up": self.stats.caught_up,
            },
        }

    @classmethod
    def from_payload(
        cls, payload: Dict[str, Any], config: ServeConfig
    ) -> "TagSession":
        """Rebuild a session from :meth:`checkpoint_payload` output."""
        full = IncrementalSar.from_payload(payload["full"])
        session = cls(
            payload["session_id"],
            config,
            full.grid,
            opened_s=payload["opened_s"],
        )
        session.full = full
        session.degraded = IncrementalSar.from_payload(payload["degraded"])
        session.last_seen_s = float(payload["last_seen_s"])
        session._lag = [
            (np.asarray(p, dtype=float), np.asarray(c, dtype=complex))
            for p, c in payload["lag"]
        ]
        session._lag_poses = sum(len(p) for p, _ in session._lag)
        session.ladder = [
            (int(applied), str(mode))
            for applied, mode in payload.get("ladder", [])
        ]
        session.stats = SessionStats(**payload["stats"])
        return session


class SessionStore:
    """Live sessions with TTL eviction and checkpoint/restore."""

    def __init__(
        self, config: ServeConfig, cache: Optional[ResultCache] = None
    ) -> None:
        self.config = config
        self.cache = cache
        self._sessions: Dict[str, TagSession] = {}

    def __len__(self) -> int:
        return len(self._sessions)

    def ids(self) -> List[str]:
        """Live session ids (insertion order)."""
        return list(self._sessions)

    def sessions(self) -> Dict[str, TagSession]:
        """The live session mapping (shared, not a copy)."""
        return self._sessions

    def open(
        self, session_id: str, grid: Grid2D, now_s: float = 0.0
    ) -> TagSession:
        """Create a fresh session under ``session_id``."""
        if session_id in self._sessions:
            raise ServeError(f"session {session_id!r} is already open")
        if len(self._sessions) >= self.config.max_sessions:
            raise ServeError(
                f"session limit reached ({self.config.max_sessions}); "
                "finalize or wait for TTL eviction"
            )
        session = TagSession(session_id, self.config, grid, opened_s=now_s)
        self._sessions[session_id] = session
        metrics.set_gauge("serve.sessions.active", len(self._sessions))
        return session

    def get(self, session_id: str) -> TagSession:
        """The live session, or :class:`SessionNotFoundError`."""
        session = self._sessions.get(session_id)
        if session is None:
            raise SessionNotFoundError(
                f"no live session {session_id!r} (expired or never opened)"
            )
        return session

    def get_or_restore(self, session_id: str, now_s: float) -> TagSession:
        """The live session, transparently restoring a checkpoint."""
        session = self._sessions.get(session_id)
        if session is not None:
            return session
        restored = self.restore(session_id, now_s)
        if restored is None:
            raise SessionNotFoundError(
                f"no live session {session_id!r} and no checkpoint to "
                "restore it from"
            )
        return restored

    def close(self, session_id: str) -> None:
        """Drop a session and forget any checkpoint of it."""
        self._sessions.pop(session_id, None)
        if self.cache is not None:
            path = self.cache.path_for(_checkpoint_key(session_id))
            try:
                path.unlink()
            except OSError:
                pass
        metrics.set_gauge("serve.sessions.active", len(self._sessions))

    def kill(self, session_id: str) -> int:
        """Crash-drop one live session; returns pending updates lost.

        Models an injected service kill: the session's accumulators are
        checkpointed (what a crash-consistent store would have synced)
        but its in-memory pending queue is *lost* — the caller counts
        those loudly. With no cache attached nothing survives, and a
        later submit fails with :class:`SessionNotFoundError`.
        """
        session = self.get(session_id)
        lost = len(session.pending)
        if self.cache is not None:
            self.cache.store(
                _checkpoint_key(session_id), session.checkpoint_payload()
            )
        del self._sessions[session_id]
        metrics.count("serve.sessions.killed")
        metrics.set_gauge("serve.sessions.active", len(self._sessions))
        return lost

    # -- TTL / checkpointing -----------------------------------------------------

    def evict_expired(self, now_s: float) -> List[str]:
        """Evict quiesced sessions idle past the TTL; returns their ids.

        Sessions with queued work are never evicted — shedding accepted
        updates silently would break the admission contract.
        """
        expired = [
            session_id
            for session_id, session in self._sessions.items()
            if len(session.pending) == 0
            and (now_s - session.last_seen_s) > self.config.session_ttl_s
        ]
        for session_id in expired:
            session = self._sessions.pop(session_id)
            if self.cache is not None:
                self.cache.store(
                    _checkpoint_key(session_id),
                    session.checkpoint_payload(),
                )
            metrics.count("serve.sessions.evicted")
        if expired:
            metrics.set_gauge("serve.sessions.active", len(self._sessions))
        return expired

    def restore(
        self, session_id: str, now_s: float
    ) -> Optional[TagSession]:
        """Resurrect an evicted session from its checkpoint, if any."""
        if self.cache is None:
            return None
        if len(self._sessions) >= self.config.max_sessions:
            raise ServeError(
                f"session limit reached ({self.config.max_sessions}); "
                f"cannot restore {session_id!r}"
            )
        hit, payload = self.cache.load(_checkpoint_key(session_id))
        if not hit:
            return None
        session = TagSession.from_payload(payload, self.config)
        session.last_seen_s = max(session.last_seen_s, float(now_s))
        self._sessions[session_id] = session
        metrics.count("serve.sessions.restored")
        metrics.set_gauge("serve.sessions.active", len(self._sessions))
        return session
