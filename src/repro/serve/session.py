"""Per-tag sessions and the TTL/checkpoint session store.

A :class:`TagSession` owns two incremental accumulators over the same
extent: the *full* session grid and a *degraded* grid
``degraded_resolution_factor`` times coarser. Every update always lands
in the degraded accumulator (it is cheap and keeps the quick estimate
complete); FULL-mode batches also land in the full accumulator, while
DEGRADED-mode batches defer that fold-in to a lag list. Because the
coherent sum is linear, catching up later is *exact* — degradation
trades estimate resolution now for zero accuracy loss at finalize.

The :class:`SessionStore` bounds live sessions, evicts quiesced ones
after a TTL, and (when given a :class:`repro.runtime.ResultCache`)
checkpoints evicted state so a later submit transparently restores the
session — the same content-addressed atomic-write cache the sweep
engine uses for task payloads.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ServeError, SessionNotFoundError
from repro.localization.batched import PoseBlock
from repro.localization.grid import Grid2D
from repro.localization.incremental import (
    IncrementalSar,
    combined_coarse,
    finalize_segments,
)
from repro.localization.pipeline import LocalizationResult
from repro.obs import metrics
from repro.runtime.cache import ResultCache
from repro.serve.config import ServeConfig
from repro.serve.queueing import Admission, BoundedBuffer, PendingUpdate


def _checkpoint_key(session_id: str) -> str:
    """Content address of one session's checkpoint payload."""
    material = f"serve-session:{session_id}".encode("utf-8")
    return hashlib.sha256(material).hexdigest()


@dataclass
class SessionStats:
    """Ingest/apply counters for one session."""

    accepted: int = 0
    shed: int = 0
    applied_full: int = 0
    applied_degraded: int = 0
    caught_up: int = 0


def _degraded_grid(grid: Grid2D, factor: float) -> Grid2D:
    """The coarse fallback grid: same extent, ``factor`` x resolution."""
    resolution = min(
        grid.resolution * factor,
        (grid.x_max - grid.x_min) / 2.0,
        (grid.y_max - grid.y_min) / 2.0,
    )
    return Grid2D(
        x_min=grid.x_min,
        x_max=grid.x_max,
        y_min=grid.y_min,
        y_max=grid.y_max,
        resolution=resolution,
    )


class TagSession:
    """Streaming localization state for one tag."""

    def __init__(
        self,
        session_id: str,
        config: ServeConfig,
        grid: Grid2D,
        opened_s: float = 0.0,
    ) -> None:
        self.session_id = str(session_id)
        self.config = config
        self.grid = grid
        self.opened_s = float(opened_s)
        self.last_seen_s = float(opened_s)
        self.pending = BoundedBuffer(config.queue_capacity)
        self.stats = SessionStats()
        self.full = self._fresh_full()
        self.degraded = self._fresh_degraded()
        self._lag: List[Tuple[np.ndarray, np.ndarray]] = []
        self._lag_poses = 0
        #: Degradation-ladder transition log: ``(applied_before, mode)``
        #: per mode change, keyed by the session-local applied-update
        #: count so the log is invariant to how sessions are sharded.
        self.ladder: List[Tuple[int, str]] = []
        #: Which fleet relay the *active* accumulators belong to. None
        #: until the first staged update; the single-relay paths tag
        #: updates with ``relay=""``, which is a legal (constant) name,
        #: so legacy sessions stay on one segment forever.
        self.active_relay: Optional[str] = None
        #: Relay named by the most recently *ingested* update (the
        #: ``relay.handoff`` fault site triggers on changes here).
        self.last_ingest_relay: Optional[str] = None
        #: Completed segment switches (one per serving-relay change).
        self.handoffs = 0
        #: Archived per-relay segments: phase disentanglement leaves a
        #: per-relay constant phase in every channel, so accumulators
        #: must never sum coherently across relays — each relay keeps
        #: its own (full, degraded, lag) triple, swapped in on handoff.
        self._archive: Dict[str, Dict[str, Any]] = {}

    def _fresh_full(self) -> IncrementalSar:
        return IncrementalSar(
            self.config.frequency_hz,
            self.grid,
            chunk_nodes=self.config.chunk_nodes,
            fine_resolution=self.config.fine_resolution,
            fine_span=self.config.fine_span,
            relative_threshold=self.config.relative_threshold,
            use_nearest_peak_rule=self.config.use_nearest_peak_rule,
        )

    def _fresh_degraded(self) -> IncrementalSar:
        return IncrementalSar(
            self.config.frequency_hz,
            _degraded_grid(
                self.grid, self.config.degraded_resolution_factor
            ),
            chunk_nodes=self.config.chunk_nodes,
            fine_resolution=min(
                self.config.fine_resolution, self.grid.resolution
            ),
            fine_span=self.config.fine_span,
            relative_threshold=self.config.relative_threshold,
            use_nearest_peak_rule=self.config.use_nearest_peak_rule,
        )

    # -- ingest ------------------------------------------------------------------

    def offer(self, update: PendingUpdate, now_s: float) -> Admission:
        """Admit or shed one arrival; touches the TTL clock either way."""
        self.last_seen_s = max(self.last_seen_s, float(now_s))
        admission = self.pending.offer(update)
        if admission is Admission.ACCEPTED:
            self.stats.accepted += 1
        else:
            self.stats.shed += 1
        return admission

    # -- scheduler-facing state --------------------------------------------------

    @property
    def lag_poses(self) -> int:
        """Deferred full-resolution poses awaiting catch-up.

        Active segment only — this is the scheduler-facing catch-up
        budget, and only the active segment's lag can grow; archived
        segments drain at finalize (see :attr:`total_lag_poses`).
        """
        return self._lag_poses

    @property
    def total_lag_poses(self) -> int:
        """Deferred poses across the active *and* archived segments."""
        return self._lag_poses + sum(
            segment["lag_poses"] for segment in self._archive.values()
        )

    @property
    def full_nodes(self) -> int:
        """Projection cost (nodes) of one pose on the full grid."""
        return self.full.n_nodes

    @property
    def degraded_nodes(self) -> int:
        """Projection cost (nodes) of one pose on the degraded grid."""
        return self.degraded.n_nodes

    # -- applying work -----------------------------------------------------------

    def _record_mode(self, degraded: bool) -> None:
        """Log a ladder transition (FULL <-> DEGRADED), if one happened.

        The position key is the session-local applied-update count
        *before* this batch — never a service-global sequence number,
        which would vary with how sessions are packed onto shards.
        """
        mode = "degraded" if degraded else "full"
        if not self.ladder or self.ladder[-1][1] != mode:
            applied = self.stats.applied_full + self.stats.applied_degraded
            self.ladder.append((applied, mode))

    def _switch_segment(self, relay: str) -> None:
        """Swap the active accumulator triple for ``relay``'s segment.

        The outgoing segment (accumulators *and* its undrained lag) is
        parked in the archive under its relay name; the incoming relay
        resumes its own archived segment if it served this tag before,
        or starts fresh. Nothing is ever summed across the swap — the
        per-relay constant phase makes cross-relay coherent sums
        meaningless (see :func:`~repro.localization.incremental.
        combined_coarse`).
        """
        assert self.active_relay is not None
        self._archive[self.active_relay] = {
            "full": self.full,
            "degraded": self.degraded,
            "lag": self._lag,
            "lag_poses": self._lag_poses,
        }
        resumed = self._archive.pop(relay, None)
        if resumed is not None:
            self.full = resumed["full"]
            self.degraded = resumed["degraded"]
            self._lag = resumed["lag"]
            self._lag_poses = resumed["lag_poses"]
        else:
            self.full = self._fresh_full()
            self.degraded = self._fresh_degraded()
            self._lag = []
            self._lag_poses = 0
        self.active_relay = relay
        self.handoffs += 1
        metrics.count("serve.session.handoffs")

    def stage_batch(
        self, updates: Sequence[PendingUpdate], degraded: bool
    ) -> List[PoseBlock]:
        """Bookkeep one planned micro-batch and stage its folds.

        Performs every side effect of :meth:`apply_batch` *except* the
        accumulator arithmetic, which it returns as
        :class:`~repro.localization.batched.PoseBlock` entries for the
        round's single stacked kernel call. FULL mode stages both
        accumulators; DEGRADED mode stages only the cheap one and
        defers the full-resolution fold-in to the lag list.

        A batch mixing updates from several relays is split into
        contiguous same-relay runs (FIFO order preserved); each relay
        change between runs is a session handoff that swaps the active
        segment. Single-relay traffic carries a constant relay name
        (``""`` from the legacy paths), so it always forms one run and
        takes the exact pre-fleet staging path.
        """
        if not updates:
            return []
        blocks: List[PoseBlock] = []
        start = 0
        for end in range(1, len(updates) + 1):
            if (
                end < len(updates)
                and updates[end].relay == updates[start].relay
            ):
                continue
            blocks.extend(self._stage_run(updates[start:end], degraded))
            start = end
        return blocks

    def _stage_run(
        self, updates: Sequence[PendingUpdate], degraded: bool
    ) -> List[PoseBlock]:
        """Stage one contiguous same-relay run, handing off if needed."""
        relay = updates[0].relay
        if self.active_relay is None:
            self.active_relay = relay
        elif relay != self.active_relay:
            self._switch_segment(relay)
        positions = np.stack([u.position for u in updates])
        channels = np.array([u.channel for u in updates], dtype=complex)
        self._record_mode(degraded)
        blocks = [PoseBlock(self.degraded, positions, channels)]
        if degraded:
            self._lag.append((positions, channels))
            self._lag_poses += len(updates)
            self.stats.applied_degraded += len(updates)
        else:
            blocks.append(PoseBlock(self.full, positions, channels))
            self.stats.applied_full += len(updates)
        return blocks

    def apply_batch(
        self, updates: Sequence[PendingUpdate], degraded: bool
    ) -> int:
        """Fold one micro-batch in; returns grid nodes projected.

        The scalar path: stages the batch and executes each fold
        through the session's own accumulators inline (the batched
        service collects the staged blocks of a whole round instead).
        """
        projected = 0
        for block in self.stage_batch(updates, degraded):
            projected += block.target.update(block.positions, block.channels)
        return projected

    def stage_catchup(
        self, max_poses: Optional[int] = None
    ) -> List[PoseBlock]:
        """Pop deferred poses off the lag list and stage their folds.

        ``max_poses`` bounds the work (scheduler budget); ``None``
        drains the whole lag (finalize / idle). Bookkeeping happens
        here; the returned blocks carry the actual arithmetic.
        """
        blocks: List[PoseBlock] = []
        caught = 0
        while self._lag and (max_poses is None or caught < max_poses):
            positions, channels = self._lag[0]
            budget = len(positions)
            if max_poses is not None:
                budget = min(budget, max_poses - caught)
            if budget < len(positions):
                head_positions, head_channels = (
                    positions[:budget],
                    channels[:budget],
                )
                self._lag[0] = (positions[budget:], channels[budget:])
            else:
                head_positions, head_channels = positions, channels
                self._lag.pop(0)
            blocks.append(PoseBlock(self.full, head_positions, head_channels))
            caught += len(head_positions)
        self._lag_poses -= caught
        self.stats.caught_up += caught
        return blocks

    def catch_up(self, max_poses: Optional[int] = None) -> int:
        """Fold deferred poses into the full accumulator; returns nodes.

        The scalar counterpart of :meth:`stage_catchup`, folding each
        staged block inline.
        """
        projected = 0
        for block in self.stage_catchup(max_poses):
            projected += block.target.update(block.positions, block.channels)
        return projected

    # -- readout -----------------------------------------------------------------

    def estimate(self) -> np.ndarray:
        """The freshest complete estimate (coarse argmax, no fine stage).

        The full accumulator wins when it has seen everything; while it
        lags (degraded mode), the degraded accumulator — which always
        sees every pose — answers instead. With archived segments the
        degraded accumulators of *all* segments (each complete for its
        relay's poses) combine noncoherently; without any archive this
        is byte-for-byte the single-relay readout.
        """
        if not self._archive:
            if self._lag_poses == 0 and self.full.n_poses > 0:
                return self.full.estimate()
            return self.degraded.estimate()
        segments = [self.degraded] + [
            entry["degraded"] for entry in self._archive.values()
        ]
        return combined_coarse(segments).argmax_position()

    def finalize(self) -> LocalizationResult:
        """Catch up in full and run the batch-equivalent fine stage.

        Archived segments drain their own lag lists first (each into
        its own full accumulator — the fold is linear per segment, so
        deferral costs nothing), then all full segments combine through
        the noncoherent fine stage. One segment means the exact
        single-relay finalize path.
        """
        self.catch_up(None)
        for entry in self._archive.values():
            for positions, channels in entry["lag"]:
                entry["full"].update(positions, channels)
                self.stats.caught_up += len(positions)
            entry["lag"] = []
            entry["lag_poses"] = 0
        segments = [self.full] + [
            entry["full"] for entry in self._archive.values()
        ]
        return finalize_segments(segments)

    # -- checkpointing -----------------------------------------------------------

    def checkpoint_payload(self) -> Dict[str, Any]:
        """A picklable snapshot of everything but the pending queue.

        Only quiesced sessions (empty queue) are checkpointed, so the
        queue is deliberately absent from the payload.
        """
        return {
            "session_id": self.session_id,
            "opened_s": self.opened_s,
            "last_seen_s": self.last_seen_s,
            "full": self.full.to_payload(),
            "degraded": self.degraded.to_payload(),
            "lag": [(p.copy(), c.copy()) for p, c in self._lag],
            "ladder": [tuple(entry) for entry in self.ladder],
            "active_relay": self.active_relay,
            "last_ingest_relay": self.last_ingest_relay,
            "handoffs": self.handoffs,
            "archive": {
                relay: {
                    "full": entry["full"].to_payload(),
                    "degraded": entry["degraded"].to_payload(),
                    "lag": [
                        (p.copy(), c.copy()) for p, c in entry["lag"]
                    ],
                }
                for relay, entry in self._archive.items()
            },
            "stats": {
                "accepted": self.stats.accepted,
                "shed": self.stats.shed,
                "applied_full": self.stats.applied_full,
                "applied_degraded": self.stats.applied_degraded,
                "caught_up": self.stats.caught_up,
            },
        }

    @classmethod
    def from_payload(
        cls, payload: Dict[str, Any], config: ServeConfig
    ) -> "TagSession":
        """Rebuild a session from :meth:`checkpoint_payload` output."""
        full = IncrementalSar.from_payload(payload["full"])
        session = cls(
            payload["session_id"],
            config,
            full.grid,
            opened_s=payload["opened_s"],
        )
        session.full = full
        session.degraded = IncrementalSar.from_payload(payload["degraded"])
        session.last_seen_s = float(payload["last_seen_s"])
        session._lag = [
            (np.asarray(p, dtype=float), np.asarray(c, dtype=complex))
            for p, c in payload["lag"]
        ]
        session._lag_poses = sum(len(p) for p, _ in session._lag)
        session.ladder = [
            (int(applied), str(mode))
            for applied, mode in payload.get("ladder", [])
        ]
        # Fleet keys are read with defaults so pre-fleet checkpoints
        # (no handoff state) restore unchanged.
        raw_relay = payload.get("active_relay")
        session.active_relay = (
            None if raw_relay is None else str(raw_relay)
        )
        raw_ingest = payload.get("last_ingest_relay")
        session.last_ingest_relay = (
            None if raw_ingest is None else str(raw_ingest)
        )
        session.handoffs = int(payload.get("handoffs", 0))
        for relay, entry in payload.get("archive", {}).items():
            lag = [
                (np.asarray(p, dtype=float), np.asarray(c, dtype=complex))
                for p, c in entry["lag"]
            ]
            session._archive[str(relay)] = {
                "full": IncrementalSar.from_payload(entry["full"]),
                "degraded": IncrementalSar.from_payload(entry["degraded"]),
                "lag": lag,
                "lag_poses": sum(len(p) for p, _ in lag),
            }
        session.stats = SessionStats(**payload["stats"])
        return session


class SessionStore:
    """Live sessions with TTL eviction and checkpoint/restore."""

    def __init__(
        self, config: ServeConfig, cache: Optional[ResultCache] = None
    ) -> None:
        self.config = config
        self.cache = cache
        self._sessions: Dict[str, TagSession] = {}

    def __len__(self) -> int:
        return len(self._sessions)

    def ids(self) -> List[str]:
        """Live session ids (insertion order)."""
        return list(self._sessions)

    def sessions(self) -> Dict[str, TagSession]:
        """The live session mapping (shared, not a copy)."""
        return self._sessions

    def open(
        self, session_id: str, grid: Grid2D, now_s: float = 0.0
    ) -> TagSession:
        """Create a fresh session under ``session_id``."""
        if session_id in self._sessions:
            raise ServeError(f"session {session_id!r} is already open")
        if len(self._sessions) >= self.config.max_sessions:
            raise ServeError(
                f"session limit reached ({self.config.max_sessions}); "
                "finalize or wait for TTL eviction"
            )
        session = TagSession(session_id, self.config, grid, opened_s=now_s)
        self._sessions[session_id] = session
        metrics.set_gauge("serve.sessions.active", len(self._sessions))
        return session

    def get(self, session_id: str) -> TagSession:
        """The live session, or :class:`SessionNotFoundError`."""
        session = self._sessions.get(session_id)
        if session is None:
            raise SessionNotFoundError(
                f"no live session {session_id!r} (expired or never opened)"
            )
        return session

    def get_or_restore(self, session_id: str, now_s: float) -> TagSession:
        """The live session, transparently restoring a checkpoint."""
        session = self._sessions.get(session_id)
        if session is not None:
            return session
        restored = self.restore(session_id, now_s)
        if restored is None:
            raise SessionNotFoundError(
                f"no live session {session_id!r} and no checkpoint to "
                "restore it from"
            )
        return restored

    def close(self, session_id: str) -> None:
        """Drop a session and forget any checkpoint of it."""
        self._sessions.pop(session_id, None)
        if self.cache is not None:
            path = self.cache.path_for(_checkpoint_key(session_id))
            try:
                path.unlink()
            except OSError:
                pass
        metrics.set_gauge("serve.sessions.active", len(self._sessions))

    def kill(self, session_id: str) -> int:
        """Crash-drop one live session; returns pending updates lost.

        Models an injected service kill: the session's accumulators are
        checkpointed (what a crash-consistent store would have synced)
        but its in-memory pending queue is *lost* — the caller counts
        those loudly. With no cache attached nothing survives, and a
        later submit fails with :class:`SessionNotFoundError`.
        """
        session = self.get(session_id)
        lost = len(session.pending)
        if self.cache is not None:
            self.cache.store(
                _checkpoint_key(session_id), session.checkpoint_payload()
            )
        del self._sessions[session_id]
        metrics.count("serve.sessions.killed")
        metrics.set_gauge("serve.sessions.active", len(self._sessions))
        return lost

    # -- TTL / checkpointing -----------------------------------------------------

    def evict_expired(self, now_s: float) -> List[str]:
        """Evict quiesced sessions idle past the TTL; returns their ids.

        Sessions with queued work are never evicted — shedding accepted
        updates silently would break the admission contract.
        """
        expired = [
            session_id
            for session_id, session in self._sessions.items()
            if len(session.pending) == 0
            and (now_s - session.last_seen_s) > self.config.session_ttl_s
        ]
        for session_id in expired:
            session = self._sessions.pop(session_id)
            if self.cache is not None:
                self.cache.store(
                    _checkpoint_key(session_id),
                    session.checkpoint_payload(),
                )
            metrics.count("serve.sessions.evicted")
        if expired:
            metrics.set_gauge("serve.sessions.active", len(self._sessions))
        return expired

    def restore(
        self, session_id: str, now_s: float
    ) -> Optional[TagSession]:
        """Resurrect an evicted session from its checkpoint, if any."""
        if self.cache is None:
            return None
        if len(self._sessions) >= self.config.max_sessions:
            raise ServeError(
                f"session limit reached ({self.config.max_sessions}); "
                f"cannot restore {session_id!r}"
            )
        hit, payload = self.cache.load(_checkpoint_key(session_id))
        if not hit:
            return None
        session = TagSession.from_payload(payload, self.config)
        session.last_seen_s = max(session.last_seen_s, float(now_s))
        self._sessions[session_id] = session
        metrics.count("serve.sessions.restored")
        metrics.set_gauge("serve.sessions.active", len(self._sessions))
        return session
