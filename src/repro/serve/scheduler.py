"""The micro-batch scheduler and the degradation decision.

One scheduling *round* coalesces every session's pending updates into
per-session micro-batches (each a single vectorized grid projection
through the chunked ``SarGeometry`` fast path) and orders them
deterministically: oldest queued work first, session id as the
tie-break. The scheduler plans against the virtual cost model, keeping
a running projection of the server's backlog as it lays batches out —
so when the projected queueing delay of a batch crosses
``degrade_threshold_s``, that batch (and the rest of an overloaded
round) drops to the degraded grid, which is roughly
``degraded_resolution_factor ** 2`` cheaper per pose. Catch-up of
deferred full-resolution work rides along only while the server is
ahead of the SLO.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple

from repro.serve.config import ServeConfig
from repro.serve.queueing import PendingUpdate
from repro.serve.session import TagSession


@dataclass(frozen=True)
class BatchPlan:
    """One planned micro-batch for one session."""

    session_id: str
    updates: Tuple[PendingUpdate, ...]
    degraded: bool
    catchup_poses: int
    projected_nodes: int
    cost_s: float


def _batch_nodes(
    session: TagSession,
    n_updates: int,
    degraded: bool,
    catchup_poses: int,
) -> int:
    """Grid nodes one planned batch will project."""
    nodes = n_updates * session.degraded_nodes
    if not degraded:
        nodes += n_updates * session.full_nodes
    nodes += catchup_poses * session.full_nodes
    return nodes


class MicroBatchScheduler:
    """Plans deterministic micro-batch rounds under the latency SLO."""

    def __init__(self, config: ServeConfig) -> None:
        self.config = config

    def plan_round(
        self,
        sessions: Dict[str, TagSession],
        now_s: float,
        backlog_s: float,
        backlogs: Optional[Mapping[str, float]] = None,
    ) -> List[BatchPlan]:
        """Lay out one round of micro-batches over the pending work.

        ``backlog_s`` is how far the (shared) server already runs
        behind the clock (virtual busy time minus now). Sessions are
        visited oldest-head-first; each batch's degradation mode is
        decided from the delay its *first* update would see — queue
        wait so far plus the projected backlog including the batches
        already planned this round.

        With ``backlogs`` given (partitioned capacity isolation), each
        session is its own virtual server: its decision uses only its
        own backlog, and batches planned for *other* sessions this
        round never feed into it — sessions stop coupling through the
        scheduler, which is what shard-invariance requires.
        """
        config = self.config
        ready = [
            (buffer_oldest_s, session_id)
            for session_id, session in sessions.items()
            for buffer_oldest_s in [session.pending.oldest_arrival_s]
            if buffer_oldest_s is not None
        ]
        ready.sort()
        plans: List[BatchPlan] = []
        projected_backlog_s = max(0.0, float(backlog_s))
        for oldest_arrival_s, session_id in ready:
            session = sessions[session_id]
            updates = session.pending.take(config.max_batch_poses)
            if not updates:
                continue
            if backlogs is None:
                wait_s = (now_s - oldest_arrival_s) + projected_backlog_s
            else:
                wait_s = (now_s - oldest_arrival_s) + max(
                    0.0, float(backlogs.get(session_id, 0.0))
                )
            degraded = wait_s > config.degrade_threshold_s
            catchup_poses = 0
            if not degraded and session.lag_poses > 0:
                catchup_poses = min(session.lag_poses, config.catchup_poses)
            nodes = _batch_nodes(
                session, len(updates), degraded, catchup_poses
            )
            cost_s = config.batch_cost_s(nodes)
            plans.append(
                BatchPlan(
                    session_id=session_id,
                    updates=tuple(updates),
                    degraded=degraded,
                    catchup_poses=catchup_poses,
                    projected_nodes=nodes,
                    cost_s=cost_s,
                )
            )
            projected_backlog_s += cost_s
        return plans
