"""The online localization service.

Event-driven facade over the session store, the bounded queues, and the
micro-batch scheduler: callers ``submit`` per-pose measurements into
tag sessions and call ``step`` to run scheduling rounds; estimates
refine continuously and ``finalize`` returns the batch-equivalent
coarse-to-fine fix. Time is virtual throughout (see
:mod:`repro.serve.clock`), so identical inputs produce identical
latency tables.

Instrumentation (``repro.obs``): queue-depth and backlog gauges,
batch-size and latency histograms, per-round and per-batch spans, and
ingest/shed/degrade counters — activate a tracer/registry (as
``python -m repro.serve`` does) to capture them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro import faults
from repro.errors import LocalizationError, ReferenceLostError, ServeError
from repro.localization.batched import PoseBlock, fold_blocks
from repro.localization.disentangle import disentangle
from repro.localization.grid import Grid2D
from repro.localization.measurement import ThroughRelayMeasurement
from repro.localization.pipeline import LocalizationResult
from repro.obs import metrics, tracing
from repro.runtime.cache import ResultCache
from repro.serve.clock import VirtualClock
from repro.serve.config import ServeConfig
from repro.serve.queueing import Admission, PendingUpdate
from repro.serve.scheduler import MicroBatchScheduler
from repro.serve.session import SessionStore, TagSession

#: Below this, a disentangled tag half-link is "tag not decoded" — the
#: update is rejected rather than folded in as a spurious zero channel.
_MIN_TAG_MAGNITUDE = 1e-30


@dataclass(frozen=True)
class StepReport:
    """What one scheduling round did."""

    now_s: float
    busy_until_s: float
    batches: int
    degraded_batches: int
    updates_applied: int
    catchup_poses: int


@dataclass(frozen=True)
class ServiceReport:
    """Cumulative service-level numbers (virtual-time latencies)."""

    updates_accepted: int
    updates_applied: int
    updates_degraded: int
    updates_shed: int
    full_batches: int
    degraded_batches: int
    catchup_poses: int
    p50_latency_s: float
    p99_latency_s: float
    max_latency_s: float
    busy_s: float
    updates_rejected: int = 0
    updates_lost: int = 0
    recoveries: int = 0
    mean_recovery_latency_s: float = 0.0
    handoffs: int = 0
    mean_handoff_latency_s: float = 0.0


def _percentile_s(latencies_s: List[float], q: float) -> float:
    """A percentile of the recorded latencies (0 when none yet)."""
    if not latencies_s:
        return 0.0
    return float(np.percentile(np.asarray(latencies_s, dtype=float), q))


class LocalizationService:
    """Streaming through-relay localization for many concurrent tags."""

    def __init__(
        self, config: ServeConfig, cache: Optional[ResultCache] = None
    ) -> None:
        self.config = config
        self.store = SessionStore(config, cache)
        self.scheduler = MicroBatchScheduler(config)
        self.clock = VirtualClock()
        self._partitioned = config.capacity_mode == "partitioned"
        #: Shared mode: the single server's busy horizon. Partitioned
        #: mode: the *makespan* (max over per-session busy horizons).
        self._busy_until_s = 0.0
        #: Per-session virtual servers (partitioned isolation only).
        #: Entries survive finalize so the makespan stays monotonic.
        self._session_busy_s: Dict[str, float] = {}
        self._seq = 0
        self._latencies_s: List[float] = []
        self._applied = 0
        self._degraded_updates = 0
        self._accepted = 0
        self._shed = 0
        self._full_batches = 0
        self._degraded_batches = 0
        self._catchup_poses = 0
        self._rejected = 0
        self._lost_in_kill = 0
        self._recoveries = 0
        self._recovery_latencies_s: List[float] = []
        self._handoffs = 0
        #: Virtual-time cost of each session handoff: how long the
        #: first update staged on the new relay's segment waited from
        #: arrival to fold-in.
        self._handoff_latencies_s: List[float] = []
        self._killed_at_s: Dict[str, float] = {}
        self._ref_lost_since_s: Dict[str, float] = {}
        self._loss_by_session: Dict[str, int] = {}
        self._final_ladders: Dict[str, Tuple[Tuple[int, str], ...]] = {}

    # -- recovery policies -------------------------------------------------------

    def _record_recovery(self, latency_s: float, kind: str) -> None:
        """Account one successful recovery and its virtual latency."""
        self._recoveries += 1
        self._recovery_latencies_s.append(latency_s)
        metrics.count(f"serve.recovery.{kind}")
        metrics.observe("serve.recovery.latency_s", latency_s)

    def _reject_update(self, session_id: str, reason: str) -> Admission:
        """Refuse one update loudly (counted, typed, never silent)."""
        self._rejected += 1
        self._count_session_loss(session_id)
        metrics.count("serve.updates.rejected")
        metrics.count(f"serve.rejected.{reason}")
        return Admission.REJECTED

    def _count_session_loss(self, session_id: str, n: int = 1) -> None:
        """Account ``n`` updates this session will never see applied."""
        self._loss_by_session[session_id] = (
            self._loss_by_session.get(session_id, 0) + n
        )

    def session_data_loss(self, session_id: str) -> int:
        """Updates lost to this session (rejected at ingest or dropped
        by an injected kill) — the degraded-fix flag: a session that
        finalizes with a nonzero count produced its estimate from a
        stream with known holes and must not be trusted silently."""
        return self._loss_by_session.get(session_id, 0)

    def _ride_out_ingest_faults(self, arrival_s: float) -> Optional[float]:
        """Bounded deterministic-backoff retry against ingest faults.

        Injected stalls charge the virtual server; injected transient
        drops are retried up to ``config.ingest_retries`` times with
        exponential backoff (``retry_backoff_s * factor**k``) advanced
        on the virtual clock. Returns the possibly-delayed arrival
        time, or ``None`` once the retry budget is exhausted.
        """
        stall_s = faults.stall_s("serve.ingest", now_s=arrival_s)
        if stall_s > 0.0:
            self._busy_until_s = max(self._busy_until_s, arrival_s) + stall_s
            metrics.observe("serve.ingest.stall_s", stall_s)
        first_arrival_s = arrival_s
        attempt = 0
        while faults.dropped("serve.ingest", now_s=arrival_s):
            if attempt >= self.config.ingest_retries:
                metrics.count("serve.ingest.retries_exhausted")
                return None
            backoff_s = self.config.retry_backoff_s * (
                self.config.retry_backoff_factor**attempt
            )
            arrival_s = self.clock.advance_to(arrival_s + backoff_s)
            attempt += 1
            metrics.count("serve.ingest.retries")
        if attempt:
            self._record_recovery(arrival_s - first_arrival_s, "ingest")
        return arrival_s

    def _get_session(self, session_id: str, now_s: float) -> TagSession:
        """Live-or-restored session, accounting recovery after a kill."""
        killed_s = self._killed_at_s.pop(session_id, None)
        was_live = session_id in self.store.sessions()
        session = self.store.get_or_restore(session_id, now_s)
        if killed_s is not None and not was_live:
            self._record_recovery(now_s - killed_s, "restore")
        return session

    def _reference_lost(self, session_id: str, arrival_s: float) -> Admission:
        """One undecodable reference: reject within the reacquisition
        window, escalate to :class:`ReferenceLostError` past it."""
        since_s = self._ref_lost_since_s.setdefault(session_id, arrival_s)
        metrics.count("serve.reference.undecodable")
        outage_s = arrival_s - since_s
        if outage_s > self.config.reference_timeout_s:
            raise ReferenceLostError(
                f"session {session_id!r}: reference tag undecodable for "
                f"{outage_s:.3f} s (timeout "
                f"{self.config.reference_timeout_s:g} s) — relay out of "
                "range or link blocked (paper §5.1)"
            )
        return self._reject_update(session_id, "reference")

    def _reference_reacquired(
        self, session_id: str, arrival_s: float
    ) -> None:
        """Close a reference outage, if one was open."""
        since_s = self._ref_lost_since_s.pop(session_id, None)
        if since_s is not None:
            self._record_recovery(arrival_s - since_s, "reference")

    def _service_kill(self, now_s: float) -> None:
        """Injected service crash: checkpoint-and-drop every session."""
        for session_id in self.store.ids():
            lost = self.store.kill(session_id)
            self._killed_at_s[session_id] = now_s
            if lost:
                self._lost_in_kill += lost
                self._count_session_loss(session_id, lost)
                metrics.count("serve.updates.lost_in_kill", lost)

    def kill_sessions(self, now_s: Optional[float] = None) -> int:
        """Crash-drop every live session; returns pending updates lost.

        The shard failover path: a ``serve.shard`` reboot kills one
        worker's whole session population. Accumulator state survives
        via the store's replica checkpoints (when a cache is attached)
        and restores transparently on the next submit, with the lost
        pending updates accounted per session — exactly the
        ``serve.session`` service-kill discipline.
        """
        if now_s is not None:
            self.clock.advance_to(now_s)
        before = self._lost_in_kill
        self._service_kill(self.clock.now_s)
        return self._lost_in_kill - before

    # -- session lifecycle -------------------------------------------------------

    def open_session(
        self, session_id: str, grid: Grid2D, now_s: float = 0.0
    ) -> TagSession:
        """Open a streaming session searching over ``grid``."""
        self.clock.advance_to(now_s)
        metrics.count("serve.sessions.opened")
        return self.store.open(session_id, grid, now_s=self.clock.now_s)

    def finalize(
        self, session_id: str, now_s: Optional[float] = None
    ) -> LocalizationResult:
        """Drain the session's queue, catch up, and close with a fix.

        The full-resolution catch-up and fine stage are charged to the
        virtual server like any other work, so a finalize under load
        takes its fair place in the backlog.
        """
        if now_s is not None:
            self.clock.advance_to(now_s)
        session = self._get_session(session_id, self.clock.now_s)
        while len(session.pending):
            self.step()
        catchup = session.total_lag_poses
        cost_s = self.config.batch_cost_s(catchup * session.full_nodes)
        if self._partitioned:
            done_s = (
                max(
                    self._session_busy_s.get(session_id, 0.0),
                    self.clock.now_s,
                )
                + cost_s
            )
            self._session_busy_s[session_id] = done_s
            self._busy_until_s = max(self._busy_until_s, done_s)
        else:
            self._busy_until_s = (
                max(self._busy_until_s, self.clock.now_s) + cost_s
            )
        self._catchup_poses += catchup
        with tracing.span(
            "serve.finalize", session=session_id, catchup=catchup
        ):
            result = session.finalize()
        self._final_ladders[session_id] = tuple(session.ladder)
        self.store.close(session_id)
        metrics.count("serve.sessions.finalized")
        return result

    # -- ingest ------------------------------------------------------------------

    def submit(
        self,
        session_id: str,
        measurement: ThroughRelayMeasurement,
        now_s: Optional[float] = None,
    ) -> Admission:
        """Ingest one per-pose measurement into a session's queue.

        Disentanglement (Eq. 10) happens here, so shedding costs almost
        nothing and an admitted update is ready for pure vectorized
        accumulation. Expired-but-checkpointed sessions restore
        transparently.
        """
        arrival_s = self.clock.advance_to(
            now_s if now_s is not None else self.clock.now_s
        )
        self.store.evict_expired(arrival_s)
        if faults.watching("serve.ingest"):
            delayed_s = self._ride_out_ingest_faults(arrival_s)
            if delayed_s is None:
                return self._reject_update(session_id, "retries_exhausted")
            arrival_s = delayed_s
        session = self._get_session(session_id, arrival_s)
        if (
            faults.watching("relay.handoff")
            and session.last_ingest_relay is not None
            and measurement.relay != session.last_ingest_relay
        ):
            # The RF handoff window: the first update(s) arriving from
            # a new serving relay can stall (re-synchronization charged
            # to the virtual server) or be lost outright — a loss is
            # rejected loudly and flags the session's final fix.
            stall_s = faults.stall_s("relay.handoff", now_s=arrival_s)
            if stall_s > 0.0:
                self._busy_until_s = (
                    max(self._busy_until_s, arrival_s) + stall_s
                )
                metrics.observe("serve.handoff.stall_s", stall_s)
            if faults.dropped("relay.handoff", now_s=arrival_s):
                return self._reject_update(session_id, "handoff")
        session.last_ingest_relay = measurement.relay
        try:
            channel = disentangle(
                measurement.h_target, measurement.h_reference
            )
        except LocalizationError:
            return self._reference_lost(session_id, arrival_s)
        self._reference_reacquired(session_id, arrival_s)
        if abs(channel) < _MIN_TAG_MAGNITUDE:
            # The reference decoded but the tag half-link is dead (link
            # blocked mid-flight): folding a zero channel into the SAR
            # sum would silently bias the fix, so refuse it loudly.
            return self._reject_update(session_id, "tag_undecodable")
        update = PendingUpdate(
            position=np.asarray(measurement.position, dtype=float),
            channel=channel,
            arrival_s=arrival_s,
            seq=self._seq,
            relay=measurement.relay,
        )
        self._seq += 1
        admission = session.offer(update, arrival_s)
        if admission is Admission.ACCEPTED:
            self._accepted += 1
            metrics.count("serve.updates.accepted")
        else:
            self._shed += 1
            self._count_session_loss(session_id)
            metrics.count("serve.updates.shed")
        metrics.set_gauge("serve.queue_depth", float(self.queue_depth))
        return admission

    # -- scheduling --------------------------------------------------------------

    @property
    def queue_depth(self) -> int:
        """Total pending updates across live sessions."""
        return sum(
            len(s.pending) for s in self.store.sessions().values()
        )

    @property
    def backlog_s(self) -> float:
        """How far the virtual server runs behind the clock."""
        return max(0.0, self._busy_until_s - self.clock.now_s)

    def step(self, now_s: Optional[float] = None) -> StepReport:
        """Run one scheduling round over everything pending."""
        if now_s is not None:
            self.clock.advance_to(now_s)
        now = self.clock.now_s
        self.store.evict_expired(now)
        if faults.rebooted("serve.session", now_s=now):
            self._service_kill(now)
        with tracing.span("serve.step", queue_depth=self.queue_depth):
            if self._partitioned:
                backlogs = {
                    sid: max(
                        0.0, self._session_busy_s.get(sid, 0.0) - now
                    )
                    for sid in self.store.sessions()
                }
                plans = self.scheduler.plan_round(
                    self.store.sessions(), now, 0.0, backlogs=backlogs
                )
            else:
                plans = self.scheduler.plan_round(
                    self.store.sessions(), now, self.backlog_s
                )
            busy_until_s = max(self._busy_until_s, now)
            applied = 0
            degraded_batches = 0
            catchup_total = 0
            staged: List[PoseBlock] = []
            for plan in plans:
                session = self.store.get(plan.session_id)
                handoffs_before = session.handoffs
                with tracing.span(
                    "serve.batch",
                    session=plan.session_id,
                    poses=len(plan.updates),
                    degraded=plan.degraded,
                ):
                    if self.config.batched_ingest:
                        staged.extend(
                            session.stage_batch(plan.updates, plan.degraded)
                        )
                        if plan.catchup_poses:
                            staged.extend(
                                session.stage_catchup(plan.catchup_poses)
                            )
                    else:
                        session.apply_batch(plan.updates, plan.degraded)
                        if plan.catchup_poses:
                            session.catch_up(plan.catchup_poses)
                if self._partitioned:
                    done_s = (
                        max(
                            self._session_busy_s.get(plan.session_id, 0.0),
                            now,
                        )
                        + plan.cost_s
                    )
                    self._session_busy_s[plan.session_id] = done_s
                    busy_until_s = max(busy_until_s, done_s)
                else:
                    busy_until_s += plan.cost_s
                    done_s = busy_until_s
                handoff_delta = session.handoffs - handoffs_before
                if handoff_delta:
                    # Handoff latency: the first update of the batch
                    # that triggered the segment swap, arrival to
                    # fold-in, in virtual time.
                    handoff_latency_s = done_s - plan.updates[0].arrival_s
                    self._handoffs += handoff_delta
                    self._handoff_latencies_s.extend(
                        [handoff_latency_s] * handoff_delta
                    )
                    metrics.count("serve.handoffs", handoff_delta)
                    metrics.observe(
                        "serve.handoff.latency_s", handoff_latency_s
                    )
                for update in plan.updates:
                    latency_s = done_s - update.arrival_s
                    self._latencies_s.append(latency_s)
                    metrics.observe("serve.latency_s", latency_s)
                applied += len(plan.updates)
                catchup_total += plan.catchup_poses
                if plan.degraded:
                    degraded_batches += 1
                    self._degraded_batches += 1
                    self._degraded_updates += len(plan.updates)
                    metrics.count("serve.batches.degraded")
                else:
                    self._full_batches += 1
                    metrics.count("serve.batches.full")
                metrics.observe("serve.batch_poses", float(len(plan.updates)))
            if staged:
                with tracing.span("serve.fold", blocks=len(staged)):
                    fold_blocks(staged)
            self._busy_until_s = busy_until_s
            self._applied += applied
            self._catchup_poses += catchup_total
        metrics.set_gauge("serve.queue_depth", float(self.queue_depth))
        metrics.set_gauge("serve.backlog_s", self.backlog_s)
        return StepReport(
            now_s=now,
            busy_until_s=busy_until_s,
            batches=len(plans),
            degraded_batches=degraded_batches,
            updates_applied=applied,
            catchup_poses=catchup_total,
        )

    def drain(self, max_rounds: int = 10_000) -> int:
        """Step until no update is pending; returns rounds taken."""
        rounds = 0
        while self.queue_depth:
            if rounds >= max_rounds:
                raise ServeError(
                    f"drain did not converge within {max_rounds} rounds"
                )
            self.step()
            rounds += 1
        return rounds

    # -- readout -----------------------------------------------------------------

    def estimate(self, session_id: str) -> np.ndarray:
        """The freshest complete coarse estimate for one session."""
        return self.store.get(session_id).estimate()

    def estimates(self) -> Dict[str, np.ndarray]:
        """Current estimates for every live session with data."""
        out: Dict[str, np.ndarray] = {}
        for session_id, session in self.store.sessions().items():
            if session.degraded.n_poses > 0:
                out[session_id] = session.estimate()
        return out

    def latency_samples(self) -> Tuple[float, ...]:
        """Raw applied-latency samples, in application order.

        The shard merge layer concatenates these across workers and
        recomputes percentiles from the pooled samples — which is how a
        merged sharded report lands byte-identical to the unsharded
        one rather than averaging per-shard percentiles.
        """
        return tuple(self._latencies_s)

    def recovery_latency_samples(self) -> Tuple[float, ...]:
        """Raw recovery-latency samples, in recovery order."""
        return tuple(self._recovery_latencies_s)

    def handoff_latency_samples(self) -> Tuple[float, ...]:
        """Raw handoff-latency samples, in handoff order.

        Like :meth:`latency_samples`, pooled (not averaged) by the
        shard merge layer so the merged mean is order-insensitive and
        identical to the unsharded one.
        """
        return tuple(self._handoff_latencies_s)

    def final_ladder(
        self, session_id: str
    ) -> Tuple[Tuple[int, str], ...]:
        """Degradation-ladder transition log captured at finalize.

        Entries are ``(applied_before, mode)`` keyed by the session's
        *local* applied count — deliberately not the service-global
        sequence, so the log is invariant to which other sessions
        shared the worker (shard equivalence pins this).
        """
        return self._final_ladders.get(session_id, ())

    def report(self) -> ServiceReport:
        """Cumulative virtual-time service report."""
        return ServiceReport(
            updates_accepted=self._accepted,
            updates_applied=self._applied,
            updates_degraded=self._degraded_updates,
            updates_shed=self._shed,
            full_batches=self._full_batches,
            degraded_batches=self._degraded_batches,
            catchup_poses=self._catchup_poses,
            p50_latency_s=_percentile_s(self._latencies_s, 50.0),
            p99_latency_s=_percentile_s(self._latencies_s, 99.0),
            max_latency_s=(
                max(self._latencies_s) if self._latencies_s else 0.0
            ),
            busy_s=self._busy_until_s,
            updates_rejected=self._rejected,
            updates_lost=self._lost_in_kill,
            recoveries=self._recoveries,
            mean_recovery_latency_s=(
                float(np.mean(self._recovery_latencies_s))
                if self._recovery_latencies_s
                else 0.0
            ),
            handoffs=self._handoffs,
            # Sorted before the mean so the number is exactly
            # permutation-invariant — the shard merge layer pools and
            # sorts the same way, keeping merged == unsharded bitwise.
            mean_handoff_latency_s=(
                float(
                    np.mean(
                        np.sort(
                            np.asarray(
                                self._handoff_latencies_s, dtype=float
                            )
                        )
                    )
                )
                if self._handoff_latencies_s
                else 0.0
            ),
        )
