"""Gen2-inventory-driven traffic generation and workload replay.

The generator flies the standard line trajectory past a seeded tag
population and, at every pose, runs the *actual* Gen2 anti-collision
MAC of :func:`repro.sim.events.inventory_at_pose` to decide which tags
the relay reads — so arrival patterns inherit the MAC's contention
(slow poses read fewer tags, singulation order varies with the seed)
instead of an idealized Poisson stream. Each successful read becomes a
timestamped :class:`UpdateEvent` for that tag's session.

``load`` compresses the arrival timeline: the drone's physical flight
produces events over ``duration_s / load`` seconds, so ``load`` beyond
the service's capacity drives the backlog up and walks the service down
the degradation ladder — the axis the `serve` experiment sweeps.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.constants import UHF_CENTER_FREQUENCY
from repro.errors import ConfigurationError
from repro.hardware.tag import PassiveTag
from repro.localization.grid import Grid2D
from repro.localization.measurement import (
    MeasurementModel,
    ThroughRelayMeasurement,
)
from repro.mobility.groundtruth import OptiTrack
from repro.mobility.trajectory import LineTrajectory
from repro.obs import tracing
from repro.runtime.cache import ResultCache
from repro.serve.config import ServeConfig
from repro.serve.service import LocalizationService, ServiceReport
from repro.sim.events import inventory_at_pose


@dataclass(frozen=True)
class UpdateEvent:
    """One timestamped per-pose read destined for one session."""

    time_s: float
    session_id: str
    measurement: ThroughRelayMeasurement


@dataclass(frozen=True)
class TrafficWorkload:
    """A replayable stream of update events plus per-session context."""

    events: Tuple[UpdateEvent, ...]
    grids: Dict[str, Grid2D]
    tag_positions: Dict[str, np.ndarray]
    duration_s: float


@dataclass(frozen=True)
class ServeRunReport:
    """One workload replayed through the service, summarized."""

    service: ServiceReport
    offered: int
    duration_s: float
    throughput_per_s: float
    shed_fraction: float
    degraded_fraction: float
    estimates: Dict[str, np.ndarray]
    errors_m: Dict[str, float]


def generate_workload(
    n_tags: int = 4,
    seed: int = 0,
    load: float = 1.0,
    pose_spacing_m: float = 0.05,
    snr_db: float = 25.0,
    grid_resolution: float = 0.10,
    use_gen2_mac: bool = True,
    powering_range_m: float = 3.5,
    tracker: Optional[OptiTrack] = None,
) -> TrafficWorkload:
    """Fly one line scan over ``n_tags`` tags and emit the read stream.

    All randomness (tag placement, channel noise, MAC slot draws) comes
    from the single ``seed``, so the event stream — timestamps, order,
    and payloads — is a pure function of the arguments.

    ``tracker`` optionally routes the flight's poses through an
    :class:`~repro.mobility.groundtruth.OptiTrack` observation pass
    (noise-free without an rng), which is where ``mobility.pose``
    faults — pose dropout and jitter — act on the stream.
    """
    if n_tags < 1:
        raise ConfigurationError("need at least one tag")
    if load <= 0:
        raise ConfigurationError("load factor must be positive")
    rng = np.random.default_rng(seed)
    model = MeasurementModel(
        reader_position=(-8.0, 0.0),
        reader_frequency_hz=UHF_CENTER_FREQUENCY,
    )
    trajectory = LineTrajectory((0.0, 0.0), (3.5, 0.0))
    samples = trajectory.sample_every(pose_spacing_m)
    if tracker is not None:
        samples = tracker.observe_trajectory(samples)
    tags = [
        PassiveTag(
            epc=index + 1,
            position=(
                float(rng.uniform(0.3, 3.2)),
                float(rng.uniform(0.8, 2.4)),
            ),
            rng=rng,
        )
        for index in range(n_tags)
    ]
    session_ids = {tag.epc_int: f"tag-{tag.epc_int:04d}" for tag in tags}
    grid = Grid2D(-0.5, 4.0, 0.2, 3.0, grid_resolution)
    events: List[UpdateEvent] = []
    with tracing.span("serve.traffic", n_tags=n_tags, poses=len(samples)):
        for sample in samples:
            powered = {
                tag.epc_int: (
                    float(
                        np.linalg.norm(
                            np.asarray(tag.position) - sample.position
                        )
                    )
                    <= powering_range_m
                )
                for tag in tags
            }
            if use_gen2_mac:
                read_epcs = inventory_at_pose(
                    tags, lambda t: powered[t.epc_int], rng
                )
            else:
                read_epcs = {epc for epc, on in powered.items() if on}
            for tag in tags:
                if tag.epc_int not in read_epcs:
                    continue
                measurement = model.measure(
                    sample.position,
                    tag.position,
                    rng=rng,
                    snr_db=snr_db,
                    time=sample.time,
                )
                events.append(
                    UpdateEvent(
                        time_s=sample.time / load,
                        session_id=session_ids[tag.epc_int],
                        measurement=measurement,
                    )
                )
    events.sort(key=lambda e: (e.time_s, e.session_id))
    return TrafficWorkload(
        events=tuple(events),
        grids={sid: grid for sid in session_ids.values()},
        tag_positions={
            session_ids[tag.epc_int]: np.asarray(tag.position, dtype=float)
            for tag in tags
        },
        duration_s=samples[-1].time / load,
    )


def run_workload(
    workload: TrafficWorkload,
    config: ServeConfig,
    cache: Optional[ResultCache] = None,
) -> ServeRunReport:
    """Replay a workload through a fresh service, then finalize all.

    Every event submits at its own virtual timestamp and is followed by
    one scheduling round — the event-driven serving loop. After the
    stream ends the service drains, every session finalizes (the
    batch-equivalent fine stage), and the virtual-time numbers are
    summarized.
    """
    service = LocalizationService(config, cache=cache)
    for session_id, grid in workload.grids.items():
        service.open_session(session_id, grid, now_s=0.0)
    with tracing.span("serve.run", events=len(workload.events)):
        for event in workload.events:
            service.submit(
                event.session_id, event.measurement, now_s=event.time_s
            )
            service.step()
        service.drain()
        estimates: Dict[str, np.ndarray] = {}
        errors_m: Dict[str, float] = {}
        for session_id in sorted(workload.grids):
            session = service.store.sessions().get(session_id)
            if session is None or session.degraded.n_poses < 2:
                continue
            result = service.finalize(session_id)
            estimates[session_id] = result.position
            errors_m[session_id] = float(
                np.linalg.norm(
                    result.position - workload.tag_positions[session_id]
                )
            )
    report = service.report()
    busy_s = max(report.busy_s, 1e-12)
    applied = report.updates_applied
    offered = len(workload.events)
    return ServeRunReport(
        service=report,
        offered=offered,
        duration_s=workload.duration_s,
        throughput_per_s=applied / busy_s,
        shed_fraction=report.updates_shed / max(1, offered),
        degraded_fraction=report.updates_degraded / max(1, applied),
        estimates=estimates,
        errors_m=errors_m,
    )
