"""Gen2-inventory-driven traffic generation and workload replay.

Traffic generation now lives in
:func:`repro.scenarios.compiler.generate_workload`, which lowers any
named :class:`~repro.scenarios.spec.Scenario` to a replayable read
stream; :func:`generate_workload` here remains as a thin delegator
pinned to the ``conveyor_flow_through`` scenario (the historical
hard-coded world) so existing callers keep their exact streams.

At every pose the generator runs the *actual* Gen2 anti-collision MAC
of :func:`repro.sim.events.inventory_at_pose` to decide which tags the
relay reads — so arrival patterns inherit the MAC's contention (slow
poses read fewer tags, singulation order varies with the seed) instead
of an idealized Poisson stream. Each successful read becomes a
timestamped :class:`UpdateEvent` for that tag's session.

``load`` compresses the arrival timeline: the drone's physical flight
produces events over ``duration_s / load`` seconds, so ``load`` beyond
the service's capacity drives the backlog up and walks the service down
the degradation ladder — the axis the `serve` experiment sweeps.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

import numpy as np

from repro.localization.grid import Grid2D
from repro.localization.measurement import ThroughRelayMeasurement
from repro.mobility.groundtruth import OptiTrack
from repro.obs import tracing
from repro.runtime.cache import ResultCache
from repro.serve.config import ServeConfig
from repro.serve.service import LocalizationService, ServiceReport


@dataclass(frozen=True)
class UpdateEvent:
    """One timestamped per-pose read destined for one session."""

    time_s: float
    session_id: str
    measurement: ThroughRelayMeasurement


@dataclass(frozen=True)
class TrafficWorkload:
    """A replayable stream of update events plus per-session context."""

    events: Tuple[UpdateEvent, ...]
    grids: Dict[str, Grid2D]
    tag_positions: Dict[str, np.ndarray]
    duration_s: float


@dataclass(frozen=True)
class ServeRunReport:
    """One workload replayed through the service, summarized."""

    service: ServiceReport
    offered: int
    duration_s: float
    throughput_per_s: float
    shed_fraction: float
    degraded_fraction: float
    estimates: Dict[str, np.ndarray]
    errors_m: Dict[str, float]


def generate_workload(
    n_tags: int = 4,
    seed: int = 0,
    load: float = 1.0,
    pose_spacing_m: float = 0.05,
    snr_db: float = 25.0,
    grid_resolution: float = 0.10,
    use_gen2_mac: bool = True,
    powering_range_m: float = 3.5,
    tracker: Optional[OptiTrack] = None,
    scenario: Optional[Any] = None,
) -> TrafficWorkload:
    """Fly one line scan over ``n_tags`` tags and emit the read stream.

    Delegates to :func:`repro.scenarios.compiler.generate_workload`
    against the ``conveyor_flow_through`` scenario (or ``scenario``,
    a name/path/:class:`~repro.scenarios.spec.Scenario`, when given),
    whose spec matches the world this function historically built
    inline — same reader, trajectory, tag box, and grid, drawn in the
    same RNG order, so streams are byte-identical for a given seed.

    All randomness (tag placement, channel noise, MAC slot draws) comes
    from the single ``seed``, so the event stream — timestamps, order,
    and payloads — is a pure function of the arguments.

    ``tracker`` optionally routes the flight's poses through an
    :class:`~repro.mobility.groundtruth.OptiTrack` observation pass
    (noise-free without an rng), which is where ``mobility.pose``
    faults — pose dropout and jitter — act on the stream.
    """
    # Imported lazily: the compiler imports this module's dataclasses
    # (also lazily), and neither side wants the cycle at import time.
    from repro.scenarios import compiler

    if scenario is None:
        scenario = "conveyor_flow_through"
    return compiler.generate_workload(
        scenario,
        n_tags=n_tags,
        seed=seed,
        load=load,
        pose_spacing_m=pose_spacing_m,
        snr_db=snr_db,
        grid_resolution=grid_resolution,
        use_gen2_mac=use_gen2_mac,
        powering_range_m=powering_range_m,
        tracker=tracker,
    )


def run_workload(
    workload: TrafficWorkload,
    config: ServeConfig,
    cache: Optional[ResultCache] = None,
) -> ServeRunReport:
    """Replay a workload through a fresh service, then finalize all.

    Every event submits at its own virtual timestamp and is followed by
    one scheduling round — the event-driven serving loop. After the
    stream ends the service drains, every session finalizes (the
    batch-equivalent fine stage), and the virtual-time numbers are
    summarized.
    """
    service = LocalizationService(config, cache=cache)
    for session_id, grid in workload.grids.items():
        service.open_session(session_id, grid, now_s=0.0)
    with tracing.span("serve.run", events=len(workload.events)):
        for event in workload.events:
            service.submit(
                event.session_id, event.measurement, now_s=event.time_s
            )
            service.step()
        service.drain()
        estimates: Dict[str, np.ndarray] = {}
        errors_m: Dict[str, float] = {}
        for session_id in sorted(workload.grids):
            session = service.store.sessions().get(session_id)
            if session is None or session.degraded.n_poses < 2:
                continue
            result = service.finalize(session_id)
            estimates[session_id] = result.position
            errors_m[session_id] = float(
                np.linalg.norm(
                    result.position - workload.tag_positions[session_id]
                )
            )
    report = service.report()
    busy_s = max(report.busy_s, 1e-12)
    applied = report.updates_applied
    offered = len(workload.events)
    return ServeRunReport(
        service=report,
        offered=offered,
        duration_s=workload.duration_s,
        throughput_per_s=applied / busy_s,
        shed_fraction=report.updates_shed / max(1, offered),
        degraded_fraction=report.updates_degraded / max(1, applied),
        estimates=estimates,
        errors_m=errors_m,
    )
