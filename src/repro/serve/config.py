"""Service configuration: SLOs, queue bounds, and the virtual cost model.

The service is scheduled in *virtual time*: every micro-batch charges a
deterministic cost derived from the grid nodes it projects
(``batch_overhead_s + nodes / service_rate_nodes_per_s``), and
latencies are measured on that clock. Real wall time never enters the
data path, which is what makes every throughput/latency table
seed-deterministic — the same discipline the sweep engine uses for its
bit-identical serial/process results.

The degradation ladder has three rungs, decided per micro-batch:

1. **FULL** — project onto the session's full-resolution coarse grid
   (plus the always-on degraded grid that backs cheap estimates).
2. **DEGRADED** — when the projected queueing delay exceeds
   ``degrade_after_s``, project onto the coarse multires grid only
   (``degraded_resolution_factor`` times coarser, so roughly that
   factor squared cheaper) and defer the full-resolution fold-in;
   the accumulation is linear, so the deferred poses are folded in
   later (idle catch-up or finalize) with zero accuracy loss.
3. **SHED** — admission control: a session whose bounded queue is full
   drops the new update at ingest and reports it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.constants import SAR_DEFAULT_GRID_RESOLUTION_M
from repro.errors import ConfigurationError
from repro.localization.sar import DEFAULT_CHUNK_NODES


@dataclass(frozen=True)
class ServeConfig:
    """Everything the online localization service needs to run.

    Parameters
    ----------
    frequency_hz:
        Matched-filter frequency shared by every session.
    latency_slo_s:
        Target p99 end-to-end (arrival -> applied) latency; the
        reports compare against it and the benchmark asserts it.
    degrade_after_s:
        Projected queueing delay beyond which a micro-batch runs on
        the degraded grid. ``None`` defaults to half the SLO.
    queue_capacity:
        Per-session bound on pending updates; arrivals beyond it are
        shed at ingest (admission control).
    max_batch_poses:
        Most pending poses folded into one micro-batch per session.
    catchup_poses:
        Most deferred full-resolution poses folded alongside one FULL
        batch — bounds how much catch-up work a busy round absorbs.
    service_rate_nodes_per_s:
        Virtual grid-node projection rate of the (single) server.
    batch_overhead_s:
        Fixed virtual cost per micro-batch (dispatch + kernel launch).
    degraded_resolution_factor:
        How much coarser the degraded grid is than the session grid.
    session_ttl_s:
        Idle time after which a quiesced session is evicted (and
        checkpointed when a cache is attached).
    max_sessions:
        Hard bound on concurrently live sessions.
    ingest_retries:
        Bounded retry budget against transient ingest faults (injected
        relay instability); past it the update is rejected loudly.
    retry_backoff_s, retry_backoff_factor:
        Deterministic exponential backoff charged in virtual time:
        retry ``k`` waits ``retry_backoff_s * retry_backoff_factor**k``.
    reference_timeout_s:
        How long a session's reference tag may stay undecodable (each
        such update is REJECTED, a flagged degradation) before the
        service escalates to :class:`~repro.errors.ReferenceLostError`.
    fine_resolution, fine_span, relative_threshold,
    use_nearest_peak_rule:
        Finalize-stage parameters, matching the batch ``Localizer``.
    chunk_nodes:
        Node chunking for grid projections (memory knob only).
    capacity_mode:
        ``"shared"`` (default) runs every session against one virtual
        server: the backlog is global, so co-resident sessions couple
        through the degradation decision. ``"partitioned"`` gives each
        session its own virtual server (per-session busy clock and
        backlog) — the serving numbers of a session then depend only
        on its own stream, which is what makes a consistent-hash
        sharded run (:mod:`repro.serve.shard`) bit-identical to the
        unsharded service. Sharding *requires* partitioned isolation.
    batched_ingest:
        Route each scheduling round's accumulator folds through the
        stacked cross-session kernel
        (:func:`repro.localization.batched.fold_blocks`) instead of
        per-session ``SarGeometry`` passes. Exact per session
        (stacking-invariant segment sums); the speedup at high session
        counts is what ``benchmarks/test_serve_scale.py`` measures.
    """

    frequency_hz: float
    latency_slo_s: float = 0.25
    degrade_after_s: Optional[float] = None
    queue_capacity: int = 128
    max_batch_poses: int = 32
    catchup_poses: int = 64
    service_rate_nodes_per_s: float = 2.0e6
    batch_overhead_s: float = 0.002
    degraded_resolution_factor: float = 3.0
    session_ttl_s: float = 30.0
    max_sessions: int = 512
    ingest_retries: int = 2
    retry_backoff_s: float = 0.005
    retry_backoff_factor: float = 2.0
    reference_timeout_s: float = 1.0
    fine_resolution: float = SAR_DEFAULT_GRID_RESOLUTION_M
    fine_span: float = 1.0
    relative_threshold: float = 0.7
    use_nearest_peak_rule: bool = True
    chunk_nodes: int = DEFAULT_CHUNK_NODES
    capacity_mode: str = "shared"
    batched_ingest: bool = True

    def __post_init__(self) -> None:
        if self.capacity_mode not in ("shared", "partitioned"):
            raise ConfigurationError(
                "capacity_mode must be 'shared' or 'partitioned', "
                f"got {self.capacity_mode!r}"
            )
        if self.frequency_hz <= 0:
            raise ConfigurationError("frequency must be positive")
        if self.latency_slo_s <= 0:
            raise ConfigurationError("latency SLO must be positive")
        if self.degrade_after_s is None:
            object.__setattr__(
                self, "degrade_after_s", self.latency_slo_s / 2.0
            )
        elif self.degrade_after_s <= 0:
            raise ConfigurationError("degrade threshold must be positive")
        if self.queue_capacity < 1:
            raise ConfigurationError("queue capacity must be >= 1")
        if self.max_batch_poses < 1:
            raise ConfigurationError("max batch poses must be >= 1")
        if self.catchup_poses < 0:
            raise ConfigurationError("catch-up pose budget must be >= 0")
        if self.service_rate_nodes_per_s <= 0:
            raise ConfigurationError("service rate must be positive")
        if self.batch_overhead_s < 0:
            raise ConfigurationError("batch overhead must be >= 0")
        if self.degraded_resolution_factor < 1.0:
            raise ConfigurationError(
                "degraded grid must not be finer than the session grid"
            )
        if self.session_ttl_s <= 0:
            raise ConfigurationError("session TTL must be positive")
        if self.max_sessions < 1:
            raise ConfigurationError("max sessions must be >= 1")
        if self.ingest_retries < 0:
            raise ConfigurationError("ingest retry budget must be >= 0")
        if self.retry_backoff_s <= 0:
            raise ConfigurationError("retry backoff must be positive")
        if self.retry_backoff_factor < 1.0:
            raise ConfigurationError("retry backoff factor must be >= 1")
        if self.reference_timeout_s <= 0:
            raise ConfigurationError(
                "reference reacquisition timeout must be positive"
            )

    @property
    def degrade_threshold_s(self) -> float:
        """The resolved degradation threshold (``__post_init__`` fills it)."""
        threshold_s = self.degrade_after_s
        if threshold_s is None:  # pragma: no cover - unreachable after init
            return self.latency_slo_s / 2.0
        return threshold_s

    def batch_cost_s(self, projected_nodes: int) -> float:
        """Virtual service time of one micro-batch projecting N nodes."""
        return self.batch_overhead_s + (
            projected_nodes / self.service_rate_nodes_per_s
        )
