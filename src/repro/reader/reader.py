"""Sample-level Gen2 reader: the full query -> RN16 -> ACK -> EPC exchange.

This reader drives actual waveforms end-to-end — PIE-encoded commands
out, FM0 replies in, with channel estimation on every reply — through
arbitrary *medium* callables (cable, free-space channel, or the relay's
forwarding paths). It is the reproduction of the USRP reader of §6.3,
and the phase-accuracy experiment of Fig. 10 runs on it verbatim.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from repro.dsp.signal import Signal
from repro.errors import ProtocolError, TagNotPoweredError
from repro.gen2.backscatter import TagParams
from repro.gen2.bitops import Bits, bits_to_int
from repro.gen2.commands import Ack, Query
from repro.gen2.crc import check_crc16
from repro.gen2.pie import PIEDecoder, PIEEncoder, ReaderParams
from repro.gen2.tag_state import EpcReply, Rn16Reply
from repro.hardware.reader_frontend import ReaderFrontend
from repro.hardware.tag import PassiveTag
from repro.dsp.units import watts_to_dbm
from repro.reader.channel_estimation import (
    ChannelEstimate,
    codec_for,
    estimate_channel,
)

Medium = Callable[[Signal], Signal]

_CW_PADDING = 1.05  # transmit a little more CW than the reply needs
_SETTLE_SECONDS = 2.0e-4  # CW settle (covers T1 and the relay's filters)


def _identity(sig: Signal) -> Signal:
    return sig


@dataclass(frozen=True)
class TagRead:
    """Outcome of a full single-tag read."""

    epc: int
    rn16: int
    rn16_channel: ChannelEstimate
    epc_channel: ChannelEstimate

    @property
    def channel(self) -> complex:
        """The channel estimate localization uses (from the EPC reply)."""
        return self.epc_channel.h


class Reader:
    """A coherent SDR reader bound to one front end and link parameters."""

    def __init__(
        self,
        frontend: ReaderFrontend,
        reader_params: Optional[ReaderParams] = None,
        tag_params: Optional[TagParams] = None,
        sample_rate: float = 4.0e6,
    ) -> None:
        self.frontend = frontend
        self.reader_params = reader_params or ReaderParams()
        self.tag_params = tag_params or TagParams(blf=self.reader_params.blf)
        self.sample_rate = float(sample_rate)
        self._pie = PIEEncoder(self.reader_params, self.sample_rate)
        self._pie_decoder = PIEDecoder(self.sample_rate)
        self._tag_encoder = codec_for(self.tag_params, self.sample_rate)[0]

    # -- waveform builders ---------------------------------------------------

    def command_waveform(self, command, start_time: float = 0.0) -> Signal:
        """PIE-encode a command and upconvert it to RF."""
        baseband = self._pie.encode(
            command.to_bits(), preamble=command.PREAMBLE, start_time=start_time
        )
        return self.frontend.transmit(baseband)

    def cw_for_reply(self, n_bits: int, start_time: float = 0.0) -> Signal:
        """The carrier transmitted while a tag backscatters ``n_bits``.

        Includes a settle period before the reply (the Gen2 T1 gap plus
        headroom for the relay's filter transients).
        """
        duration = (
            _SETTLE_SECONDS + self._tag_encoder.duration_of(n_bits) * _CW_PADDING
        )
        return self.frontend.continuous_wave(duration, self.sample_rate, start_time)

    # -- the exchange -----------------------------------------------------------

    def _deliver_command(
        self, command, tag: PassiveTag, downlink: Medium, start_time: float
    ):
        """Send one command through the medium; return the tag's reply."""
        rf = self.command_waveform(command, start_time)
        at_tag = downlink(rf)
        envelope = np.abs(at_tag.samples)
        peak = float(np.max(envelope)) if len(envelope) else 0.0
        incident_dbm = float(watts_to_dbm(max(peak**2, 1e-30)))
        depth = (peak - float(np.min(envelope))) / peak if peak > 0 else 0.0
        if not tag.is_powered(incident_dbm, depth):
            raise TagNotPoweredError(
                f"tag received {incident_dbm:.1f} dBm at modulation depth "
                f"{depth:.2f}: cannot power up or decode"
            )
        bits, _, _ = self._pie_decoder.decode(at_tag)
        from repro.gen2.commands import parse_command

        return tag.protocol.handle(parse_command(bits))

    def _collect_reply(
        self,
        reply_bits: Bits,
        tag: PassiveTag,
        downlink: Medium,
        uplink: Medium,
        start_time: float,
    ) -> ChannelEstimate:
        """Transmit CW, let the tag modulate it, and estimate the channel."""
        cw = self.cw_for_reply(len(reply_bits), start_time)
        at_tag = downlink(cw)
        settle_samples = int(round(_SETTLE_SECONDS * self.sample_rate))
        reply = self._tag_encoder.encode(
            reply_bits,
            center_frequency_hz=at_tag.center_frequency_hz,
            start_time=at_tag.start_time,
        )
        # The tag stays non-reflective through the T1 settle gap and
        # again after its reply ends (zero-pad to the carrier length).
        silence = np.zeros(settle_samples, dtype=np.complex128)
        padded = np.concatenate([silence, reply.samples])
        if len(padded) < len(at_tag):
            padded = np.concatenate(
                [padded, np.zeros(len(at_tag) - len(padded), dtype=np.complex128)]
            )
        reflection = reply.with_samples(padded)
        backscattered = tag.modulate(at_tag, reflection)
        at_reader = uplink(backscattered)
        baseband = self.frontend.receive(at_reader)
        # The reply may arrive late by the media's group delay; leave
        # room to align backwards from the nominal start, then search.
        search_from = max(settle_samples - 8, 0)
        return estimate_channel(
            baseband,
            self.tag_params,
            len(reply_bits),
            offset=search_from,
            expected_bits=None,
            align_slack=64,
        )

    def measure_reply_phase(
        self,
        tag: PassiveTag,
        reply_bits: Bits,
        downlink: Medium = _identity,
        uplink: Medium = _identity,
        start_time: float = 0.0,
    ) -> ChannelEstimate:
        """Measure the channel of a *known* reply (the Fig. 10 procedure).

        The paper's phase-accuracy experiment wires the relay between
        reader and tag and repeatedly measures the channel of a fixed
        reply. With the payload known, estimation succeeds even through
        a non-phase-preserving relay — whose randomized phase is exactly
        what the experiment exposes.
        """
        cw = self.cw_for_reply(len(reply_bits), start_time)
        at_tag = downlink(cw)
        settle_samples = int(round(_SETTLE_SECONDS * self.sample_rate))
        reply = self._tag_encoder.encode(
            reply_bits,
            center_frequency_hz=at_tag.center_frequency_hz,
            start_time=at_tag.start_time,
        )
        silence = np.zeros(settle_samples, dtype=np.complex128)
        padded = np.concatenate([silence, reply.samples])
        if len(padded) < len(at_tag):
            padded = np.concatenate(
                [padded, np.zeros(len(at_tag) - len(padded), dtype=np.complex128)]
            )
        backscattered = tag.modulate(at_tag, reply.with_samples(padded))
        baseband = self.frontend.receive(uplink(backscattered))
        return estimate_channel(
            baseband,
            self.tag_params,
            len(reply_bits),
            offset=max(settle_samples - 8, 0),
            expected_bits=reply_bits,
            align_slack=64,
        )

    def read_single_tag(
        self,
        tag: PassiveTag,
        downlink: Medium = _identity,
        uplink: Medium = _identity,
        query: Optional[Query] = None,
        start_time: float = 0.0,
    ) -> TagRead:
        """Run the full Query/RN16/ACK/EPC exchange with one tag.

        Parameters
        ----------
        tag:
            The (single) tag in range. Anti-collision across populations
            is exercised at the MAC level by :mod:`repro.gen2.inventory`;
            this method drives the physical layer.
        downlink, uplink:
            Medium callables mapping an RF signal at one end to the RF
            signal arriving at the other (channel and/or relay).

        Raises
        ------
        TagNotPoweredError
            If the downlink cannot power the tag.
        ProtocolError
            If the exchange decodes inconsistently.
        """
        query = query or Query(q=0, miller_m=self.tag_params.miller_m,
                               trext=self.tag_params.trext)
        reply = self._deliver_command(query, tag, downlink, start_time)
        if not isinstance(reply, Rn16Reply):
            raise ProtocolError(
                "tag did not reply to the query (lost arbitration or filtered)"
            )
        rn16_estimate = self._collect_reply(
            reply.bits, tag, downlink, uplink, start_time
        )
        if bits_to_int(rn16_estimate.bits) != reply.rn16:
            raise ProtocolError("decoded RN16 does not match the tag's handle")
        ack_reply = self._deliver_command(
            Ack(rn16=reply.rn16), tag, downlink, start_time
        )
        if not isinstance(ack_reply, EpcReply):
            raise ProtocolError("tag did not return its EPC after the ACK")
        epc_estimate = self._collect_reply(
            ack_reply.bits, tag, downlink, uplink, start_time
        )
        payload = check_crc16(epc_estimate.bits)
        epc = bits_to_int(payload[16:])
        return TagRead(
            epc=epc,
            rn16=reply.rn16,
            rn16_channel=rn16_estimate,
            epc_channel=epc_estimate,
        )
