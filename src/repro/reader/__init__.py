"""Reader application layer.

The sample-level Gen2 reader (query synthesis, coherent reception,
FM0 decoding, complex channel estimation) and the multi-reader
interference management of paper §4.3.
"""

from __future__ import annotations

from repro.reader.channel_estimation import (
    ChannelEstimate,
    estimate_channel,
    find_reply_start,
    project_to_real,
)
from repro.reader.reader import Reader, TagRead
from repro.reader.multireader import (
    ReaderSite,
    residual_interference_db,
    strongest_reader,
)

__all__ = [
    "ChannelEstimate",
    "estimate_channel",
    "find_reply_start",
    "project_to_real",
    "Reader",
    "TagRead",
    "ReaderSite",
    "strongest_reader",
    "residual_interference_db",
]
