"""Multi-reader interference management (paper §4.3).

Warehouses already host an infrastructure of RFID readers. RFly's relay
copes without protocol changes: the frequency-discovery sweep locks onto
the reader with the strongest received signal (Eq. 5), and the relay's
baseband filters then suppress every other reader — their carriers land
outside the LPF passband after downconversion. This module provides the
selection rule and quantifies the residual interference.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.channel.environment import Environment
from repro.channel.pathloss import free_space_path_loss_db
from repro.dsp.filters import Filter
from repro.dsp.units import linear_to_db
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class ReaderSite:
    """A deployed reader: position, carrier, transmit power."""

    position: tuple
    frequency_hz: float
    tx_power_dbm: float = 30.0
    name: str = ""

    def __post_init__(self) -> None:
        if self.frequency_hz <= 0:
            raise ConfigurationError("reader frequency must be positive")


def received_power_dbm(
    site: ReaderSite, relay_position, environment: Optional[Environment] = None
) -> float:
    """Power of a reader's signal at the relay's position."""
    env = environment or Environment.free_space()
    h = env.channel(site.position, relay_position, site.frequency_hz)
    power = abs(h) ** 2
    if power == 0.0:
        return float("-inf")
    return float(site.tx_power_dbm + linear_to_db(power))


def strongest_reader(
    sites: Sequence[ReaderSite],
    relay_position,
    environment: Optional[Environment] = None,
) -> ReaderSite:
    """The reader the relay locks onto: strongest received signal (Eq. 5)."""
    if not sites:
        raise ConfigurationError("no readers in the environment")
    return max(
        sites, key=lambda s: received_power_dbm(s, relay_position, environment)
    )


def residual_interference_db(
    locked: ReaderSite,
    other: ReaderSite,
    baseband_filter: Filter,
) -> float:
    """Suppression of a non-locked reader by the relay's baseband filter.

    After downconversion at the locked carrier, the other reader sits at
    the inter-carrier offset; the filter's attenuation there is the
    interference suppression. Same-channel readers get no filtering
    protection — the case the paper defers to multi-reader collision
    recovery [25].
    """
    offset = other.frequency_hz - locked.frequency_hz
    if offset == 0.0:
        return 0.0
    nyquist = baseband_filter.sample_rate / 2.0
    if abs(offset) >= nyquist:
        # Beyond the representable band the IIR response is undefined;
        # physically the anti-alias front end has already removed it.
        return float("inf")
    return float(baseband_filter.attenuation_db(offset))
