"""Complex channel estimation from backscattered replies.

State-of-the-art RFID localization operates on the *phase* of the
received tag response (paper §2). The reader obtains it by coherent
matched filtering: the received baseband during a tag reply is

    y(t) = DC + h * m(t) + noise

where DC collects the continuous-wave leak and all static reflections,
``m(t)`` is the tag's known ON-OFF reflection waveform, and ``h`` is the
complex round-trip channel the localizer wants. Removing the mean and
projecting onto the (mean-removed) expected waveform yields the
least-squares estimate of ``h``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.dsp.signal import Signal
from repro.errors import EncodingError, SignalError
from repro.gen2.backscatter import (
    FM0Decoder,
    FM0Encoder,
    MillerDecoder,
    MillerEncoder,
    TagParams,
)
from repro.gen2.bitops import Bits
from repro.dsp.units import linear_to_db


def codec_for(
    params: TagParams, sample_rate: float
) -> "Tuple[FM0Encoder | MillerEncoder, FM0Decoder | MillerDecoder]":
    """The (encoder, decoder) pair matching the tag's reply encoding.

    FM0 for M=1, Miller-M otherwise. Through the relay the reader asks
    for Miller (Query's M field): the subcarrier concentrates the reply
    within the relay's band-pass filter, whereas FM0's spectrum extends
    down to BLF/2 and would be distorted by the filter skirt.
    """
    if params.miller_m == 1:
        return FM0Encoder(params, sample_rate), FM0Decoder(params, sample_rate)
    return MillerEncoder(params, sample_rate), MillerDecoder(params, sample_rate)


@dataclass(frozen=True)
class ChannelEstimate:
    """A complex channel measurement for one decoded reply."""

    h: complex
    snr_db: float
    bits: Bits

    @property
    def phase_rad(self) -> float:
        """Phase in (-pi, pi] — the localization observable."""
        return float(np.angle(self.h))

    @property
    def magnitude(self) -> float:
        """|h| — the RSSI observable used by the baseline of §7.3."""
        return float(abs(self.h))


def project_to_real(samples: np.ndarray) -> Tuple[np.ndarray, complex]:
    """Project complex two-level samples onto their principal axis.

    A backscatter reply after DC removal lies (up to noise) on a line
    through the origin in the complex plane with direction ``h``. The
    principal axis is recovered from the second moment ``E[y^2]``, whose
    angle is twice the channel phase. Returns the real projection and
    the unit rotation used (phase ambiguity of pi remains; the FM0
    preamble resolves it downstream).
    """
    if len(samples) == 0:
        raise SignalError("cannot project an empty sample vector")
    second_moment = np.mean(samples**2)
    axis_phase = 0.5 * np.angle(second_moment)
    rotation = np.exp(-1j * axis_phase)
    return np.real(samples * rotation), complex(rotation)


def find_reply_start(
    sig: Signal, params: TagParams, n_bits: int, search_limit: Optional[int] = None
) -> int:
    """Locate a reply's first sample by preamble energy correlation.

    Correlates the squared envelope derivative... in practice a simple
    amplitude-variance detector suffices: the reply region is where the
    envelope switches at the BLF rate. Returns the sample offset of the
    best alignment of the full expected reply length.
    """
    encoder = codec_for(params, sig.sample_rate)[0]
    template_len = int(round(encoder.duration_of(n_bits) * sig.sample_rate))
    if template_len > len(sig):
        raise EncodingError("signal shorter than one reply")
    envelope = np.abs(sig.samples - np.mean(sig.samples))
    limit = len(sig) - template_len if search_limit is None else min(
        search_limit, len(sig) - template_len
    )
    window = np.ones(template_len)
    energy = np.convolve(envelope**2, window, mode="valid")
    return int(np.argmax(energy[: limit + 1]))


def align_to_preamble(
    sig: Signal, params: TagParams, offset: int, slack: int
) -> int:
    """Refine a reply's start index by preamble correlation.

    Filter group delay (notably the relay's band-pass filter) shifts a
    reply by several samples; a real reader time-aligns by correlating
    against the data-independent pilot+preamble. Returns the offset in
    ``[offset, offset + slack]`` with the strongest correlation.
    """
    if slack < 0:
        raise SignalError("alignment slack must be >= 0")
    encoder = codec_for(params, sig.sample_rate)[0]
    reference = encoder.preamble_reference()
    best, best_score = offset, -1.0
    samples = sig.samples
    # Two scores per offset: a coherent correlation (best when the
    # carrier is phase-stable, even through band-pass filtering) and an
    # envelope correlation (survives carrier rotation on unfiltered
    # ON-OFF replies). Whichever wins anywhere decides the alignment.
    envelope = np.abs(samples)
    for k in range(offset, offset + slack + 1):
        window = samples[k : k + len(reference)]
        if len(window) < len(reference):
            break
        coherent = abs(np.dot(reference, window - np.mean(window)))
        env_window = envelope[k : k + len(reference)]
        noncoherent = abs(np.dot(reference, env_window - np.mean(env_window)))
        score = max(coherent, noncoherent)
        if score > best_score:
            best, best_score = k, score
    return best


def estimate_channel(
    sig: Signal,
    params: TagParams,
    n_bits: int,
    offset: int = 0,
    expected_bits: Optional[Bits] = None,
    align_slack: int = 0,
) -> ChannelEstimate:
    """Decode a reply and estimate its complex channel.

    Parameters
    ----------
    sig:
        Received complex baseband containing the reply (plus CW leak).
    params:
        The tag's reply parameters (BLF, encoding).
    n_bits:
        Payload length the reader expects.
    offset:
        Sample index where the reply begins (see :func:`find_reply_start`).
    expected_bits:
        When provided, decoding is skipped and the reply is matched
        against these bits (used by the phase-accuracy benchmarks where
        the payload is known).

    Returns
    -------
    ChannelEstimate
        The least-squares ``h``, a post-fit SNR estimate, and the bits.
        Note the SNR is a *template-fit* figure: band-limiting filters
        (e.g. the relay's BPF) shave the reply's edges, and that
        deterministic mismatch counts against the fit even when thermal
        noise is negligible — so it is a conservative lower bound.
    """
    encoder, decoder = codec_for(params, sig.sample_rate)
    if align_slack > 0:
        if expected_bits is not None:
            # Known payload: matched-filter synchronization over the
            # whole reply is far more robust at low SNR than the
            # preamble-only search.
            template_wave = np.real(encoder.encode(expected_bits).samples)
            template_wave = template_wave - np.mean(template_wave)
            best, best_score = offset, -1.0
            for k in range(offset, offset + align_slack + 1):
                window = sig.samples[k : k + len(template_wave)]
                if len(window) < len(template_wave):
                    break
                score = abs(np.dot(template_wave, window - np.mean(window)))
                if score > best_score:
                    best, best_score = k, score
            offset = best
        else:
            offset = align_to_preamble(sig, params, offset, align_slack)
    reply_len = int(round(encoder.duration_of(n_bits) * sig.sample_rate))
    if offset + reply_len > len(sig):
        raise EncodingError(
            f"reply of {reply_len} samples at offset {offset} exceeds the "
            f"signal length {len(sig)}"
        )
    region = sig.samples[offset : offset + reply_len]
    centered = region - np.mean(region)

    if expected_bits is not None:
        bits = expected_bits
    else:
        try:
            # Coherent path: project onto the channel axis and decode.
            # (``projected`` is already offset-sliced: decode at 0.)
            projected, _ = project_to_real(centered)
            bits = decoder.decode(sig.with_samples(projected), n_bits, offset=0)
        except EncodingError:
            # Non-coherent fallback: a rotating carrier (CFO through a
            # non-phase-preserving relay) destroys the projection, but
            # the ON-OFF envelope still carries the bits. This is why a
            # conventional relay can *communicate* yet cannot support
            # phase-based localization (paper Fig. 10).
            envelope = np.abs(region)
            bits = decoder.decode(sig.with_samples(envelope), n_bits, offset=0)

    template_sig = encoder.encode(bits)
    template = np.real(template_sig.samples).astype(float)
    n = min(len(template), len(centered))
    template = template[:n] - np.mean(template[:n])
    y = centered[:n]
    denom = float(np.dot(template, template))
    if denom <= 0:
        raise EncodingError("degenerate reply template")
    h = complex(np.dot(template, y) / denom)

    residual = y - h * template
    noise_power = float(np.mean(np.abs(residual) ** 2))
    signal_power = abs(h) ** 2 * denom / n
    snr_db = float(linear_to_db(max(signal_power, 1e-30) / max(noise_power, 1e-30)))
    return ChannelEstimate(h=h, snr_db=snr_db, bits=bits)
