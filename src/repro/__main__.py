"""Regenerate the paper's full evaluation from the command line.

Usage::

    python -m repro                 # every figure + the ablations
    python -m repro fig12 fig13     # a subset
    python -m repro --list          # available experiment names
    python -m repro --parallel --cache-dir .repro-cache

This is the same CLI as ``python -m repro.experiments`` (see
:mod:`repro.experiments.cli` for the full flag reference): experiments
run on the sweep engine, optionally parallel and cached, and every
sweep can emit a JSON run manifest.
"""

from __future__ import annotations

import sys

from repro.experiments.cli import EXPERIMENTS, main

__all__ = ["EXPERIMENTS", "main"]

if __name__ == "__main__":
    sys.exit(main())
