"""Regenerate the paper's full evaluation from the command line.

Usage::

    python -m repro                 # every figure + the ablations
    python -m repro fig12 fig13     # a subset
    python -m repro --list          # available experiment names

Each experiment prints its regenerated table plus the paper-vs-measured
comparison. Full-scale trial counts are used, so the complete run takes
a few minutes.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.experiments import (
    ablations,
    fig4_spectrum,
    fig6_heatmap,
    fig9_isolation,
    fig10_phase,
    fig11_range,
    fig12_localization,
    fig13_aperture,
    fig14_distance,
)

EXPERIMENTS = {
    "fig4": lambda: fig4_spectrum.format_result(fig4_spectrum.run()),
    "fig6": lambda: fig6_heatmap.format_result(fig6_heatmap.run()),
    "fig9": lambda: fig9_isolation.format_result(fig9_isolation.run()),
    "fig10": lambda: fig10_phase.format_result(fig10_phase.run()),
    "fig11": lambda: fig11_range.format_result(fig11_range.run()),
    "fig12": lambda: fig12_localization.format_result(fig12_localization.run()),
    "fig13": lambda: fig13_aperture.format_result(fig13_aperture.run()),
    "fig14": lambda: fig14_distance.format_result(fig14_distance.run()),
}


def main(argv=None) -> int:
    """CLI entry point."""
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate the RFly paper's evaluation figures.",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        help="experiment names (default: all figures + ablations)",
    )
    parser.add_argument(
        "--list", action="store_true", help="list available experiments"
    )
    args = parser.parse_args(argv)

    if args.list:
        for name in (*EXPERIMENTS, "ablations"):
            print(name)
        return 0

    chosen = args.experiments or [*EXPERIMENTS, "ablations"]
    for name in chosen:
        if name == "ablations":
            for output in ablations.run_all():
                print(output.report())
                print()
            continue
        if name not in EXPERIMENTS:
            parser.error(
                f"unknown experiment {name!r}; choices: "
                f"{', '.join((*EXPERIMENTS, 'ablations'))}"
            )
        start = time.perf_counter()
        output = EXPERIMENTS[name]()
        print(output.report())
        print(f"[{name} regenerated in {time.perf_counter() - start:.1f} s]")
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
