"""Exception hierarchy for the RFly reproduction.

Every error raised by this package derives from :class:`RFlyError`, so
callers can catch one type at an API boundary. Subsystems raise the most
specific subclass that applies.
"""

from __future__ import annotations


class RFlyError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class ConfigurationError(RFlyError):
    """A subsystem was configured with inconsistent or invalid parameters."""


class SignalError(RFlyError):
    """A DSP operation received an incompatible or malformed signal."""


class SampleRateError(SignalError):
    """Two signals (or a signal and a filter) disagree on sample rate."""


class ProtocolError(RFlyError):
    """An EPC Gen2 frame or state transition violates the protocol."""


class CRCError(ProtocolError):
    """A received frame failed its CRC check."""


class EncodingError(ProtocolError):
    """A bitstream could not be PIE/FM0/Miller encoded or decoded."""


class RelayError(RFlyError):
    """The relay could not operate as requested."""


class RelayInstabilityError(RelayError):
    """Loop gain exceeded unity: the relay would oscillate (paper Eq. 3)."""


class FrequencyLockError(RelayError):
    """Frequency discovery failed to lock onto a reader carrier."""


class RelayRebootError(RelayError):
    """The relay power-cycled mid-operation and lost the signal in flight."""


class LinkBudgetError(RFlyError):
    """A link-budget computation was asked for an impossible configuration."""


class TagNotPoweredError(RFlyError):
    """The addressed tag did not harvest enough power to respond."""


class LocalizationError(RFlyError):
    """The localizer could not produce an estimate."""


class InsufficientMeasurementsError(LocalizationError):
    """Too few through-relay channel measurements to run the SAR solver."""


class ServeError(RFlyError):
    """The online localization service could not honor a request."""


class SessionNotFoundError(ServeError):
    """No live (or restorable) session exists under the requested id."""


class ReferenceLostError(ServeError):
    """The reference tag stayed undecodable past the reacquisition timeout."""


class ReportError(RFlyError):
    """A benchmark/soak report violates the shared report schema."""


class TrendError(ReportError):
    """The committed soak trend file is missing, corrupt, or inconsistent."""


class GateError(RFlyError):
    """The soak regression gate was invoked with unusable inputs."""


class GeometryError(RFlyError):
    """Invalid geometric input (degenerate segment, point outside room...)."""


class MobilityError(RFlyError):
    """A trajectory or vehicle model was asked for an impossible motion."""


class PayloadError(MobilityError):
    """The attached payload exceeds what the vehicle can carry."""
