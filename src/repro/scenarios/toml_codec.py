"""Canonical TOML for scenario specs, dependency-free both ways.

The repo supports Python 3.9, where :mod:`tomllib` does not exist and
no third-party TOML package is a dependency, so this module carries
both directions itself:

* :func:`dumps` emits a *canonical* TOML document from a JSON-ready
  mapping (sorted keys, one table per section, arrays inline, floats
  in shortest round-trip ``repr`` form). Canonical means
  ``dumps(loads(dumps(d))) == dumps(d)`` byte for byte — the property
  suite pins it, and a 3.11+ test cross-checks :mod:`tomllib` parses
  every emitted document to the same mapping.
* :func:`loads` parses the TOML subset the emitter produces plus the
  obvious hand-edits: comments, blank lines, ``[table]`` /
  ``[[array-of-table]]`` headers, bare keys, strings with JSON-style
  escapes, booleans, integers, floats, and (nested) single-line
  arrays.

The subset is deliberately small — scenario files are flat, regular
documents — and every parse error carries a line number.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Mapping, Tuple, Union

from repro.errors import ConfigurationError

_Scalar = Union[bool, int, float, str]


def _is_scalar(value: Any) -> bool:
    return isinstance(value, (bool, int, float, str))


def _format_float(value: float) -> str:
    """Shortest round-trip repr, forced to TOML float syntax."""
    text = repr(float(value))
    if "." not in text and "e" not in text and "E" not in text:
        text += ".0"
    return text


def _format_scalar(value: _Scalar) -> str:
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, int):
        return str(value)
    if isinstance(value, float):
        return _format_float(value)
    # TOML basic strings accept the JSON escape repertoire.
    return json.dumps(value)


def _format_array(items: List[Any]) -> str:
    parts = []
    for item in items:
        if isinstance(item, list):
            parts.append(_format_array(item))
        elif _is_scalar(item):
            parts.append(_format_scalar(item))
        else:
            raise ConfigurationError(
                f"cannot emit {type(item).__name__} inside a TOML array"
            )
    return "[" + ", ".join(parts) + "]"


def _emit_table(
    data: Mapping[str, Any], path: Tuple[str, ...], lines: List[str]
) -> None:
    scalars = []
    tables = []
    table_arrays = []
    for key in sorted(data):
        value = data[key]
        if isinstance(value, Mapping):
            tables.append(key)
        elif isinstance(value, list) and any(
            isinstance(item, Mapping) for item in value
        ):
            table_arrays.append(key)
        else:
            scalars.append(key)
    if path:
        if lines:
            lines.append("")
        lines.append("[" + ".".join(path) + "]")
    for key in scalars:
        value = data[key]
        if isinstance(value, list):
            lines.append(f"{key} = {_format_array(value)}")
        elif _is_scalar(value):
            lines.append(f"{key} = {_format_scalar(value)}")
        elif value is None:
            raise ConfigurationError(
                f"TOML has no null: omit key {key!r} instead"
            )
        else:
            raise ConfigurationError(
                f"cannot emit {type(value).__name__} for key {key!r}"
            )
    for key in tables:
        _emit_table(data[key], path + (key,), lines)
    for key in table_arrays:
        for item in data[key]:
            if not isinstance(item, Mapping):
                raise ConfigurationError(
                    f"array {key!r} mixes tables and scalars"
                )
            if lines:
                lines.append("")
            lines.append("[[" + ".".join(path + (key,)) + "]]")
            _emit_inline_table_body(item, path + (key,), lines)


def _emit_inline_table_body(
    data: Mapping[str, Any], path: Tuple[str, ...], lines: List[str]
) -> None:
    scalars = []
    tables = []
    for key in sorted(data):
        value = data[key]
        if isinstance(value, Mapping):
            tables.append(key)
        elif isinstance(value, list) and any(
            isinstance(item, Mapping) for item in value
        ):
            raise ConfigurationError(
                f"array-of-table entries cannot nest table arrays; "
                f"key {key!r}"
            )
        else:
            scalars.append(key)
    for key in scalars:
        value = data[key]
        if isinstance(value, list):
            lines.append(f"{key} = {_format_array(value)}")
        elif _is_scalar(value):
            lines.append(f"{key} = {_format_scalar(value)}")
        elif value is None:
            raise ConfigurationError(
                f"TOML has no null: omit key {key!r} instead"
            )
        else:
            raise ConfigurationError(
                f"cannot emit {type(value).__name__} for key {key!r}"
            )
    # A sub-table header after an array-of-table entry attaches to the
    # *last* entry of that array (standard TOML; the parser's
    # ``_descend`` takes ``child[-1]``), so nested mappings emit as
    # ``[path.key]`` sections before the next ``[[path]]`` line.
    for key in tables:
        _emit_table(data[key], path + (key,), lines)


def dumps(data: Mapping[str, Any]) -> str:
    """Canonical TOML document for a JSON-ready mapping."""
    lines: List[str] = []
    _emit_table(data, (), lines)
    return "\n".join(lines) + "\n"


class _Parser:
    """Line-oriented parser for the emitted subset."""

    def __init__(self, text: str) -> None:
        self.root: Dict[str, Any] = {}
        self.current = self.root
        self.lineno = 0
        for raw in text.splitlines():
            self.lineno += 1
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            if line.startswith("[["):
                self._open_table_array(line)
            elif line.startswith("["):
                self._open_table(line)
            else:
                self._assign(line)

    def _fail(self, message: str) -> "ConfigurationError":
        return ConfigurationError(f"TOML line {self.lineno}: {message}")

    def _path(self, inner: str) -> List[str]:
        parts = [part.strip() for part in inner.split(".")]
        for part in parts:
            if not part or not all(
                ch.isalnum() or ch in "_-" for ch in part
            ):
                raise self._fail(f"bad table path component {part!r}")
        return parts

    def _descend(self, parts: List[str]) -> Dict[str, Any]:
        node = self.root
        for part in parts:
            child = node.setdefault(part, {})
            if isinstance(child, list):
                child = child[-1]
            if not isinstance(child, dict):
                raise self._fail(
                    f"key {part!r} is a value, not a table"
                )
            node = child
        return node

    def _open_table(self, line: str) -> None:
        if not line.endswith("]"):
            raise self._fail("unterminated table header")
        parts = self._path(line[1:-1])
        parent = self._descend(parts[:-1])
        child = parent.setdefault(parts[-1], {})
        if not isinstance(child, dict):
            raise self._fail(f"table {parts[-1]!r} conflicts with a value")
        self.current = child

    def _open_table_array(self, line: str) -> None:
        if not line.endswith("]]"):
            raise self._fail("unterminated array-of-table header")
        parts = self._path(line[2:-2])
        parent = self._descend(parts[:-1])
        array = parent.setdefault(parts[-1], [])
        if not isinstance(array, list):
            raise self._fail(
                f"array table {parts[-1]!r} conflicts with a value"
            )
        entry: Dict[str, Any] = {}
        array.append(entry)
        self.current = entry

    def _assign(self, line: str) -> None:
        if "=" not in line:
            raise self._fail(f"expected 'key = value', got {line!r}")
        key, _, rest = line.partition("=")
        key = key.strip()
        if not key or not all(ch.isalnum() or ch in "_-" for ch in key):
            raise self._fail(f"bad key {key!r}")
        if key in self.current:
            raise self._fail(f"duplicate key {key!r}")
        value, remainder = self._parse_value(rest.strip())
        if remainder and not remainder.startswith("#"):
            raise self._fail(f"trailing garbage {remainder!r}")
        self.current[key] = value

    def _parse_value(self, text: str) -> Tuple[Any, str]:
        if not text:
            raise self._fail("missing value")
        if text.startswith('"'):
            return self._parse_string(text)
        if text.startswith("["):
            return self._parse_array(text)
        # Bare token: boolean or number, ended by , ] or whitespace.
        end = len(text)
        for index, ch in enumerate(text):
            if ch in ",]# \t":
                end = index
                break
        token, remainder = text[:end], text[end:].strip()
        if token == "true":
            return True, remainder
        if token == "false":
            return False, remainder
        try:
            if any(ch in token for ch in ".eE") and not token.startswith(
                "0x"
            ):
                return float(token), remainder
            return int(token), remainder
        except ValueError:
            raise self._fail(f"cannot parse value token {token!r}")

    def _parse_string(self, text: str) -> Tuple[str, str]:
        escaped = False
        for index in range(1, len(text)):
            ch = text[index]
            if escaped:
                escaped = False
            elif ch == "\\":
                escaped = True
            elif ch == '"':
                literal = text[: index + 1]
                try:
                    return json.loads(literal), text[index + 1 :].strip()
                except json.JSONDecodeError:
                    raise self._fail(f"bad string literal {literal!r}")
        raise self._fail("unterminated string")

    def _parse_array(self, text: str) -> Tuple[List[Any], str]:
        items: List[Any] = []
        rest = text[1:].strip()
        while True:
            if not rest:
                raise self._fail("unterminated array")
            if rest.startswith("]"):
                return items, rest[1:].strip()
            value, rest = self._parse_value(rest)
            items.append(value)
            if rest.startswith(","):
                rest = rest[1:].strip()
            elif not rest.startswith("]"):
                raise self._fail(f"expected ',' or ']' in array at {rest!r}")


def loads(text: str) -> Dict[str, Any]:
    """Parse the canonical/hand-edited TOML subset to a mapping."""
    return _Parser(text).root
