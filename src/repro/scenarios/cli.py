"""Command-line front end for the scenario registry.

Usage::

    python -m repro.scenarios list                   # shipped names
    python -m repro.scenarios show cold_storage_aisles --format toml
    python -m repro.scenarios validate               # whole library
    python -m repro.scenarios validate my_world.toml # specific files
    python -m repro.scenarios run outdoor_yard --seed 3 --replicates 4
    python -m repro.scenarios run conveyor_flow_through --smoke \
        --set traffic.load=8.0

``validate`` re-parses each spec file and checks the canonical
round-trip (parse -> dump -> parse yields the identical spec), so it
doubles as the pre-commit/CI gate over ``repro/scenarios/library/``.
``run`` compiles the scenario to seeded sweep tasks and replays every
replicate end to end through the serving stack — the same path the
experiments take, so a scenario that passes here will sweep.
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence

from repro.errors import ConfigurationError
from repro.runtime import RuntimeConfig, run_sweep
from repro.scenarios import compiler, registry, toml_codec
from repro.scenarios.spec import Scenario

#: ``--smoke`` floors: coarse enough that any library scenario replays
#: in seconds while still exercising the full realize/stream/serve path.
SMOKE_MIN_SPACING_M = 0.25
SMOKE_MIN_RESOLUTION_M = 0.20


def parse_set_overrides(items: Sequence[str]) -> Dict[str, Any]:
    """``KEY=VALUE`` tokens -> dotted-path override mapping.

    Values parse as JSON (``8.0`` -> float, ``true`` -> bool) with a
    plain-string fallback so unquoted names keep working.
    """
    overrides: Dict[str, Any] = {}
    for item in items:
        key, sep, raw = item.partition("=")
        if not sep or not key:
            raise ConfigurationError(
                f"--set expects KEY=VALUE, got {item!r}"
            )
        try:
            value: Any = json.loads(raw)
        except json.JSONDecodeError:
            value = raw
        overrides[key] = value
    return overrides


def smoke_variant(scenario: Scenario) -> Scenario:
    """The coarsened spec ``run --smoke`` replays.

    Pose spacing and grid resolution are floored (never refined), so
    smoke runs stay cheap without touching scenarios that are already
    coarse; everything else — world, radio, traffic mix, faults — is
    exercised unchanged.
    """
    return scenario.with_overrides(
        {
            "trajectory.spacing_m": max(
                scenario.trajectory.spacing_m, SMOKE_MIN_SPACING_M
            ),
            "grid.resolution_m": max(
                scenario.grid.resolution_m, SMOKE_MIN_RESOLUTION_M
            ),
        }
    )


def validate_files(paths: Sequence[Path]) -> List[str]:
    """Validate spec files; returns one error string per bad file.

    A file passes when it parses into a :class:`Scenario`, its stem
    matches the declared name, and the canonical round-trip (dump ->
    parse) reproduces the identical spec in both JSON and TOML.
    """
    problems: List[str] = []
    for path in paths:
        try:
            scenario = registry.load_file(path)
        except (ConfigurationError, OSError) as error:
            problems.append(f"{path}: {error}")
            continue
        if scenario.name != path.stem:
            problems.append(
                f"{path}: declares name {scenario.name!r}; "
                "the file stem must match"
            )
            continue
        if Scenario.from_json(scenario.to_json()) != scenario:
            problems.append(f"{path}: JSON round-trip is lossy")
            continue
        if (
            Scenario.from_dict(toml_codec.loads(toml_codec.dumps(scenario.to_dict())))
            != scenario
        ):
            problems.append(f"{path}: TOML round-trip is lossy")
    return problems


def build_parser() -> argparse.ArgumentParser:
    """The ``python -m repro.scenarios`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.scenarios",
        description="Inspect, validate, and run declarative scenarios.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("list", help="list registered scenario names")

    show = commands.add_parser("show", help="print one resolved spec")
    show.add_argument("name", help="registry name or spec-file path")
    show.add_argument(
        "--format",
        choices=("toml", "json"),
        default="toml",
        help="output format (canonical TOML by default)",
    )

    validate = commands.add_parser(
        "validate", help="validate spec files (default: shipped library)"
    )
    validate.add_argument(
        "files",
        nargs="*",
        help="spec files to check (default: every library .toml)",
    )

    run = commands.add_parser(
        "run", help="compile a scenario and replay it end to end"
    )
    run.add_argument("name", help="registry name or spec-file path")
    run.add_argument("--seed", type=int, default=0, help="base sweep seed")
    run.add_argument(
        "--replicates",
        type=int,
        default=2,
        metavar="N",
        help="independently seeded end-to-end replicates (default: 2)",
    )
    run.add_argument(
        "--smoke",
        action="store_true",
        help="coarsen pose spacing / grid resolution for a fast pass",
    )
    run.add_argument(
        "--set",
        action="append",
        default=[],
        dest="scenario_sets",
        metavar="KEY=VALUE",
        help=(
            "dotted-path spec override (repeatable), "
            "e.g. --set traffic.load=8.0"
        ),
    )
    run.add_argument(
        "--parallel",
        action="store_true",
        help="fan replicates over a process pool (bit-identical)",
    )
    return parser


def _cmd_list() -> int:
    for name in registry.names():
        print(f"{name:<28} {registry.get(name).description}")
    return 0


def _cmd_show(name: str, fmt: str) -> int:
    scenario = registry.resolve(name)
    if fmt == "json":
        print(json.dumps(scenario.to_dict(), indent=2, sort_keys=True))
    else:
        print(toml_codec.dumps(scenario.to_dict()), end="")
    return 0


def _cmd_validate(files: Sequence[str]) -> int:
    paths = (
        [Path(item) for item in files]
        if files
        else sorted(registry.LIBRARY_DIR.glob("*.toml"))
    )
    if not paths:
        print("no scenario files to validate")
        return 1
    problems = validate_files(paths)
    for problem in problems:
        print(f"FAIL {problem}")
    print(f"{len(paths) - len(problems)}/{len(paths)} scenario file(s) valid")
    return 1 if problems else 0


def _cmd_run(args: argparse.Namespace) -> int:
    scenario = registry.resolve(args.name)
    overrides = parse_set_overrides(args.scenario_sets)
    if overrides:
        scenario = scenario.with_overrides(overrides)
    if args.smoke:
        scenario = smoke_variant(scenario)
    tasks = compiler.compile_scenario(
        scenario, n_replicates=args.replicates, seed=args.seed
    )
    runtime = RuntimeConfig(
        backend="process" if args.parallel else "serial"
    )
    sweep = run_sweep(tasks, runtime, name=f"scenario/{scenario.name}")
    rows = compiler.reduce_smoke(sweep.results, {})
    for row in rows:
        print(
            "r{replicate}: sessions={sessions} offered={offered} "
            "applied={applied} shed={shed_fraction:.3f} "
            "degraded={degraded_fraction:.3f} "
            "p99={p99:.2f}ms err={mean_error_m:.3f}m "
            "localized={localized}".format(
                p99=row["p99_latency_s"] * 1e3, **row
            )
        )
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        if args.command == "list":
            return _cmd_list()
        if args.command == "show":
            return _cmd_show(args.name, args.format)
        if args.command == "validate":
            return _cmd_validate(args.files)
        return _cmd_run(args)
    except ConfigurationError as error:
        parser.error(str(error))
        return 2  # pragma: no cover - parser.error raises SystemExit
