"""The named-scenario registry.

Scenario specs ship as canonical TOML files under
``repro/scenarios/library/`` — one file per scenario, file stem equal
to the scenario's ``name``. The registry loads them lazily on first
lookup; :func:`register` adds in-process scenarios (tests, generated
worlds) on top. :func:`resolve` is the one entry point the experiment
layer uses: it accepts a :class:`~repro.scenarios.spec.Scenario`, a
registry name, or a path to a ``.toml``/``.json`` spec file.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Dict, Tuple, Union

from repro.errors import ConfigurationError
from repro.scenarios import toml_codec
from repro.scenarios.spec import Scenario

#: Directory of shipped scenario spec files.
LIBRARY_DIR = Path(__file__).resolve().parent / "library"

_SCENARIOS: Dict[str, Scenario] = {}
_library_loaded = False


def _load_library() -> None:
    global _library_loaded
    if _library_loaded:
        return
    for path in sorted(LIBRARY_DIR.glob("*.toml")):
        scenario = load_file(path)
        if scenario.name != path.stem:
            raise ConfigurationError(
                f"scenario file {path.name} declares name "
                f"{scenario.name!r}; the stem must match"
            )
        _SCENARIOS.setdefault(scenario.name, scenario)
    _library_loaded = True


def load_file(path: Union[str, Path]) -> Scenario:
    """Parse one ``.toml`` or ``.json`` spec file into a Scenario."""
    path = Path(path)
    text = path.read_text(encoding="utf-8")
    if path.suffix == ".json":
        return Scenario.from_dict(json.loads(text))
    if path.suffix == ".toml":
        return Scenario.from_dict(toml_codec.loads(text))
    raise ConfigurationError(
        f"scenario files must be .toml or .json, got {path.name!r}"
    )


def names() -> Tuple[str, ...]:
    """All registered scenario names, sorted."""
    _load_library()
    return tuple(sorted(_SCENARIOS))


def get(name: str) -> Scenario:
    """Look up a named scenario."""
    _load_library()
    try:
        return _SCENARIOS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown scenario {name!r}; choices: {', '.join(names())}"
        ) from None


def register(scenario: Scenario, replace: bool = False) -> Scenario:
    """Add a scenario to the in-process registry (tests, generators)."""
    _load_library()
    if not replace and scenario.name in _SCENARIOS:
        raise ConfigurationError(
            f"scenario {scenario.name!r} is already registered"
        )
    _SCENARIOS[scenario.name] = scenario
    return scenario


def resolve(value: Union[str, Scenario]) -> Scenario:
    """Scenario passthrough, registry name, or spec-file path."""
    if isinstance(value, Scenario):
        return value
    if not isinstance(value, str):
        raise ConfigurationError(
            f"cannot resolve a {type(value).__name__} to a scenario"
        )
    looks_like_path = (
        value.endswith(".toml")
        or value.endswith(".json")
        or os.sep in value
    )
    if looks_like_path:
        return load_file(value)
    return get(value)
