"""Frozen, JSON/TOML-canonical scenario dataclasses.

A :class:`Scenario` states one evaluation world declaratively: the
floorplan (walls / shelves / clutter), where the reader sits, how the
relay flies, how tags are laid out, the frequency plan and SNR law,
the Gen2 traffic mix, the localization search grid, and an optional
:class:`~repro.faults.FaultPlan`. Everything is plain scalars —
picklable, hashable, and losslessly round-trippable through canonical
JSON (:meth:`Scenario.to_json`) and TOML
(:mod:`repro.scenarios.toml_codec`) — so a spec can ride inside a
:class:`~repro.runtime.SweepTask`'s parameters and reach process-pool
workers unchanged.

Parametric sub-specs carry a ``kind`` discriminator (``"fixed"`` vs
``"uniform_box"`` tag layouts, ``"line"`` vs ``"random_segment"``
trajectories, ...); every random kind is lowered by the compiler with
draws taken from the *task* seed, so the same spec + seed always
produces the same world. The module deliberately imports no channel /
mobility / serve code: lowering lives in
:mod:`repro.scenarios.compiler` and :mod:`repro.scenarios.trials`.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field, fields
from typing import Any, Dict, Mapping, Optional, Tuple, Type, TypeVar

from repro.constants import RELAY_FREQUENCY_SHIFT_HZ, UHF_CENTER_FREQUENCY
from repro.errors import ConfigurationError
from repro.faults import FaultPlan

#: Wall material names the floorplan understands, in the order they are
#: defined by :mod:`repro.channel.environment`.
MATERIAL_NAMES: Tuple[str, ...] = (
    "drywall",
    "concrete",
    "brick",
    "steel",
    "glass",
)

READER_KINDS: Tuple[str, ...] = ("fixed", "random_ring")
TRAJECTORY_KINDS: Tuple[str, ...] = ("line", "random_segment")
TAG_KINDS: Tuple[str, ...] = ("fixed", "uniform_box", "side_offset")
SNR_KINDS: Tuple[str, ...] = ("fixed", "distance_law")
GRID_KINDS: Tuple[str, ...] = ("fixed", "tag_side")
SELECTION_KINDS: Tuple[str, ...] = (
    "nearest",
    "best_link_budget",
    "epsilon_greedy",
)

_S = TypeVar("_S")


def _require_finite(label: str, value: float) -> float:
    """Reject NaN/inf early — canonical JSON/TOML cannot carry them."""
    value = float(value)
    if not math.isfinite(value):
        raise ConfigurationError(f"{label} must be finite, got {value!r}")
    return value


def _check_kind(label: str, kind: str, choices: Tuple[str, ...]) -> None:
    if kind not in choices:
        raise ConfigurationError(
            f"unknown {label} kind {kind!r}; choices: {', '.join(choices)}"
        )


def _filtered_kwargs(
    cls: Type[Any], data: Mapping[str, Any]
) -> Dict[str, Any]:
    """Keyword arguments for ``cls`` present in ``data``, erroring on
    unknown keys (typos in hand-written TOML should not pass silently).
    """
    known = {f.name for f in fields(cls)}
    unknown = sorted(set(data) - known)
    if unknown:
        raise ConfigurationError(
            f"{cls.__name__} does not understand key(s) "
            f"{', '.join(unknown)}; choices: {', '.join(sorted(known))}"
        )
    return {key: data[key] for key in data}


@dataclass(frozen=True)
class WallSpec:
    """One wall segment from ``(x0_m, y0_m)`` to ``(x1_m, y1_m)``."""

    x0_m: float
    y0_m: float
    x1_m: float
    y1_m: float
    material: str = "drywall"
    name: str = ""

    def __post_init__(self) -> None:
        for label in ("x0_m", "y0_m", "x1_m", "y1_m"):
            object.__setattr__(
                self, label, _require_finite(label, getattr(self, label))
            )
        if self.material not in MATERIAL_NAMES:
            raise ConfigurationError(
                f"unknown wall material {self.material!r}; "
                f"choices: {', '.join(MATERIAL_NAMES)}"
            )
        if (self.x0_m, self.y0_m) == (self.x1_m, self.y1_m):
            raise ConfigurationError(
                f"wall {self.name or '<unnamed>'} has zero length"
            )

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready mapping."""
        return {
            "x0_m": self.x0_m,
            "y0_m": self.y0_m,
            "x1_m": self.x1_m,
            "y1_m": self.y1_m,
            "material": self.material,
            "name": self.name,
        }

    @staticmethod
    def from_dict(data: Mapping[str, Any]) -> "WallSpec":
        """Rebuild from :meth:`to_dict` output."""
        return WallSpec(**_filtered_kwargs(WallSpec, data))


@dataclass(frozen=True)
class ClutterSpec:
    """Randomly scattered reflective obstacles near the scanned aisle.

    The compiler draws ``n_obstacles`` short wall segments from the
    task seed: centers Gaussian around the trajectory start with
    ``scatter_std_m``, orientations uniform in ``[0, pi)``, half
    extents uniform in ``[half_extent_min_m, half_extent_max_m]``, and
    materials cycled by draw through ``materials``.
    """

    n_obstacles: int = 0
    scatter_std_m: float = 3.0
    half_extent_min_m: float = 0.8
    half_extent_max_m: float = 2.0
    materials: Tuple[str, ...] = ("steel", "drywall", "steel")

    def __post_init__(self) -> None:
        object.__setattr__(self, "n_obstacles", int(self.n_obstacles))
        object.__setattr__(self, "materials", tuple(self.materials))
        for label in (
            "scatter_std_m",
            "half_extent_min_m",
            "half_extent_max_m",
        ):
            object.__setattr__(
                self, label, _require_finite(label, getattr(self, label))
            )
        if self.n_obstacles < 0:
            raise ConfigurationError("n_obstacles must be >= 0")
        if not self.materials:
            raise ConfigurationError("clutter needs at least one material")
        for material in self.materials:
            if material not in MATERIAL_NAMES:
                raise ConfigurationError(
                    f"unknown clutter material {material!r}; "
                    f"choices: {', '.join(MATERIAL_NAMES)}"
                )
        if not 0.0 < self.half_extent_min_m <= self.half_extent_max_m:
            raise ConfigurationError(
                "clutter half extents need 0 < min <= max"
            )
        if self.scatter_std_m < 0.0:
            raise ConfigurationError("scatter_std_m must be >= 0")

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready mapping."""
        return {
            "n_obstacles": self.n_obstacles,
            "scatter_std_m": self.scatter_std_m,
            "half_extent_min_m": self.half_extent_min_m,
            "half_extent_max_m": self.half_extent_max_m,
            "materials": list(self.materials),
        }

    @staticmethod
    def from_dict(data: Mapping[str, Any]) -> "ClutterSpec":
        """Rebuild from :meth:`to_dict` output."""
        kwargs = _filtered_kwargs(ClutterSpec, data)
        if "materials" in kwargs:
            kwargs["materials"] = tuple(kwargs["materials"])
        return ClutterSpec(**kwargs)


@dataclass(frozen=True)
class FloorplanSpec:
    """Walls plus ray-tracing depth; empty means free space."""

    walls: Tuple[WallSpec, ...] = ()
    max_reflections: int = 1
    clutter: Optional[ClutterSpec] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "walls", tuple(self.walls))
        object.__setattr__(self, "max_reflections", int(self.max_reflections))
        if self.max_reflections < 0:
            raise ConfigurationError("max_reflections must be >= 0")

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready mapping (``clutter`` omitted when absent)."""
        out: Dict[str, Any] = {
            "walls": [wall.to_dict() for wall in self.walls],
            "max_reflections": self.max_reflections,
        }
        if self.clutter is not None:
            out["clutter"] = self.clutter.to_dict()
        return out

    @staticmethod
    def from_dict(data: Mapping[str, Any]) -> "FloorplanSpec":
        """Rebuild from :meth:`to_dict` output."""
        kwargs = _filtered_kwargs(FloorplanSpec, data)
        if "walls" in kwargs:
            kwargs["walls"] = tuple(
                WallSpec.from_dict(item) for item in kwargs["walls"]
            )
        if kwargs.get("clutter") is not None:
            kwargs["clutter"] = ClutterSpec.from_dict(kwargs["clutter"])
        return FloorplanSpec(**kwargs)


@dataclass(frozen=True)
class ReaderSpec:
    """Where the ground reader sits.

    ``fixed``
        At ``(x_m, y_m)``.
    ``random_ring``
        At a seed-drawn angle and distance in
        ``[distance_min_m, distance_max_m]`` around the trajectory
        start, clipped into the ``clip_*`` rectangle (keeps the reader
        inside the building).
    """

    kind: str = "fixed"
    x_m: float = 0.0
    y_m: float = 0.0
    distance_min_m: float = 0.0
    distance_max_m: float = 0.0
    clip_x_min_m: float = 0.0
    clip_x_max_m: float = 0.0
    clip_y_min_m: float = 0.0
    clip_y_max_m: float = 0.0

    def __post_init__(self) -> None:
        _check_kind("reader", self.kind, READER_KINDS)
        for spec_field in fields(self):
            if spec_field.name == "kind":
                continue
            object.__setattr__(
                self,
                spec_field.name,
                _require_finite(
                    spec_field.name, getattr(self, spec_field.name)
                ),
            )
        if self.kind == "random_ring":
            if not 0.0 < self.distance_min_m <= self.distance_max_m:
                raise ConfigurationError(
                    "random_ring reader needs 0 < distance_min_m "
                    "<= distance_max_m"
                )
            if (
                self.clip_x_min_m >= self.clip_x_max_m
                or self.clip_y_min_m >= self.clip_y_max_m
            ):
                raise ConfigurationError(
                    "random_ring reader needs a non-empty clip rectangle"
                )

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready mapping."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @staticmethod
    def from_dict(data: Mapping[str, Any]) -> "ReaderSpec":
        """Rebuild from :meth:`to_dict` output."""
        return ReaderSpec(**_filtered_kwargs(ReaderSpec, data))


@dataclass(frozen=True)
class TrajectorySpec:
    """How the relay flies its SAR pass.

    ``line``
        A straight segment ``(x0_m, y0_m) -> (x1_m, y1_m)``.
    ``random_segment``
        Start uniform in ``[x_min_m, x_max_m] x [y_min_m, y_max_m]``,
        heading uniform in ``[0, 2*pi)``, length uniform in
        ``[length_min_m, length_max_m]`` — one random warehouse pass
        per task seed.

    ``jitter_std_m`` (per-pose measurement-position noise),
    ``bias_std_m`` (per-flight marker->antenna offset) and
    ``wander_std_m`` (correlated flight wander) feed the drone error
    model of :mod:`repro.sim.scenarios` when trials are lowered.
    """

    kind: str = "line"
    x0_m: float = 0.0
    y0_m: float = 0.0
    x1_m: float = 1.0
    y1_m: float = 0.0
    x_min_m: float = 0.0
    x_max_m: float = 0.0
    y_min_m: float = 0.0
    y_max_m: float = 0.0
    length_min_m: float = 0.0
    length_max_m: float = 0.0
    spacing_m: float = 0.05
    jitter_std_m: float = 0.0
    bias_std_m: float = 0.0
    wander_std_m: float = 0.0
    speed_mps: float = 0.5

    def __post_init__(self) -> None:
        _check_kind("trajectory", self.kind, TRAJECTORY_KINDS)
        for spec_field in fields(self):
            if spec_field.name == "kind":
                continue
            object.__setattr__(
                self,
                spec_field.name,
                _require_finite(
                    spec_field.name, getattr(self, spec_field.name)
                ),
            )
        if self.spacing_m <= 0.0:
            raise ConfigurationError("spacing_m must be > 0")
        if self.speed_mps <= 0.0:
            raise ConfigurationError("speed_mps must be > 0")
        for label in ("jitter_std_m", "bias_std_m", "wander_std_m"):
            if getattr(self, label) < 0.0:
                raise ConfigurationError(f"{label} must be >= 0")
        if self.kind == "line":
            if (self.x0_m, self.y0_m) == (self.x1_m, self.y1_m):
                raise ConfigurationError("line trajectory has zero length")
        else:
            if self.x_min_m > self.x_max_m or self.y_min_m > self.y_max_m:
                raise ConfigurationError(
                    "random_segment start box needs min <= max"
                )
            if not 0.0 < self.length_min_m <= self.length_max_m:
                raise ConfigurationError(
                    "random_segment needs 0 < length_min_m <= length_max_m"
                )

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready mapping."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @staticmethod
    def from_dict(data: Mapping[str, Any]) -> "TrajectorySpec":
        """Rebuild from :meth:`to_dict` output."""
        return TrajectorySpec(**_filtered_kwargs(TrajectorySpec, data))


@dataclass(frozen=True)
class TagLayoutSpec:
    """Parametric tag placement.

    ``fixed``
        Exactly ``positions_m`` (``n_tags`` must match its length).
    ``uniform_box``
        ``n_tags`` draws, each an ``(x, y)`` pair uniform in
        ``[x_min_m, x_max_m] x [y_min_m, y_max_m]`` (x then y, in tag
        order — the draw order is part of the contract, goldens pin it).
    ``side_offset``
        Tags perpendicular to the flight segment: offset uniform in
        ``[offset_min_m, offset_max_m]`` to a seed-drawn side, anchored
        uniformly in ``[along_fraction_min, along_fraction_max]`` of
        the segment (fractions of its length, dimensionless).
    """

    kind: str = "fixed"
    n_tags: int = 1
    positions_m: Tuple[Tuple[float, float], ...] = ((1.0, 1.0),)
    x_min_m: float = 0.0
    x_max_m: float = 0.0
    y_min_m: float = 0.0
    y_max_m: float = 0.0
    offset_min_m: float = 0.0
    offset_max_m: float = 0.0
    along_fraction_min: float = 0.0
    along_fraction_max: float = 1.0

    def __post_init__(self) -> None:
        _check_kind("tag layout", self.kind, TAG_KINDS)
        object.__setattr__(self, "n_tags", int(self.n_tags))
        object.__setattr__(
            self,
            "positions_m",
            tuple(
                (
                    _require_finite("positions_m.x", pos[0]),
                    _require_finite("positions_m.y", pos[1]),
                )
                for pos in self.positions_m
            ),
        )
        for spec_field in fields(self):
            if spec_field.name in ("kind", "n_tags", "positions_m"):
                continue
            object.__setattr__(
                self,
                spec_field.name,
                _require_finite(
                    spec_field.name, getattr(self, spec_field.name)
                ),
            )
        if self.n_tags < 1:
            raise ConfigurationError("n_tags must be >= 1")
        if self.kind == "fixed":
            if len(self.positions_m) != self.n_tags:
                raise ConfigurationError(
                    f"fixed layout has {len(self.positions_m)} position(s) "
                    f"but n_tags={self.n_tags}"
                )
        elif self.kind == "uniform_box":
            if self.x_min_m > self.x_max_m or self.y_min_m > self.y_max_m:
                raise ConfigurationError(
                    "uniform_box layout needs min <= max on both axes"
                )
        else:
            if not 0.0 <= self.offset_min_m <= self.offset_max_m:
                raise ConfigurationError(
                    "side_offset needs 0 <= offset_min_m <= offset_max_m"
                )
            if not (
                0.0
                <= self.along_fraction_min
                <= self.along_fraction_max
                <= 1.0
            ):
                raise ConfigurationError(
                    "side_offset fractions need "
                    "0 <= along_fraction_min <= along_fraction_max <= 1"
                )

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready mapping."""
        out = {f.name: getattr(self, f.name) for f in fields(self)}
        out["positions_m"] = [list(pos) for pos in self.positions_m]
        return out

    @staticmethod
    def from_dict(data: Mapping[str, Any]) -> "TagLayoutSpec":
        """Rebuild from :meth:`to_dict` output."""
        kwargs = _filtered_kwargs(TagLayoutSpec, data)
        if "positions_m" in kwargs:
            kwargs["positions_m"] = tuple(
                (float(pos[0]), float(pos[1]))
                for pos in kwargs["positions_m"]
            )
        return TagLayoutSpec(**kwargs)


@dataclass(frozen=True)
class RadioSpec:
    """The frequency plan and SNR law.

    ``snr_kind="fixed"`` uses ``snr_db`` everywhere;
    ``"distance_law"`` evaluates the projected-distance SNR model of
    :func:`repro.sim.scenarios.projected_distance_snr_db` anchored at
    ``reference_snr_db``, minus through-wall losses, clipped to
    ``[snr_min_db, snr_max_db]``. ``rssi_mismatch_std_db`` is the
    per-trial RSSI calibration mismatch drawn by the baseline
    comparison trials.
    """

    center_frequency_hz: float = UHF_CENTER_FREQUENCY
    band_low_hz: float = 902.75e6
    band_high_hz: float = 927.25e6
    relay_shift_hz: float = RELAY_FREQUENCY_SHIFT_HZ
    relay_gain_db: float = 45.0
    snr_kind: str = "fixed"
    snr_db: float = 25.0
    reference_snr_db: float = 46.0
    snr_min_db: float = 8.0
    snr_max_db: float = 25.0
    rssi_mismatch_std_db: float = 0.0

    def __post_init__(self) -> None:
        _check_kind("snr", self.snr_kind, SNR_KINDS)
        for spec_field in fields(self):
            if spec_field.name == "snr_kind":
                continue
            object.__setattr__(
                self,
                spec_field.name,
                _require_finite(
                    spec_field.name, getattr(self, spec_field.name)
                ),
            )
        if self.center_frequency_hz <= 0.0:
            raise ConfigurationError("center_frequency_hz must be > 0")
        if not 0.0 < self.band_low_hz <= self.band_high_hz:
            raise ConfigurationError(
                "band edges need 0 < band_low_hz <= band_high_hz"
            )
        if self.snr_min_db > self.snr_max_db:
            raise ConfigurationError("snr_min_db must be <= snr_max_db")
        if self.rssi_mismatch_std_db < 0.0:
            raise ConfigurationError("rssi_mismatch_std_db must be >= 0")

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready mapping."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @staticmethod
    def from_dict(data: Mapping[str, Any]) -> "RadioSpec":
        """Rebuild from :meth:`to_dict` output."""
        return RadioSpec(**_filtered_kwargs(RadioSpec, data))


@dataclass(frozen=True)
class TrafficSpec:
    """The Gen2 traffic mix for streaming-serve scenarios."""

    load: float = 1.0
    use_gen2_mac: bool = True
    powering_range_m: float = 3.5
    latency_slo_s: float = 0.25

    def __post_init__(self) -> None:
        object.__setattr__(self, "use_gen2_mac", bool(self.use_gen2_mac))
        for label in ("load", "powering_range_m", "latency_slo_s"):
            object.__setattr__(
                self, label, _require_finite(label, getattr(self, label))
            )
        if self.load <= 0.0:
            raise ConfigurationError("load must be > 0")
        if self.powering_range_m <= 0.0:
            raise ConfigurationError("powering_range_m must be > 0")
        if self.latency_slo_s <= 0.0:
            raise ConfigurationError("latency_slo_s must be > 0")

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready mapping."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @staticmethod
    def from_dict(data: Mapping[str, Any]) -> "TrafficSpec":
        """Rebuild from :meth:`to_dict` output."""
        return TrafficSpec(**_filtered_kwargs(TrafficSpec, data))


@dataclass(frozen=True)
class GridSpec:
    """The localization search grid.

    ``fixed``
        The explicit rectangle ``[x_min_m, x_max_m] x [y_min_m,
        y_max_m]``.
    ``tag_side``
        A square of half-width ``margin_m`` around the tag, restricted
        to the ``side_sign`` side of the flight line (the matched
        filter is side-ambiguous; the paper resolves it with a second
        pass).
    """

    kind: str = "fixed"
    x_min_m: float = -0.5
    x_max_m: float = 4.0
    y_min_m: float = 0.2
    y_max_m: float = 3.0
    margin_m: float = 3.5
    side_sign: float = 1.0
    resolution_m: float = 0.10

    def __post_init__(self) -> None:
        _check_kind("grid", self.kind, GRID_KINDS)
        for spec_field in fields(self):
            if spec_field.name == "kind":
                continue
            object.__setattr__(
                self,
                spec_field.name,
                _require_finite(
                    spec_field.name, getattr(self, spec_field.name)
                ),
            )
        if self.resolution_m <= 0.0:
            raise ConfigurationError("resolution_m must be > 0")
        if self.kind == "fixed":
            if self.x_min_m >= self.x_max_m or self.y_min_m >= self.y_max_m:
                raise ConfigurationError(
                    "fixed grid needs min < max on both axes"
                )
        else:
            if self.margin_m <= 0.0:
                raise ConfigurationError("tag_side grid needs margin_m > 0")
            if self.side_sign not in (-1.0, 1.0):
                raise ConfigurationError("side_sign must be -1 or +1")

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready mapping."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @staticmethod
    def from_dict(data: Mapping[str, Any]) -> "GridSpec":
        """Rebuild from :meth:`to_dict` output."""
        return GridSpec(**_filtered_kwargs(GridSpec, data))


@dataclass(frozen=True)
class RelaySpec:
    """One relay drone in a fleet.

    Everything is optional and inherits from the scenario: a ``None``
    ``trajectory`` flies the scenario's :class:`TrajectorySpec` (the
    pre-fleet single-relay path), a ``None`` ``shift_hz`` /
    ``gain_db`` takes ``radio.relay_shift_hz`` / ``radio.relay_gain_db``.
    ``name`` defaults to ``relay-{index:02d}`` when empty; resolved
    names must be unique — they key per-relay session segments and
    handoff accounting downstream.
    """

    name: str = ""
    trajectory: Optional[TrajectorySpec] = None
    shift_hz: Optional[float] = None
    gain_db: Optional[float] = None

    def __post_init__(self) -> None:
        if self.name and not all(
            ch.isalnum() or ch in "_-" for ch in self.name
        ):
            raise ConfigurationError(
                f"relay name {self.name!r} must be alphanumeric/_/- "
                "(it keys session segments and TOML table paths)"
            )
        for label in ("shift_hz", "gain_db"):
            value = getattr(self, label)
            if value is not None:
                object.__setattr__(
                    self, label, _require_finite(label, value)
                )
        if self.shift_hz is not None and self.shift_hz <= 0.0:
            raise ConfigurationError(
                "relay shift_hz must be > 0 (the tag-side carrier must "
                "clear the reader's channel)"
            )

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready mapping (``None`` fields omitted — TOML-safe)."""
        out: Dict[str, Any] = {"name": self.name}
        if self.trajectory is not None:
            out["trajectory"] = self.trajectory.to_dict()
        if self.shift_hz is not None:
            out["shift_hz"] = self.shift_hz
        if self.gain_db is not None:
            out["gain_db"] = self.gain_db
        return out

    @staticmethod
    def from_dict(data: Mapping[str, Any]) -> "RelaySpec":
        """Rebuild from :meth:`to_dict` output."""
        kwargs = _filtered_kwargs(RelaySpec, data)
        if kwargs.get("trajectory") is not None:
            kwargs["trajectory"] = TrajectorySpec.from_dict(
                kwargs["trajectory"]
            )
        return RelaySpec(**kwargs)


@dataclass(frozen=True)
class FleetSpec:
    """A fleet of relay drones plus the per-tag selection policy.

    ``selection`` picks which relay serves each powered tag at each
    pose (see :mod:`repro.fleet.selection`); ``epsilon`` /
    ``learning_rate`` parameterize the ``epsilon_greedy`` learned
    policy (ignored by the others); ``guard_hz`` is the co-channel
    gate — two relays whose tag-side carriers sit within ``guard_hz``
    of each other interfere at the tag and reader (see
    :mod:`repro.channel.interference`).
    """

    relays: Tuple[RelaySpec, ...] = (RelaySpec(),)
    selection: str = "nearest"
    epsilon: float = 0.1
    learning_rate: float = 0.5
    guard_hz: float = 200e3

    def __post_init__(self) -> None:
        object.__setattr__(self, "relays", tuple(self.relays))
        _check_kind("selection", self.selection, SELECTION_KINDS)
        for label in ("epsilon", "learning_rate", "guard_hz"):
            object.__setattr__(
                self, label, _require_finite(label, getattr(self, label))
            )
        if not self.relays:
            raise ConfigurationError("fleet needs at least one relay")
        resolved = [
            relay.name or f"relay-{index:02d}"
            for index, relay in enumerate(self.relays)
        ]
        if len(set(resolved)) != len(resolved):
            raise ConfigurationError(
                f"fleet relay names must be unique, got {resolved}"
            )
        if not 0.0 <= self.epsilon <= 1.0:
            raise ConfigurationError("epsilon must be in [0, 1]")
        if not 0.0 < self.learning_rate <= 1.0:
            raise ConfigurationError("learning_rate must be in (0, 1]")
        if self.guard_hz < 0.0:
            raise ConfigurationError("guard_hz must be >= 0")

    def relay_names(self) -> Tuple[str, ...]:
        """Resolved (defaulted, unique) relay names in fleet order."""
        return tuple(
            relay.name or f"relay-{index:02d}"
            for index, relay in enumerate(self.relays)
        )

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready mapping."""
        return {
            "relays": [relay.to_dict() for relay in self.relays],
            "selection": self.selection,
            "epsilon": self.epsilon,
            "learning_rate": self.learning_rate,
            "guard_hz": self.guard_hz,
        }

    @staticmethod
    def from_dict(data: Mapping[str, Any]) -> "FleetSpec":
        """Rebuild from :meth:`to_dict` output."""
        kwargs = _filtered_kwargs(FleetSpec, data)
        if "relays" in kwargs:
            kwargs["relays"] = tuple(
                RelaySpec.from_dict(item) for item in kwargs["relays"]
            )
        return FleetSpec(**kwargs)


@dataclass(frozen=True)
class Scenario:
    """One declarative evaluation world.

    The top-level spec is the unit of the registry, the CLI, and the
    compiler: ``Scenario.from_json(spec.to_json())`` is the identity,
    and the canonical JSON string is what rides inside sweep-task
    parameters (scalar, hashable, cache-stable).
    """

    name: str
    description: str = ""
    floorplan: FloorplanSpec = field(default_factory=FloorplanSpec)
    reader: ReaderSpec = field(default_factory=ReaderSpec)
    trajectory: TrajectorySpec = field(default_factory=TrajectorySpec)
    tags: TagLayoutSpec = field(default_factory=TagLayoutSpec)
    radio: RadioSpec = field(default_factory=RadioSpec)
    traffic: TrafficSpec = field(default_factory=TrafficSpec)
    grid: GridSpec = field(default_factory=GridSpec)
    fleet: Optional[FleetSpec] = None
    fault_plan: Optional[FaultPlan] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("scenario name must be non-empty")
        if not all(ch.isalnum() or ch == "_" for ch in self.name):
            raise ConfigurationError(
                f"scenario name {self.name!r} must be alphanumeric/_ "
                "(it doubles as a registry key and file stem)"
            )

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready mapping (``fleet``/``fault_plan`` omitted when
        absent — pre-fleet specs keep their canonical form)."""
        out: Dict[str, Any] = {
            "name": self.name,
            "description": self.description,
            "floorplan": self.floorplan.to_dict(),
            "reader": self.reader.to_dict(),
            "trajectory": self.trajectory.to_dict(),
            "tags": self.tags.to_dict(),
            "radio": self.radio.to_dict(),
            "traffic": self.traffic.to_dict(),
            "grid": self.grid.to_dict(),
        }
        if self.fleet is not None:
            out["fleet"] = self.fleet.to_dict()
        if self.fault_plan is not None:
            out["fault_plan"] = self.fault_plan.to_dict()
        return out

    @staticmethod
    def from_dict(data: Mapping[str, Any]) -> "Scenario":
        """Rebuild from :meth:`to_dict` output (missing sections take
        their defaults, so hand-written specs can stay sparse)."""
        kwargs = _filtered_kwargs(Scenario, data)
        converters: Dict[str, Any] = {
            "floorplan": FloorplanSpec.from_dict,
            "reader": ReaderSpec.from_dict,
            "trajectory": TrajectorySpec.from_dict,
            "tags": TagLayoutSpec.from_dict,
            "radio": RadioSpec.from_dict,
            "traffic": TrafficSpec.from_dict,
            "grid": GridSpec.from_dict,
            "fleet": FleetSpec.from_dict,
            "fault_plan": FaultPlan.from_dict,
        }
        for key, converter in converters.items():
            if isinstance(kwargs.get(key), Mapping):
                kwargs[key] = converter(kwargs[key])
        return Scenario(**kwargs)

    def to_json(self) -> str:
        """Compact, key-sorted JSON — the canonical wire form."""
        return json.dumps(
            self.to_dict(), sort_keys=True, separators=(",", ":")
        )

    @staticmethod
    def from_json(text: str) -> "Scenario":
        """Inverse of :meth:`to_json` (lossless, property-tested)."""
        return Scenario.from_dict(json.loads(text))

    def with_overrides(self, overrides: Mapping[str, Any]) -> "Scenario":
        """A new scenario with dotted-path overrides applied.

        Keys are dotted paths into :meth:`to_dict` output, e.g.
        ``{"traffic.load": 8.0, "grid.resolution_m": 0.2}``. This is
        what the CLI's ``--set`` flag lowers to; unknown paths raise
        :class:`~repro.errors.ConfigurationError` via :meth:`from_dict`.
        """
        data = self.to_dict()
        for path, value in overrides.items():
            parts = path.split(".")
            node: Dict[str, Any] = data
            for part in parts[:-1]:
                nested = node.setdefault(part, {})
                if not isinstance(nested, dict):
                    raise ConfigurationError(
                        f"override path {path!r} descends into "
                        f"non-section {part!r}"
                    )
                node = nested
            node[parts[-1]] = value
        return Scenario.from_dict(data)
