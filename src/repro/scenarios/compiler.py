"""Lower a :class:`~repro.scenarios.spec.Scenario` to concrete objects.

The compiler owns the spec -> world mapping: floorplans become
:class:`~repro.channel.environment.Environment` wall sets, trajectory
specs become :class:`~repro.mobility.trajectory.LineTrajectory`
passes, tag layouts become drawn positions, and a whole scenario
becomes either a replayable :class:`~repro.serve.traffic.TrafficWorkload`
(:func:`generate_workload`) or seeded :mod:`repro.runtime` sweep tasks
(:func:`compile_scenario`).

Randomized spec kinds (``random_segment`` trajectories, ``random_ring``
readers, ``uniform_box`` / ``side_offset`` tag layouts, clutter) all
draw from one ``numpy`` generator in a **fixed order** — trajectory,
then clutter, then reader, then tags — so the realized world is a pure
function of ``(spec, seed)``. That order is load-bearing: the serve and
figure goldens pin it byte for byte, so never reorder the draws.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from repro import faults
from repro.channel.environment import (
    BRICK,
    CONCRETE,
    DRYWALL,
    GLASS,
    STEEL,
    Environment,
    Material,
)
from repro.errors import ConfigurationError
from repro.localization.grid import Grid2D
from repro.localization.measurement import MeasurementModel
from repro.mobility.groundtruth import OptiTrack
from repro.mobility.trajectory import LineTrajectory, TrajectorySample
from repro.obs import tracing
from repro.runtime import SweepTask
from repro.scenarios import registry
from repro.scenarios.spec import (
    FloorplanSpec,
    GridSpec,
    Scenario,
    TagLayoutSpec,
    TrajectorySpec,
)

#: Spec material names -> channel material singletons.
MATERIALS: Mapping[str, Material] = {
    "drywall": DRYWALL,
    "concrete": CONCRETE,
    "brick": BRICK,
    "steel": STEEL,
    "glass": GLASS,
}


class RealizedWorld:
    """One concrete draw of a scenario's random geometry."""

    def __init__(
        self,
        environment: Optional[Environment],
        trajectory: LineTrajectory,
        start: np.ndarray,
        direction: np.ndarray,
        length_m: float,
        reader_position_m: np.ndarray,
        tag_positions_m: List[np.ndarray],
    ) -> None:
        self.environment = environment
        self.trajectory = trajectory
        self.start = start
        self.direction = direction
        self.length_m = length_m
        self.reader_position_m = reader_position_m
        self.tag_positions_m = tag_positions_m

    @property
    def midpoint_m(self) -> np.ndarray:
        """Center of the flight segment (the SNR law's anchor point)."""
        return self.start + self.direction * (self.length_m / 2.0)


def build_environment(floorplan: FloorplanSpec) -> Optional[Environment]:
    """Walls -> Environment; ``None`` for free space (no walls/clutter).

    Clutter is *not* added here — it needs the realized trajectory and
    the task rng, so :func:`realize_world` appends it.
    """
    if not floorplan.walls and floorplan.clutter is None:
        return None
    env = Environment(max_reflections=floorplan.max_reflections)
    for wall in floorplan.walls:
        env.add_wall(
            (wall.x0_m, wall.y0_m),
            (wall.x1_m, wall.y1_m),
            MATERIALS[wall.material],
            wall.name,
        )
    return env


def build_trajectory(
    spec: TrajectorySpec, rng: Optional[np.random.Generator] = None
) -> Tuple[LineTrajectory, np.ndarray, np.ndarray, float]:
    """Lower a trajectory spec; returns (trajectory, start, direction,
    length). ``random_segment`` draws start, heading, length — in that
    order — from ``rng``."""
    if spec.kind == "line":
        start = np.array([spec.x0_m, spec.y0_m])
        end = np.array([spec.x1_m, spec.y1_m])
        length = float(np.linalg.norm(end - start))
        direction = (end - start) / length
        trajectory = LineTrajectory(start, end, speed_mps=spec.speed_mps)
        return trajectory, start, direction, length
    if rng is None:
        raise ConfigurationError(
            "random_segment trajectories need an rng to realize"
        )
    start = np.array(
        [
            rng.uniform(spec.x_min_m, spec.x_max_m),
            rng.uniform(spec.y_min_m, spec.y_max_m),
        ]
    )
    heading = rng.uniform(0.0, 2.0 * np.pi)
    direction = np.array([np.cos(heading), np.sin(heading)])
    length = float(rng.uniform(spec.length_min_m, spec.length_max_m))
    trajectory = LineTrajectory(
        start, start + direction * length, speed_mps=spec.speed_mps
    )
    return trajectory, start, direction, length


def _add_clutter(
    env: Environment,
    floorplan: FloorplanSpec,
    start: np.ndarray,
    rng: np.random.Generator,
) -> None:
    clutter = floorplan.clutter
    if clutter is None:
        return
    materials = tuple(MATERIALS[name] for name in clutter.materials)
    for _ in range(clutter.n_obstacles):
        center = start + rng.normal(0.0, clutter.scatter_std_m, 2)
        angle = rng.uniform(0.0, np.pi)
        half = np.array([np.cos(angle), np.sin(angle)]) * rng.uniform(
            clutter.half_extent_min_m, clutter.half_extent_max_m
        )
        env.add_wall(
            tuple(center - half),
            tuple(center + half),
            materials[int(rng.integers(0, len(materials)))],
            "clutter",
        )


def _place_reader(
    scenario: Scenario,
    start: np.ndarray,
    direction: np.ndarray,
    length_m: float,
    rng: Optional[np.random.Generator],
) -> np.ndarray:
    reader = scenario.reader
    if reader.kind == "fixed":
        return np.array([reader.x_m, reader.y_m])
    if rng is None:
        raise ConfigurationError("random_ring readers need an rng")
    reader_angle = rng.uniform(0.0, 2.0 * np.pi)
    reader_distance = rng.uniform(
        reader.distance_min_m, reader.distance_max_m
    )
    position = start + direction * (
        length_m / 2.0
    ) + reader_distance * np.array(
        [np.cos(reader_angle), np.sin(reader_angle)]
    )
    return np.clip(
        position,
        [reader.clip_x_min_m, reader.clip_y_min_m],
        [reader.clip_x_max_m, reader.clip_y_max_m],
    )


def place_tags(
    layout: TagLayoutSpec,
    rng: Optional[np.random.Generator],
    start: Optional[np.ndarray] = None,
    direction: Optional[np.ndarray] = None,
    length_m: float = 0.0,
    n_tags: Optional[int] = None,
) -> List[np.ndarray]:
    """Lower a tag layout to drawn positions.

    Draw order per tag — ``uniform_box``: x then y; ``side_offset``:
    side, along-fraction, offset. Goldens pin this order.
    """
    count = layout.n_tags if n_tags is None else int(n_tags)
    if count < 1:
        raise ConfigurationError("need at least one tag")
    if layout.kind == "fixed":
        if count != len(layout.positions_m):
            raise ConfigurationError(
                f"fixed layout has {len(layout.positions_m)} position(s); "
                f"cannot place {count} tags"
            )
        return [np.array(position) for position in layout.positions_m]
    if rng is None:
        raise ConfigurationError(f"{layout.kind} tag layouts need an rng")
    if layout.kind == "uniform_box":
        return [
            np.array(
                [
                    rng.uniform(layout.x_min_m, layout.x_max_m),
                    rng.uniform(layout.y_min_m, layout.y_max_m),
                ]
            )
            for _ in range(count)
        ]
    if start is None or direction is None or length_m <= 0.0:
        raise ConfigurationError(
            "side_offset tag layouts need the realized flight segment"
        )
    positions = []
    for _ in range(count):
        side = 1.0 if rng.random() < 0.5 else -1.0
        normal = np.array([-direction[1], direction[0]]) * side
        along = rng.uniform(
            layout.along_fraction_min, layout.along_fraction_max
        )
        offset = rng.uniform(layout.offset_min_m, layout.offset_max_m)
        positions.append(
            start + direction * (length_m * along) + normal * offset
        )
    return positions


def realize_world(
    scenario: Scenario,
    rng: Optional[np.random.Generator],
    n_tags: Optional[int] = None,
) -> RealizedWorld:
    """Draw one concrete world: trajectory, clutter, reader, tags —
    always in that order (the determinism contract)."""
    environment = build_environment(scenario.floorplan)
    trajectory, start, direction, length_m = build_trajectory(
        scenario.trajectory, rng
    )
    if environment is not None and rng is not None:
        _add_clutter(environment, scenario.floorplan, start, rng)
    elif scenario.floorplan.clutter is not None and rng is None:
        raise ConfigurationError("clutter needs an rng to realize")
    reader_position = _place_reader(scenario, start, direction, length_m, rng)
    tag_positions = place_tags(
        scenario.tags,
        rng,
        start=start,
        direction=direction,
        length_m=length_m,
        n_tags=n_tags,
    )
    return RealizedWorld(
        environment=environment,
        trajectory=trajectory,
        start=start,
        direction=direction,
        length_m=length_m,
        reader_position_m=reader_position,
        tag_positions_m=tag_positions,
    )


def build_measurement_model(
    scenario: Scenario,
    environment: Optional[Environment],
    reader_position_m: Union[np.ndarray, Tuple[float, float]],
) -> MeasurementModel:
    """The through-relay measurement model the scenario's radio implies."""
    return MeasurementModel(
        environment=environment,
        reader_position=reader_position_m,
        reader_frequency_hz=scenario.radio.center_frequency_hz,
        frequency_shift_hz=scenario.radio.relay_shift_hz,
        relay_gain_db=scenario.radio.relay_gain_db,
    )


def resolve_snr_db(scenario: Scenario, world: RealizedWorld) -> float:
    """The channel-estimate SNR the radio spec implies for a world.

    ``distance_law`` reproduces the paper's Fig. 14 law: SNR falls with
    the reader-relay distance, loses each crossed wall's transmission
    loss, and clips to the spec's band.
    """
    radio = scenario.radio
    if radio.snr_kind == "fixed":
        return radio.snr_db
    from repro.sim.scenarios import projected_distance_snr_db

    midpoint = world.midpoint_m
    reader_distance = float(
        np.linalg.norm(midpoint - world.reader_position_m)
    )
    wall_loss = 0.0
    if world.environment is not None:
        wall_loss = world.environment.obstruction_loss_db(
            world.reader_position_m, midpoint
        )
    return float(
        np.clip(
            projected_distance_snr_db(
                reader_distance, radio.reference_snr_db
            )
            - wall_loss,
            radio.snr_min_db,
            radio.snr_max_db,
        )
    )


def build_grid(
    spec: GridSpec,
    positions: Optional[np.ndarray] = None,
    resolution_m: Optional[float] = None,
    side_sign: Optional[float] = None,
) -> Grid2D:
    """Lower a grid spec; ``tag_side`` needs the flight positions."""
    resolution = spec.resolution_m if resolution_m is None else resolution_m
    if spec.kind == "fixed":
        return Grid2D(
            spec.x_min_m, spec.x_max_m, spec.y_min_m, spec.y_max_m, resolution
        )
    if positions is None:
        raise ConfigurationError(
            "tag_side grids need the realized flight positions"
        )
    from repro.sim.scenarios import _tag_side_grid

    side = spec.side_sign if side_sign is None else side_sign
    return _tag_side_grid(positions, side, spec.margin_m, resolution)


def generate_workload(
    scenario: Union[str, Scenario],
    n_tags: Optional[int] = None,
    seed: int = 0,
    load: Optional[float] = None,
    pose_spacing_m: Optional[float] = None,
    snr_db: Optional[float] = None,
    grid_resolution: Optional[float] = None,
    use_gen2_mac: Optional[bool] = None,
    powering_range_m: Optional[float] = None,
    tracker: Optional[OptiTrack] = None,
) -> Any:
    """Lower a scenario to a replayable Gen2 read stream.

    Every ``None`` knob resolves from the spec; explicit arguments win
    (the sweep axes of the serve experiments). All randomness — world
    realization, channel noise, MAC slot draws — comes from ``seed``,
    so the event stream is a pure function of the arguments.
    """
    # Imported lazily: serve.traffic's legacy entry point calls into
    # this module, and the workload dataclasses live over there.
    from repro.serve.traffic import TrafficWorkload, UpdateEvent
    from repro.hardware.tag import PassiveTag
    from repro.sim.events import inventory_at_pose

    spec = registry.resolve(scenario)
    if spec.fleet is not None:
        # Fleet scenarios lower through the multi-relay generator; a
        # one-relay fleet reproduces this function's stream bit for bit.
        from repro.fleet.workload import generate_fleet_workload

        return generate_fleet_workload(
            spec,
            n_tags=n_tags,
            seed=seed,
            load=load,
            pose_spacing_m=pose_spacing_m,
            snr_db=snr_db,
            grid_resolution=grid_resolution,
            use_gen2_mac=use_gen2_mac,
            powering_range_m=powering_range_m,
            tracker=tracker,
        )
    resolved_load = spec.traffic.load if load is None else float(load)
    if resolved_load <= 0:
        raise ConfigurationError("load factor must be positive")
    spacing = (
        spec.trajectory.spacing_m
        if pose_spacing_m is None
        else float(pose_spacing_m)
    )
    mac = spec.traffic.use_gen2_mac if use_gen2_mac is None else use_gen2_mac
    powering = (
        spec.traffic.powering_range_m
        if powering_range_m is None
        else float(powering_range_m)
    )

    rng = np.random.default_rng(seed)
    world = realize_world(spec, rng, n_tags=n_tags)
    model = build_measurement_model(
        spec, world.environment, world.reader_position_m
    )
    samples: Sequence[TrajectorySample] = world.trajectory.sample_every(
        spacing
    )
    if tracker is not None:
        samples = tracker.observe_trajectory(samples)
    snr = resolve_snr_db(spec, world) if snr_db is None else float(snr_db)
    tags = [
        PassiveTag(
            epc=index + 1,
            position=(float(position[0]), float(position[1])),
            rng=rng,
        )
        for index, position in enumerate(world.tag_positions_m)
    ]
    session_ids = {tag.epc_int: f"tag-{tag.epc_int:04d}" for tag in tags}
    grid = build_grid(
        spec.grid,
        positions=np.stack([s.position for s in samples]),
        resolution_m=grid_resolution,
    )
    events: List[Any] = []
    with tracing.span(
        "serve.traffic", n_tags=len(tags), poses=len(samples)
    ):
        for sample in samples:
            powered = {
                tag.epc_int: (
                    float(
                        np.linalg.norm(
                            np.asarray(tag.position) - sample.position
                        )
                    )
                    <= powering
                )
                for tag in tags
            }
            if mac:
                read_epcs = inventory_at_pose(
                    tags, lambda t: powered[t.epc_int], rng
                )
            else:
                read_epcs = {epc for epc, on in powered.items() if on}
            for tag in tags:
                if tag.epc_int not in read_epcs:
                    continue
                measurement = model.measure(
                    sample.position,
                    tag.position,
                    rng=rng,
                    snr_db=snr,
                    time=sample.time,
                )
                events.append(
                    UpdateEvent(
                        time_s=sample.time / resolved_load,
                        session_id=session_ids[tag.epc_int],
                        measurement=measurement,
                    )
                )
    events.sort(key=lambda e: (e.time_s, e.session_id))
    return TrafficWorkload(
        events=tuple(events),
        grids={sid: grid for sid in session_ids.values()},
        tag_positions={
            session_ids[tag.epc_int]: np.asarray(tag.position, dtype=float)
            for tag in tags
        },
        duration_s=samples[-1].time / resolved_load,
    )


def run_scenario(
    scenario: Union[str, Scenario], seed: int = 0
) -> Dict[str, Any]:
    """Realize, stream, and serve one scenario end to end.

    The scenario's fault plan (when present) is engaged around both the
    traffic generation and the replay, exactly as the resilience
    experiment does, and the summary row reports service-level numbers.
    """
    from repro.serve.config import ServeConfig
    from repro.serve.traffic import run_workload

    spec = registry.resolve(scenario)
    plan = spec.fault_plan if spec.fault_plan is not None else faults.FaultPlan()
    with faults.engaged(plan, seed=seed):
        workload = generate_workload(spec, seed=seed)
        config = ServeConfig(
            frequency_hz=spec.radio.center_frequency_hz,
            latency_slo_s=spec.traffic.latency_slo_s,
        )
        report = run_workload(workload, config)
    errors = np.asarray(sorted(report.errors_m.values()), dtype=float)
    return {
        "scenario": spec.name,
        "seed": int(seed),
        "sessions": len(workload.grids),
        "offered": int(report.offered),
        "applied": int(report.service.updates_applied),
        "shed_fraction": report.shed_fraction,
        "degraded_fraction": report.degraded_fraction,
        "p99_latency_s": report.service.p99_latency_s,
        "mean_error_m": float(errors.mean()) if errors.size else float("nan"),
        "localized": int(errors.size),
    }


def _scenario_replicate(
    scenario_json: str, replicate: int, seed: int
) -> Dict[str, Any]:
    """One seeded end-to-end replicate (sweep-task entry point)."""
    row = run_scenario(Scenario.from_json(scenario_json), seed=seed)
    row["replicate"] = int(replicate)
    return row


def compile_scenario(
    scenario: Union[str, Scenario],
    n_replicates: int = 2,
    seed: int = 0,
) -> List[SweepTask]:
    """Lower a scenario to seeded, picklable sweep tasks.

    The spec rides inside each task's parameters as its canonical JSON
    string — a scalar, so the runtime cache key and the process-pool
    pickle both see the exact world definition.
    """
    if n_replicates < 1:
        raise ConfigurationError("n_replicates must be >= 1")
    spec = registry.resolve(scenario)
    scenario_json = spec.to_json()
    return [
        SweepTask.make(
            _scenario_replicate,
            params={
                "scenario_json": scenario_json,
                "replicate": int(replicate),
            },
            seed=seed * 1_000 + replicate,
            label=f"scenario/{spec.name}/r{replicate}",
        )
        for replicate in range(n_replicates)
    ]


def reduce_smoke(
    payloads: Sequence[Dict[str, Any]], params: Mapping[str, Any]
) -> List[Dict[str, Any]]:
    """Replicate rows in task order (the generic scenario reducer)."""
    return [dict(row) for row in payloads]
