"""Scenario-driven trial builders for the figure experiments.

Each builder lowers a :class:`~repro.scenarios.spec.Scenario` plus a
seed to one :class:`~repro.sim.scenarios.LocalizationScenario` — the
measurement bundle a localization trial consumes. They are ports of
the original free functions in :mod:`repro.sim.scenarios` (which now
delegate here through deprecation shims), parameterized by the spec
instead of hard-coded constants, and **RNG-draw-order exact**: with
the shipped library specs every golden table regenerates byte for
byte.

``TRIAL_BUILDERS`` is the registry the old free functions resolve
through; new trial kinds register the same way.
"""

from __future__ import annotations

from typing import Callable, Dict, Mapping, Union

import numpy as np

from repro.dsp.units import db_to_linear
from repro.errors import ConfigurationError
from repro.hardware import PassiveTag
from repro.localization.measurement import ThroughRelayMeasurement
from repro.scenarios import registry
from repro.scenarios.compiler import (
    build_grid,
    build_measurement_model,
    realize_world,
    resolve_snr_db,
)
from repro.scenarios.spec import Scenario
from repro.sim.scenarios import (
    LocalizationScenario,
    _correlated_wander,
    _measure_with_jitter,
)


def heatmap_trial(
    scenario: Union[str, Scenario], seed: int = 0
) -> LocalizationScenario:
    """One SAR heatmap trial over a fixed tag (Fig. 6a/6b worlds)."""
    spec = registry.resolve(scenario)
    rng = np.random.default_rng(seed)
    world = realize_world(spec, rng)
    model = build_measurement_model(
        spec, world.environment, world.reader_position_m
    )
    tag = world.tag_positions_m[0]
    measurements, positions = _measure_with_jitter(
        model,
        world.trajectory,
        tag,
        rng,
        snr_db=resolve_snr_db(spec, world),
        spacing_m=spec.trajectory.spacing_m,
        jitter_std_m=spec.trajectory.jitter_std_m,
    )
    grid = build_grid(spec.grid, positions=positions)
    return LocalizationScenario(
        measurements=measurements,
        tag_position=tag,
        search_grid=grid,
        trajectory_positions=positions,
        calibration_gain_linear=abs(model.relay_gain / model.reference_gain),
        description=spec.description,
    )


def warehouse_trial(
    scenario: Union[str, Scenario], seed: int
) -> LocalizationScenario:
    """One randomized end-to-end warehouse trial (the Fig. 12 world).

    Random reader placement, a random flight segment, a tag to one
    side of it, clutter near the aisle, the distance-law SNR, and the
    calibrated drone-flight realism (per-flight bias + correlated
    wander) — all resolved from the spec. The localizer searches in
    trajectory-aligned coordinates on the scanned side.
    """
    spec = registry.resolve(scenario)
    rng = np.random.default_rng(seed)
    world = realize_world(spec, rng)
    if world.environment is None:
        raise ConfigurationError(
            "warehouse trials need a floorplan (walls and/or clutter)"
        )
    tag = world.tag_positions_m[0]
    model = build_measurement_model(
        spec, world.environment, world.reader_position_m
    )
    snr = resolve_snr_db(spec, world)
    reader_distance = float(
        np.linalg.norm(world.midpoint_m - world.reader_position_m)
    )
    spacing = spec.trajectory.spacing_m
    measurements, positions = _measure_with_jitter(
        model,
        world.trajectory,
        tag,
        rng,
        snr_db=snr,
        spacing_m=spacing,
        jitter_std_m=spec.trajectory.jitter_std_m,
    )
    # The localizer sees the marker-frame positions: true antenna poses
    # plus the per-flight bias and the correlated wander.
    bias = rng.normal(0.0, spec.trajectory.bias_std_m, 2)
    known_positions = positions + bias + _correlated_wander(
        len(positions), spec.trajectory.wander_std_m, rng, spacing
    )
    # Search on the scanned side, in trajectory-aligned coordinates:
    # rotate so the path runs along +x, then build the half-plane grid.
    direction = world.direction
    rotation = np.array(
        [[direction[0], direction[1]], [-direction[1], direction[0]]]
    )
    rotated_positions = (known_positions - world.start) @ rotation.T
    rotated_tag = rotation @ (tag - world.start)
    rotated_measurements = [
        ThroughRelayMeasurement(
            position=rp,
            h_target=m.h_target,
            h_reference=m.h_reference,
            snr_db=m.snr_db,
            time=m.time,
        )
        for rp, m in zip(rotated_positions, measurements)
    ]
    grid = build_grid(
        spec.grid,
        positions=rotated_positions,
        side_sign=float(np.sign(rotated_tag[1])),
    )
    return LocalizationScenario(
        measurements=rotated_measurements,
        tag_position=rotated_tag,
        search_grid=grid,
        trajectory_positions=rotated_positions,
        calibration_gain_linear=abs(model.relay_gain / model.reference_gain),
        description=(
            f"fig12 trial seed={seed}, reader at {reader_distance:.1f} m"
        ),
    )


def aperture_trial(
    scenario: Union[str, Scenario],
    aperture_m: float,
    seed: int,
    snr_db: Union[float, None] = None,
) -> LocalizationScenario:
    """One swept-aperture microbenchmark trial (the Fig. 13 world).

    The full spec trajectory is cut to the requested aperture; the tag
    draws from the spec's layout box; the RSSI baseline's calibration
    mismatch draws at the spec's ``rssi_mismatch_std_db``.
    """
    if aperture_m <= 0:
        raise ConfigurationError("aperture must be positive")
    spec = registry.resolve(scenario)
    rng = np.random.default_rng(seed)
    world = realize_world(spec, rng)
    model = build_measurement_model(
        spec, world.environment, world.reader_position_m
    )
    full = world.trajectory
    sub = full.aperture_segment(min(aperture_m, full.length))
    tag = world.tag_positions_m[0]
    resolved_snr = (
        resolve_snr_db(spec, world) if snr_db is None else float(snr_db)
    )
    measurements, positions = _measure_with_jitter(
        model,
        sub,
        tag,
        rng,
        snr_db=resolved_snr,
        spacing_m=spec.trajectory.spacing_m,
        jitter_std_m=spec.trajectory.jitter_std_m,
    )
    grid = build_grid(spec.grid, positions=positions)
    calibration = abs(model.relay_gain / model.reference_gain)
    # Indoor propagation deviates from the free-space model the RSSI
    # baseline assumes by a few dB; the mismatch is what limits it to
    # around a meter in the paper's Fig. 13.
    rssi_calibration = calibration * float(
        db_to_linear(rng.normal(0.0, spec.radio.rssi_mismatch_std_db))
    )
    return LocalizationScenario(
        measurements=measurements,
        tag_position=tag,
        search_grid=grid,
        trajectory_positions=positions,
        calibration_gain_linear=calibration,
        description=f"aperture {aperture_m} m (Fig. 13)",
        rssi_calibration_gain_linear=rssi_calibration,
    )


def distance_trial(
    scenario: Union[str, Scenario],
    projected_distance_m: float,
    seed: int,
    aperture_m: float = 1.0,
) -> LocalizationScenario:
    """One swept-distance microbenchmark trial (the Fig. 14 world).

    The projected reader-relay distance maps to an estimate SNR via
    the spec's distance law, then reuses the aperture world at a fixed
    1 m aperture.
    """
    from repro.sim.scenarios import projected_distance_snr_db

    spec = registry.resolve(scenario)
    snr = projected_distance_snr_db(
        projected_distance_m, spec.radio.reference_snr_db
    )
    return aperture_trial(spec, aperture_m, seed=seed, snr_db=snr)


def bench_tag(
    tag_distance_m: float,
    rng: np.random.Generator,
    epc: int = 0x5EED,
) -> PassiveTag:
    """The wired-bench tag sitting ``tag_distance_m`` down the boresight.

    The Fig. 9/10 RF-bench rigs place one tag on-axis at the spec'd
    bench distance; experiments resolve it through this builder rather
    than constructing :class:`~repro.hardware.PassiveTag` inline
    (reprolint A406). Draw-order exact: the constructor consumes the
    caller's ``rng`` exactly as the inline site did.
    """
    return PassiveTag(
        epc=epc, position=(float(tag_distance_m), 0.0), rng=rng
    )


TrialBuilder = Callable[..., LocalizationScenario]

#: Registry the deprecated ``sim.scenarios`` free functions route
#: through; keys are trial kinds, values build one trial from
#: ``(scenario, ...)``.
TRIAL_BUILDERS: Dict[str, TrialBuilder] = {
    "heatmap": heatmap_trial,
    "warehouse": warehouse_trial,
    "aperture": aperture_trial,
    "distance": distance_trial,
}


def build_trial(
    kind: str, scenario: Union[str, Scenario], **kwargs: object
) -> LocalizationScenario:
    """Dispatch a trial build through :data:`TRIAL_BUILDERS`."""
    try:
        builder = TRIAL_BUILDERS[kind]
    except KeyError:
        raise ConfigurationError(
            f"unknown trial kind {kind!r}; "
            f"choices: {', '.join(sorted(TRIAL_BUILDERS))}"
        ) from None
    return builder(scenario, **kwargs)
