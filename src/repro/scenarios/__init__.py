"""Declarative scenario specs that compile to runtime sweeps.

A :class:`~repro.scenarios.spec.Scenario` is a frozen, JSON/TOML-
canonical description of one evaluation world: a floorplan (walls,
shelves, clutter), a parametric tag layout, the relay trajectory and
frequency plan, the Gen2 traffic mix, the localization search grid,
and an optional :class:`~repro.faults.FaultPlan`. The compiler
(:mod:`repro.scenarios.compiler`) lowers a spec to concrete channel /
mobility / serving objects and to seeded :mod:`repro.runtime` sweep
tasks; the trial builders (:mod:`repro.scenarios.trials`) lower specs
to the per-trial :class:`~repro.sim.scenarios.LocalizationScenario`
objects the figure experiments consume.

Named scenarios ship as TOML files under ``repro/scenarios/library/``
and resolve through :mod:`repro.scenarios.registry`:

    >>> from repro import scenarios
    >>> spec = scenarios.get("conveyor_flow_through")
    >>> tasks = scenarios.compile_scenario(spec, seed=0)

``python -m repro.scenarios list|show|validate`` is the command-line
surface, and every experiment's ``--scenario`` flag resolves through
the same registry.
"""

from __future__ import annotations

from repro.scenarios.compiler import (
    build_environment,
    build_grid,
    build_measurement_model,
    build_trajectory,
    compile_scenario,
    generate_workload,
    place_tags,
    reduce_smoke,
    run_scenario,
)
from repro.scenarios.registry import get, names, register, resolve
from repro.scenarios.spec import (
    GRID_KINDS,
    MATERIAL_NAMES,
    READER_KINDS,
    SELECTION_KINDS,
    SNR_KINDS,
    TAG_KINDS,
    TRAJECTORY_KINDS,
    ClutterSpec,
    FleetSpec,
    FloorplanSpec,
    GridSpec,
    RadioSpec,
    ReaderSpec,
    RelaySpec,
    Scenario,
    TagLayoutSpec,
    TrafficSpec,
    TrajectorySpec,
    WallSpec,
)

__all__ = [
    "GRID_KINDS",
    "MATERIAL_NAMES",
    "READER_KINDS",
    "SELECTION_KINDS",
    "SNR_KINDS",
    "TAG_KINDS",
    "TRAJECTORY_KINDS",
    "ClutterSpec",
    "FleetSpec",
    "FloorplanSpec",
    "GridSpec",
    "RadioSpec",
    "ReaderSpec",
    "RelaySpec",
    "Scenario",
    "TagLayoutSpec",
    "TrafficSpec",
    "TrajectorySpec",
    "WallSpec",
    "build_environment",
    "build_grid",
    "build_measurement_model",
    "build_trajectory",
    "compile_scenario",
    "generate_workload",
    "get",
    "names",
    "place_tags",
    "reduce_smoke",
    "register",
    "resolve",
    "run_scenario",
]
