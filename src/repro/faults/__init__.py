"""Seed-deterministic fault injection (tentpole of the robustness PR).

The package splits into a declarative layer and an execution layer:

:mod:`repro.faults.spec`
    :class:`FaultPlan` / :class:`FaultSpec` / :class:`Trigger` — plain
    scalar dataclasses, picklable and losslessly JSON-serializable, so
    plans travel through sweep-task parameters unchanged.
:mod:`repro.faults.engine`
    :class:`FaultEngine` plus the module-level hook helpers the
    production code calls at its injection sites. Hooks are no-ops
    costing one global read until a plan is :func:`engaged`.

Quickstart::

    from repro import faults

    plan = faults.FaultPlan.single("channel.link", "drop", rate=0.2)
    with faults.engaged(plan, seed=7) as engine:
        ...  # run any pipeline; 20% of channel queries go dark
    print(engine.injections)  # exact, replayable injection log
"""

from __future__ import annotations

from repro.faults.engine import (
    FaultEngine,
    InjectionRecord,
    activate_engine,
    active_engine,
    cfo_step_hz,
    corrupt_bits,
    dropped,
    engaged,
    gain_collapse_db,
    jitter_position,
    phase_jump_rad,
    pose_lost,
    rebooted,
    stall_s,
    watching,
)
from repro.faults.spec import (
    SITE_ACTIONS,
    TRIGGER_KINDS,
    FaultPlan,
    FaultSpec,
    Trigger,
)

__all__ = [
    "SITE_ACTIONS",
    "TRIGGER_KINDS",
    "FaultEngine",
    "FaultPlan",
    "FaultSpec",
    "InjectionRecord",
    "Trigger",
    "activate_engine",
    "active_engine",
    "cfo_step_hz",
    "corrupt_bits",
    "dropped",
    "engaged",
    "gain_collapse_db",
    "jitter_position",
    "phase_jump_rad",
    "pose_lost",
    "rebooted",
    "stall_s",
    "watching",
]
