"""Declarative fault plans: what to break, where, when, and how hard.

A :class:`FaultPlan` is a tuple of :class:`FaultSpec`\\ s. Each spec
names an *injection site* (a hook compiled into the production code,
e.g. ``"channel.link"``), an *action* the site knows how to perform
(``"drop"``, ``"corrupt_bits"``, ...), a :class:`Trigger` deciding
*when* the site fires (every call, the nth call, a call-index window, a
pose-index window, or a virtual-clock window), a Bernoulli ``rate``
applied on top of the trigger, an action ``magnitude`` (bits to flip,
radians, Hz, dB, seconds — the site's unit), and an optional cap on
total injections.

Plans are plain scalar dataclasses: picklable, hashable, and losslessly
JSON-round-trippable (property-tested), so a plan can ride inside a
:class:`~repro.runtime.SweepTask`'s parameters and reach process-pool
workers unchanged — the engine's serial/parallel bit-identity rests on
that plus the seeding discipline of :mod:`repro.faults.engine`.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Dict, Mapping, Optional, Tuple

from repro.errors import ConfigurationError

#: Every injection site compiled into the package, with the actions its
#: hook understands. Adding a site means adding its hook call in the
#: production code *and* registering it here.
SITE_ACTIONS: Mapping[str, Tuple[str, ...]] = {
    "hardware.synthesizer": ("cfo_step", "phase_jump"),
    "relay.forward": ("drop", "gain_collapse", "reboot"),
    "relay.isolation": ("gain_collapse",),
    "channel.link": ("drop",),
    "mobility.pose": ("pose_loss", "jitter"),
    "gen2.frame": ("corrupt_bits",),
    "serve.ingest": ("drop", "stall"),
    "serve.session": ("reboot",),
    "serve.shard": ("reboot",),
    "relay.handoff": ("drop", "stall"),
}

#: Trigger kinds and which optional fields each one requires.
TRIGGER_KINDS: Tuple[str, ...] = (
    "always",
    "nth_call",
    "call_window",
    "pose_index",
    "clock_window",
)


@dataclass(frozen=True)
class Trigger:
    """When a spec is eligible to fire.

    ``always``
        Every invocation of the site's hook.
    ``nth_call``
        Exactly the ``n``-th invocation (0-based, per site+action).
    ``call_window``
        Invocations with ``start <= call_index < stop``.
    ``pose_index``
        Hook calls carrying a pose index in ``[start, stop)`` (sites
        that iterate poses pass their loop index through).
    ``clock_window``
        Hook calls carrying a virtual timestamp in ``[start, stop)``
        seconds (the serve sites pass the virtual clock through).
    """

    kind: str = "always"
    n: Optional[int] = None
    start: Optional[float] = None
    stop: Optional[float] = None

    def __post_init__(self) -> None:
        if self.kind not in TRIGGER_KINDS:
            raise ConfigurationError(
                f"unknown trigger kind {self.kind!r}; "
                f"choices: {', '.join(TRIGGER_KINDS)}"
            )
        if self.kind == "nth_call":
            if self.n is None or self.n < 0:
                raise ConfigurationError(
                    "nth_call trigger needs a call index n >= 0"
                )
        elif self.kind in ("call_window", "pose_index", "clock_window"):
            if self.start is None or self.stop is None:
                raise ConfigurationError(
                    f"{self.kind} trigger needs both start and stop"
                )
            if self.stop <= self.start:
                raise ConfigurationError(
                    f"{self.kind} trigger window is empty "
                    f"({self.start} .. {self.stop})"
                )

    def matches(
        self,
        call_index: int,
        index: Optional[int] = None,
        now_s: Optional[float] = None,
    ) -> bool:
        """Is the trigger satisfied for this hook invocation?"""
        if self.kind == "always":
            return True
        if self.kind == "nth_call":
            return call_index == self.n
        if self.kind == "call_window":
            assert self.start is not None and self.stop is not None
            return self.start <= call_index < self.stop
        if self.kind == "pose_index":
            assert self.start is not None and self.stop is not None
            return index is not None and self.start <= index < self.stop
        assert self.start is not None and self.stop is not None
        return now_s is not None and self.start <= now_s < self.stop

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready mapping (``None`` fields omitted)."""
        out: Dict[str, Any] = {"kind": self.kind}
        if self.n is not None:
            out["n"] = int(self.n)
        if self.start is not None:
            out["start"] = self.start
        if self.stop is not None:
            out["stop"] = self.stop
        return out

    @staticmethod
    def from_dict(data: Mapping[str, Any]) -> "Trigger":
        """Rebuild from :meth:`to_dict` output."""
        return Trigger(
            kind=str(data.get("kind", "always")),
            n=data.get("n"),
            start=data.get("start"),
            stop=data.get("stop"),
        )


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled fault: site, action, trigger, rate, magnitude.

    ``magnitude`` is interpreted by the action: bits to flip
    (``corrupt_bits``), radians (``phase_jump``), Hz (``cfo_step``),
    dB removed (``gain_collapse``), seconds (``stall``), meters of
    position noise (``jitter``); the drop/reboot/pose-loss actions
    ignore it. ``rate`` is a per-eligible-call Bernoulli probability
    drawn from the spec's own deterministic stream.
    """

    site: str
    action: str
    trigger: Trigger = Trigger()
    rate: float = 1.0
    magnitude: float = 0.0
    max_injections: Optional[int] = None

    def __post_init__(self) -> None:
        actions = SITE_ACTIONS.get(self.site)
        if actions is None:
            known = ", ".join(sorted(SITE_ACTIONS))
            raise ConfigurationError(
                f"unknown injection site {self.site!r}; choices: {known}"
            )
        if self.action not in actions:
            raise ConfigurationError(
                f"site {self.site!r} does not support action "
                f"{self.action!r}; choices: {', '.join(actions)}"
            )
        if not 0.0 <= self.rate <= 1.0:
            raise ConfigurationError(
                f"fault rate must be a probability, got {self.rate}"
            )
        if self.max_injections is not None and self.max_injections < 0:
            raise ConfigurationError("max_injections must be >= 0")

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready mapping."""
        out: Dict[str, Any] = {
            "site": self.site,
            "action": self.action,
            "trigger": self.trigger.to_dict(),
            "rate": self.rate,
            "magnitude": self.magnitude,
        }
        if self.max_injections is not None:
            out["max_injections"] = int(self.max_injections)
        return out

    @staticmethod
    def from_dict(data: Mapping[str, Any]) -> "FaultSpec":
        """Rebuild from :meth:`to_dict` output."""
        return FaultSpec(
            site=str(data["site"]),
            action=str(data["action"]),
            trigger=Trigger.from_dict(data.get("trigger", {})),
            rate=float(data.get("rate", 1.0)),
            magnitude=float(data.get("magnitude", 0.0)),
            max_injections=data.get("max_injections"),
        )


@dataclass(frozen=True)
class FaultPlan:
    """An ordered, immutable collection of fault specs."""

    specs: Tuple[FaultSpec, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "specs", tuple(self.specs))

    def __len__(self) -> int:
        return len(self.specs)

    def __bool__(self) -> bool:
        return len(self.specs) > 0

    @property
    def sites(self) -> Tuple[str, ...]:
        """Distinct sites the plan targets, in first-appearance order."""
        seen: Dict[str, None] = {}
        for spec in self.specs:
            seen.setdefault(spec.site, None)
        return tuple(seen)

    @staticmethod
    def single(
        site: str,
        action: str,
        trigger: Trigger = Trigger(),
        rate: float = 1.0,
        magnitude: float = 0.0,
        max_injections: Optional[int] = None,
    ) -> "FaultPlan":
        """A one-spec plan (the common case in tests and sweeps)."""
        return FaultPlan(
            (
                FaultSpec(
                    site=site,
                    action=action,
                    trigger=trigger,
                    rate=rate,
                    magnitude=magnitude,
                    max_injections=max_injections,
                ),
            )
        )

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready mapping."""
        return {"specs": [spec.to_dict() for spec in self.specs]}

    @staticmethod
    def from_dict(data: Mapping[str, Any]) -> "FaultPlan":
        """Rebuild from :meth:`to_dict` output."""
        return FaultPlan(
            tuple(
                FaultSpec.from_dict(item) for item in data.get("specs", ())
            )
        )

    def to_json(self) -> str:
        """Compact, key-sorted JSON — canonical for task parameters."""
        return json.dumps(
            self.to_dict(), sort_keys=True, separators=(",", ":")
        )

    @staticmethod
    def from_json(text: str) -> "FaultPlan":
        """Inverse of :meth:`to_json` (lossless, property-tested)."""
        return FaultPlan.from_dict(json.loads(text))
