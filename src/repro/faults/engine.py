"""The seed-deterministic fault-injection engine and its hook helpers.

Production code calls the module-level helpers (:func:`dropped`,
:func:`corrupt_bits`, :func:`stall_s`, ...) at its injection sites.
They are no-ops costing one global read unless a :class:`FaultEngine`
is active — the same activate/restore discipline as
:mod:`repro.obs.metrics` — so the instrumented hot paths are
byte-identical with the engine disabled.

Determinism: the engine derives one independent random stream per
:class:`~repro.faults.spec.FaultSpec` via the runtime's
``SeedSequence`` spawn discipline
(:func:`repro.runtime.seeding.spawn_task_seeds`), and every hook keeps
a per-``(site, action)`` call counter. An injection therefore depends
only on ``(plan, seed, call sequence)`` — never on wall time, process
identity, or backend — which is what makes serial and process-pool
sweeps inject bit-identically (the property suite pins it).

Every injection emits a ``faults.injected.<site>.<action>`` counter and
a ``faults.inject`` span through :mod:`repro.obs`, and is appended to
the engine's picklable :class:`InjectionRecord` log for exact
comparison across backends.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Dict, Iterator, List, NamedTuple, Optional, Sequence, Tuple

import numpy as np

from repro.faults.spec import FaultPlan, FaultSpec
from repro.obs import metrics, tracing
from repro.runtime.seeding import spawn_task_seeds


class InjectionRecord(NamedTuple):
    """One injection that actually fired (picklable, comparable)."""

    site: str
    action: str
    call_index: int
    spec_index: int


class FaultEngine:
    """Executes a :class:`FaultPlan` deterministically.

    Use :func:`engaged` rather than constructing engines ad hoc —
    reprolint's F601 enforces that outside :mod:`repro.faults`.
    """

    def __init__(self, plan: FaultPlan, seed: int = 0) -> None:
        self.plan = plan
        self.seed = int(seed)
        n_specs = len(plan.specs)
        spec_seeds = spawn_task_seeds(self.seed, n_specs) if n_specs else []
        self._rngs = [np.random.default_rng(s) for s in spec_seeds]
        self._calls: Dict[Tuple[str, str], int] = {}
        self._fired: List[int] = [0] * n_specs
        self._sites = frozenset(spec.site for spec in plan.specs)
        self.injections: List[InjectionRecord] = []

    def watches(self, site: str) -> bool:
        """Does any spec in the plan target this site?"""
        return site in self._sites

    def calls_at(self, site: str, action: str) -> int:
        """How many times the ``(site, action)`` hook has been invoked."""
        return self._calls.get((site, action), 0)

    def _fire(
        self,
        site: str,
        action: str,
        index: Optional[int],
        now_s: Optional[float],
    ) -> List[Tuple[FaultSpec, np.random.Generator]]:
        """Advance the hook's call counter and collect firing specs."""
        key = (site, action)
        call_index = self._calls.get(key, 0)
        self._calls[key] = call_index + 1
        hits: List[Tuple[FaultSpec, np.random.Generator]] = []
        for spec_index, spec in enumerate(self.plan.specs):
            if spec.site != site or spec.action != action:
                continue
            if (
                spec.max_injections is not None
                and self._fired[spec_index] >= spec.max_injections
            ):
                continue
            if not spec.trigger.matches(call_index, index=index, now_s=now_s):
                continue
            rng = self._rngs[spec_index]
            if spec.rate < 1.0 and not rng.random() < spec.rate:
                continue
            self._fired[spec_index] += 1
            self.injections.append(
                InjectionRecord(site, action, call_index, spec_index)
            )
            metrics.count(f"faults.injected.{site}.{action}")
            with tracing.span(
                "faults.inject", site=site, action=action, call=call_index
            ):
                pass
            hits.append((spec, rng))
        return hits

    # -- per-action queries (the hook helpers delegate here) ---------------------

    def event_fires(
        self,
        site: str,
        action: str,
        index: Optional[int] = None,
        now_s: Optional[float] = None,
    ) -> bool:
        """True when at least one spec fires for this invocation."""
        return bool(self._fire(site, action, index, now_s))

    def magnitude_sum(
        self,
        site: str,
        action: str,
        index: Optional[int] = None,
        now_s: Optional[float] = None,
    ) -> float:
        """Summed magnitudes of every spec firing on this invocation."""
        return float(
            sum(spec.magnitude for spec, _ in self._fire(site, action, index, now_s))
        )

    def corrupt_bits(
        self,
        site: str,
        bits: Sequence[int],
        index: Optional[int] = None,
        now_s: Optional[float] = None,
    ) -> Tuple[int, ...]:
        """Flip ``magnitude`` random bit positions per firing spec."""
        frame = tuple(bits)
        hits = self._fire(site, "corrupt_bits", index, now_s)
        if not hits or not frame:
            return frame
        mutable = list(frame)
        for spec, rng in hits:
            n_flips = max(1, int(round(spec.magnitude)))
            n_flips = min(n_flips, len(mutable))
            for position in rng.choice(len(mutable), size=n_flips, replace=False):
                mutable[int(position)] ^= 1
        return tuple(mutable)

    def jitter_position(
        self,
        site: str,
        position: np.ndarray,
        index: Optional[int] = None,
        now_s: Optional[float] = None,
    ) -> np.ndarray:
        """Add Gaussian position noise (std = magnitude) per firing spec."""
        hits = self._fire(site, "jitter", index, now_s)
        if not hits:
            return position
        jittered = np.asarray(position, dtype=float).copy()
        for spec, rng in hits:
            jittered = jittered + rng.normal(
                0.0, spec.magnitude, size=jittered.shape
            )
        return jittered


#: The process-local active engine; ``None`` means every hook no-ops.
_ACTIVE_ENGINE: Optional[FaultEngine] = None


def active_engine() -> Optional[FaultEngine]:
    """The engine currently receiving hook calls, if any."""
    return _ACTIVE_ENGINE


def activate_engine(engine: Optional[FaultEngine]) -> Optional[FaultEngine]:
    """Install ``engine`` as active; returns the previous one."""
    global _ACTIVE_ENGINE
    previous = _ACTIVE_ENGINE
    _ACTIVE_ENGINE = engine
    return previous


@contextmanager
def engaged(plan: FaultPlan, seed: int = 0) -> Iterator[FaultEngine]:
    """Scope with a fresh engine for ``plan`` active; yields the engine.

    The previous engine (usually ``None``) is restored on exit, so
    sweep tasks can each engage their own plan without leaking state —
    including inside process-pool workers.
    """
    engine = FaultEngine(plan, seed=seed)
    previous = activate_engine(engine)
    try:
        yield engine
    finally:
        activate_engine(previous)


# -- zero-overhead-when-disabled hook helpers ------------------------------------


def watching(site: str) -> bool:
    """Cheapest gate: is an engine active *and* targeting this site?

    Sites wrap non-trivial fault bookkeeping in ``if watching(...):``
    so the disabled path costs one global read and stays byte-identical
    to pre-instrumentation behavior.
    """
    engine = _ACTIVE_ENGINE
    return engine is not None and engine.watches(site)


def dropped(
    site: str, index: Optional[int] = None, now_s: Optional[float] = None
) -> bool:
    """Should this site drop the current item? (``drop`` action)."""
    engine = _ACTIVE_ENGINE
    if engine is None:
        return False
    return engine.event_fires(site, "drop", index=index, now_s=now_s)


def pose_lost(
    site: str, index: Optional[int] = None, now_s: Optional[float] = None
) -> bool:
    """Should this pose observation be lost? (``pose_loss`` action)."""
    engine = _ACTIVE_ENGINE
    if engine is None:
        return False
    return engine.event_fires(site, "pose_loss", index=index, now_s=now_s)


def rebooted(
    site: str, index: Optional[int] = None, now_s: Optional[float] = None
) -> bool:
    """Did an injected power-cycle hit this site? (``reboot`` action)."""
    engine = _ACTIVE_ENGINE
    if engine is None:
        return False
    return engine.event_fires(site, "reboot", index=index, now_s=now_s)


def stall_s(
    site: str, index: Optional[int] = None, now_s: Optional[float] = None
) -> float:
    """Injected processing stall in seconds (``stall`` action)."""
    engine = _ACTIVE_ENGINE
    if engine is None:
        return 0.0
    return engine.magnitude_sum(site, "stall", index=index, now_s=now_s)


def gain_collapse_db(
    site: str, index: Optional[int] = None, now_s: Optional[float] = None
) -> float:
    """Injected gain loss in dB (``gain_collapse`` action)."""
    engine = _ACTIVE_ENGINE
    if engine is None:
        return 0.0
    return engine.magnitude_sum(site, "gain_collapse", index=index, now_s=now_s)


def cfo_step_hz(
    site: str, index: Optional[int] = None, now_s: Optional[float] = None
) -> float:
    """Injected carrier-frequency-offset step in Hz (``cfo_step``)."""
    engine = _ACTIVE_ENGINE
    if engine is None:
        return 0.0
    return engine.magnitude_sum(site, "cfo_step", index=index, now_s=now_s)


def phase_jump_rad(
    site: str, index: Optional[int] = None, now_s: Optional[float] = None
) -> float:
    """Injected oscillator phase jump in radians (``phase_jump``)."""
    engine = _ACTIVE_ENGINE
    if engine is None:
        return 0.0
    return engine.magnitude_sum(site, "phase_jump", index=index, now_s=now_s)


def corrupt_bits(
    site: str,
    bits: Sequence[int],
    index: Optional[int] = None,
    now_s: Optional[float] = None,
) -> Tuple[int, ...]:
    """Return ``bits`` with injected flips (``corrupt_bits`` action)."""
    engine = _ACTIVE_ENGINE
    if engine is None:
        return tuple(bits)
    return engine.corrupt_bits(site, bits, index=index, now_s=now_s)


def jitter_position(
    site: str,
    position: np.ndarray,
    index: Optional[int] = None,
    now_s: Optional[float] = None,
) -> np.ndarray:
    """Return ``position`` with injected noise (``jitter`` action)."""
    engine = _ACTIVE_ENGINE
    if engine is None:
        return position
    return engine.jitter_position(site, position, index=index, now_s=now_s)
