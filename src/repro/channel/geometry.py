"""2-D geometric primitives for image-method ray tracing.

Points are ``numpy`` arrays of shape (2,). A :class:`Wall` is a line
segment with a material; walls both obstruct (transmission loss) and
reflect (multipath) signals.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

import numpy as np

from repro.errors import GeometryError

Point = np.ndarray

_EPS = 1e-9


def as_point(p) -> Point:
    """Coerce a 2-sequence into a float point array."""
    arr = np.asarray(p, dtype=float)
    if arr.shape != (2,):
        raise GeometryError(f"expected a 2-D point, got shape {arr.shape}")
    return arr


def distance_m(a, b) -> float:
    """Euclidean distance between two points."""
    return float(np.linalg.norm(as_point(a) - as_point(b)))


@dataclass(frozen=True)
class Wall:
    """A wall segment with radio properties.

    Parameters
    ----------
    start, end:
        Segment endpoints.
    transmission_loss_db:
        Power lost by a signal passing through the wall (one crossing).
    reflectivity:
        Amplitude reflection coefficient in [0, 1]; 0 means the wall
        never produces multipath (e.g. a thin curtain), ~0.7+ models the
        steel shelving of the paper's Fig. 6(b) experiment.
    name:
        Optional label for debugging.
    """

    start: Tuple[float, float]
    end: Tuple[float, float]
    transmission_loss_db: float = 10.0
    reflectivity: float = 0.3
    name: str = ""

    def __post_init__(self) -> None:
        p1, p2 = as_point(self.start), as_point(self.end)
        if np.allclose(p1, p2):
            raise GeometryError(f"wall {self.name!r} is degenerate: {p1} == {p2}")
        if not 0.0 <= self.reflectivity <= 1.0:
            raise GeometryError(
                f"reflectivity must lie in [0, 1], got {self.reflectivity}"
            )
        if self.transmission_loss_db < 0:
            raise GeometryError("transmission loss must be >= 0 dB")
        object.__setattr__(self, "start", tuple(map(float, self.start)))
        object.__setattr__(self, "end", tuple(map(float, self.end)))

    @property
    def p1(self) -> Point:
        """First endpoint as an array."""
        return np.asarray(self.start)

    @property
    def p2(self) -> Point:
        """Second endpoint as an array."""
        return np.asarray(self.end)

    @property
    def length(self) -> float:
        """Segment length in meters."""
        return distance_m(self.p1, self.p2)

    @property
    def direction(self) -> Point:
        """Unit vector along the segment."""
        d = self.p2 - self.p1
        return d / np.linalg.norm(d)

    @property
    def normal(self) -> Point:
        """Unit normal of the segment."""
        dx, dy = self.direction
        return np.array([-dy, dx])


def mirror_point(point, wall: Wall) -> Point:
    """Reflect a point across the infinite line through a wall segment."""
    p = as_point(point)
    to_point = p - wall.p1
    n = wall.normal
    return p - 2.0 * float(np.dot(to_point, n)) * n


def _cross2(u: Point, v: Point) -> float:
    """Scalar 2-D cross product (z-component of the 3-D cross)."""
    return float(u[0] * v[1] - u[1] * v[0])


def segment_intersection(a, b, c, d) -> Optional[Point]:
    """Intersection point of segments ``a-b`` and ``c-d``, if any.

    Touching at endpoints counts as an intersection. Collinear overlaps
    return ``None`` (grazing propagation along a wall is not a crossing).
    """
    a, b, c, d = map(as_point, (a, b, c, d))
    r = b - a
    s = d - c
    denom = _cross2(r, s)
    if abs(denom) < _EPS:
        return None
    t = _cross2(c - a, s) / denom
    u = _cross2(c - a, r) / denom
    if -_EPS <= t <= 1.0 + _EPS and -_EPS <= u <= 1.0 + _EPS:
        return a + t * r
    return None


def segments_cross(a, b, c, d) -> bool:
    """True when segment ``a-b`` properly crosses ``c-d`` (not mere touch)."""
    a, b, c, d = map(as_point, (a, b, c, d))
    r = b - a
    s = d - c
    denom = _cross2(r, s)
    if abs(denom) < _EPS:
        return False
    t = _cross2(c - a, s) / denom
    u = _cross2(c - a, r) / denom
    return _EPS < t < 1.0 - _EPS and _EPS < u < 1.0 - _EPS


def reflection_point(a, b, wall: Wall) -> Optional[Point]:
    """Specular reflection point on ``wall`` for a path from ``a`` to ``b``.

    Returns the point where a ray leaving ``a`` bounces off the wall and
    reaches ``b``, or ``None`` when the specular point falls outside the
    segment (or either endpoint sits on the wall's line).
    """
    a, b = as_point(a), as_point(b)
    image = mirror_point(b, wall)
    if np.allclose(image, b, atol=_EPS):
        return None  # b lies on the wall plane: no reflection geometry
    return segment_intersection(a, image, wall.p1, wall.p2)
