"""Antenna gain models.

The paper's hardware uses a 6 dBi patch on the reader, compact ceramic
antennas on the relay, and dipole-like tag antennas. For the phasor
simulations the directional pattern mainly matters for the reader patch
(it points down the area of interest); tags and relay antennas are close
to omnidirectional in the horizontal plane.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.errors import ConfigurationError


class IsotropicAntenna:
    """0 dBi in every direction."""

    def __init__(self, gain_dbi: float = 0.0) -> None:
        self.peak_gain_dbi = float(gain_dbi)

    def gain_dbi(self, direction) -> float:
        """Gain toward a (2-D) direction vector, in dBi."""
        return self.peak_gain_dbi


class DipoleAntenna:
    """A half-wave dipole lying along ``axis`` (2-D projection).

    Gain follows the classic ``cos(pi/2 cos(theta)) / sin(theta)``
    pattern with a 2.15 dBi peak broadside to the element, and a deep
    null along the element axis — the "orientation misalignment" that
    creates RFID blind spots (paper §1, [31]).
    """

    PEAK_DBI = 2.15
    _FLOOR_DB = -30.0

    def __init__(self, axis=(1.0, 0.0)) -> None:
        axis = np.asarray(axis, dtype=float)
        norm = np.linalg.norm(axis)
        if norm == 0:
            raise ConfigurationError("dipole axis must be a nonzero vector")
        self.axis = axis / norm

    def gain_dbi(self, direction) -> float:
        """Gain toward a (2-D) direction vector, in dBi."""
        d = np.asarray(direction, dtype=float)
        norm = np.linalg.norm(d)
        if norm == 0:
            raise ConfigurationError("direction must be a nonzero vector")
        cos_theta = float(np.clip(np.dot(d / norm, self.axis), -1.0, 1.0))
        sin_theta = np.sqrt(max(1.0 - cos_theta**2, 1e-12))
        pattern = np.cos(np.pi / 2.0 * cos_theta) / sin_theta
        pattern_db = 20.0 * np.log10(max(abs(pattern), 10.0 ** (self._FLOOR_DB / 20.0)))
        return float(self.PEAK_DBI + pattern_db)


class PatchAntenna:
    """A directional patch with a cosine-power main lobe.

    ``gain(theta) = peak * cos(theta)^n`` in the forward half-space and a
    constant back-lobe level behind, with n derived from the specified
    half-power beamwidth.
    """

    def __init__(
        self,
        boresight=(1.0, 0.0),
        peak_gain_dbi: float = 6.0,
        beamwidth_deg: float = 70.0,
        front_to_back_db: float = 15.0,
    ) -> None:
        boresight = np.asarray(boresight, dtype=float)
        norm = np.linalg.norm(boresight)
        if norm == 0:
            raise ConfigurationError("boresight must be a nonzero vector")
        if not 10.0 <= beamwidth_deg <= 180.0:
            raise ConfigurationError(
                f"beamwidth must be 10-180 degrees, got {beamwidth_deg}"
            )
        if front_to_back_db < 0:
            raise ConfigurationError("front-to-back ratio must be >= 0 dB")
        self.boresight = boresight / norm
        self.peak_gain_dbi = float(peak_gain_dbi)
        self.front_to_back_db = float(front_to_back_db)
        half_angle = np.deg2rad(beamwidth_deg / 2.0)
        # cos^n(half_angle) = 1/2 in power -> n = log(0.5)/log(cos(half)).
        self._exponent = float(np.log(0.5) / np.log(np.cos(half_angle) ** 2))

    def gain_dbi(self, direction) -> float:
        """Gain toward a (2-D) direction vector, in dBi."""
        d = np.asarray(direction, dtype=float)
        norm = np.linalg.norm(d)
        if norm == 0:
            raise ConfigurationError("direction must be a nonzero vector")
        cos_theta = float(np.clip(np.dot(d / norm, self.boresight), -1.0, 1.0))
        back_gain = self.peak_gain_dbi - self.front_to_back_db
        if cos_theta <= 0.0:
            return back_gain
        lobe = self.peak_gain_dbi + 10.0 * self._exponent * np.log10(cos_theta**2)
        return float(max(lobe, back_gain))
