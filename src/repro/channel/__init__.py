"""RF propagation substrate.

Phasor-level channel models for the localization experiments: free-space
and log-distance path loss, wall attenuation, and geometric (image-
method) multipath ray tracing that produces exactly the superposition of
paths in the paper's Eq. 8-9, including the "ghost peak" behaviour of
Fig. 6(b).
"""

from __future__ import annotations

from repro.channel.geometry import (
    Point,
    Wall,
    distance_m,
    mirror_point,
    segment_intersection,
    segments_cross,
)
from repro.channel.pathloss import (
    free_space_gain_db,
    free_space_path_loss_db,
    free_space_range_for_loss,
    log_distance_path_loss_db,
)
from repro.channel.multipath import (
    Ray,
    one_way_channel,
    round_trip_channel,
    trace_rays,
)
from repro.channel.environment import Environment, Material
from repro.channel.antenna import DipoleAntenna, IsotropicAntenna, PatchAntenna
from repro.channel.interference import (
    co_channel,
    co_channel_groups,
    co_channel_penalty_db,
)
from repro.channel.link import Link, LinkBudget

__all__ = [
    "Point",
    "Wall",
    "distance_m",
    "mirror_point",
    "segment_intersection",
    "segments_cross",
    "free_space_path_loss_db",
    "free_space_gain_db",
    "free_space_range_for_loss",
    "log_distance_path_loss_db",
    "Ray",
    "trace_rays",
    "one_way_channel",
    "round_trip_channel",
    "Environment",
    "Material",
    "co_channel",
    "co_channel_groups",
    "co_channel_penalty_db",
    "IsotropicAntenna",
    "DipoleAntenna",
    "PatchAntenna",
    "Link",
    "LinkBudget",
]
