"""Path-loss models.

Free-space (Friis) loss drives the paper's key design equation (Eq. 3-4):
the relay stays stable only while the reader-relay path loss exceeds...
rather, while the isolation I exceeds the path loss L = 20 log10(4 pi R /
lambda), which ties achievable range directly to isolation — 30 dB of
isolation buys 0.75 m, 80 dB buys 238 m.
"""

from __future__ import annotations

import numpy as np

from repro.constants import SPEED_OF_LIGHT
from repro.errors import LinkBudgetError


def _validate(distance_m: float, frequency_hz: float) -> None:
    if distance_m <= 0:
        raise LinkBudgetError(f"distance must be positive, got {distance_m}")
    if frequency_hz <= 0:
        raise LinkBudgetError(f"frequency must be positive, got {frequency_hz}")


def free_space_path_loss_db(distance_m: float, frequency_hz: float) -> float:
    """Friis free-space path loss ``20 log10(4 pi d / lambda)`` in dB.

    This is exactly the L of the paper's Eq. 3.
    """
    _validate(distance_m, frequency_hz)
    wavelength = SPEED_OF_LIGHT / frequency_hz
    return float(20.0 * np.log10(4.0 * np.pi * distance_m / wavelength))


def free_space_gain_db(distance_m: float, frequency_hz: float) -> float:
    """Negative of the path loss: the channel power gain in dB."""
    return -free_space_path_loss_db(distance_m, frequency_hz)


def free_space_amplitude(distance_m: float, frequency_hz: float) -> float:
    """Linear amplitude gain ``lambda / (4 pi d)`` of a free-space path."""
    _validate(distance_m, frequency_hz)
    wavelength = SPEED_OF_LIGHT / frequency_hz
    return float(wavelength / (4.0 * np.pi * distance_m))


def free_space_range_for_loss(loss_db: float, frequency_hz: float) -> float:
    """Distance at which free-space loss reaches ``loss_db`` (paper Eq. 4).

    ``R = (lambda / 4 pi) * 10^(L/20)`` — with L = isolation this is the
    maximum stable relay-reader range.
    """
    if frequency_hz <= 0:
        raise LinkBudgetError(f"frequency must be positive, got {frequency_hz}")
    wavelength = SPEED_OF_LIGHT / frequency_hz
    return float(wavelength / (4.0 * np.pi) * 10.0 ** (loss_db / 20.0))


def log_distance_path_loss_db(
    distance_m: float,
    frequency_hz: float,
    exponent: float = 2.0,
    reference_m: float = 1.0,
) -> float:
    """Log-distance model: free-space to ``reference_m``, then exponent n.

    Indoor cluttered environments typically show n in [2.5, 4]; the
    paper's non-line-of-sight read-rate falloff (Fig. 11) corresponds to
    the upper part of that range plus wall losses.
    """
    _validate(distance_m, frequency_hz)
    if exponent <= 0:
        raise LinkBudgetError(f"path-loss exponent must be positive: {exponent}")
    if reference_m <= 0:
        raise LinkBudgetError(f"reference distance must be positive: {reference_m}")
    reference_loss = free_space_path_loss_db(reference_m, frequency_hz)
    if distance_m <= reference_m:
        return free_space_path_loss_db(distance_m, frequency_hz)
    return float(
        reference_loss + 10.0 * exponent * np.log10(distance_m / reference_m)
    )
