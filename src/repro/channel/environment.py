"""Simulated indoor environments.

An :class:`Environment` owns the wall set and answers channel queries
between arbitrary points. Factory methods build the settings the paper
evaluates in: an open line-of-sight corridor, a non-line-of-sight
configuration behind walls, and a warehouse aisle flanked by highly
reflective steel shelving (the Fig. 6(b) scenario).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro import faults
from repro.channel.geometry import Wall, as_point, segments_cross
from repro.channel.multipath import Ray, one_way_channel, trace_rays
from repro.errors import GeometryError


@dataclass(frozen=True)
class Material:
    """Radio properties of a wall material (one crossing / one bounce)."""

    transmission_loss_db: float
    reflectivity: float
    name: str = ""


# Representative UHF materials; values follow common indoor measurement
# surveys (drywall passes easily, concrete is lossy, steel is a mirror).
DRYWALL = Material(3.0, 0.2, "drywall")
CONCRETE = Material(12.0, 0.4, "concrete")
BRICK = Material(8.0, 0.35, "brick")
STEEL = Material(35.0, 0.85, "steel")
GLASS = Material(2.0, 0.15, "glass")


class Environment:
    """A set of walls plus channel-query helpers."""

    def __init__(self, walls: Sequence[Wall] = (), max_reflections: int = 1) -> None:
        self.walls: List[Wall] = list(walls)
        self.max_reflections = int(max_reflections)

    def add_wall(
        self,
        start: Tuple[float, float],
        end: Tuple[float, float],
        material: Material = DRYWALL,
        name: str = "",
    ) -> Wall:
        """Append a wall of a given material; returns the Wall object."""
        wall = Wall(
            start=start,
            end=end,
            transmission_loss_db=material.transmission_loss_db,
            reflectivity=material.reflectivity,
            name=name or material.name,
        )
        self.walls.append(wall)
        return wall

    def rays_between(self, a, b) -> List[Ray]:
        """All propagation paths between two points."""
        return trace_rays(a, b, self.walls, max_reflections=self.max_reflections)

    def channel(self, a, b, frequency_hz: float) -> complex:
        """One-way complex channel between two points.

        An injected ``channel.link`` drop (interference burst, LoS
        blockage) returns a dead channel — downstream this surfaces as
        an unpowered tag or an undecodable reference, never as a
        silently biased estimate.
        """
        if faults.dropped("channel.link"):
            return 0j
        return one_way_channel(self.rays_between(a, b), frequency_hz)

    def has_line_of_sight(self, a, b) -> bool:
        """True when no wall properly crosses the direct segment."""
        a, b = as_point(a), as_point(b)
        return not any(
            segments_cross(a, b, w.p1, w.p2) for w in self.walls
        )

    def obstruction_loss_db(self, a, b) -> float:
        """Total transmission loss of walls crossed by the direct path."""
        a, b = as_point(a), as_point(b)
        return float(
            sum(
                w.transmission_loss_db
                for w in self.walls
                if segments_cross(a, b, w.p1, w.p2)
            )
        )

    # -- canned scenarios -------------------------------------------------------

    @staticmethod
    def free_space() -> "Environment":
        """No walls at all: pure line-of-sight."""
        return Environment([])

    @staticmethod
    def corridor(length_m: float = 60.0, width_m: float = 3.0) -> "Environment":
        """A long corridor with mildly reflective side walls."""
        if length_m <= 0 or width_m <= 0:
            raise GeometryError("corridor dimensions must be positive")
        env = Environment(max_reflections=1)
        env.add_wall((0.0, 0.0), (length_m, 0.0), DRYWALL, "south")
        env.add_wall((0.0, width_m), (length_m, width_m), DRYWALL, "north")
        return env

    @staticmethod
    def through_wall(
        wall_x: float = 10.0,
        extent_m: float = 60.0,
        material: Material = CONCRETE,
    ) -> "Environment":
        """A single cross wall: the non-line-of-sight setting of Fig. 11."""
        env = Environment(max_reflections=1)
        env.add_wall(
            (wall_x, -extent_m / 2), (wall_x, extent_m / 2), material, "cross-wall"
        )
        return env

    @staticmethod
    def warehouse_aisle(
        aisle_length_m: float = 10.0, aisle_width_m: float = 2.5
    ) -> "Environment":
        """Steel shelves flanking an aisle: heavy multipath (Fig. 6(b))."""
        env = Environment(max_reflections=2)
        env.add_wall(
            (0.0, -aisle_width_m / 2),
            (aisle_length_m, -aisle_width_m / 2),
            STEEL,
            "shelf-south",
        )
        env.add_wall(
            (0.0, aisle_width_m / 2),
            (aisle_length_m, aisle_width_m / 2),
            STEEL,
            "shelf-north",
        )
        return env

    @staticmethod
    def two_floor_building(
        width_m: float = 30.0, depth_m: float = 40.0
    ) -> "Environment":
        """A 30 x 40 m floor with interior walls (the paper's test building)."""
        env = Environment(max_reflections=1)
        env.add_wall((0, 0), (width_m, 0), CONCRETE, "exterior-south")
        env.add_wall((0, depth_m), (width_m, depth_m), CONCRETE, "exterior-north")
        env.add_wall((0, 0), (0, depth_m), CONCRETE, "exterior-west")
        env.add_wall((width_m, 0), (width_m, depth_m), CONCRETE, "exterior-east")
        # Interior partitions with door gaps.
        env.add_wall((0, depth_m / 2), (width_m * 0.45, depth_m / 2), DRYWALL, "mid-w")
        env.add_wall(
            (width_m * 0.55, depth_m / 2), (width_m, depth_m / 2), DRYWALL, "mid-e"
        )
        env.add_wall(
            (width_m / 2, 0), (width_m / 2, depth_m * 0.4), DRYWALL, "spine-s"
        )
        return env
