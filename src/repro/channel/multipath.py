"""Image-method ray tracing and multipath channel synthesis.

Given an environment of walls, :func:`trace_rays` enumerates the
propagation paths between two nodes: the direct path (attenuated by any
wall it punches through) and specular reflections up to a configurable
order. :func:`one_way_channel` then superposes them into the complex
channel of the paper's Eq. 8:

    h = sum_i  a_i * exp(-j 2 pi f d_i / c)

with amplitudes a_i combining free-space spreading, reflection
coefficients, and wall transmission losses. Backscatter links are
round trip; by channel reciprocity the round-trip channel is the square
of the one-way channel, which contains the pairwise path products of
Eq. 8's double sum.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.channel.geometry import (
    Wall,
    as_point,
    distance_m,
    mirror_point,
    reflection_point,
    segments_cross,
)
from repro.channel.pathloss import free_space_amplitude
from repro.constants import SPEED_OF_LIGHT
from repro.errors import GeometryError
from repro.obs import metrics

MAX_SUPPORTED_REFLECTIONS = 2


@dataclass(frozen=True)
class Ray:
    """One propagation path between two nodes.

    ``gain`` is the linear amplitude factor from interactions only
    (reflections and wall transmissions); free-space spreading is applied
    by the channel synthesis using ``length``.
    """

    length: float
    gain: float
    bounces: int
    description: str = ""

    def __post_init__(self) -> None:
        if self.length <= 0:
            raise GeometryError(f"ray length must be positive, got {self.length}")
        if self.gain < 0:
            raise GeometryError(f"ray gain must be >= 0, got {self.gain}")


def _transmission_gain(
    a, b, walls: Sequence[Wall], skip: Sequence[Wall] = ()
) -> float:
    """Amplitude factor for walls the segment a-b punches through."""
    gain = 1.0
    for wall in walls:
        if wall in skip:
            continue
        if segments_cross(a, b, wall.p1, wall.p2):
            gain *= 10.0 ** (-wall.transmission_loss_db / 20.0)
    return gain


def trace_rays(
    a,
    b,
    walls: Sequence[Wall] = (),
    max_reflections: int = 1,
    min_gain: float = 1e-6,
) -> List[Ray]:
    """Enumerate propagation paths from ``a`` to ``b``.

    Parameters
    ----------
    a, b:
        Endpoint coordinates (2-D).
    walls:
        Environment walls; each may obstruct and/or reflect.
    max_reflections:
        Reflection order: 0 = direct only, 1 adds single bounces,
        2 adds double bounces.
    min_gain:
        Paths whose interaction gain falls below this are dropped.

    Returns
    -------
    list of Ray
        Always contains the direct path first (even when heavily
        obstructed its gain may round to zero but the entry remains,
        so "the direct path may not be the strongest" scenarios of
        paper §5.2 are representable).
    """
    if not 0 <= max_reflections <= MAX_SUPPORTED_REFLECTIONS:
        raise GeometryError(
            f"max_reflections must be 0-{MAX_SUPPORTED_REFLECTIONS}, "
            f"got {max_reflections}"
        )
    a, b = as_point(a), as_point(b)
    if np.allclose(a, b):
        raise GeometryError("ray tracing requires distinct endpoints")
    rays: List[Ray] = [
        Ray(
            length=distance_m(a, b),
            gain=_transmission_gain(a, b, walls),
            bounces=0,
            description="direct",
        )
    ]
    if max_reflections >= 1:
        for wall in walls:
            if wall.reflectivity <= 0.0:
                continue
            point = reflection_point(a, b, wall)
            if point is None:
                continue
            length = distance_m(a, point) + distance_m(point, b)
            gain = (
                wall.reflectivity
                * _transmission_gain(a, point, walls, skip=(wall,))
                * _transmission_gain(point, b, walls, skip=(wall,))
            )
            if gain >= min_gain:
                rays.append(
                    Ray(length, gain, 1, description=f"bounce:{wall.name or id(wall)}")
                )
    if max_reflections >= 2:
        for first in walls:
            if first.reflectivity <= 0.0:
                continue
            for second in walls:
                if second is first or second.reflectivity <= 0.0:
                    continue
                # Double image: mirror b across second, then find the
                # first-wall specular point toward that image.
                image_b = mirror_point(b, second)
                p1 = reflection_point(a, image_b, first)
                if p1 is None:
                    continue
                p2 = reflection_point(p1, b, second)
                if p2 is None:
                    continue
                length = distance_m(a, p1) + distance_m(p1, p2) + distance_m(p2, b)
                gain = (
                    first.reflectivity
                    * second.reflectivity
                    * _transmission_gain(a, p1, walls, skip=(first,))
                    * _transmission_gain(p1, p2, walls, skip=(first, second))
                    * _transmission_gain(p2, b, walls, skip=(second,))
                )
                if gain >= min_gain:
                    rays.append(
                        Ray(
                            length,
                            gain,
                            2,
                            description=(
                                f"bounce2:{first.name or id(first)}"
                                f"+{second.name or id(second)}"
                            ),
                        )
                    )
    metrics.count("channel.rays_traced", len(rays))
    return rays


def one_way_channel(rays: Sequence[Ray], frequency_hz: float) -> complex:
    """Superpose rays into a one-way complex channel (paper Eq. 8 terms).

    Each ray contributes ``gain * (lambda / 4 pi d) * exp(-j 2 pi f d / c)``.
    """
    if frequency_hz <= 0:
        raise GeometryError(f"frequency must be positive, got {frequency_hz}")
    metrics.count("channel.channels_synthesized")
    h = 0.0 + 0.0j
    for ray in rays:
        amplitude = ray.gain * free_space_amplitude(ray.length, frequency_hz)
        phase = -2.0 * np.pi * frequency_hz * ray.length / SPEED_OF_LIGHT
        h += amplitude * np.exp(1j * phase)
    return complex(h)


def round_trip_channel(rays: Sequence[Ray], frequency_hz: float) -> complex:
    """Round-trip channel over a reciprocal link: the one-way square.

    Expanding the square reproduces the double sum of paper Eq. 8: every
    forward path i pairs with every return path j, with total length
    ``d_i + d_j`` — for the direct path this is the familiar 2d.
    """
    h = one_way_channel(rays, frequency_hz)
    return complex(h * h)
