"""Link-budget computations.

:class:`Link` ties together endpoints, an environment, antennas and a
frequency, and answers the questions the experiments ask: received
power, SNR over a bandwidth, the complex (phasor) channel, and small-
scale fading realizations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.channel.antenna import IsotropicAntenna
from repro.channel.environment import Environment
from repro.channel.multipath import one_way_channel
from repro.constants import BOLTZMANN_DBM_PER_HZ
from repro.dsp.units import db_to_linear, linear_to_db
from repro.errors import LinkBudgetError
from repro.obs import metrics


@dataclass
class LinkBudget:
    """The computed budget of one link direction."""

    tx_power_dbm: float
    tx_gain_dbi: float
    rx_gain_dbi: float
    path_gain_db: float
    rx_power_dbm: float
    snr_db: Optional[float] = None


class Link:
    """A radio link between two points in an environment.

    Parameters
    ----------
    a, b:
        Endpoint coordinates.
    environment:
        Propagation environment (defaults to free space).
    frequency_hz:
        Carrier frequency.
    tx_antenna, rx_antenna:
        Gain models; default isotropic.
    polarization_loss_db:
        Fixed mismatch loss (RFID tags are linearly polarized while
        readers are usually circular: ~3 dB).
    """

    def __init__(
        self,
        a,
        b,
        frequency_hz: float,
        environment: Optional[Environment] = None,
        tx_antenna=None,
        rx_antenna=None,
        polarization_loss_db: float = 0.0,
    ) -> None:
        if frequency_hz <= 0:
            raise LinkBudgetError(f"frequency must be positive, got {frequency_hz}")
        if polarization_loss_db < 0:
            raise LinkBudgetError("polarization loss must be >= 0 dB")
        self.a = np.asarray(a, dtype=float)
        self.b = np.asarray(b, dtype=float)
        self.frequency_hz = float(frequency_hz)
        self.environment = environment or Environment.free_space()
        self.tx_antenna = tx_antenna or IsotropicAntenna()
        self.rx_antenna = rx_antenna or IsotropicAntenna()
        self.polarization_loss_db = float(polarization_loss_db)

    # -- channel -----------------------------------------------------------------

    def complex_channel(self) -> complex:
        """One-way channel including antenna gains and polarization loss."""
        metrics.count("channel.links_evaluated")
        h = self.environment.channel(self.a, self.b, self.frequency_hz)
        gain_db = (
            self.tx_antenna.gain_dbi(self.b - self.a)
            + self.rx_antenna.gain_dbi(self.a - self.b)
            - self.polarization_loss_db
        )
        return complex(h * np.sqrt(db_to_linear(gain_db)))

    def path_gain_db(self) -> float:
        """Power gain of the composite channel in dB (negative = loss)."""
        h = self.complex_channel()
        power = abs(h) ** 2
        if power == 0.0:
            return float("-inf")
        return float(linear_to_db(power))

    # -- budget ---------------------------------------------------------------

    def budget(
        self,
        tx_power_dbm: float,
        bandwidth_hz: Optional[float] = None,
        noise_figure_db: float = 0.0,
    ) -> LinkBudget:
        """Full link budget for a given transmit power.

        When ``bandwidth_hz`` is provided the SNR over that bandwidth is
        included.
        """
        path_gain = self.path_gain_db()
        rx_power = tx_power_dbm + path_gain
        snr = None
        if bandwidth_hz is not None:
            if bandwidth_hz <= 0:
                raise LinkBudgetError("bandwidth must be positive")
            noise = BOLTZMANN_DBM_PER_HZ + linear_to_db(bandwidth_hz) + noise_figure_db
            snr = rx_power - noise
        return LinkBudget(
            tx_power_dbm=tx_power_dbm,
            tx_gain_dbi=self.tx_antenna.gain_dbi(self.b - self.a),
            rx_gain_dbi=self.rx_antenna.gain_dbi(self.a - self.b),
            path_gain_db=path_gain,
            rx_power_dbm=float(rx_power),
            snr_db=None if snr is None else float(snr),
        )

    def faded_channel(
        self, rng: np.random.Generator, rician_k_db: float = 10.0
    ) -> complex:
        """One small-scale fading realization around the deterministic channel.

        A Rician draw: the ray-traced channel is the specular component
        and a diffuse complex-Gaussian term with K-factor ``rician_k_db``
        models unmodeled scatterers.
        """
        h = self.complex_channel()
        k = db_to_linear(rician_k_db)
        sigma = abs(h) / np.sqrt(2.0 * k)
        diffuse = sigma * (rng.standard_normal() + 1j * rng.standard_normal())
        return complex(h + diffuse)
