"""Inter-relay co-channel interference (fleet scenarios).

When several relay drones fly the same warehouse, each retransmits the
reader's carrier on its own shifted frequency (paper §3.1: the shift
clears the reader's self-interference). Two relays whose *tag-side*
carriers land within a guard band of each other are co-channel: their
downlink carriers superpose at the tag (corrupting the energizing /
backscatter signal) and their uplink retransmissions superpose at the
reader. Azari et al. ("Key Technologies and System Trade-Offs for
Detection and Localization of Amateur Drones") quantify exactly this
air-to-ground co-channel regime: LoS-dominated links, so free-space
path loss is the right scale law.

The model here is deliberately deterministic — an SINR fold-in, not a
phasor draw — so fleet workload generation stays bit-reproducible from
the task seed: the serving relay's SNR is reduced by

    penalty_db = 10 log10(1 + sum_j I_j / S)

evaluated independently at the tag and at the reader and summed. With
no co-channel interferer the penalty is *exactly* ``0.0`` (not a
rounded float), which is what keeps single-relay fleets bit-identical
to the pre-fleet path.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.channel.pathloss import free_space_path_loss_db
from repro.dsp.units import db_to_linear, linear_to_db

#: Distances below this clip to it — a relay hovering on top of a tag
#: would otherwise send the Friis term to -inf.
MIN_INTERFERENCE_DISTANCE_M = 0.1


def co_channel(
    frequency_a_hz: float, frequency_b_hz: float, guard_hz: float
) -> bool:
    """Whether two tag-side carriers interfere under the guard band."""
    return abs(float(frequency_a_hz) - float(frequency_b_hz)) <= float(
        guard_hz
    )


def co_channel_groups(
    frequencies_hz: Sequence[float], guard_hz: float
) -> List[List[int]]:
    """Indices grouped into transitive co-channel clusters.

    Pairwise proximity is chained (a ~ b and b ~ c puts a, c in one
    group even when they sit ``2 * guard_hz`` apart) — conservative,
    and it makes the grouping order-insensitive.
    """
    n = len(frequencies_hz)
    parent = list(range(n))

    def find(i: int) -> int:
        while parent[i] != i:
            parent[i] = parent[parent[i]]
            i = parent[i]
        return i

    for i in range(n):
        for j in range(i + 1, n):
            if co_channel(frequencies_hz[i], frequencies_hz[j], guard_hz):
                parent[find(j)] = find(i)
    groups: dict = {}
    for i in range(n):
        groups.setdefault(find(i), []).append(i)
    return [groups[root] for root in sorted(groups)]


def _received_power_db(
    source_xy: Tuple[float, float],
    sink_xy: Tuple[float, float],
    gain_db: float,
    frequency_hz: float,
) -> float:
    distance = float(
        np.hypot(
            source_xy[0] - sink_xy[0],
            source_xy[1] - sink_xy[1],
        )
    )
    distance = max(distance, MIN_INTERFERENCE_DISTANCE_M)
    return float(gain_db) - free_space_path_loss_db(distance, frequency_hz)


def co_channel_penalty_db(
    serving_index: int,
    relay_positions_m: Sequence[Tuple[float, float]],
    frequencies_hz: Sequence[float],
    gains_db: Sequence[float],
    tag_position_m: Tuple[float, float],
    reader_position_m: Tuple[float, float],
    guard_hz: float,
) -> float:
    """SNR penalty (dB, >= 0) the serving relay's link takes.

    ``relay_positions_m`` are every relay's positions at the current
    instant; interferers are the *other* relays whose tag-side carrier
    is within ``guard_hz`` of the serving relay's. Returns exactly
    ``0.0`` when no interferer is co-channel.
    """
    serving_frequency = frequencies_hz[serving_index]
    interferers = [
        j
        for j in range(len(relay_positions_m))
        if j != serving_index
        and co_channel(frequencies_hz[j], serving_frequency, guard_hz)
    ]
    if not interferers:
        return 0.0
    penalty = 0.0
    for sink in (tag_position_m, reader_position_m):
        signal_db = _received_power_db(
            relay_positions_m[serving_index],
            sink,
            gains_db[serving_index],
            serving_frequency,
        )
        interference_linear = 0.0
        for j in interferers:
            interferer_db = _received_power_db(
                relay_positions_m[j], sink, gains_db[j], frequencies_hz[j]
            )
            interference_linear += db_to_linear(interferer_db - signal_db)
        penalty += float(linear_to_db(1.0 + interference_linear))
    return penalty
