"""Amplifier models: VGAs, the downlink power amplifier, and gain chains.

The relay's amplification (paper §6.1) is a serial combination of
variable-gain amplifiers plus, on the downlink, a power amplifier with a
29 dBm 1-dB compression point. Gains are programmed subject to stability
constraints (total loop gain below isolation); those rules live in
:mod:`repro.relay.gain_control` — this module provides the blocks.
"""

from __future__ import annotations

from typing import Iterable, Protocol

import numpy as np

from repro.dsp.signal import Signal
from repro.dsp.units import db_to_linear, dbm_to_watts, watts_to_dbm
from repro.errors import ConfigurationError


class AmplifierStage(Protocol):
    """Structural type of one chain element: a gain figure plus apply()."""

    gain_db: float

    def apply(self, sig: Signal) -> Signal: ...


class VariableGainAmplifier:
    """An ideal linear amplifier with a settable gain within limits."""

    def __init__(
        self,
        gain_db: float = 0.0,
        min_gain_db: float = -10.0,
        max_gain_db: float = 40.0,
    ) -> None:
        if min_gain_db > max_gain_db:
            raise ConfigurationError(
                f"min gain {min_gain_db} exceeds max gain {max_gain_db}"
            )
        self.min_gain_db = float(min_gain_db)
        self.max_gain_db = float(max_gain_db)
        self._gain_db = 0.0
        self.gain_db = gain_db

    @property
    def gain_db(self) -> float:
        """Current power gain in dB."""
        return self._gain_db

    @gain_db.setter
    def gain_db(self, value: float) -> None:
        """Current power gain in dB."""
        if not self.min_gain_db <= value <= self.max_gain_db:
            raise ConfigurationError(
                f"gain {value} dB outside [{self.min_gain_db}, {self.max_gain_db}]"
            )
        self._gain_db = float(value)

    def apply(self, sig: Signal) -> Signal:
        """Apply this stage to a signal and return the result."""
        amplitude_gain = np.sqrt(db_to_linear(self._gain_db))
        return sig.scaled(amplitude_gain)

    def __call__(self, sig: Signal) -> Signal:
        return self.apply(sig)


class PowerAmplifier:
    """A power amplifier with soft saturation (Rapp model).

    The output amplitude follows ``g*x / (1 + (g|x|/A_sat)^(2p))^(1/2p)``.
    The saturation amplitude is derived from the specified 1-dB
    compression point, the standard datasheet figure (the paper's PA has
    P1dB = 29 dBm).
    """

    def __init__(
        self, gain_db: float, p1db_dbm: float, smoothness: float = 2.0
    ) -> None:
        if smoothness <= 0:
            raise ConfigurationError("smoothness must be positive")
        self.gain_db = float(gain_db)
        self.p1db_dbm = float(p1db_dbm)
        self.smoothness = float(smoothness)
        # At the 1-dB compression point the output is 1 dB below the
        # linear extrapolation: |out| = g |x| * 10^(-1/20). Solving the
        # Rapp equation for A_sat with y = g|x| at that point:
        #   10^(-1/20) = (1 + (y/A)^2p)^(-1/2p)
        # => (y/A)^2p = 10^(2p/20) - 1
        y1 = float(np.sqrt(dbm_to_watts(p1db_dbm + 1.0)))  # linear-extrapolated amp
        p2 = 2.0 * self.smoothness
        ratio = (10.0 ** (p2 / 20.0) - 1.0) ** (1.0 / p2)
        self.saturation_amplitude = y1 / ratio

    @property
    def saturation_power_dbm(self) -> float:
        """Hard output ceiling implied by the Rapp model, in dBm."""
        watts = self.saturation_amplitude**2
        return float(watts_to_dbm(watts))

    def apply(self, sig: Signal) -> Signal:
        """Apply this stage to a signal and return the result."""
        gain = np.sqrt(db_to_linear(self.gain_db))
        y = sig.samples * gain
        magnitude = np.abs(y)
        p2 = 2.0 * self.smoothness
        compression = (1.0 + (magnitude / self.saturation_amplitude) ** p2) ** (
            1.0 / p2
        )
        return sig.with_samples(y / compression)

    def __call__(self, sig: Signal) -> Signal:
        return self.apply(sig)


class AmplifierChain:
    """A serial combination of amplifier stages applied in order."""

    def __init__(self, stages: Iterable[AmplifierStage]) -> None:
        self.stages = list(stages)

    @property
    def total_gain_db(self) -> float:
        """Sum of small-signal gains across all stages."""
        return float(sum(stage.gain_db for stage in self.stages))

    def apply(self, sig: Signal) -> Signal:
        """Apply this stage to a signal and return the result."""
        for stage in self.stages:
            sig = stage.apply(sig)
        return sig

    def __call__(self, sig: Signal) -> Signal:
        return self.apply(sig)
