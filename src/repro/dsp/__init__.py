"""Sample-level DSP substrate.

This package models the analog signal chain of RFly's relay and reader at
complex-baseband sample level: oscillators with CFO/phase offsets, mixers,
Butterworth filters, variable-gain and power amplifiers, thermal noise,
and power/phase measurements.

Representation convention
-------------------------
A :class:`~repro.dsp.signal.Signal` stores the complex envelope of an RF
signal relative to a declared ``center_frequency_hz``. Samples are in units
of sqrt(watt), so ``|x|**2`` is instantaneous power in watts. Mixing with
a local oscillator shifts the declared center by the LO's *nominal*
frequency and rotates the envelope by the LO's frequency error and phase,
which is exactly how carrier-frequency offset appears in hardware.
"""

from __future__ import annotations

from repro.dsp.signal import Signal
from repro.dsp.units import (
    db_to_linear,
    dbm_to_watts,
    linear_to_db,
    watts_to_dbm,
)
from repro.dsp.oscillator import Oscillator
from repro.dsp.mixer import downconvert, upconvert
from repro.dsp.filters import BandPassFilter, Filter, LowPassFilter
from repro.dsp.amplifier import AmplifierChain, PowerAmplifier, VariableGainAmplifier
from repro.dsp.noise import awgn, thermal_noise, thermal_noise_power_dbm
from repro.dsp.measurements import (
    mean_power_dbm,
    peak_power_dbm,
    phase_of_tone,
    tone,
    tone_power_dbm,
)

__all__ = [
    "Signal",
    "Oscillator",
    "downconvert",
    "upconvert",
    "Filter",
    "LowPassFilter",
    "BandPassFilter",
    "VariableGainAmplifier",
    "PowerAmplifier",
    "AmplifierChain",
    "awgn",
    "thermal_noise",
    "thermal_noise_power_dbm",
    "tone",
    "mean_power_dbm",
    "peak_power_dbm",
    "tone_power_dbm",
    "phase_of_tone",
    "db_to_linear",
    "linear_to_db",
    "dbm_to_watts",
    "watts_to_dbm",
]
