"""Complex-envelope signal container.

The :class:`Signal` class is the currency of the sample-level simulator:
every block (mixer, filter, amplifier, channel, relay path) consumes and
produces one. It is deliberately immutable-ish — operations return new
instances — so a signal can fan out to several blocks (e.g. the four
self-interference paths of the relay) without aliasing bugs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import SampleRateError, SignalError

_RATE_RTOL = 1e-9


@dataclass(frozen=True)
class Signal:
    """Complex envelope of an RF signal.

    Parameters
    ----------
    samples:
        Complex envelope, units of sqrt(watt): ``abs(samples)**2`` is the
        instantaneous power in watts.
    sample_rate:
        Sample rate in Hz.
    center_frequency_hz:
        The absolute RF frequency (Hz) that baseband 0 Hz represents.
    start_time:
        Absolute time (s) of the first sample. Oscillators are generated
        on an absolute time base so that coherent reuse of a synthesizer
        (the relay's mirrored architecture) cancels exactly.
    """

    samples: np.ndarray
    sample_rate: float
    center_frequency_hz: float = 0.0
    start_time: float = 0.0

    def __post_init__(self) -> None:
        samples = np.asarray(self.samples, dtype=np.complex128)
        if samples.ndim != 1:
            raise SignalError(
                f"Signal samples must be 1-D, got shape {samples.shape}"
            )
        if self.sample_rate <= 0:
            raise SignalError(f"sample_rate must be positive, got {self.sample_rate}")
        object.__setattr__(self, "samples", samples)

    # -- basic properties ---------------------------------------------------

    def __len__(self) -> int:
        return len(self.samples)

    @property
    def duration(self) -> float:
        """Signal length in seconds."""
        return len(self.samples) / self.sample_rate

    @property
    def times(self) -> np.ndarray:
        """Absolute sample times in seconds."""
        return self.start_time + np.arange(len(self.samples)) / self.sample_rate

    @property
    def mean_power_watts(self) -> float:
        """Mean power over the signal, in watts."""
        if len(self.samples) == 0:
            return 0.0
        return float(np.mean(np.abs(self.samples) ** 2))

    # -- derivation helpers --------------------------------------------------

    def with_samples(self, samples: np.ndarray) -> "Signal":
        """Return a copy of this signal carrying different samples."""
        return Signal(samples, self.sample_rate, self.center_frequency_hz, self.start_time)

    def scaled(self, linear_amplitude_gain: float | complex) -> "Signal":
        """Return this signal with every sample multiplied by a constant."""
        return self.with_samples(self.samples * linear_amplitude_gain)

    def delayed(self, delay_seconds: float) -> "Signal":
        """Return this signal shifted later in absolute time.

        The envelope is additionally rotated by ``exp(-j 2 pi f_c delay)``,
        the carrier phase a propagation delay imparts — this is what makes
        distance measurable from phase (paper Eq. 2).
        """
        phase = np.exp(-2j * np.pi * self.center_frequency_hz * delay_seconds)
        return Signal(
            self.samples * phase,
            self.sample_rate,
            self.center_frequency_hz,
            self.start_time + delay_seconds,
        )

    def sliced(self, start: int, stop: int | None = None) -> "Signal":
        """Return samples ``[start:stop]`` with the time base adjusted."""
        stop_index = len(self.samples) if stop is None else stop
        if not 0 <= start <= stop_index <= len(self.samples):
            raise SignalError(
                f"slice [{start}:{stop_index}] out of range for {len(self.samples)} samples"
            )
        return Signal(
            self.samples[start:stop_index],
            self.sample_rate,
            self.center_frequency_hz,
            self.start_time + start / self.sample_rate,
        )

    # -- combination ----------------------------------------------------------

    def _check_compatible(self, other: "Signal") -> None:
        if not np.isclose(self.sample_rate, other.sample_rate, rtol=_RATE_RTOL):
            raise SampleRateError(
                f"sample rates differ: {self.sample_rate} vs {other.sample_rate}"
            )
        if not np.isclose(
            self.center_frequency_hz, other.center_frequency_hz, rtol=0, atol=1.0
        ):
            raise SignalError(
                "cannot combine signals at different centers: "
                f"{self.center_frequency_hz} vs {other.center_frequency_hz}"
            )

    def __add__(self, other: "Signal") -> "Signal":
        """Superpose two time-aligned, same-center signals.

        Shorter operands are zero-padded at the tail; the start times must
        already agree (propagation delays are applied via :meth:`delayed`
        before superposition, which keeps sample grids aligned).
        """
        self._check_compatible(other)
        if not np.isclose(
            self.start_time, other.start_time, atol=0.25 / self.sample_rate
        ):
            raise SignalError(
                "cannot superpose signals with different start times: "
                f"{self.start_time} vs {other.start_time}"
            )
        n = max(len(self.samples), len(other.samples))
        total = np.zeros(n, dtype=np.complex128)
        total[: len(self.samples)] += self.samples
        total[: len(other.samples)] += other.samples
        return self.with_samples(total)

    def concatenated(self, other: "Signal") -> "Signal":
        """Append ``other`` immediately after this signal in time."""
        self._check_compatible(other)
        return self.with_samples(np.concatenate([self.samples, other.samples]))

    # -- constructors ----------------------------------------------------------

    @staticmethod
    def silence(
        duration: float,
        sample_rate: float,
        center_frequency_hz: float = 0.0,
        start_time: float = 0.0,
    ) -> "Signal":
        """An all-zero signal of the given duration."""
        n = int(round(duration * sample_rate))
        return Signal(
            np.zeros(n, dtype=np.complex128), sample_rate, center_frequency_hz, start_time
        )
