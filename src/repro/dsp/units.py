"""Decibel and power unit conversions used throughout the package.

This is the only module allowed to spell out the raw ``10**(x/10)`` /
``10*log10(x)`` power-domain conversions (reprolint rule U106): every
other module routes through these converters so the ``-inf`` and
zero-power edge cases are handled in exactly one place.
"""

from __future__ import annotations

from typing import Union

import numpy as np
from numpy.typing import ArrayLike, NDArray

_MILLIWATT = 1.0e-3

#: Scalar inputs come back as numpy scalars (a ``float`` subclass),
#: array inputs as float64 arrays of the same shape.
FloatOrArray = Union[np.floating, NDArray[np.float64]]


def db_to_linear(value_db: ArrayLike) -> FloatOrArray:
    """Convert a power ratio in dB to a linear ratio.

    Accepts scalars or arrays; returns the same shape.
    """
    return np.power(10.0, np.asarray(value_db, dtype=float) / 10.0)


def linear_to_db(ratio: ArrayLike) -> FloatOrArray:
    """Convert a linear power ratio to dB.

    Non-positive ratios map to ``-inf`` rather than raising, which is the
    convenient behaviour when measuring the power of an empty band.
    """
    ratio = np.asarray(ratio, dtype=float)
    with np.errstate(divide="ignore"):
        return 10.0 * np.log10(ratio)


def dbm_to_watts(power_dbm: ArrayLike) -> FloatOrArray:
    """Convert power in dBm to watts."""
    return _MILLIWATT * db_to_linear(power_dbm)


def watts_to_dbm(power_watts: ArrayLike) -> FloatOrArray:
    """Convert power in watts to dBm (``-inf`` for zero power)."""
    return linear_to_db(np.asarray(power_watts, dtype=float) / _MILLIWATT)


def amplitude_for_power_dbm(power_dbm: ArrayLike) -> float:
    """Amplitude (sqrt watts) of a complex tone with the given mean power.

    A complex exponential ``A * exp(j w t)`` has mean power ``A**2``, so
    the amplitude is simply the square root of the power in watts.
    """
    return float(np.sqrt(dbm_to_watts(power_dbm)))
