"""Baseband analog filters (modeled as digital Butterworth IIR filters).

The relay's inter-link isolation rests on two filters (paper §6.1):

* a **low-pass filter** at 100 kHz on the downlink path, which passes the
  reader query and rejects the relayed tag response, and
* a **band-pass filter** centered at 500 kHz on the uplink path, which
  passes the tag response and rejects the relayed query.

Filters are applied causally (``scipy.signal.lfilter``) so group delay and
phase response are preserved, like the analog originals. The resulting
constant hardware phase is exactly what the relay-embedded reference RFID
factors out during localization (paper §5.1).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import signal as sps

from repro.dsp.signal import Signal
from repro.errors import ConfigurationError, SampleRateError


class Filter:
    """Base class: an IIR filter bound to a specific sample rate."""

    def __init__(self, sample_rate: float) -> None:
        if sample_rate <= 0:
            raise ConfigurationError(f"sample_rate must be positive, got {sample_rate}")
        self.sample_rate = float(sample_rate)
        self._sos: np.ndarray | None = None

    # -- application -----------------------------------------------------------

    def apply(self, sig: Signal) -> Signal:
        """Filter a signal, preserving its center frequency and time base."""
        if not np.isclose(sig.sample_rate, self.sample_rate, rtol=1e-9):
            raise SampleRateError(
                f"filter designed for {self.sample_rate} S/s, signal is "
                f"{sig.sample_rate} S/s"
            )
        filtered = sps.sosfilt(self._sos, sig.samples)
        return sig.with_samples(filtered)

    def __call__(self, sig: Signal) -> Signal:
        return self.apply(sig)

    # -- analysis ----------------------------------------------------------------

    def response_at(self, baseband_frequency_hz: float) -> complex:
        """Complex frequency response at a baseband frequency (Hz).

        Negative frequencies are meaningful for complex envelopes.
        """
        w = 2.0 * np.pi * baseband_frequency_hz / self.sample_rate
        _, h = sps.sosfreqz(self._sos, worN=[w])
        return complex(h[0])

    def attenuation_db(self, baseband_frequency_hz: float) -> float:
        """Power attenuation (positive dB) at a baseband frequency."""
        magnitude = abs(self.response_at(baseband_frequency_hz))
        if magnitude == 0.0:
            return float("inf")
        return float(-20.0 * np.log10(magnitude))

    def group_delay_seconds(self, baseband_frequency_hz: float = 0.0) -> float:
        """Group delay near a frequency, in seconds."""
        b, a = sps.sos2tf(self._sos)
        w = 2.0 * np.pi * abs(baseband_frequency_hz) / self.sample_rate
        worn = np.array([max(w, 1e-6)])
        _, gd = sps.group_delay((b, a), w=worn)
        return float(gd[0] / self.sample_rate)


class LowPassFilter(Filter):
    """Butterworth low-pass filter on a complex envelope.

    The filter is applied to the complex baseband directly; with a real
    low-pass prototype, both positive and negative envelope frequencies
    beyond the cutoff are rejected, like the analog I/Q filter pair on the
    relay PCB.
    """

    def __init__(self, cutoff_hz: float, sample_rate: float, order: int = 6) -> None:
        super().__init__(sample_rate)
        if not 0 < cutoff_hz < sample_rate / 2:
            raise ConfigurationError(
                f"cutoff {cutoff_hz} Hz must lie in (0, Nyquist={sample_rate / 2})"
            )
        if order < 1:
            raise ConfigurationError(f"order must be >= 1, got {order}")
        self.cutoff_hz = float(cutoff_hz)
        self.order = int(order)
        self._sos = sps.butter(
            order, cutoff_hz, btype="low", fs=sample_rate, output="sos"
        )


class BandPassFilter(Filter):
    """Butterworth band-pass filter on a complex envelope.

    The passband ``[center - half_bandwidth, center + half_bandwidth]`` is
    one-sided in envelope frequency. The relay's uplink filter passes the
    tag's upper backscatter sideband at +BLF; a hardware implementation
    passes both sidebands, but only one is needed to forward the response,
    and a single-sideband model keeps the inter-link leakage accounting
    identical.
    """

    def __init__(
        self,
        center_hz: float,
        half_bandwidth_hz: float,
        sample_rate: float,
        order: int = 4,
    ) -> None:
        super().__init__(sample_rate)
        low = center_hz - half_bandwidth_hz
        high = center_hz + half_bandwidth_hz
        if half_bandwidth_hz <= 0:
            raise ConfigurationError("half_bandwidth must be positive")
        if not 0 < low < high < sample_rate / 2:
            raise ConfigurationError(
                f"passband [{low}, {high}] Hz must lie in (0, Nyquist)"
            )
        if order < 1:
            raise ConfigurationError(f"order must be >= 1, got {order}")
        self.center_hz = float(center_hz)
        self.half_bandwidth_hz = float(half_bandwidth_hz)
        self.order = int(order)
        self._sos = sps.butter(
            order, [low, high], btype="band", fs=sample_rate, output="sos"
        )
