"""Thermal noise generation.

Receiver noise sets both the decode threshold of Fig. 11 and the SNR-
driven localization degradation of Fig. 14. Noise power follows the
standard kTB + NF budget with kT = -173.8 dBm/Hz.
"""

from __future__ import annotations

import numpy as np

from repro.constants import BOLTZMANN_DBM_PER_HZ
from repro.dsp.signal import Signal
from repro.dsp.units import db_to_linear, dbm_to_watts, linear_to_db
from repro.errors import ConfigurationError


def thermal_noise_power_dbm(bandwidth_hz: float, noise_figure_db: float = 0.0) -> float:
    """Noise power in dBm over a bandwidth, including a noise figure."""
    if bandwidth_hz <= 0:
        raise ConfigurationError(f"bandwidth must be positive, got {bandwidth_hz}")
    return float(BOLTZMANN_DBM_PER_HZ + linear_to_db(bandwidth_hz) + noise_figure_db)


def complex_noise(
    n: int, power_watts: float, rng: np.random.Generator
) -> np.ndarray:
    """Circularly-symmetric complex Gaussian samples of given mean power."""
    if power_watts < 0:
        raise ConfigurationError("noise power must be >= 0")
    sigma = np.sqrt(power_watts / 2.0)
    return sigma * (rng.standard_normal(n) + 1j * rng.standard_normal(n))


def thermal_noise(
    sig: Signal, noise_figure_db: float, rng: np.random.Generator
) -> Signal:
    """Add receiver thermal noise appropriate for the signal's bandwidth.

    The full sample rate is taken as the noise bandwidth, the behaviour of
    a receiver digitizing at that rate before matched filtering.
    """
    power_dbm = thermal_noise_power_dbm(sig.sample_rate, noise_figure_db)
    noise = complex_noise(len(sig.samples), dbm_to_watts(power_dbm), rng)
    return sig.with_samples(sig.samples + noise)


def awgn(sig: Signal, snr_db: float, rng: np.random.Generator) -> Signal:
    """Add white noise at a target SNR relative to the signal's mean power."""
    signal_power = sig.mean_power_watts
    noise_power = signal_power / db_to_linear(snr_db)
    noise = complex_noise(len(sig.samples), noise_power, rng)
    return sig.with_samples(sig.samples + noise)
