"""Local oscillators / frequency synthesizers.

An :class:`Oscillator` models one synthesizer on the relay PCB (or inside
the reader). Real synthesizers differ from their programmed frequency by
a carrier-frequency offset (CFO, from crystal tolerance) and start at an
arbitrary phase; both corrupt relayed phase measurements unless the
mirrored architecture cancels them (paper §4.3).

The waveform is generated on an *absolute* time base. Reusing the same
``Oscillator`` instance for downconversion and later upconversion — what
the paper's shared synthesizers do — therefore cancels its CFO and phase
exactly, up to the per-call white phase jitter which models phase noise.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigurationError


@dataclass
class Oscillator:
    """A frequency synthesizer with CFO, phase offset, and phase jitter.

    Parameters
    ----------
    nominal_frequency_hz:
        The programmed output frequency in Hz.
    cfo_hz:
        Actual-minus-nominal frequency error. A 1 ppm crystal at 915 MHz
        gives ~915 Hz.
    phase_offset_rad:
        Phase of the oscillator at absolute time zero.
    phase_jitter_std_rad:
        Standard deviation of white phase noise added independently on
        every generated sample (and independently across calls).
    rng:
        Source of randomness for the jitter. Required if jitter > 0.
    """

    nominal_frequency_hz: float
    cfo_hz: float = 0.0
    phase_offset_rad: float = 0.0
    phase_jitter_std_rad: float = 0.0
    rng: np.random.Generator | None = None

    def __post_init__(self) -> None:
        if self.nominal_frequency_hz < 0:
            raise ConfigurationError(
                f"oscillator frequency must be >= 0, got {self.nominal_frequency_hz}"
            )
        if self.phase_jitter_std_rad < 0:
            raise ConfigurationError("phase jitter std must be >= 0")
        if self.phase_jitter_std_rad > 0 and self.rng is None:
            raise ConfigurationError("an rng is required when phase jitter is enabled")

    @property
    def actual_frequency_hz(self) -> float:
        """The frequency the oscillator actually produces."""
        return self.nominal_frequency_hz + self.cfo_hz

    def phase_at(self, times: np.ndarray) -> np.ndarray:
        """Instantaneous phase (radians) at the given absolute times.

        Only the *error* terms are included: the rotation relative to an
        ideal oscillator at the nominal frequency. This is exactly the
        rotation a mixer using this LO imparts on a complex envelope.
        """
        times = np.asarray(times, dtype=float)
        phase = 2.0 * np.pi * self.cfo_hz * times + self.phase_offset_rad
        if self.phase_jitter_std_rad > 0:
            phase = phase + self.rng.normal(
                0.0, self.phase_jitter_std_rad, size=times.shape
            )
        return phase

    def envelope_rotation(self, times: np.ndarray) -> np.ndarray:
        """``exp(j * phase_at(times))`` — the envelope factor of upmixing."""
        return np.exp(1j * self.phase_at(times))

    @staticmethod
    def ideal(nominal_frequency_hz: float) -> "Oscillator":
        """An oscillator with no CFO, no phase offset, and no jitter."""
        return Oscillator(nominal_frequency_hz=nominal_frequency_hz)

    @staticmethod
    def random(
        nominal_frequency_hz: float,
        rng: np.random.Generator,
        max_cfo_ppm: float = 2.0,
        phase_jitter_std_rad: float = 0.0,
    ) -> "Oscillator":
        """An oscillator with a random CFO (uniform in ±ppm) and phase."""
        cfo = nominal_frequency_hz * max_cfo_ppm * 1e-6 * rng.uniform(-1.0, 1.0)
        return Oscillator(
            nominal_frequency_hz=nominal_frequency_hz,
            cfo_hz=cfo,
            phase_offset_rad=rng.uniform(0.0, 2.0 * np.pi),
            phase_jitter_std_rad=phase_jitter_std_rad,
            rng=rng,
        )
